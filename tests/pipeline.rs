//! End-to-end pipeline tests spanning every crate: simCOM substrate, DCOM
//! simulation, flow algorithms, the Coign runtime, and the application
//! suite.

use coign::classifier::{ClassifierKind, InstanceClassifier};
use coign::runtime::{choose_distribution, profile_scenario, run_default, run_distributed};
use coign_apps::scenarios::app_by_name;
use coign_dcom::{NetworkModel, NetworkProfile};
use std::sync::Arc;

fn network() -> NetworkProfile {
    NetworkProfile::measure(&NetworkModel::ethernet_10baset(), 20, 99)
}

/// For every application: profile one representative scenario, choose a
/// distribution, run it — and never do worse than the default.
#[test]
fn coign_never_chooses_a_worse_distribution() {
    for (app_name, scenario) in [
        ("octarine", "o_oldwp0"),
        ("octarine", "o_oldtb3"),
        ("photodraw", "p_oldcur"),
        ("benefits", "b_vueone"),
    ] {
        let app = app_by_name(app_name).unwrap();
        let classifier = Arc::new(InstanceClassifier::new(ClassifierKind::Ifcb));
        let run = profile_scenario(app.as_ref(), scenario, &classifier).unwrap();
        let dist = choose_distribution(app.as_ref(), &run.profile, &network()).unwrap();
        let default =
            run_default(app.as_ref(), scenario, NetworkModel::ethernet_10baset(), 7).unwrap();
        let coign = run_distributed(
            app.as_ref(),
            scenario,
            &classifier,
            &dist,
            NetworkModel::ethernet_10baset(),
            7,
        )
        .unwrap();
        // Allow 7 % slack for transport jitter (the model chooses on means).
        assert!(
            coign.stats.comm_us as f64 <= default.stats.comm_us as f64 * 1.07 + 1000.0,
            "{scenario}: coign {} us > default {} us",
            coign.stats.comm_us,
            default.stats.comm_us
        );
    }
}

/// The distributed run must behave identically to the profiling run: same
/// instances, same call structure (location transparency).
#[test]
fn distribution_preserves_application_behavior() {
    let app = app_by_name("octarine").unwrap();
    let classifier = Arc::new(InstanceClassifier::new(ClassifierKind::Ifcb));
    let run = profile_scenario(app.as_ref(), "o_oldtb0", &classifier).unwrap();
    let dist = choose_distribution(app.as_ref(), &run.profile, &network()).unwrap();
    let coign = run_distributed(
        app.as_ref(),
        "o_oldtb0",
        &classifier,
        &dist,
        NetworkModel::ethernet_10baset(),
        1,
    )
    .unwrap();
    assert_eq!(
        run.report.total_instances(),
        coign.total_instances(),
        "the distributed execution must create the same component population"
    );
    // Application compute is placement-independent (equal CPUs).
    assert_eq!(run.report.stats.compute_us, coign.stats.compute_us);
}

/// Profiling and analysis are fully deterministic; distributed measurement
/// is deterministic per seed.
#[test]
fn pipeline_is_deterministic() {
    let once = || {
        let app = app_by_name("benefits").unwrap();
        let classifier = Arc::new(InstanceClassifier::new(ClassifierKind::Ifcb));
        let run = profile_scenario(app.as_ref(), "b_addone", &classifier).unwrap();
        let dist = choose_distribution(app.as_ref(), &run.profile, &network()).unwrap();
        let report = run_distributed(
            app.as_ref(),
            "b_addone",
            &classifier,
            &dist,
            NetworkModel::ethernet_10baset(),
            1234,
        )
        .unwrap();
        (
            run.profile.total_bytes(),
            dist.encode(),
            report.clock_us,
            report.stats.bytes,
        )
    };
    assert_eq!(once(), once());
}

/// The same profile concretized for faster networks never increases the
/// predicted communication time of the chosen cut.
#[test]
fn faster_networks_never_predict_slower_cuts() {
    let app = app_by_name("octarine").unwrap();
    let classifier = Arc::new(InstanceClassifier::new(ClassifierKind::Ifcb));
    let run = profile_scenario(app.as_ref(), "o_oldwp3", &classifier).unwrap();
    let mut last = f64::INFINITY;
    for model in [
        NetworkModel::isdn(),
        NetworkModel::ethernet_10baset(),
        NetworkModel::atm155(),
        NetworkModel::san(),
    ] {
        let profile = NetworkProfile::exact(&model);
        let dist = choose_distribution(app.as_ref(), &run.profile, &profile).unwrap();
        assert!(
            dist.predicted_comm_us <= last,
            "{}: {} > previous {}",
            model.name,
            dist.predicted_comm_us,
            last
        );
        last = dist.predicted_comm_us;
    }
}

/// All three max-flow algorithms agree on the real applications' graphs,
/// not just synthetic ones.
#[test]
fn algorithms_agree_on_real_application_graphs() {
    use coign::analysis::analyze;
    use coign::runtime::derive_constraints;
    use coign_flow::MaxFlowAlgorithm;

    let app = app_by_name("benefits").unwrap();
    let classifier = Arc::new(InstanceClassifier::new(ClassifierKind::Ifcb));
    let run = profile_scenario(app.as_ref(), "b_vueone", &classifier).unwrap();
    let constraints = derive_constraints(app.as_ref(), &run.profile);
    let net = network();
    let costs: Vec<f64> = MaxFlowAlgorithm::ALL
        .iter()
        .map(|&alg| {
            analyze(&run.profile, &net, &constraints, alg)
                .unwrap()
                .predicted_comm_us
        })
        .collect();
    for pair in costs.windows(2) {
        assert!(
            (pair[0] - pair[1]).abs() < 1e-6,
            "algorithms disagree: {costs:?}"
        );
    }
}

/// §4.3: Benefits ships as either 2-tier or 3-tier. Coign improves both
/// shipped configurations — and converges on equal-cost distributions,
/// since the cut does not care where the programmer started.
#[test]
fn coign_improves_both_benefits_tierings() {
    use coign_apps::Benefits;
    for app in [Benefits::two_tier(), Benefits::three_tier()] {
        let classifier = Arc::new(InstanceClassifier::new(ClassifierKind::Ifcb));
        let run = profile_scenario(&app, "b_vueone", &classifier).unwrap();
        let dist = choose_distribution(&app, &run.profile, &network()).unwrap();
        let default = run_default(&app, "b_vueone", NetworkModel::ethernet_10baset(), 9).unwrap();
        let coign = run_distributed(
            &app,
            "b_vueone",
            &classifier,
            &dist,
            NetworkModel::ethernet_10baset(),
            9,
        )
        .unwrap();
        assert!(
            coign.stats.comm_us <= default.stats.comm_us,
            "coign must not lose to the shipped configuration"
        );
    }
    // The chosen distributions cost the same regardless of tiering: the
    // profile (and therefore the cut) is identical.
    let classifier = Arc::new(InstanceClassifier::new(ClassifierKind::Ifcb));
    let two = profile_scenario(&Benefits::two_tier(), "b_vueone", &classifier).unwrap();
    let classifier2 = Arc::new(InstanceClassifier::new(ClassifierKind::Ifcb));
    let three = profile_scenario(&Benefits::three_tier(), "b_vueone", &classifier2).unwrap();
    assert_eq!(two.profile, three.profile);
}
