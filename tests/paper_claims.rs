//! The paper's headline experimental results, asserted as tests.
//!
//! Absolute seconds differ (our substrate is a simulator, not two 200 MHz
//! Pentiums on 10BaseT), but every *shape* the paper reports must hold:
//! which components move, where the crossovers fall, who wins and by
//! roughly what factor. See `EXPERIMENTS.md` for the side-by-side numbers.

use coign::classifier::{ClassifierKind, InstanceClassifier};
use coign::runtime::{choose_distribution, profile_scenario, run_default, run_distributed};
use coign_apps::scenarios::app_by_name;
use coign_apps::{Benefits, Octarine, PhotoDraw};
use coign_com::{Clsid, ComRuntime, MachineId};
use coign_dcom::{NetworkModel, NetworkProfile};
use std::collections::BTreeMap;
use std::sync::Arc;

struct Outcome {
    default_comm_us: u64,
    coign_comm_us: u64,
    server_classes: BTreeMap<String, usize>,
    total_instances: usize,
}

fn run(app_name: &str, scenario: &str) -> Outcome {
    let app = app_by_name(app_name).unwrap();
    let classifier = Arc::new(InstanceClassifier::new(ClassifierKind::Ifcb));
    let run = profile_scenario(app.as_ref(), scenario, &classifier).unwrap();
    let network = NetworkProfile::measure(&NetworkModel::ethernet_10baset(), 20, 5);
    let dist = choose_distribution(app.as_ref(), &run.profile, &network).unwrap();
    let default = run_default(app.as_ref(), scenario, NetworkModel::ethernet_10baset(), 2).unwrap();
    let coign = run_distributed(
        app.as_ref(),
        scenario,
        &classifier,
        &dist,
        NetworkModel::ethernet_10baset(),
        2,
    )
    .unwrap();
    let rt = ComRuntime::single_machine();
    app.register(&rt);
    let mut server_classes = BTreeMap::new();
    for (clsid, machine) in &coign.instance_placements {
        if *machine != MachineId::SERVER {
            continue;
        }
        let desc = rt.registry().get(*clsid).unwrap();
        if desc.imports.uses_storage() {
            continue; // the pinned data file / database
        }
        *server_classes.entry(desc.name.clone()).or_insert(0) += 1;
    }
    Outcome {
        default_comm_us: default.stats.comm_us,
        coign_comm_us: coign.stats.comm_us,
        server_classes,
        total_instances: coign.total_instances(),
    }
}

fn savings(o: &Outcome) -> f64 {
    if o.default_comm_us == 0 {
        return 0.0;
    }
    (o.default_comm_us.saturating_sub(o.coign_comm_us)) as f64 / o.default_comm_us as f64
}

/// Figure 5: for a 35-page text document, exactly two components move to
/// the server — the document reader and the text-properties provider.
#[test]
fn figure5_two_components_on_server() {
    let o = run("octarine", "o_fig5");
    let total: usize = o.server_classes.values().sum();
    assert_eq!(total, 2, "server classes: {:?}", o.server_classes);
    assert!(o.server_classes.contains_key("OctDocReader"));
    assert!(o.server_classes.contains_key("OctTextProps"));
    assert!(o.total_instances > 300, "Octarine is component-mad");
}

/// Figure 7: a 5-page table document moves only the reader.
#[test]
fn figure7_single_component_on_server() {
    let o = run("octarine", "o_oldtb0");
    let total: usize = o.server_classes.values().sum();
    assert_eq!(total, 1, "server classes: {:?}", o.server_classes);
    assert!(o.server_classes.contains_key("OctDocReader"));
}

/// Figure 8: embedded tables flip the distribution — the page-placement
/// negotiation cluster (table models, columns, cell sets, paragraph
/// layouts) moves to the server, hundreds of components in all.
#[test]
fn figure8_negotiation_cluster_moves() {
    let o = run("octarine", "o_oldbth");
    let total: usize = o.server_classes.values().sum();
    assert!(
        (100..600).contains(&total),
        "expected a large negotiation cluster, got {total}: {:?}",
        o.server_classes
    );
    for class in [
        "OctTableModel",
        "OctTableColumn",
        "OctCellSet",
        "OctParaLayout",
    ] {
        assert!(o.server_classes.contains_key(class), "missing {class}");
    }
    // The fraction mirrors the paper's 281/786.
    let fraction = total as f64 / o.total_instances as f64;
    assert!((0.15..0.60).contains(&fraction), "fraction {fraction}");
}

/// Figure 4: PhotoDraw moves exactly the reader plus seven property sets.
#[test]
fn figure4_photodraw_eight_components() {
    let o = run("photodraw", "p_oldmsr");
    let total: usize = o.server_classes.values().sum();
    assert_eq!(total, 8, "server classes: {:?}", o.server_classes);
    assert_eq!(o.server_classes.get("PdPropSet"), Some(&7));
    assert_eq!(o.server_classes.get("PdReader"), Some(&1));
}

/// Figure 6: Benefits — the result caches move to the client; the business
/// logic and the database boundary stay on the middle tier.
#[test]
fn figure6_caches_move_to_client() {
    let o = run("benefits", "b_bigone");
    assert!(!o.server_classes.contains_key("BenResultCache"));
    assert!(o.server_classes.contains_key("BenRecord"));
    let s = savings(&o);
    assert!((0.15..0.50).contains(&s), "savings {s}");
}

/// Table 4's crossover: small text documents stay whole (0 % savings);
/// large ones split and save the vast majority of communication time.
#[test]
fn table4_document_size_crossover() {
    let small = run("octarine", "o_oldwp0");
    assert_eq!(
        small.default_comm_us, small.coign_comm_us,
        "5-page document: Coign must keep the default distribution"
    );
    let medium = run("octarine", "o_oldwp3");
    assert_eq!(medium.default_comm_us, medium.coign_comm_us);
    let large = run("octarine", "o_oldwp7");
    assert!(
        savings(&large) > 0.80,
        "208-page document should save most communication, got {}",
        savings(&large)
    );
}

/// Table 4: the 150-page table saves ~99 %, the 5-page table ~1 %.
#[test]
fn table4_table_documents() {
    let small = run("octarine", "o_oldtb0");
    let s_small = savings(&small);
    assert!((0.0..0.10).contains(&s_small), "tb0 savings {s_small}");
    let large = run("octarine", "o_oldtb3");
    assert!(savings(&large) > 0.90, "tb3 savings {}", savings(&large));
}

/// Coign never chooses a worse distribution than the default (Table 4).
#[test]
fn coign_never_worse_across_suite() {
    for (app, scenario) in [
        ("octarine", "o_newdoc"),
        ("octarine", "o_newmus"),
        ("octarine", "o_newtbl"),
        ("photodraw", "p_newdoc"),
        ("benefits", "b_delone"),
    ] {
        let o = run(app, scenario);
        assert!(
            o.coign_comm_us as f64 <= o.default_comm_us as f64 * 1.07 + 1000.0,
            "{scenario}: {} > {}",
            o.coign_comm_us,
            o.default_comm_us
        );
    }
}

/// §4.1: the applications have the advertised component populations.
#[test]
fn applications_have_paper_scale_populations() {
    let count_classes = |app: &dyn coign::application::Application| {
        let rt = ComRuntime::single_machine();
        app.register(&rt);
        rt.registry().len()
    };
    // "between a dozen and 150 component classes"
    assert!(count_classes(&Octarine) >= 40, "octarine classes");
    assert!(count_classes(&PhotoDraw) >= 15, "photodraw classes");
    assert!(
        count_classes(&Benefits::default()) >= 12,
        "benefits classes"
    );

    // PhotoDraw's sprite population: 1 + 3 + 9 + 27.
    let rt = ComRuntime::single_machine();
    use coign::application::Application;
    PhotoDraw.register(&rt);
    PhotoDraw.run_scenario(&rt, "p_oldmsr").unwrap();
    let sprites = rt
        .instances_snapshot()
        .iter()
        .filter(|i| i.clsid == Clsid::from_name("PdSpriteCache"))
        .count();
    assert_eq!(sprites, 40);
}
