//! Table 5 integration: Coign's model of application communication and
//! execution time predicts measured times closely (the paper: no scenario
//! erred by more than 8 %).

use coign::classifier::{ClassifierKind, InstanceClassifier};
use coign::predict::{predict_comm_us, predict_execution_us};
use coign::runtime::{choose_distribution, profile_scenario, run_distributed};
use coign_apps::scenarios::app_by_name;
use coign_dcom::{NetworkModel, NetworkProfile};
use std::sync::Arc;

fn prediction_error(app_name: &str, scenario: &str) -> f64 {
    let app = app_by_name(app_name).unwrap();
    let classifier = Arc::new(InstanceClassifier::new(ClassifierKind::Ifcb));
    let run = profile_scenario(app.as_ref(), scenario, &classifier).unwrap();
    let network = NetworkProfile::measure(&NetworkModel::ethernet_10baset(), 30, 17);
    let dist = choose_distribution(app.as_ref(), &run.profile, &network).unwrap();
    let predicted = predict_execution_us(
        run.report.stats.compute_us,
        run.report.stats.calls,
        &run.profile,
        &dist,
        &network,
    );
    let measured = run_distributed(
        app.as_ref(),
        scenario,
        &classifier,
        &dist,
        NetworkModel::ethernet_10baset(),
        23,
    )
    .unwrap()
    .clock_us as f64;
    ((measured - predicted) / measured).abs()
}

/// Every tested scenario predicts within 10 % (paper: within 8 %).
#[test]
fn predictions_are_accurate() {
    for (app, scenario) in [
        ("octarine", "o_oldwp0"),
        ("octarine", "o_oldtb0"),
        ("octarine", "o_oldbth"),
        ("photodraw", "p_oldcur"),
        ("benefits", "b_vueone"),
    ] {
        let err = prediction_error(app, scenario);
        assert!(
            err < 0.10,
            "{scenario}: prediction error {:.1}%",
            err * 100.0
        );
    }
}

/// The predicted communication of the chosen cut matches the analysis
/// engine's own estimate (two independent code paths over the same model).
#[test]
fn cut_value_matches_prediction_model() {
    let app = app_by_name("octarine").unwrap();
    let classifier = Arc::new(InstanceClassifier::new(ClassifierKind::Ifcb));
    let run = profile_scenario(app.as_ref(), "o_oldtb3", &classifier).unwrap();
    let network = NetworkProfile::exact(&NetworkModel::ethernet_10baset());
    let dist = choose_distribution(app.as_ref(), &run.profile, &network).unwrap();
    let independent = predict_comm_us(&run.profile, &dist, &network);
    let rel = (independent - dist.predicted_comm_us).abs() / dist.predicted_comm_us.max(1.0);
    assert!(
        rel < 1e-6,
        "analysis said {} us, prediction model said {independent} us",
        dist.predicted_comm_us
    );
}

/// Prediction degrades gracefully, not catastrophically, when the profile
/// comes from a *different* scenario (cross-scenario robustness).
#[test]
fn cross_scenario_prediction_is_sane() {
    let app = app_by_name("octarine").unwrap();
    let classifier = Arc::new(InstanceClassifier::new(ClassifierKind::Ifcb));
    // Profile the 5-page document...
    let run = profile_scenario(app.as_ref(), "o_oldwp0", &classifier).unwrap();
    let network = NetworkProfile::exact(&NetworkModel::ethernet_10baset());
    let dist = choose_distribution(app.as_ref(), &run.profile, &network).unwrap();
    // ...but execute the 13-page one under that distribution.
    let report = run_distributed(
        app.as_ref(),
        "o_oldwp3",
        &classifier,
        &dist,
        NetworkModel::ethernet_10baset(),
        31,
    )
    .unwrap();
    // The run completes correctly (classifications generalize): same
    // instance population as a native 13-page profile run.
    let native = profile_scenario(
        app.as_ref(),
        "o_oldwp3",
        &Arc::new(InstanceClassifier::new(ClassifierKind::Ifcb)),
    )
    .unwrap();
    assert_eq!(report.total_instances(), native.report.total_instances());
}
