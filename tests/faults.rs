//! Deterministic fault-scenario harness.
//!
//! The fault layer is only useful if its schedules are exactly
//! reproducible: the simulated clock and the seeded fault RNG make every
//! drop, timeout, and fallback a pure function of `(jitter seed, fault
//! seed, fault plan)`. These tests pin the three acceptance behaviors:
//!
//! 1. same fault seed ⇒ byte-identical run report, twice in a row;
//! 2. a machine-death scenario completes via local fallback, with the
//!    fallback recorded in the report;
//! 3. a zero-fault plan produces a report identical to a run without the
//!    fault layer at all.

use coign::classifier::{ClassifierKind, InstanceClassifier};
use coign::runtime::{
    choose_distribution, profile_scenario, run_distributed, run_distributed_faulty,
};
use coign::Distribution;
use coign_apps::scenarios::app_by_name;
use coign_com::{ComError, MachineId};
use coign_dcom::{CallPolicy, FaultPlan, NetworkModel, NetworkProfile, TimeWindow};
use std::sync::Arc;

const SEED: u64 = 7;

/// Profiles one octarine scenario and chooses its ethernet distribution.
fn prepared_octarine(
    scenario: &str,
) -> (
    Arc<dyn coign::Application>,
    Arc<InstanceClassifier>,
    Distribution,
) {
    let app = app_by_name("octarine").unwrap();
    let classifier = Arc::new(InstanceClassifier::new(ClassifierKind::Ifcb));
    let run = profile_scenario(app.as_ref(), scenario, &classifier).unwrap();
    let network = NetworkProfile::measure(&NetworkModel::ethernet_10baset(), 20, 99);
    let dist = choose_distribution(app.as_ref(), &run.profile, &network).unwrap();
    (app, classifier, dist)
}

/// A jitter-free policy so retry timings are exactly predictable.
fn strict_policy() -> CallPolicy {
    CallPolicy {
        timeout_us: 10_000,
        max_retries: 3,
        backoff_base_us: 10_000,
        backoff_multiplier: 2.0,
        backoff_jitter: 0.0,
    }
}

#[test]
fn same_fault_seed_reproduces_the_report_byte_for_byte() {
    let (app, classifier, dist) = prepared_octarine("o_oldtb3");
    let plan = FaultPlan::none().with_loss(0.05);
    let run = |fault_seed| {
        run_distributed_faulty(
            app.as_ref(),
            "o_oldtb3",
            &classifier,
            &dist,
            NetworkModel::ethernet_10baset(),
            SEED,
            plan.clone(),
            CallPolicy::default(),
            fault_seed,
        )
        .unwrap()
    };
    let first = run(11);
    let second = run(11);
    assert_eq!(first, second, "same fault seed must reproduce the report");
    assert_eq!(
        first.summary(),
        second.summary(),
        "rendered summaries must be byte-identical"
    );
    // The plan actually perturbed the wire (the test would be vacuous
    // otherwise) ...
    assert!(first.faults.retries > 0, "lossy wire should force retries");
    // ... and a different fault seed schedules different faults.
    let other = run(12);
    assert_ne!(first.faults, other.faults);
}

#[test]
fn machine_death_completes_via_recorded_local_fallback() {
    let (app, classifier, dist) = prepared_octarine("o_oldtb3");
    // The server never comes up at all.
    let plan = FaultPlan::none().with_machine_down(MachineId::SERVER, TimeWindow::ALWAYS);
    let report = run_distributed_faulty(
        app.as_ref(),
        "o_oldtb3",
        &classifier,
        &dist,
        NetworkModel::ethernet_10baset(),
        SEED,
        plan,
        strict_policy(),
        1,
    )
    .expect("scenario completes despite the dead server");
    // Every server-bound instantiation degraded to the client...
    assert!(report.faults.fallbacks > 0, "fallbacks must be recorded");
    assert!(report
        .instance_placements
        .iter()
        .all(|&(_, machine)| machine == MachineId::CLIENT));
    // ...so nothing ever crossed the wire.
    assert_eq!(report.stats.cross_machine_calls, 0);
    assert_eq!(report.stats.messages, 0);
    // The counters agree with the summary rendering CI diffs against.
    assert!(report
        .summary()
        .contains(&format!("fault_fallbacks={}", report.faults.fallbacks)));
}

#[test]
fn zero_fault_plan_is_identical_to_no_fault_layer() {
    let (app, classifier, dist) = prepared_octarine("o_oldtb3");
    let plain = run_distributed(
        app.as_ref(),
        "o_oldtb3",
        &classifier,
        &dist,
        NetworkModel::ethernet_10baset(),
        SEED,
    )
    .unwrap();
    let faultless = run_distributed_faulty(
        app.as_ref(),
        "o_oldtb3",
        &classifier,
        &dist,
        NetworkModel::ethernet_10baset(),
        SEED,
        FaultPlan::none(),
        CallPolicy::default(),
        // The fault seed must be irrelevant when no faults are scheduled.
        0xDEAD_BEEF,
    )
    .unwrap();
    assert_eq!(plain, faultless);
    assert!(faultless.faults.is_clean());
    assert_eq!(plain.summary(), faultless.summary());
}

#[test]
fn healed_partition_retries_then_succeeds_with_exact_timing() {
    let (app, classifier, dist) = prepared_octarine("o_oldtb3");
    // The link is severed for the first 30 ms of the run. With a 10 ms
    // timeout and 10 ms base backoff, the first cross-machine call probes
    // at t, t+20ms, t+40ms — the third probe lands after the partition
    // heals, so the run completes with exactly 2 recorded retries... per
    // blocked call; later calls happen after healing and are clean.
    let plan = FaultPlan::none().with_partition(
        MachineId::CLIENT,
        MachineId::SERVER,
        TimeWindow::new(0, 30_000),
    );
    let report = run_distributed_faulty(
        app.as_ref(),
        "o_oldtb3",
        &classifier,
        &dist,
        NetworkModel::ethernet_10baset(),
        SEED,
        plan,
        strict_policy(),
        1,
    )
    .expect("partition heals inside the retry budget");
    assert!(report.faults.timeouts > 0);
    assert!(report.faults.retries > 0);
    assert_eq!(report.faults.failed_calls, 0);
    assert_eq!(report.faults.fallbacks, 0);
    // Timeouts and backoff waits burned wall-clock but were not charged
    // as communication: every timeout and retry contributed its wait.
    assert!(
        report.faults.wasted_us >= report.faults.timeouts * 10_000 + report.faults.retries * 10_000
    );
    assert!(report.clock_us > report.stats.comm_us + report.stats.compute_us);
}

#[test]
fn unhealed_partition_surfaces_a_typed_error() {
    let (app, classifier, dist) = prepared_octarine("o_oldtb3");
    let plan =
        FaultPlan::none().with_partition(MachineId::CLIENT, MachineId::SERVER, TimeWindow::ALWAYS);
    let err = run_distributed_faulty(
        app.as_ref(),
        "o_oldtb3",
        &classifier,
        &dist,
        NetworkModel::ethernet_10baset(),
        SEED,
        plan,
        strict_policy(),
        1,
    )
    .expect_err("an unhealed partition must fail the scenario");
    assert!(
        matches!(err, ComError::Partitioned { .. }),
        "expected Partitioned, got {err:?}"
    );
}

#[test]
fn latency_spike_slows_the_run_without_changing_traffic() {
    let (app, classifier, dist) = prepared_octarine("o_oldtb3");
    let run = |plan: FaultPlan| {
        run_distributed_faulty(
            app.as_ref(),
            "o_oldtb3",
            &classifier,
            &dist,
            NetworkModel::ethernet_10baset(),
            SEED,
            plan,
            CallPolicy::default(),
            1,
        )
        .unwrap()
    };
    // Compare a 1× "spike" (fault path active, wire unchanged) against a
    // genuine 10× congestion episode covering the whole run.
    let calm = run(FaultPlan::none().with_spike(1.0, TimeWindow::ALWAYS));
    let spiked = run(FaultPlan::none().with_spike(10.0, TimeWindow::ALWAYS));
    assert_eq!(calm.stats.messages, spiked.stats.messages);
    assert_eq!(calm.stats.bytes, spiked.stats.bytes);
    assert!(
        spiked.stats.comm_us > calm.stats.comm_us * 9,
        "10× spike: {} vs {}",
        spiked.stats.comm_us,
        calm.stats.comm_us
    );
}

#[test]
fn parsed_plan_behaves_like_the_built_plan() {
    let (app, classifier, dist) = prepared_octarine("o_oldtb3");
    let built = FaultPlan::none().with_machine_down(MachineId::SERVER, TimeWindow::from(0));
    let parsed = FaultPlan::parse("down 1 0..\n").unwrap();
    let run = |plan: FaultPlan| {
        run_distributed_faulty(
            app.as_ref(),
            "o_oldtb3",
            &classifier,
            &dist,
            NetworkModel::ethernet_10baset(),
            SEED,
            plan,
            CallPolicy::default(),
            1,
        )
        .unwrap()
    };
    assert_eq!(run(built), run(parsed));
}
