//! The binary-rewriting workflow across executions: instrument, profile
//! (accumulating into the configuration record), analyze, realize, and
//! reload — with classifications stable across "process restarts"
//! (classifier serialization round trips).

use coign::classifier::{ClassifierKind, InstanceClassifier};
use coign::config::RuntimeMode;
use coign::rewriter;
use coign::runtime::{choose_distribution, profile_scenario, run_distributed};
use coign_apps::Octarine;
use coign_com::AppImage;
use coign_dcom::{NetworkModel, NetworkProfile};
use std::sync::Arc;

use coign::application::Application;

/// The full Figure 1 loop, with the image serialized to bytes between every
/// stage (as if each stage were a separate tool run against the file).
#[test]
fn full_rewrite_cycle_through_bytes() {
    let app = Octarine;
    let classifier = Arc::new(InstanceClassifier::new(ClassifierKind::Ifcb));

    // Stage 1: instrument.
    let mut image = app.image();
    rewriter::instrument(&mut image, &classifier);
    let bytes = image.encode();

    // Stage 2: profile two scenarios, accumulating into the record.
    let mut image = AppImage::decode(&bytes).unwrap();
    for scenario in ["o_newdoc", "o_oldwp0"] {
        let run = profile_scenario(&app, scenario, &classifier).unwrap();
        rewriter::accumulate_profile(&mut image, &run.profile).unwrap();
    }
    let bytes = image.encode();

    // Stage 3: analyze and realize.
    let mut image = AppImage::decode(&bytes).unwrap();
    let record = rewriter::read_config(&image).unwrap();
    assert_eq!(record.profile.scenarios.len(), 2);
    let network = NetworkProfile::exact(&NetworkModel::ethernet_10baset());
    let dist = choose_distribution(&app, &record.profile, &network).unwrap();
    rewriter::realize(&mut image, &classifier, &dist).unwrap();
    let bytes = image.encode();

    // Stage 4: "load" the realized binary and run distributed with a
    // classifier restored from the configuration record.
    let image = AppImage::decode(&bytes).unwrap();
    assert_eq!(image.imports[0].name, rewriter::COIGN_LITE_DLL);
    let record = rewriter::read_config(&image).unwrap();
    assert_eq!(record.mode, RuntimeMode::Distributed);
    let restored = Arc::new(InstanceClassifier::decode(&record.classifier).unwrap());
    let dist = record.distribution.expect("distribution present");
    let report = run_distributed(
        &app,
        "o_oldwp0",
        &restored,
        &dist,
        NetworkModel::ethernet_10baset(),
        3,
    )
    .unwrap();
    assert!(report.total_instances() > 100);
}

/// Classifications restored from a configuration record map the same
/// instantiation contexts to the same ids (the property the factory
/// depends on to honor profiled placements in later executions).
#[test]
fn classifications_are_stable_across_serialization() {
    let app = Octarine;
    let classifier = Arc::new(InstanceClassifier::new(ClassifierKind::Ifcb));
    let first = profile_scenario(&app, "o_oldtb0", &classifier).unwrap();
    let count_before = classifier.classification_count();

    let restored = Arc::new(InstanceClassifier::decode(&classifier.encode()).unwrap());
    let second = profile_scenario(&app, "o_oldtb0", &restored).unwrap();

    // No new classifications: the restored table recognizes every context.
    assert_eq!(restored.classification_count(), count_before);
    // And the instance→classification mapping is identical run to run.
    assert_eq!(first.instance_classes, second.instance_classes);
}

/// Stripping restores the original binary exactly.
#[test]
fn strip_restores_pristine_image() {
    let app = Octarine;
    let pristine = app.image();
    let classifier = InstanceClassifier::new(ClassifierKind::Ifcb);
    let mut image = app.image();
    rewriter::instrument(&mut image, &classifier);
    assert_ne!(image, pristine);
    rewriter::strip(&mut image);
    assert_eq!(image, pristine);
}
