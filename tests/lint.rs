//! Integration tests for the `coign check` static analysis pass and its
//! coupling to the analysis pipeline: contradictory constraint sets fail
//! fast (min-cut is never invoked) with the same diagnostics `coign check`
//! reports, and statically-derived non-remotable facts drive the same
//! colocation decisions as the dynamic profiling path.

use coign::application::Application;
use coign::classifier::{ClassificationId, ClassifierKind, InstanceClassifier};
use coign::constraints::NamedConstraint;
use coign::profile::IccProfile;
use coign::runtime::{check_constraints, choose_distribution, derive_constraints};
use coign::{analyze, lint, rewriter};
use coign_com::idl::InterfaceBuilder;
use coign_com::registry::ApiImports;
use coign_com::{
    AppImage, CallCtx, Clsid, ComError, ComObject, ComResult, ComRuntime, Iid, MachineId, Message,
    PType,
};
use coign_dcom::{NetworkModel, NetworkProfile};
use coign_flow::{min_cut_invocations, MaxFlowAlgorithm};
use std::sync::Arc;

struct Nop;
impl ComObject for Nop {
    fn invoke(
        &self,
        _ctx: &CallCtx<'_>,
        _iid: Iid,
        _method: u32,
        _msg: &mut Message,
    ) -> ComResult<()> {
        Ok(())
    }
}

fn network() -> NetworkProfile {
    NetworkProfile::exact(&NetworkModel::ethernet_10baset())
}

fn c(n: u32) -> ClassificationId {
    ClassificationId(n)
}

/// Two plain classes whose programmer constraints contradict: Alpha and
/// Beta are bound together, yet pinned to opposite machines.
struct ConflictedApp;

impl Application for ConflictedApp {
    fn name(&self) -> &str {
        "conflicted"
    }
    fn register(&self, rt: &ComRuntime) {
        rt.registry()
            .register("Alpha", vec![], ApiImports::NONE, |_, _| Arc::new(Nop));
        rt.registry()
            .register("Beta", vec![], ApiImports::NONE, |_, _| Arc::new(Nop));
    }
    fn scenarios(&self) -> Vec<&'static str> {
        vec![]
    }
    fn run_scenario(&self, _rt: &ComRuntime, _scenario: &str) -> ComResult<()> {
        Ok(())
    }
    fn image(&self) -> AppImage {
        AppImage::new(
            "conflicted.exe",
            vec![Clsid::from_name("Alpha"), Clsid::from_name("Beta")],
        )
    }
    fn explicit_constraints(&self) -> Vec<NamedConstraint> {
        vec![
            NamedConstraint::Pairwise("Alpha".into(), "Beta".into()),
            NamedConstraint::Absolute("Alpha".into(), MachineId::CLIENT),
            NamedConstraint::Absolute("Beta".into(), MachineId::SERVER),
        ]
    }
}

fn conflicted_profile() -> IccProfile {
    let mut p = IccProfile::new();
    p.record_instance(c(1), Clsid::from_name("Alpha"));
    p.record_instance(c(2), Clsid::from_name("Beta"));
    for _ in 0..10 {
        p.record_message(c(1), c(2), Iid::from_name("IPlain"), 0, 1_000);
    }
    p
}

#[test]
fn contradictory_constraints_fail_fast_without_min_cut() {
    let app = ConflictedApp;
    let profile = conflicted_profile();
    // The invocation counter is thread-local, so concurrent tests cannot
    // disturb this count: any increment would come from *this* call chain.
    let before = min_cut_invocations();
    let err = choose_distribution(&app, &profile, &network()).unwrap_err();
    assert_eq!(
        min_cut_invocations(),
        before,
        "min-cut must never run on an unsatisfiable constraint set"
    );
    let ComError::App(detail) = err else {
        panic!("expected an application error, got {err:?}");
    };
    assert!(detail.contains("COIGN020"), "{detail}");
    assert!(detail.contains("Alpha (c:1)"), "{detail}");
    assert!(detail.contains("Beta (c:2)"), "{detail}");
}

#[test]
fn analyze_itself_rejects_contradictions_before_cutting() {
    // Even calling the analysis engine directly (bypassing the pipeline's
    // own guard) never reaches the solver.
    let app = ConflictedApp;
    let profile = conflicted_profile();
    let constraints = derive_constraints(&app, &profile);
    let before = min_cut_invocations();
    let err = analyze(
        &profile,
        &network(),
        &constraints,
        MaxFlowAlgorithm::LiftToFront,
    )
    .unwrap_err();
    assert_eq!(min_cut_invocations(), before);
    assert!(matches!(err, ComError::App(_)));
}

#[test]
fn check_and_pipeline_report_identical_diagnostics() {
    let app = ConflictedApp;
    let profile = conflicted_profile();

    // `coign check` side: instrument the image and accumulate the same
    // profile into its configuration record.
    let mut image = app.image();
    rewriter::instrument(&mut image, &InstanceClassifier::new(ClassifierKind::Ifcb));
    rewriter::accumulate_profile(&mut image, &profile).unwrap();
    let sink = lint::check_app_image(&image, &app);
    assert!(sink.has_errors());
    let conflicts: Vec<&lint::Diagnostic> = sink
        .diagnostics()
        .iter()
        .filter(|d| d.code == "COIGN020")
        .collect();
    assert_eq!(conflicts.len(), 1);

    // Pipeline side: the same constraint set fails `cmd_analyze`'s guard.
    let ComError::App(detail) = check_constraints(&app, &profile).unwrap_err() else {
        panic!("expected an application error");
    };
    for diagnostic in conflicts {
        assert!(
            detail.contains(&diagnostic.render()),
            "pipeline error must embed the identical rendered diagnostic\n\
             diagnostic: {}\npipeline error: {detail}",
            diagnostic.render()
        );
    }
}

/// GUI shell + worker + storage backend. The worker hammers storage, so an
/// unconstrained cut sends it to the server — unless its link to the shell
/// is non-remotable, which forces it back to the client.
struct SharedMemoryApp;

const SHELL: u32 = 1;
const WORKER: u32 = 2;
const STORE: u32 = 3;

impl Application for SharedMemoryApp {
    fn name(&self) -> &str {
        "sharedmem"
    }
    fn register(&self, rt: &ComRuntime) {
        let ishared = InterfaceBuilder::new("ISharedBuffer")
            .method("Map", |m| m.input("region", PType::Opaque))
            .build();
        assert!(!ishared.remotable);
        let iwork = InterfaceBuilder::new("IWork")
            .method("Fetch", |m| m.output("data", PType::Blob))
            .build();
        rt.registry()
            .register("Shell", vec![], ApiImports::GUI, |_, _| Arc::new(Nop));
        rt.registry()
            .register("Worker", vec![ishared, iwork], ApiImports::NONE, |_, _| {
                Arc::new(Nop)
            });
        rt.registry()
            .register("Store", vec![], ApiImports::STORAGE, |_, _| Arc::new(Nop));
    }
    fn scenarios(&self) -> Vec<&'static str> {
        vec![]
    }
    fn run_scenario(&self, _rt: &ComRuntime, _scenario: &str) -> ComResult<()> {
        Ok(())
    }
    fn image(&self) -> AppImage {
        AppImage::new("sharedmem.exe", vec![Clsid::from_name("Shell")])
    }
}

/// The traffic both profiles share: light shell↔worker chatter on a
/// remotable interface, heavy worker↔store transfers.
fn base_profile() -> IccProfile {
    let iwork = Iid::from_name("IWork");
    let mut p = IccProfile::new();
    p.record_instance(c(SHELL), Clsid::from_name("Shell"));
    p.record_instance(c(WORKER), Clsid::from_name("Worker"));
    p.record_instance(c(STORE), Clsid::from_name("Store"));
    p.record_message(c(SHELL), c(WORKER), iwork, 0, 500);
    for _ in 0..200 {
        p.record_message(c(WORKER), c(STORE), iwork, 0, 60_000);
    }
    p
}

#[test]
fn static_and_dynamic_non_remotable_paths_agree() {
    let app = SharedMemoryApp;

    // Baseline: without any shell↔worker binding, the storage-hammering
    // worker follows the store to the server.
    let baseline = choose_distribution(&app, &base_profile(), &network()).unwrap();
    assert_eq!(baseline.machine_of(c(WORKER)), MachineId::SERVER);

    // Dynamic path: the profiling informer observed the non-remotable call
    // and recorded the colocation fact (no traffic edge — non-remotable
    // calls are logged as constraints, not communication).
    let mut dynamic_profile = base_profile();
    dynamic_profile.record_non_remotable(c(SHELL), c(WORKER));
    let dynamic = choose_distribution(&app, &dynamic_profile, &network()).unwrap();

    // Static path: the informer never ran, but the profile carries traffic
    // on ISharedBuffer, whose metadata alone proves it non-remotable.
    let mut static_profile = base_profile();
    static_profile.record_message(c(SHELL), c(WORKER), Iid::from_name("ISharedBuffer"), 0, 64);
    assert!(static_profile.non_remotable.is_empty());
    let constraints = derive_constraints(&app, &static_profile);
    assert!(
        constraints
            .iter()
            .any(|ct| *ct == coign::constraints::Constraint::Colocate(c(SHELL), c(WORKER))),
        "static metadata must yield the colocation constraint: {constraints:?}"
    );
    let statically = choose_distribution(&app, &static_profile, &network()).unwrap();

    // Both paths force the worker to stay with the GUI shell on the
    // client — the same decision, from metadata alone vs. observation.
    for class in [SHELL, WORKER, STORE] {
        assert_eq!(
            statically.machine_of(c(class)),
            dynamic.machine_of(c(class)),
            "placement of c:{class} differs between static and dynamic paths"
        );
    }
    assert_eq!(statically.machine_of(c(WORKER)), MachineId::CLIENT);
    assert_eq!(statically.machine_of(c(STORE)), MachineId::SERVER);
}

#[test]
fn check_reports_all_three_stage_families_without_profiling() {
    // A freshly instrumented image — zero scenarios profiled — still gets
    // a full report: remotability facts from interface metadata, a
    // satisfiable constraint verdict, and image lints.
    let app = SharedMemoryApp;
    let mut image = app.image();
    rewriter::instrument(&mut image, &InstanceClassifier::new(ClassifierKind::Ifcb));
    let sink = lint::check_app_image(&image, &app);
    // Stage 1 fires on ISharedBuffer's opaque parameter.
    assert!(sink.diagnostics().iter().any(|d| d.code == "COIGN010"));
    assert!(sink.diagnostics().iter().any(|d| d.code == "COIGN012"));
    // Stages 2 and 3 pass: no errors at all, so `coign check` exits 0.
    assert!(!sink.has_errors(), "{}", sink.render_human());
    // And the machine-readable form carries the same verdict.
    assert!(sink.render_json().starts_with("{\"errors\":0,"));
}
