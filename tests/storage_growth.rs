//! The §2 storage claim: "After quantifying communication (by number and
//! size of messages), Coign compresses and summarizes the data online.
//! Consequently, the overhead for storing communication information does
//! not grow linearly with execution time. If desired, the application may
//! be run through profiling scenarios for days or even weeks."
//!
//! We compare the *summarized* profile (what the profiling logger keeps)
//! against the *raw* event trace (what the event logger keeps) as scenario
//! length scales 40×: the trace grows linearly, the summary barely at all.

use coign::classifier::{ClassifierKind, InstanceClassifier};
use coign::logger::{EventLogger, ProfilingLogger};
use coign::replay::{profile_from_events, TeeLogger};
use coign::rte::CoignRte;
use coign_apps::Octarine;
use coign_com::ComRuntime;
use std::sync::Arc;

use coign::application::Application;

/// Runs one scenario with both loggers attached, returning
/// `(summary_bytes, event_count, traffic_bytes)`.
fn run(scenario: &str) -> (usize, usize, u64) {
    let app = Octarine;
    let rt = ComRuntime::single_machine();
    app.register(&rt);
    let classifier = Arc::new(InstanceClassifier::new(ClassifierKind::Ifcb));
    let profiling = Arc::new(ProfilingLogger::new());
    let events = Arc::new(EventLogger::new());
    let tee = Arc::new(TeeLogger::new(vec![profiling.clone(), events.clone()]));
    rt.add_hook(Arc::new(CoignRte::profiling(classifier, tee)));
    app.run_scenario(&rt, scenario).unwrap();
    let profile = profiling.snapshot_profile();
    (profile.encode().len(), events.len(), profile.total_bytes())
}

/// The summary stays near-constant while the raw trace scales with the
/// document (and with it, execution length).
#[test]
fn summarization_bounds_profile_storage() {
    let (small_bytes, small_events, small_traffic) = run("o_oldwp0"); // 5 pages
    let (large_bytes, large_events, large_traffic) = run("o_oldwp7"); // 208 pages

    // The workload really did grow: 40x the document pulls several times
    // the bytes through the interfaces.
    assert!(
        large_traffic as f64 > small_traffic as f64 * 3.0,
        "traffic: {small_traffic} -> {large_traffic}"
    );
    // The raw trace grows too (page reads, stubs)...
    assert!(
        large_events > small_events,
        "events: {small_events} -> {large_events}"
    );
    // ...but the summarized profile barely grows: repeated same-shaped
    // messages collapse into existing (classification, interface, method,
    // bucket) entries whose counters just increment.
    let summary_growth = large_bytes as f64 / small_bytes as f64;
    assert!(
        summary_growth < 1.5,
        "summary grew {summary_growth:.2}x ({small_bytes} -> {large_bytes} bytes)"
    );
    // And stays compact in absolute terms.
    assert!(
        large_bytes < 64 * 1024,
        "summary should stay a few tens of KB, got {large_bytes}"
    );
}

/// Repeating a scenario N times multiplies the trace but leaves the
/// summary's *size* unchanged (only counters grow) — the property that lets
/// profiling run "for days or even weeks".
#[test]
fn repeated_scenarios_do_not_grow_the_summary() {
    let app = Octarine;
    let rt = ComRuntime::single_machine();
    app.register(&rt);
    let classifier = Arc::new(InstanceClassifier::new(ClassifierKind::Ifcb));
    let profiling = Arc::new(ProfilingLogger::new());
    let events = Arc::new(EventLogger::new());
    let tee = Arc::new(TeeLogger::new(vec![profiling.clone(), events.clone()]));
    rt.add_hook(Arc::new(CoignRte::profiling(classifier, tee)));

    app.run_scenario(&rt, "o_newdoc").unwrap();
    let after_one = profiling.snapshot_profile().encode().len();
    let events_one = events.len();
    for _ in 0..4 {
        app.run_scenario(&rt, "o_newdoc").unwrap();
    }
    let after_five = profiling.snapshot_profile().encode().len();
    let events_five = events.len();

    assert!(events_five >= events_one * 4, "the trace grows linearly");
    // The summary may add a few entries (idle transients accumulate state),
    // but nothing like 5x.
    assert!(
        (after_five as f64) < after_one as f64 * 2.0,
        "summary {after_one} -> {after_five}"
    );
}

/// The trace is not wasted space: it reconstructs the exact summary — the
/// §3.3 "drive detailed application simulations" consumer.
#[test]
fn trace_reconstructs_summary_for_real_scenarios() {
    let app = Octarine;
    let rt = ComRuntime::single_machine();
    app.register(&rt);
    let classifier = Arc::new(InstanceClassifier::new(ClassifierKind::Ifcb));
    let profiling = Arc::new(ProfilingLogger::new());
    let events = Arc::new(EventLogger::new());
    let tee = Arc::new(TeeLogger::new(vec![profiling.clone(), events.clone()]));
    rt.add_hook(Arc::new(CoignRte::profiling(classifier, tee)));
    app.run_scenario(&rt, "o_oldbth").unwrap();

    let online = profiling.snapshot_profile();
    let offline = profile_from_events(&events.take_events());
    assert_eq!(online, offline);
}
