//! Chaos-over-generated: the self-healing runtime's invariants must hold
//! on *synthetic* applications, not just the three hand-built ones. Five
//! generated seeds (cycling the size classes) each run the full pipeline —
//! profile → choose distribution → machine-death at mid-horizon under the
//! recovery coordinator — and every run is checked against the same
//! invariants the chaos harness enforces:
//!
//! 1. the outcome is `Ok` or a *typed* transport error, never an untyped
//!    crash;
//! 2. no call executes twice (`double_executions == 0`);
//! 3. the post-recovery placement satisfies every constraint with dead
//!    machines excluded (`validate()`);
//! 4. a recovered run re-solved warm exactly once from the base solve;
//! 5. the exactly-once ledger matches the script: a completed `g_main`
//!    commits its scripted count — no lost and no duplicated commits.

use coign::classifier::{ClassifierKind, InstanceClassifier};
use coign::recovery::RecoveryConfig;
use coign::runtime::{choose_distribution, profile_scenarios, run_distributed_recovering};
use coign::Application;
use coign_com::{ComError, MachineId};
use coign_dcom::{CallPolicy, Fault, FaultPlan, NetworkModel, NetworkProfile, TimeWindow};
use coign_gen::{GenSize, GenSpec, GeneratedApp};
use std::sync::Arc;

const SEED: u64 = 7;

/// Runs one generated seed end to end: healthy probe for the horizon,
/// then a permanent server death at mid-horizon, then the invariants.
fn death_at_mid_horizon(seed: u64, size: GenSize) {
    let spec = GenSpec::new(seed, size);
    let app = GeneratedApp::new(spec);
    let scenarios = app.scenarios();
    let classifier = Arc::new(InstanceClassifier::new(ClassifierKind::Ifcb));
    let profile = profile_scenarios(&app, &scenarios, &classifier).expect("profile");
    let network = NetworkProfile::exact(&NetworkModel::ethernet_10baset());
    let dist = choose_distribution(&app, &profile, &network).expect("distribution");

    let run_with_death_at = |instant_us: u64| {
        // A fresh application per run isolates the ledger counter; a fork
        // of the profiled classifier isolates classification state.
        let fresh = GeneratedApp::new(spec);
        let fork = Arc::new(classifier.fork());
        let mut plan = FaultPlan::none();
        plan.push(Fault::MachineDown {
            machine: MachineId::SERVER,
            window: TimeWindow::new(instant_us, u64::MAX),
        });
        let run = run_distributed_recovering(
            &fresh,
            "g_main",
            &fork,
            &dist,
            &profile,
            NetworkModel::ethernet_10baset(),
            SEED,
            plan,
            CallPolicy::default(),
            seed ^ 0x9E37_79B9_7F4A_7C15,
            RecoveryConfig::default(),
        )
        .expect("recovering run completes");
        (fresh, run)
    };

    // Healthy probe (death scheduled past any reachable clock) fixes the
    // fault-free horizon and the expected ledger count.
    let (healthy_app, healthy) = run_with_death_at(u64::MAX);
    assert!(healthy.outcome.is_ok(), "healthy probe must complete");
    assert_eq!(healthy.coordinator.recovery_count(), 0);
    let expected = healthy_app.expected_commits("g_main");
    assert!(expected > 0, "g_main must script ledger commits");
    assert_eq!(
        healthy_app.ledger_commits(),
        expected,
        "seed {seed}: healthy run must commit exactly the scripted count"
    );
    let horizon = healthy.report.clock_us.max(2);

    let (app, run) = run_with_death_at(horizon / 2);
    let coord = &run.coordinator;
    // Invariant 1: typed outcome.
    match &run.outcome {
        Ok(())
        | Err(ComError::Timeout { .. })
        | Err(ComError::Partitioned { .. })
        | Err(ComError::MachineDown(_)) => {}
        Err(other) => panic!("seed {seed}: untyped failure: {other}"),
    }
    // Invariant 2: exactly-once execution.
    assert_eq!(
        coord.double_executions(),
        0,
        "seed {seed}: double-executed calls"
    );
    // Invariant 3: the post-death placement validates.
    coord
        .validate()
        .unwrap_or_else(|detail| panic!("seed {seed}: placement invalid: {detail}"));
    // Invariant 4: a mid-horizon permanent death must trigger recovery,
    // re-solved warm from the single base solve.
    assert!(
        coord.recovery_count() > 0,
        "seed {seed}: mid-horizon death did not recover"
    );
    assert!(coord.warm_solves() >= 1, "seed {seed}: re-solve not warm");
    assert_eq!(coord.cold_solves(), 1, "seed {seed}: extra cold solves");
    assert!(
        !coord.dead_machines().is_empty(),
        "seed {seed}: dead server not declared"
    );
    // Invariant 5: the ledger. Never over-committed; exact when complete.
    assert!(
        app.ledger_commits() <= expected,
        "seed {seed}: ledger over-committed ({} > {expected})",
        app.ledger_commits()
    );
    if run.outcome.is_ok() {
        assert_eq!(
            app.ledger_commits(),
            expected,
            "seed {seed}: completed run lost ledger commits"
        );
        // No surviving instance may sit on a machine declared dead.
        for (clsid, machine) in &run.report.instance_placements {
            assert!(
                !coord.dead_machines().contains(machine),
                "seed {seed}: {clsid:?} left on dead machine {machine:?}"
            );
        }
    }
}

#[test]
fn generated_seed_1_small_survives_server_death() {
    death_at_mid_horizon(1, GenSize::Small);
}

#[test]
fn generated_seed_5_medium_survives_server_death() {
    death_at_mid_horizon(5, GenSize::Medium);
}

#[test]
fn generated_seed_9_small_survives_server_death() {
    death_at_mid_horizon(9, GenSize::Small);
}

#[test]
fn generated_seed_12_large_survives_server_death() {
    death_at_mid_horizon(12, GenSize::Large);
}

#[test]
fn generated_seed_23_medium_survives_server_death() {
    death_at_mid_horizon(23, GenSize::Medium);
}
