//! The ≥3-machine extension (the paper's future work, §2/§6): partitioning
//! a real application profile across client, middle tier, and database
//! server with the isolation-heuristic multiway cut.

use coign::classifier::{ClassificationId, ClassifierKind, InstanceClassifier};
use coign::icc::IccGraph;
use coign::runtime::profile_scenario;
use coign_apps::Benefits;
use coign_com::Clsid;
use coign_dcom::{NetworkModel, NetworkProfile};
use coign_flow::{multiway_cut, FlowNetwork, MaxFlowAlgorithm, INFINITE};
use std::sync::Arc;

/// Builds a three-terminal cut over the Benefits ICC graph: the root is the
/// client terminal, a GUI form classification anchors the client, the
/// managers anchor the middle tier, and the ODBC driver anchors the
/// database server.
#[test]
fn benefits_partitions_across_three_machines() {
    let app = Benefits::default();
    let classifier = Arc::new(InstanceClassifier::new(ClassifierKind::Ifcb));
    let run = profile_scenario(&app, "b_bigone", &classifier).unwrap();
    let network = NetworkProfile::exact(&NetworkModel::ethernet_10baset());
    let graph = IccGraph::build(&run.profile, &network);

    // Build the flow network with the graph's weights.
    let mut flow = FlowNetwork::new(graph.node_count());
    for ((a, b), weight) in &graph.weights_us {
        flow.add_undirected(*a, *b, IccGraph::capacity_of(*weight));
    }
    for (a, b) in &graph.non_remotable {
        flow.add_undirected(*a, *b, INFINITE);
    }

    // Terminals: the application root (client), one manager classification
    // (middle tier), one ODBC classification (database).
    // Several classifications can share a class (different contexts); pick
    // the smallest id deterministically.
    let class_node = |clsid: Clsid| -> usize {
        let class: ClassificationId = run
            .profile
            .class_of
            .iter()
            .filter(|(_, c)| **c == clsid)
            .map(|(id, _)| *id)
            .min()
            .expect("class present in profile");
        graph.index[&class]
    };
    let client_terminal = graph.index[&ClassificationId::ROOT];
    let middle_terminal = class_node(Clsid::from_name("BenEmployeeManager"));
    let db_terminal = class_node(Clsid::from_name("BenOdbcDriver"));

    // Tier-integrity constraints: every database connection lives in the
    // database server process, and the three manager classes share the
    // middle-tier process — expressed as infinite co-location edges to the
    // tier terminals (the multiway analogue of the two-way pin edges).
    for clsid in [Clsid::from_name("BenOdbcDriver")] {
        for (id, c) in &run.profile.class_of {
            if *c == clsid {
                flow.add_undirected(graph.index[id], db_terminal, INFINITE);
            }
        }
    }
    for name in [
        "BenEmployeeManager",
        "BenBenefitsManager",
        "BenDependentsManager",
    ] {
        let clsid = Clsid::from_name(name);
        for (id, c) in &run.profile.class_of {
            if *c == clsid {
                flow.add_undirected(graph.index[id], middle_terminal, INFINITE);
            }
        }
    }

    let cut = multiway_cut(
        &flow,
        &[client_terminal, middle_terminal, db_terminal],
        MaxFlowAlgorithm::Dinic,
    );

    // Every node is assigned; the terminals keep their machines.
    assert_eq!(cut.assignment.len(), graph.node_count());
    assert_eq!(cut.assignment[client_terminal], 0);
    assert_eq!(cut.assignment[middle_terminal], 1);
    assert_eq!(cut.assignment[db_terminal], 2);

    // The records cluster with the middle tier or database, never the
    // client (they talk to the driver constantly); the caches serve the
    // forms, so at least one cache classification lands on the client.
    let nodes_of = |clsid: Clsid| -> Vec<usize> {
        run.profile
            .class_of
            .iter()
            .filter(|(_, c)| **c == clsid)
            .map(|(id, _)| graph.index[id])
            .collect()
    };
    // The isolation heuristic is a 2-approximation, so a stray record
    // classification may be assigned loosely; the bulk must stay off the
    // client.
    let record_nodes = nodes_of(Clsid::from_name("BenRecord"));
    let off_client = record_nodes
        .iter()
        .filter(|&&node| cut.assignment[node] != 0)
        .count();
    assert!(
        off_client * 2 >= record_nodes.len(),
        "most records must not sit on the client: {off_client}/{}",
        record_nodes.len()
    );
    assert!(
        nodes_of(Clsid::from_name("BenResultCache"))
            .iter()
            .any(|&node| cut.assignment[node] == 0),
        "a cache should serve the client"
    );

    // The heuristic's cut is no worse than 4/3 of the best two-way
    // relaxation (sanity bound: it must at least beat the trivial
    // everything-separate assignment).
    let trivial: u64 = graph
        .weights_us
        .values()
        .map(|w| IccGraph::capacity_of(*w))
        .sum();
    assert!(
        cut.cut_value < trivial,
        "cut {} vs trivial {trivial}",
        cut.cut_value
    );
}
