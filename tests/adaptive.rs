//! The §6 "fully automatic" loop, end to end: drift detection during
//! distributed execution, re-profiling, and three-machine distributions.

use coign::classifier::{ClassifierKind, InstanceClassifier};
use coign::multiway::{analyze_multiway, derive_tier_constraints, MultiwayConstraint};
use coign::runtime::{
    choose_distribution, profile_scenario, run_distributed_monitored, run_distributed_on,
};
use coign_apps::{Benefits, Octarine};
use coign_com::{ComRuntime, MachineId, MachineSpec};
use coign_dcom::{NetworkModel, NetworkProfile};
use std::sync::Arc;

use coign::application::Application;

fn network() -> NetworkProfile {
    NetworkProfile::exact(&NetworkModel::ethernet_10baset())
}

/// Running the profiled scenario again shows little drift; running a
/// different document mix under the same stale distribution shows a lot —
/// the trigger for silent re-profiling.
#[test]
fn drift_detects_changed_usage() {
    let app = Octarine;
    let classifier = Arc::new(InstanceClassifier::new(ClassifierKind::Ifcb));
    let run = profile_scenario(&app, "o_oldwp0", &classifier).unwrap();
    let dist = choose_distribution(&app, &run.profile, &network()).unwrap();

    let (_, same_monitor) = run_distributed_monitored(
        &app,
        "o_oldwp0",
        &classifier,
        &dist,
        &run.profile,
        NetworkModel::ethernet_10baset(),
        3,
    )
    .unwrap();
    let same_drift = same_monitor.drift();

    let (_, changed_monitor) = run_distributed_monitored(
        &app,
        "o_oldtb3",
        &classifier,
        &dist,
        &run.profile,
        NetworkModel::ethernet_10baset(),
        3,
    )
    .unwrap();
    let changed_drift = changed_monitor.drift();

    assert!(
        same_drift < 0.15,
        "same scenario should barely drift, got {same_drift}"
    );
    assert!(
        changed_drift > same_drift * 2.0,
        "changed usage must stand out: same {same_drift}, changed {changed_drift}"
    );
    assert!(changed_monitor.should_reprofile(same_drift * 1.5 + 0.05));
}

/// The full adaptation loop: detect drift, re-profile for the new usage,
/// re-analyze, and verify the new distribution beats the stale one on the
/// new workload.
#[test]
fn drift_triggers_profitable_reoptimization() {
    let app = Octarine;
    let classifier = Arc::new(InstanceClassifier::new(ClassifierKind::Ifcb));
    // Optimized for small text documents...
    let old_run = profile_scenario(&app, "o_oldwp0", &classifier).unwrap();
    let old_dist = choose_distribution(&app, &old_run.profile, &network()).unwrap();

    // ...but the user now works with the 150-page table.
    let (stale_report, monitor) = run_distributed_monitored(
        &app,
        "o_oldtb3",
        &classifier,
        &old_dist,
        &old_run.profile,
        NetworkModel::ethernet_10baset(),
        4,
    )
    .unwrap();
    assert!(monitor.should_reprofile(0.2), "drift {}", monitor.drift());

    // Re-profile and re-optimize for the observed usage.
    let new_run = profile_scenario(&app, "o_oldtb3", &classifier).unwrap();
    let new_dist = choose_distribution(&app, &new_run.profile, &network()).unwrap();
    let (fresh_report, _) = run_distributed_monitored(
        &app,
        "o_oldtb3",
        &classifier,
        &new_dist,
        &new_run.profile,
        NetworkModel::ethernet_10baset(),
        4,
    )
    .unwrap();

    assert!(
        fresh_report.stats.comm_us * 5 < stale_report.stats.comm_us,
        "re-optimization should slash communication: stale {} us, fresh {} us",
        stale_report.stats.comm_us,
        fresh_report.stats.comm_us
    );
}

/// A real three-machine distributed execution of Benefits: forms on the
/// client, business logic on the middle tier, database on the server.
#[test]
fn benefits_runs_distributed_across_three_machines() {
    let app = Benefits::default();
    let classifier = Arc::new(InstanceClassifier::new(ClassifierKind::Ifcb));
    let run = profile_scenario(&app, "b_vueone", &classifier).unwrap();

    // Tier pins from static analysis: GUI → machine 0, database → machine 2.
    let rt_for_registry = ComRuntime::single_machine();
    app.register(&rt_for_registry);
    let mut constraints = derive_tier_constraints(
        &run.profile,
        rt_for_registry.registry(),
        MachineId(0),
        MachineId(2),
    );
    // Anchor the middle tier with the manager classifications.
    for name in [
        "BenEmployeeManager",
        "BenBenefitsManager",
        "BenDependentsManager",
    ] {
        let clsid = coign_com::Clsid::from_name(name);
        for (class, c) in &run.profile.class_of {
            if *c == clsid {
                constraints.push(MultiwayConstraint::Pin(*class, MachineId(1)));
            }
        }
    }

    let dist = analyze_multiway(&run.profile, &network(), &constraints, 3).unwrap();

    // Execute on a real three-machine topology.
    let topology = ComRuntime::new(vec![
        MachineSpec::new("client", 1.0),
        MachineSpec::new("middle", 1.0),
        MachineSpec::new("dbserver", 1.0),
    ]);
    let report = run_distributed_on(
        &app,
        "b_vueone",
        &classifier,
        &dist,
        topology,
        NetworkModel::ethernet_10baset(),
        8,
    )
    .unwrap();

    // All three machines host something, and communication was charged.
    assert_eq!(report.instances_per_machine.len(), 3);
    assert!(
        report.instances_per_machine[1] > 0,
        "middle tier is populated"
    );
    assert!(
        report.instances_per_machine[2] > 0,
        "db server is populated"
    );
    assert!(report.stats.comm_us > 0);
    assert!(report.stats.cross_machine_calls > 0);
}

/// The three-way cut never costs less than the unconstrained two-way cut
/// (more machines, more forced separations) but stays within a small factor
/// on this workload.
#[test]
fn three_way_cost_brackets_two_way() {
    let app = Benefits::default();
    let classifier = Arc::new(InstanceClassifier::new(ClassifierKind::Ifcb));
    let run = profile_scenario(&app, "b_vueone", &classifier).unwrap();
    let two_way = choose_distribution(&app, &run.profile, &network()).unwrap();

    let rt = ComRuntime::single_machine();
    app.register(&rt);
    let mut constraints =
        derive_tier_constraints(&run.profile, rt.registry(), MachineId(0), MachineId(2));
    let manager = coign_com::Clsid::from_name("BenEmployeeManager");
    for (class, c) in &run.profile.class_of {
        if *c == manager {
            constraints.push(MultiwayConstraint::Pin(*class, MachineId(1)));
        }
    }
    let three_way = analyze_multiway(&run.profile, &network(), &constraints, 3).unwrap();

    assert!(
        three_way.predicted_comm_us >= two_way.predicted_comm_us - 1e-6,
        "a 3-way split cannot beat the optimal 2-way relaxation"
    );
    assert!(
        three_way.predicted_comm_us <= two_way.predicted_comm_us * 10.0,
        "3-way should stay within an order of magnitude here"
    );
}
