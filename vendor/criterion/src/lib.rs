//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors the subset of the criterion API its benches use. Instead of
//! criterion's statistical analysis, each benchmark runs its routine for a
//! small fixed number of iterations and prints the mean wall-clock time —
//! enough to compare orders of magnitude and to keep `--benches` compiling
//! and runnable.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Display;
use std::time::Instant;

/// Re-export of the standard black box, as criterion provides.
pub use std::hint::black_box;

/// Iterations per benchmark routine (criterion samples adaptively; this
/// stand-in uses a small fixed count to keep `cargo bench` quick).
const ITERATIONS: u32 = 10;

/// The benchmark harness entry point.
#[derive(Debug, Default)]
pub struct Criterion;

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Display) -> BenchmarkGroup {
        BenchmarkGroup {
            name: name.to_string(),
        }
    }

    /// Runs a single named benchmark.
    pub fn bench_function(&mut self, name: impl Display, routine: impl FnMut(&mut Bencher)) {
        run_named(&name.to_string(), routine);
    }
}

/// A named collection of benchmarks sharing configuration.
#[derive(Debug)]
pub struct BenchmarkGroup {
    name: String,
}

impl BenchmarkGroup {
    /// Accepted for criterion compatibility; the fixed-iteration stand-in
    /// has no adaptive sampling to configure.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Runs a named benchmark within the group.
    pub fn bench_function(&mut self, name: impl Display, routine: impl FnMut(&mut Bencher)) {
        run_named(&format!("{}/{name}", self.name), routine);
    }

    /// Runs a parameterized benchmark within the group.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut routine: impl FnMut(&mut Bencher, &I),
    ) {
        run_named(&format!("{}/{id}", self.name), |b| routine(b, input));
    }

    /// Ends the group (no-op; present for criterion compatibility).
    pub fn finish(self) {}
}

/// Identifier of a parameterized benchmark: function name plus parameter.
#[derive(Debug)]
pub struct BenchmarkId {
    function: String,
    parameter: String,
}

impl BenchmarkId {
    /// Creates an identifier from a function name and a parameter value.
    pub fn new(function: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            function: function.to_string(),
            parameter: parameter.to_string(),
        }
    }

    /// Creates an identifier from a parameter value alone; the benchmark
    /// group supplies the function name.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            function: String::new(),
            parameter: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}/{}", self.function, self.parameter)
    }
}

/// Timer handle passed to benchmark routines.
#[derive(Debug, Default)]
pub struct Bencher {
    elapsed_ns: u128,
    iterations: u32,
}

impl Bencher {
    /// Times `routine` over a fixed number of iterations.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        let start = Instant::now();
        for _ in 0..ITERATIONS {
            black_box(routine());
        }
        self.elapsed_ns = start.elapsed().as_nanos();
        self.iterations = ITERATIONS;
    }
}

fn run_named(name: &str, mut routine: impl FnMut(&mut Bencher)) {
    let mut bencher = Bencher::default();
    routine(&mut bencher);
    if bencher.iterations > 0 {
        let mean_ns = bencher.elapsed_ns / u128::from(bencher.iterations);
        println!("bench {name:<48} {mean_ns:>12} ns/iter");
    } else {
        println!("bench {name:<48} (no measurement)");
    }
}

/// Declares a group of benchmark functions, as in criterion.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark binary's `main`, as in criterion.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures() {
        let mut c = Criterion;
        let mut group = c.benchmark_group("g");
        group.sample_size(10);
        let mut ran = 0u64;
        group.bench_function("count", |b| b.iter(|| ran += 1));
        group.bench_with_input(BenchmarkId::new("param", 3), &3u32, |b, &n| {
            b.iter(|| ran += u64::from(n))
        });
        group.finish();
        assert!(ran > 0);
    }
}
