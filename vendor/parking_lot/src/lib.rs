//! Offline stand-in for the `parking_lot` crate.
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors the tiny subset of the `parking_lot` API it uses — [`Mutex`] and
//! [`RwLock`] with panic-free (poison-ignoring) lock acquisition — backed by
//! `std::sync`. The semantics relevant to this codebase are identical: locks
//! are acquired without a `Result` and a poisoned lock is recovered rather
//! than propagated.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::sync::{self, MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutual-exclusion lock with `parking_lot`'s panic-free API.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    pub fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until it is available. Unlike
    /// `std::sync::Mutex::lock` this never returns an error: a poisoned
    /// lock is simply recovered.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Returns a mutable reference to the underlying data without locking.
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// A reader-writer lock with `parking_lot`'s panic-free API.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates a new lock protecting `value`.
    pub fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the protected value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access, recovering from poison.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires exclusive write access, recovering from poison.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Returns a mutable reference to the underlying data without locking.
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_roundtrip() {
        let l = RwLock::new(vec![1]);
        l.write().push(2);
        assert_eq!(l.read().len(), 2);
        assert_eq!(l.into_inner(), vec![1, 2]);
    }
}
