//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors the subset of the `rand 0.8` API it uses: the [`Rng`] /
//! [`RngCore`] / [`SeedableRng`] traits, uniform range sampling over the
//! primitive types, and a deterministic [`rngs::StdRng`] (xoshiro256**).
//!
//! Stream compatibility with upstream `rand` is *not* a goal — every use in
//! this workspace seeds its generator explicitly and only relies on
//! determinism within a build, which this implementation provides.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Low-level uniformly random word generation.
pub trait RngCore {
    /// Returns the next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let word = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&word[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// A range that knows how to sample a uniformly distributed value from it.
pub trait SampleRange<T> {
    /// Draws one uniformly distributed value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_sample_range {
    ($($ty:ty),*) => {$(
        impl SampleRange<$ty> for Range<$ty> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let value = (rng.next_u64() as u128) % span;
                (self.start as i128 + value as i128) as $ty
            }
        }

        impl SampleRange<$ty> for RangeInclusive<$ty> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let value = (rng.next_u64() as u128) % span;
                (start as i128 + value as i128) as $ty
            }
        }
    )*};
}

impl_int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Converts 64 random bits into a uniform float in `[0, 1)`.
fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    // 53 uniformly random mantissa bits.
    (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
}

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + unit_f64(rng) * (self.end - self.start)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "cannot sample empty range");
        start + unit_f64(rng) * (end - start)
    }
}

/// User-facing random value generation, as in `rand::Rng`.
pub trait Rng: RngCore {
    /// Samples a uniformly distributed value from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        unit_f64(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Deterministic construction of generators from seeds.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete generator implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The standard deterministic generator: xoshiro256** seeded via
    /// SplitMix64 (the construction recommended by its authors).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                state: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.state;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let f = rng.gen_range(-0.25f64..=0.25);
            assert!((-0.25..=0.25).contains(&f));
            let i = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&i));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4);
    }

    #[test]
    fn gen_bool_is_calibrated() {
        let mut rng = StdRng::seed_from_u64(9);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2_000..3_000).contains(&hits));
    }

    #[test]
    fn fill_bytes_covers_tail() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
