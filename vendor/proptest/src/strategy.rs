//! The [`Strategy`] trait and its combinators.

use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};
use std::sync::Arc;

/// A recipe for generating values of one type.
///
/// This offline stand-in samples values only; there is no shrinking.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Keeps only values for which `f` returns true, resampling otherwise.
    fn prop_filter<F>(self, reason: impl Into<String>, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            reason: reason.into(),
            f,
        }
    }

    /// Builds a recursive strategy: `recurse` receives the strategy for the
    /// previous depth and returns the strategy for one level deeper; up to
    /// `depth` levels are stacked above `self` (the leaf strategy).
    ///
    /// The `desired_size` and `expected_branch_size` tuning parameters of
    /// real proptest are accepted for compatibility and ignored.
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        R: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> R,
    {
        let leaf = self.boxed();
        let mut strat = leaf.clone();
        for _ in 0..depth {
            strat = Union::new(vec![leaf.clone(), recurse(strat).boxed()]).boxed();
        }
        strat
    }

    /// Erases the strategy type behind a cheaply cloneable handle.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Arc::new(self))
    }
}

/// A type-erased, cheaply cloneable strategy handle.
pub struct BoxedStrategy<T>(Arc<dyn Strategy<Value = T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Arc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        self.0.sample(rng)
    }
}

/// Strategy always producing a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    reason: String,
    f: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;

    fn sample(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1_000 {
            let value = self.inner.sample(rng);
            if (self.f)(&value) {
                return value;
            }
        }
        panic!(
            "prop_filter rejected 1000 consecutive samples: {}",
            self.reason
        );
    }
}

/// Strategy choosing uniformly between alternatives (see
/// [`crate::prop_oneof!`]).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Creates a union over the given alternatives (must be non-empty).
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        let idx = rng.index(self.options.len());
        self.options[idx].sample(rng)
    }
}

macro_rules! impl_int_range_strategy {
    ($($ty:ty),*) => {$(
        impl Strategy for Range<$ty> {
            type Value = $ty;

            fn sample(&self, rng: &mut TestRng) -> $ty {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let value = (rng.next_u64() as u128) % span;
                (self.start as i128 + value as i128) as $ty
            }
        }

        impl Strategy for RangeInclusive<$ty> {
            type Value = $ty;

            fn sample(&self, rng: &mut TestRng) -> $ty {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let value = (rng.next_u64() as u128) % span;
                (start as i128 + value as i128) as $ty
            }
        }
    )*};
}

impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($(($($S:ident . $idx:tt),+))*) => {$(
        impl<$($S: Strategy),+> Strategy for ($($S,)+) {
            type Value = ($($S::Value,)+);

            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}

impl Strategy for &'static str {
    type Value = String;

    fn sample(&self, rng: &mut TestRng) -> String {
        crate::string::sample_regex(self, rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::any;

    fn rng() -> TestRng {
        TestRng::deterministic("strategy::tests", 0)
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = rng();
        for _ in 0..200 {
            let v = (3usize..24).sample(&mut rng);
            assert!((3..24).contains(&v));
            let w = (5u64..=9).sample(&mut rng);
            assert!((5..=9).contains(&w));
        }
    }

    #[test]
    fn map_filter_just_union() {
        let mut rng = rng();
        let doubled = (0u32..10).prop_map(|v| v * 2);
        assert_eq!(doubled.sample(&mut rng) % 2, 0);
        let even = (0u32..100).prop_filter("odd", |v| v % 2 == 0);
        assert_eq!(even.sample(&mut rng) % 2, 0);
        assert_eq!(Just(7).sample(&mut rng), 7);
        let one_of = crate::prop_oneof![Just(1u8), Just(2u8)];
        assert!([1u8, 2].contains(&one_of.sample(&mut rng)));
    }

    #[test]
    fn tuples_sample_elementwise() {
        let mut rng = rng();
        let (a, b, c) = (0u8..4, 10u32..20, any::<bool>()).sample(&mut rng);
        assert!(a < 4);
        assert!((10..20).contains(&b));
        let _: bool = c;
    }

    #[test]
    fn recursion_is_depth_bounded() {
        #[derive(Debug)]
        enum Tree {
            Leaf(u8),
            Node(Vec<Tree>),
        }
        fn depth(t: &Tree) -> usize {
            match t {
                Tree::Leaf(value) => {
                    assert!(*value < 10);
                    0
                }
                Tree::Node(kids) => 1 + kids.iter().map(depth).max().unwrap_or(0),
            }
        }
        let strat = (0u8..10)
            .prop_map(Tree::Leaf)
            .prop_recursive(3, 8, 4, |inner| {
                crate::collection::vec(inner, 0..4).prop_map(Tree::Node)
            });
        let mut rng = rng();
        for _ in 0..100 {
            assert!(depth(&strat.sample(&mut rng)) <= 3);
        }
    }
}
