//! Collection strategies.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::ops::Range;

/// Strategy generating `Vec`s of an element strategy (see [`vec`]).
pub struct VecStrategy<S> {
    element: S,
    len: Range<usize>,
}

/// Returns a strategy generating vectors whose length is drawn from `len`
/// and whose elements are drawn from `element`.
pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
    VecStrategy { element, len }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = if self.len.start >= self.len.end {
            self.len.start
        } else {
            self.len.clone().sample(rng)
        };
        (0..len).map(|_| self.element.sample(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::any;

    #[test]
    fn length_is_in_range() {
        let strat = vec(any::<u8>(), 2..5);
        let mut rng = TestRng::deterministic("collection::tests", 0);
        for _ in 0..100 {
            let v = strat.sample(&mut rng);
            assert!((2..5).contains(&v.len()));
        }
    }
}
