//! The [`Arbitrary`] trait: primitive types [`crate::any`] can generate.

use crate::test_runner::TestRng;

/// Types with a canonical "any value" generator.
pub trait Arbitrary: Sized {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($ty:ty),*) => {$(
        impl Arbitrary for $ty {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $ty
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for u128 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64())
    }
}

impl Arbitrary for i128 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        u128::arbitrary(rng) as i128
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        // Arbitrary bit patterns: covers subnormals, infinities, and NaNs,
        // like real proptest's `any::<f64>()` edge-case generation.
        f64::from_bits(rng.next_u64())
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        f32::from_bits(rng.next_u64() as u32)
    }
}

impl Arbitrary for char {
    fn arbitrary(rng: &mut TestRng) -> Self {
        // Printable ASCII keeps generated text codec-friendly.
        char::from(32 + (rng.next_u64() % 95) as u8)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_generate() {
        let mut rng = TestRng::deterministic("arbitrary::tests", 0);
        let _: u128 = Arbitrary::arbitrary(&mut rng);
        let _: i64 = Arbitrary::arbitrary(&mut rng);
        let _: f64 = Arbitrary::arbitrary(&mut rng);
        let c: char = Arbitrary::arbitrary(&mut rng);
        assert!(c.is_ascii());
        // Booleans take both values eventually.
        let mut seen = [false, false];
        for _ in 0..64 {
            seen[usize::from(bool::arbitrary(&mut rng))] = true;
        }
        assert_eq!(seen, [true, true]);
    }
}
