//! Regex-subset string generation.
//!
//! Real proptest treats `&str` strategies as full regexes. This stand-in
//! supports the subset its property tests actually use: literal characters,
//! `\`-escapes, character classes with ranges (`[a-z0-9_]`), the `.`
//! wildcard (printable ASCII), and the `{m,n}` / `{m}` / `*` / `+` / `?`
//! quantifiers. Unsupported syntax panics so a silently wrong generator
//! never masquerades as a regex.

use crate::test_runner::TestRng;

/// One generatable unit of the pattern.
enum Atom {
    /// A literal character.
    Literal(char),
    /// A character class: any of the listed characters.
    Class(Vec<char>),
    /// `.` — any printable ASCII character.
    Any,
}

impl Atom {
    fn generate(&self, rng: &mut TestRng) -> char {
        match self {
            Atom::Literal(c) => *c,
            Atom::Class(options) => options[rng.index(options.len())],
            Atom::Any => char::from(32 + (rng.next_u64() % 95) as u8),
        }
    }
}

/// An atom with its repetition bounds.
struct Piece {
    atom: Atom,
    min: usize,
    max: usize,
}

fn parse(pattern: &str) -> Vec<Piece> {
    let mut chars = pattern.chars().peekable();
    let mut pieces = Vec::new();
    while let Some(c) = chars.next() {
        let atom = match c {
            '\\' => Atom::Literal(chars.next().expect("dangling escape in pattern")),
            '.' => Atom::Any,
            '[' => {
                let mut options = Vec::new();
                let mut prev: Option<char> = None;
                loop {
                    let c = chars.next().expect("unterminated character class");
                    match c {
                        ']' => break,
                        '-' if prev.is_some() && chars.peek() != Some(&']') => {
                            let start = prev.take().expect("range without start");
                            let end = chars.next().expect("range without end");
                            assert!(start <= end, "reversed range in character class");
                            // `start` is already in `options`; add the rest.
                            options.extend((start..=end).skip(1));
                        }
                        c => {
                            options.push(c);
                            prev = Some(c);
                        }
                    }
                }
                assert!(!options.is_empty(), "empty character class");
                Atom::Class(options)
            }
            '(' | ')' | '|' | '^' | '$' => {
                panic!("regex feature {c:?} is not supported by the offline proptest stub")
            }
            c => Atom::Literal(c),
        };
        let (min, max) = match chars.peek() {
            Some('{') => {
                chars.next();
                let mut spec = String::new();
                for c in chars.by_ref() {
                    if c == '}' {
                        break;
                    }
                    spec.push(c);
                }
                match spec.split_once(',') {
                    Some((lo, hi)) => (
                        lo.parse().expect("bad repetition lower bound"),
                        hi.parse().expect("bad repetition upper bound"),
                    ),
                    None => {
                        let n = spec.parse().expect("bad repetition count");
                        (n, n)
                    }
                }
            }
            Some('*') => {
                chars.next();
                (0, 8)
            }
            Some('+') => {
                chars.next();
                (1, 8)
            }
            Some('?') => {
                chars.next();
                (0, 1)
            }
            _ => (1, 1),
        };
        assert!(min <= max, "reversed repetition bounds");
        pieces.push(Piece { atom, min, max });
    }
    pieces
}

/// Samples one string matching the pattern subset described in the module
/// docs.
pub fn sample_regex(pattern: &str, rng: &mut TestRng) -> String {
    let mut out = String::new();
    for piece in parse(pattern) {
        let count = if piece.min == piece.max {
            piece.min
        } else {
            piece.min + rng.index(piece.max - piece.min + 1)
        };
        for _ in 0..count {
            out.push(piece.atom.generate(rng));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> TestRng {
        TestRng::deterministic("string::tests", 0)
    }

    #[test]
    fn literal_with_escape() {
        assert_eq!(sample_regex("abc\\.exe", &mut rng()), "abc.exe");
    }

    #[test]
    fn class_and_repetition() {
        let mut rng = rng();
        for _ in 0..100 {
            let s = sample_regex("[a-z0-9_]{1,16}\\.dll", &mut rng);
            let stem = s.strip_suffix(".dll").expect("suffix");
            assert!((1..=16).contains(&stem.len()));
            assert!(stem
                .chars()
                .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_'));
        }
    }

    #[test]
    fn dot_is_printable_ascii() {
        let mut rng = rng();
        for _ in 0..50 {
            let s = sample_regex(".{0,64}", &mut rng);
            assert!(s.len() <= 64);
            assert!(s.chars().all(|c| (' '..='~').contains(&c)));
        }
    }

    #[test]
    fn star_plus_question() {
        let mut rng = rng();
        for _ in 0..50 {
            let s = sample_regex("a*b+c?", &mut rng);
            assert!(s.contains('b'));
        }
    }

    #[test]
    #[should_panic(expected = "not supported")]
    fn groups_are_rejected() {
        sample_regex("(ab)+", &mut rng());
    }
}
