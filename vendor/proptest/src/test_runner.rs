//! Deterministic case generation for [`crate::proptest!`].

/// Configuration for a `proptest!` block.
#[derive(Debug, Clone, Copy)]
pub struct Config {
    /// Number of sampled cases per property.
    pub cases: u32,
}

impl Config {
    /// Returns a configuration running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        Config { cases }
    }
}

impl Default for Config {
    fn default() -> Self {
        Config { cases: 64 }
    }
}

/// The deterministic generator behind every sampled case.
///
/// SplitMix64 seeded from the test's identity (module path + name) and the
/// case index, so every run of the suite samples the same cases.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Builds the generator for case `case` of the named test.
    pub fn deterministic(test_name: &str, case: u32) -> Self {
        // FNV-1a over the test name, mixed with the case index.
        let mut hash: u64 = 0xCBF2_9CE4_8422_2325;
        for byte in test_name.bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
        }
        let mut rng = TestRng {
            state: hash ^ (u64::from(case).wrapping_mul(0x9E37_79B9_7F4A_7C15)),
        };
        // Warm up so adjacent cases decorrelate.
        rng.next_u64();
        rng
    }

    /// Returns the next 64 uniformly random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Returns a uniform index in `0..len` (`len` must be nonzero).
    pub fn index(&mut self, len: usize) -> usize {
        debug_assert!(len > 0);
        (self.next_u64() % len as u64) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_identity_same_stream() {
        let mut a = TestRng::deterministic("mod::test", 3);
        let mut b = TestRng::deterministic("mod::test", 3);
        assert_eq!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn cases_decorrelate() {
        let mut a = TestRng::deterministic("mod::test", 0);
        let mut b = TestRng::deterministic("mod::test", 1);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn config_cases() {
        assert_eq!(Config::with_cases(48).cases, 48);
        assert_eq!(Config::default().cases, 64);
    }
}
