//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors the subset of the `proptest` API its property tests use: the
//! [`proptest!`] macro, [`strategy::Strategy`] combinators (`prop_map`,
//! `prop_filter`, `prop_recursive`, [`prop_oneof!`], [`strategy::Just`]),
//! [`arbitrary::Arbitrary`] primitives via [`any`], integer-range and
//! regex-subset string strategies, and [`collection::vec`].
//!
//! Unlike real proptest this implementation only *samples* deterministically
//! seeded random cases — there is no shrinking and no failure persistence.
//! Each test function draws its cases from a generator seeded by the test's
//! module path and name, so failures reproduce across runs.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arbitrary;
pub mod collection;
pub mod strategy;
pub mod string;
pub mod test_runner;

use std::marker::PhantomData;

/// Everything a property test normally imports.
pub mod prelude {
    pub use crate::arbitrary::Arbitrary;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Strategy producing arbitrary values of `T` (see [`any`]).
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(PhantomData<T>);

impl<T: arbitrary::Arbitrary> strategy::Strategy for Any<T> {
    type Value = T;

    fn sample(&self, rng: &mut test_runner::TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Returns a strategy generating arbitrary values of `T`.
pub fn any<T: arbitrary::Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

/// Defines property tests: each `fn` body runs for `Config::cases`
/// deterministically sampled assignments of its `pattern in strategy`
/// arguments.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { ($crate::test_runner::Config::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`]; do not invoke directly.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    ( ($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident( $($arg_pat:pat in $arg_strat:expr),+ $(,)? ) $body:block
    )* ) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::Config = $cfg;
            for case in 0..config.cases {
                let mut __rng = $crate::test_runner::TestRng::deterministic(
                    concat!(module_path!(), "::", stringify!($name)),
                    case,
                );
                $(let $arg_pat =
                    $crate::strategy::Strategy::sample(&($arg_strat), &mut __rng);)+
                $body
            }
        }
    )*};
}

/// Skips the current sampled case when its precondition does not hold.
///
/// Expands inside the [`proptest!`]-generated case loop, so rejection moves
/// straight to the next case (real proptest additionally re-draws; with
/// deterministic sampling a skip is equivalent).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            continue;
        }
    };
}

/// Asserts a property holds for the sampled case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => { assert!($cond) };
    ($cond:expr, $($arg:tt)+) => { assert!($cond, $($arg)+) };
}

/// Asserts two expressions are equal for the sampled case.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => { assert_eq!($left, $right) };
    ($left:expr, $right:expr, $($arg:tt)+) => { assert_eq!($left, $right, $($arg)+) };
}

/// Asserts two expressions are unequal for the sampled case.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => { assert_ne!($left, $right) };
    ($left:expr, $right:expr, $($arg:tt)+) => { assert_ne!($left, $right, $($arg)+) };
}

/// Strategy choosing uniformly between the given strategies (all must
/// produce the same value type).
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}
