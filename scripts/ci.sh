#!/usr/bin/env bash
# Repo-local CI gate: formatting, lints, release build, and the full test
# suite (tier-1 is the root-package subset of `cargo test`). Run from
# anywhere; everything executes at the repository root.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test"
cargo test -q

echo "CI OK"
