#!/usr/bin/env bash
# Repo-local CI gate: formatting, lints, release build, and the full test
# suite (tier-1 is the root-package subset of `cargo test`). Run from
# anywhere; everything executes at the repository root.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo build --release --workspace"
# --workspace matters: the root manifest is a package, so a bare build
# would skip coign-cli and coign-bench and the smoke blocks below would
# run stale `target/release/coign` / `perfsuite` binaries.
cargo build --release --workspace

echo "==> cargo test --workspace"
cargo test -q --workspace

echo "==> fault-injection determinism (two seeds vs committed expectations)"
# The fault layer's whole value is reproducibility: the same image, plan,
# and fault seed must yield a byte-identical run summary on every machine.
# Build a realized octarine image from scratch, run the demo fault plan
# under two distinct seeds, and diff each summary against the committed
# expectation. Regenerate after an intentional change with:
#   scripts/ci.sh --regen-fault-expectations
BIN=target/release/coign
TMP="$(mktemp -d)"
trap 'rm -rf "$TMP"' EXIT
IMG="$TMP/octarine.cimg"
"$BIN" instrument octarine "$IMG" >/dev/null
"$BIN" profile "$IMG" o_oldtb3 >/dev/null
"$BIN" analyze "$IMG" ethernet >/dev/null
for seed in 7 11; do
  "$BIN" run "$IMG" o_oldtb3 ethernet \
    --fault-plan examples/faults/demo.fplan --fault-seed "$seed" --summary \
    > "$TMP/fault_run_seed_${seed}.txt"
  if [[ "${1:-}" == "--regen-fault-expectations" ]]; then
    cp "$TMP/fault_run_seed_${seed}.txt" "scripts/expected/fault_run_seed_${seed}.txt"
    echo "regenerated scripts/expected/fault_run_seed_${seed}.txt"
  else
    diff -u "scripts/expected/fault_run_seed_${seed}.txt" "$TMP/fault_run_seed_${seed}.txt" \
      || { echo "fault run summary drifted for seed ${seed}"; exit 1; }
  fi
done
# The two seeds must schedule different faults — otherwise the seed is
# not actually feeding the fault RNG and the determinism check is vacuous.
if cmp -s "$TMP/fault_run_seed_7.txt" "$TMP/fault_run_seed_11.txt"; then
  echo "fault seeds 7 and 11 produced identical summaries; seed is ignored"
  exit 1
fi

echo "==> chaos harness determinism (two seeds vs committed expectations, --jobs cross-check)"
# The chaos summary must be byte-identical for a given seed — across
# machines (the committed expectations), across runs, and across worker
# counts. Five trials at seed 7 include machine-death trials, so the
# expectation also pins that the self-healing path actually fires.
# Regenerate after an intentional change with the same flag as above.
for seed in 7 11; do
  "$BIN" chaos "$IMG" o_oldtb3 ethernet --seed "$seed" --trials 5 \
    > "$TMP/chaos_seed_${seed}.txt"
  if [[ "${1:-}" == "--regen-fault-expectations" ]]; then
    cp "$TMP/chaos_seed_${seed}.txt" "scripts/expected/chaos_seed_${seed}.txt"
    echo "regenerated scripts/expected/chaos_seed_${seed}.txt"
  else
    diff -u "scripts/expected/chaos_seed_${seed}.txt" "$TMP/chaos_seed_${seed}.txt" \
      || { echo "chaos summary drifted for seed ${seed}"; exit 1; }
  fi
done
if cmp -s "$TMP/chaos_seed_7.txt" "$TMP/chaos_seed_11.txt"; then
  echo "chaos seeds 7 and 11 produced identical summaries; seed is ignored"
  exit 1
fi
"$BIN" chaos "$IMG" o_oldtb3 ethernet --seed 7 --trials 5 --jobs 4 \
  > "$TMP/chaos_seed_7_jobs4.txt"
cmp "$TMP/chaos_seed_7.txt" "$TMP/chaos_seed_7_jobs4.txt" \
  || { echo "chaos summary differs between --jobs 1 and --jobs 4"; exit 1; }
grep -q "outcome=recovered" "$TMP/chaos_seed_7.txt" \
  || { echo "chaos seed 7 never exercised the recovery path"; exit 1; }
grep -q "invariants: ok" "$TMP/chaos_seed_7.txt" \
  || { echo "chaos invariants violated at seed 7"; exit 1; }
grep -q "invariants: ok" "$TMP/chaos_seed_11.txt" \
  || { echo "chaos invariants violated at seed 11"; exit 1; }

echo "==> chaos & explore over generated applications (two gen seeds vs committed expectations)"
# The generator is deterministic per seed, so the whole downstream pipeline
# must be too: emit two generated images, profile + analyze them, run the
# chaos harness over each, and diff against committed expectations. The
# schedule-space explorer must likewise be byte-identical across --jobs
# and report zero invariant violations on a healthy generated app.
# Regenerate after an intentional change with the same flag as above.
for gseed in 3 16; do
  "$BIN" gen --seed "$gseed" --emit "$TMP" >/dev/null
  GIMG="$TMP/gen-${gseed}-small.cimg"
  "$BIN" profile "$GIMG" g_main g_doc g_idle >/dev/null
  "$BIN" analyze "$GIMG" ethernet >/dev/null
  "$BIN" chaos "$GIMG" g_main ethernet --seed 7 --trials 5 > "$TMP/chaos_gen_${gseed}.txt"
  if [[ "${1:-}" == "--regen-fault-expectations" ]]; then
    cp "$TMP/chaos_gen_${gseed}.txt" "scripts/expected/chaos_gen_${gseed}.txt"
    echo "regenerated scripts/expected/chaos_gen_${gseed}.txt"
  else
    diff -u "scripts/expected/chaos_gen_${gseed}.txt" "$TMP/chaos_gen_${gseed}.txt" \
      || { echo "generated chaos summary drifted for gen seed ${gseed}"; exit 1; }
  fi
  grep -q "invariants: ok" "$TMP/chaos_gen_${gseed}.txt" \
    || { echo "chaos invariants violated on generated seed ${gseed}"; exit 1; }
done
"$BIN" chaos "$TMP/gen-3-small.cimg" g_main ethernet --seed 7 --trials 5 --jobs 4 \
  > "$TMP/chaos_gen_3_jobs4.txt"
cmp "$TMP/chaos_gen_3.txt" "$TMP/chaos_gen_3_jobs4.txt" \
  || { echo "generated chaos summary differs between --jobs 1 and --jobs 4"; exit 1; }
"$BIN" explore gen:3 g_main --faults-at 4000,9000,14000 --thresholds 1,3 > "$TMP/explore_a.txt"
"$BIN" explore gen:3 g_main --faults-at 4000,9000,14000 --thresholds 1,3 --jobs 4 \
  > "$TMP/explore_b.txt"
cmp "$TMP/explore_a.txt" "$TMP/explore_b.txt" \
  || { echo "explore summary differs between --jobs 1 and --jobs 4"; exit 1; }
grep -q "invariants: ok" "$TMP/explore_a.txt" \
  || { echo "explore found invariant violations on gen seed 3"; exit 1; }

echo "==> observability smoke (--trace/--metrics, byte-identical across runs)"
# Same image, plan, and seed must export byte-identical trace and metrics
# files — the whole point of keeping host time out of the default export.
for tag in a b; do
  "$BIN" run "$IMG" o_oldtb3 ethernet \
    --fault-plan examples/faults/demo.fplan --fault-seed 7 \
    --trace "$TMP/trace_${tag}.json" --metrics "$TMP/metrics_${tag}.json" \
    > /dev/null
done
cmp "$TMP/trace_a.json" "$TMP/trace_b.json" \
  || { echo "same-seed runs exported different traces"; exit 1; }
cmp "$TMP/metrics_a.json" "$TMP/metrics_b.json" \
  || { echo "same-seed runs exported different metrics"; exit 1; }
grep -q '"name":"run","cat":"pipeline","ph":"B"' "$TMP/trace_a.json" \
  || { echo "trace is missing the run phase span"; exit 1; }
grep -q '"name":"icc_call"' "$TMP/trace_a.json" \
  || { echo "trace is missing cut-crossing call instants"; exit 1; }
grep -q '"name":"fault_drop"' "$TMP/trace_a.json" \
  || { echo "trace is missing fault-injection instants"; exit 1; }
grep -q '"coign_cross_machine_calls_total":' "$TMP/metrics_a.json" \
  || { echo "metrics snapshot is missing the run counters"; exit 1; }

echo "==> replication placement smoke (coign place, 3 machines vs committed expectations)"
# The multiway solver must be deterministic, and replication must be
# opt-in and legality-gated: without `--replicate` the output carries no
# replicas and matches the committed plain placement byte for byte; with
# it, the base placement is unchanged and only the replica section grows.
# Regenerate after an intentional change with:
#   scripts/ci.sh --regen-fault-expectations
PIMG="$TMP/octarine_place.cimg"
"$BIN" instrument octarine "$PIMG" >/dev/null
"$BIN" profile "$PIMG" o_oldwp7 >/dev/null
"$BIN" place "$PIMG" o_oldwp7 ethernet --machines 3 > "$TMP/place_plain.txt"
"$BIN" place "$PIMG" o_oldwp7 ethernet --machines 3 --replicate > "$TMP/place_replicate.txt"
for name in place_plain place_replicate; do
  if [[ "${1:-}" == "--regen-fault-expectations" ]]; then
    cp "$TMP/${name}.txt" "scripts/expected/${name}.txt"
    echo "regenerated scripts/expected/${name}.txt"
  else
    diff -u "scripts/expected/${name}.txt" "$TMP/${name}.txt" \
      || { echo "placement output drifted for ${name}"; exit 1; }
  fi
done
"$BIN" place "$PIMG" o_oldwp7 ethernet --machines 3 > "$TMP/place_plain_2.txt"
cmp "$TMP/place_plain.txt" "$TMP/place_plain_2.txt" \
  || { echo "plain placement differs between two identical runs"; exit 1; }
grep -q "replicas: none" "$TMP/place_plain.txt" \
  || { echo "plain placement placed replicas without --replicate"; exit 1; }
diff <(grep '^  machine' "$TMP/place_plain.txt") <(grep '^  machine' "$TMP/place_replicate.txt") \
  || { echo "--replicate moved the base placement"; exit 1; }
grep -q "replicas: [1-9]" "$TMP/place_replicate.txt" \
  || { echo "--replicate found no legal replica on the annotated app"; exit 1; }

echo "==> serving-harness smoke (coign serve vs committed expectation, --jobs cross-check)"
# The serve summary is fully simulated, so it must be byte-identical for a
# given seed — across machines (the committed expectation) and across
# worker counts. Reuses the gen-3 image profiled above. Regenerate after
# an intentional change with:
#   scripts/ci.sh --regen-fault-expectations
"$BIN" serve "$TMP/gen-3-small.cimg" g_main ethernet --sessions 2000 --seed 7 \
  > "$TMP/serve_gen_3.txt"
if [[ "${1:-}" == "--regen-fault-expectations" ]]; then
  cp "$TMP/serve_gen_3.txt" "scripts/expected/serve_gen_3.txt"
  echo "regenerated scripts/expected/serve_gen_3.txt"
else
  diff -u "scripts/expected/serve_gen_3.txt" "$TMP/serve_gen_3.txt" \
    || { echo "serve summary drifted for gen seed 3"; exit 1; }
fi
"$BIN" serve "$TMP/gen-3-small.cimg" g_main ethernet --sessions 2000 --seed 7 --jobs 4 \
  > "$TMP/serve_gen_3_jobs4.txt"
cmp "$TMP/serve_gen_3.txt" "$TMP/serve_gen_3_jobs4.txt" \
  || { echo "serve summary differs between --jobs 1 and --jobs 4"; exit 1; }
"$BIN" serve "$TMP/gen-3-small.cimg" g_main ethernet --sessions 2000 --seed 7 --no-batch \
  > "$TMP/serve_gen_3_nobatch.txt"
if cmp -s "$TMP/serve_gen_3.txt" "$TMP/serve_gen_3_nobatch.txt"; then
  echo "serve --no-batch produced an identical summary; batching is inert"
  exit 1
fi

echo "==> serve telemetry smoke (--timeline bytes, --jobs cross-check, --slo-p99-us)"
# The timeline is recorded on the simulated clock and merged in shard
# order, so its bytes are pinned exactly like the summary. Regenerate
# after an intentional change with scripts/ci.sh --regen-fault-expectations.
"$BIN" serve "$TMP/gen-3-small.cimg" g_main ethernet --sessions 2000 --seed 7 \
  --timeline "$TMP/serve_gen_3_timeline.json" > /dev/null
if [[ "${1:-}" == "--regen-fault-expectations" ]]; then
  cp "$TMP/serve_gen_3_timeline.json" "scripts/expected/serve_gen_3_timeline.json"
  echo "regenerated scripts/expected/serve_gen_3_timeline.json"
else
  diff -u "scripts/expected/serve_gen_3_timeline.json" "$TMP/serve_gen_3_timeline.json" \
    || { echo "serve timeline drifted for gen seed 3"; exit 1; }
fi
"$BIN" serve "$TMP/gen-3-small.cimg" g_main ethernet --sessions 2000 --seed 7 --jobs 4 \
  --timeline "$TMP/serve_gen_3_timeline_jobs4.json" > /dev/null
cmp "$TMP/serve_gen_3_timeline.json" "$TMP/serve_gen_3_timeline_jobs4.json" \
  || { echo "serve timeline differs between --jobs 1 and --jobs 4"; exit 1; }
"$BIN" serve "$TMP/gen-3-small.cimg" g_main ethernet --sessions 2000 --seed 7 \
  --slo-p99-us 1 > "$TMP/serve_gen_3_slo.txt"
grep -q "^slo: target p99<=1us:" "$TMP/serve_gen_3_slo.txt" \
  || { echo "serve --slo-p99-us printed no SLO block"; exit 1; }
grep -q "worst window" "$TMP/serve_gen_3_slo.txt" \
  || { echo "serve --slo-p99-us attributed no worst window"; exit 1; }

echo "==> degraded-serve smoke (fault injection + replica failover, --jobs cross-check)"
# Under a seeded fault plan the serve summary must stay byte-identical per
# seed — the fault RNG rides the shard seed, never the worker schedule —
# and the run must actually exercise the failover path: a machine dies,
# replica-covered calls re-resolve without a solve, and recovery epochs
# land in the summary. Regenerate after an intentional change with:
#   scripts/ci.sh --regen-fault-expectations
"$BIN" serve "$TMP/gen-3-small.cimg" g_main ethernet --sessions 2000 --seed 7 \
  --fault-seed 7 --replicate > "$TMP/serve_gen_3_faults.txt"
if [[ "${1:-}" == "--regen-fault-expectations" ]]; then
  cp "$TMP/serve_gen_3_faults.txt" "scripts/expected/serve_gen_3_faults.txt"
  echo "regenerated scripts/expected/serve_gen_3_faults.txt"
else
  diff -u "scripts/expected/serve_gen_3_faults.txt" "$TMP/serve_gen_3_faults.txt" \
    || { echo "degraded serve summary drifted for gen seed 3"; exit 1; }
fi
"$BIN" serve "$TMP/gen-3-small.cimg" g_main ethernet --sessions 2000 --seed 7 \
  --fault-seed 7 --replicate --jobs 4 > "$TMP/serve_gen_3_faults_jobs4.txt"
cmp "$TMP/serve_gen_3_faults.txt" "$TMP/serve_gen_3_faults_jobs4.txt" \
  || { echo "degraded serve summary differs between --jobs 1 and --jobs 4"; exit 1; }
grep -q "^failover: " "$TMP/serve_gen_3_faults.txt" \
  || { echo "degraded serve reported no failover line"; exit 1; }
grep -Eq "^recovery: [1-9][0-9]* epoch" "$TMP/serve_gen_3_faults.txt" \
  || { echo "degraded serve recorded no recovery epoch"; exit 1; }
# The zero-fault seed is the explicit transparency case: byte-identical to
# the committed clean-wire expectation, inject line and all counters absent.
"$BIN" serve "$TMP/gen-3-small.cimg" g_main ethernet --sessions 2000 --seed 7 \
  --fault-seed 0 > "$TMP/serve_gen_3_fs0.txt"
cmp "$TMP/serve_gen_3.txt" "$TMP/serve_gen_3_fs0.txt" \
  || { echo "--fault-seed 0 perturbed the zero-fault serve summary"; exit 1; }

echo "==> perf smoke (BENCH_coign.json)"
# Records the perf trajectory: profile replay (sequential vs parallel
# workers), marshal-size cache hit rate, and the network sweep cold vs
# warm. The binary itself asserts the correctness half (byte-identical
# profiles, identical cut values, warm strictly faster).
target/release/perfsuite BENCH_coign.json
cat BENCH_coign.json

echo "CI OK"
