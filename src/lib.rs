//! Root crate of the Coign reproduction workspace.
//!
//! Re-exports the member crates so examples and integration tests can use
//! one import root. See `README.md` for the tour.

#![forbid(unsafe_code)]

pub use coign;
pub use coign_apps as apps;
pub use coign_com as com;
pub use coign_dcom as dcom;
pub use coign_flow as flow;
