//! The Coign tool chain as file-based commands.
//!
//! The paper's second usage model (§6): "Coign is applied onsite by the
//! application user or system administrator. The user enables application
//! profiling through a simple GUI … the GUI triggers post-profiling
//! analysis and writes the distribution model into the application. In
//! essence, the user has created a customized version of the distributed
//! application without any knowledge of the underlying details."
//!
//! This crate is that front end, minus the GUI: each command reads an
//! application image from disk, transforms it, and writes it back — the
//! instrumented binary is a real artifact that survives between commands.
//!
//! ```text
//! coign instrument octarine app.cimg     # insert the Coign runtime
//! coign check app.cimg [--json]          # static analysis, no profiling needed
//! coign profile app.cimg o_oldwp7 --jobs 4   # run scenarios (parallel), accumulate logs
//! coign analyze app.cimg ethernet        # cut the graph, realize the result
//! coign sweep app.cimg --json            # partition across a network grid (warm-started)
//! coign show app.cimg                    # inspect the configuration record
//! coign run app.cimg o_oldwp7            # execute distributed, report times
//! coign hotspots app.cimg                # communication hot spots (§6)
//! coign script app.cimg steps.txt        # profile a scripted scenario
//! coign dot app.cimg graph.dot           # export the ICC graph (Figs 4-8)
//! coign strip app.cimg                   # restore the original binary
//! ```

use coign::analysis::Distribution;
use coign::application::Application;
use coign::classifier::{ClassifierKind, InstanceClassifier};
use coign::config::RuntimeMode;
use coign::multiway::{replicate_for_distribution, ReplicaRouter, ReplicationPlan};
use coign::recovery::RecoveryConfig;
use coign::report;
use coign::rewriter;
use coign::runtime::{
    check_constraints, choose_distribution, derive_constraints, profile_scenarios_crosschecked,
    run_distributed_faulty_observed, run_distributed_recovering,
    run_distributed_recovering_observed,
};
use coign::sweep::{sweep, SweepGrid, SweepMode};
use coign_apps::scenarios::app_by_name;
use coign_com::{AppImage, ComError, ComResult, ComRuntime, MachineId};
use coign_dcom::{
    CallPolicy, Fault, FaultPlan, LinkSelector, NetworkModel, NetworkProfile, TimeWindow,
};
use coign_gen::explore::ExploreOptions;
use coign_gen::{GenSize, GenSpec, GeneratedApp};
use coign_obs::Obs;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// Samples per size when measuring a network profile.
const PROFILE_SAMPLES: usize = 40;
/// Seed for the CLI's deterministic measurements.
const SEED: u64 = 0x000C_0161;

/// Resolves the application that owns an image (by the image's name).
/// Generated images resolve through their name alone — `gen-<seed>-<size>`
/// *is* the application, re-derivable from the seed on any machine.
pub fn app_for_image(image: &AppImage) -> ComResult<Arc<dyn Application>> {
    let name = image.name.trim_end_matches(".exe");
    app_by_name(name)
        .or_else(|| coign_gen::app_for_name(name))
        .ok_or_else(|| {
            ComError::App(format!(
                "no application registered for image `{}` \
                 (known: octarine, photodraw, benefits, gen-<seed>-<size>)",
                image.name
            ))
        })
}

/// In-process memo of materialized generated images, keyed by (seed, size).
/// A process that resolves the same `gen:` address repeatedly (tests, the
/// perfsuite, multi-command drivers) pays generation + instrumentation at
/// most once and skips even the `stat` afterwards.
static GEN_IMAGE_CACHE: std::sync::OnceLock<
    std::sync::Mutex<std::collections::HashMap<GenSpec, PathBuf>>,
> = std::sync::OnceLock::new();

/// Resolves an image argument: a plain path passes through, while the
/// `gen:<seed>[:<size>]` form addresses a generated application — its
/// instrumented image is materialized on first use under the system temp
/// directory (atomically: temp file + rename), so
/// `coign check/profile/... gen:7` works with no explicit `coign gen
/// --emit` step.
///
/// Materialization is cached at two levels, both keyed by (seed, size):
/// an in-process memo short-circuits repeated resolutions, and the
/// on-disk artifact survives across processes (the tmp+rename write makes
/// concurrent materialization of the same spec safe — last rename wins
/// with identical bytes).
pub fn resolve_image_spec(spec: &str) -> ComResult<PathBuf> {
    let Some(rest) = spec.strip_prefix("gen:") else {
        return Ok(PathBuf::from(spec));
    };
    let gspec = coign_gen::parse_gen_spec(rest).ok_or_else(|| {
        ComError::App(format!(
            "bad generated-image address `{spec}` (use gen:<seed> or gen:<seed>:<size> \
             with size small|medium|large)"
        ))
    })?;
    let cache =
        GEN_IMAGE_CACHE.get_or_init(|| std::sync::Mutex::new(std::collections::HashMap::new()));
    if let Some(path) = cache.lock().expect("gen image cache").get(&gspec) {
        if path.exists() {
            return Ok(path.clone());
        }
    }
    let dir = std::env::temp_dir().join("coign-gen");
    std::fs::create_dir_all(&dir)
        .map_err(|e| ComError::App(format!("cannot create {}: {e}", dir.display())))?;
    let path = dir.join(format!("{}.cimg", gspec.stem()));
    if !path.exists() {
        let app = GeneratedApp::new(gspec);
        let mut image = app.image();
        let classifier = InstanceClassifier::new(ClassifierKind::Ifcb);
        rewriter::instrument(&mut image, &classifier);
        let tmp = dir.join(format!("{}.cimg.tmp-{}", gspec.stem(), std::process::id()));
        std::fs::write(&tmp, image.encode())
            .map_err(|e| ComError::App(format!("cannot write {}: {e}", tmp.display())))?;
        std::fs::rename(&tmp, &path)
            .map_err(|e| ComError::App(format!("cannot move {} into place: {e}", tmp.display())))?;
    }
    cache
        .lock()
        .expect("gen image cache")
        .insert(gspec, path.clone());
    Ok(path)
}

/// Parses a network name.
pub fn network_by_name(name: &str) -> ComResult<NetworkModel> {
    Ok(match name {
        "ethernet" | "10baset" => NetworkModel::ethernet_10baset(),
        "isdn" => NetworkModel::isdn(),
        "atm" => NetworkModel::atm155(),
        "san" => NetworkModel::san(),
        other => {
            return Err(ComError::App(format!(
                "unknown network `{other}` (use ethernet, isdn, atm, or san)"
            )))
        }
    })
}

fn load(path: &Path) -> ComResult<AppImage> {
    let bytes = std::fs::read(path)
        .map_err(|e| ComError::App(format!("cannot read {}: {e}", path.display())))?;
    AppImage::decode(&bytes)
}

fn store(path: &Path, image: &AppImage) -> ComResult<()> {
    std::fs::write(path, image.encode())
        .map_err(|e| ComError::App(format!("cannot write {}: {e}", path.display())))
}

/// `coign instrument <app> <image>` — writes a freshly instrumented image.
pub fn cmd_instrument(app_name: &str, path: &Path) -> ComResult<String> {
    let app = app_by_name(app_name)
        .or_else(|| coign_gen::app_for_name(app_name))
        .ok_or_else(|| ComError::App(format!("unknown application `{app_name}`")))?;
    let mut image = app.image();
    let classifier = InstanceClassifier::new(ClassifierKind::Ifcb);
    rewriter::instrument(&mut image, &classifier);
    store(path, &image)?;
    Ok(format!(
        "instrumented {} -> {} ({} bytes; {} loads first)",
        image.name,
        path.display(),
        image.encode().len(),
        rewriter::COIGN_RTE_DLL
    ))
}

/// `coign check <image> [--json]` — the static analysis pass: remotability
/// of every registered interface, satisfiability of the full constraint
/// set, and well-formedness of the image itself, with **no profiling data
/// required**. Returns `Ok(report)` when no error-level diagnostic fired
/// (exit 0) and `Err(report)` otherwise (exit 1); both sides carry the
/// complete rendered report, human or JSON.
pub fn cmd_check(path: &Path, json: bool) -> Result<String, String> {
    let image = load(path).map_err(|e| format!("error: {e}"))?;
    let app = app_for_image(&image).map_err(|e| format!("error: {e}"))?;
    let sink = coign::lint::check_app_image(&image, app.as_ref());
    let report = if json {
        sink.render_json()
    } else {
        sink.render_human()
    };
    if sink.has_errors() {
        Err(report)
    } else {
        Ok(report)
    }
}

/// `coign profile <image> <scenario>... [--jobs N]` — runs one or more
/// profiling scenarios and accumulates the summarized logs into the
/// image's configuration record.
///
/// With `--jobs N > 1`, scenarios run on worker threads; the merged log
/// and the stored classifier table are byte-identical to a sequential
/// pass regardless of `N` (see
/// [`coign::runtime::profile_scenarios_parallel`]).
pub fn cmd_profile(path: &Path, scenarios: &[&str], jobs: usize) -> ComResult<String> {
    cmd_profile_observed(path, scenarios, jobs, None)
}

/// [`cmd_profile`] with an optional observability bundle: the command runs
/// under a `profile` phase span, each scenario under a `scenario:<name>`
/// span, and every intercepted call emits an `icc_call` instant.
pub fn cmd_profile_observed(
    path: &Path,
    scenarios: &[&str],
    jobs: usize,
    obs: Option<&Obs>,
) -> ComResult<String> {
    let _span = obs.map(|o| o.tracer.phase_span("profile"));
    if scenarios.is_empty() {
        return Err(ComError::App(
            "no scenario named — run `coign profile <image> <scenario>...`".to_string(),
        ));
    }
    let mut image = load(path)?;
    let record = rewriter::read_config(&image)?;
    let app = app_for_image(&image)?;
    let classifier = Arc::new(InstanceClassifier::decode(&record.classifier)?);
    let (profile, violations) =
        profile_scenarios_crosschecked(app.as_ref(), scenarios, &classifier, jobs, obs)?;
    rewriter::accumulate_profile(&mut image, &profile)?;
    // Persist the classifier's grown descriptor table too.
    let mut record = rewriter::read_config(&image)?;
    record.classifier = classifier.encode();
    image.set_config_record(record.encode());
    store(path, &image)?;
    if let Some(o) = obs {
        o.registry
            .counter("coign_effect_violations")
            .add(violations.len() as u64);
    }
    let mut out = format!(
        "profiled {} ({} worker(s)): {} messages, {} bytes ({} classifications so far)",
        scenarios.join(", "),
        jobs.max(1).min(scenarios.len()),
        profile.total_messages(),
        profile.total_bytes(),
        classifier.classification_count(),
    );
    for v in &violations {
        out.push_str(&format!(
            "\nwarning COIGN045: {}::{} ({}) declared `{}` but its instance state changed during profiling",
            v.class,
            v.method,
            v.interface,
            v.declared.label(),
        ));
    }
    Ok(out)
}

/// `coign analyze <image> [network]` — chooses a distribution for the
/// accumulated profile and realizes it in the image.
pub fn cmd_analyze(path: &Path, network_name: &str) -> ComResult<String> {
    cmd_analyze_observed(path, network_name, None)
}

/// [`cmd_analyze`] with an optional observability bundle: the command runs
/// under an `analyze` phase span, with nested `mincut` (graph cutting) and
/// `rewrite` (image realization) spans.
pub fn cmd_analyze_observed(
    path: &Path,
    network_name: &str,
    obs: Option<&Obs>,
) -> ComResult<String> {
    let _span = obs.map(|o| o.tracer.phase_span("analyze"));
    let mut image = load(path)?;
    let record = rewriter::read_config(&image)?;
    if record.profile.total_messages() == 0 {
        return Err(ComError::App(
            "no profile accumulated yet — run `coign profile` first".to_string(),
        ));
    }
    let app = app_for_image(&image)?;
    let classifier = InstanceClassifier::decode(&record.classifier)?;
    let network = network_by_name(network_name)?;
    let profile = NetworkProfile::measure(&network, PROFILE_SAMPLES, SEED);
    let distribution: Distribution = {
        let _mincut = obs.map(|o| o.tracer.phase_span("mincut"));
        choose_distribution(app.as_ref(), &record.profile, &profile)?
    };
    let (client, server) = (
        distribution.count_on(MachineId::CLIENT),
        distribution.count_on(MachineId::SERVER),
    );
    let predicted = distribution.predicted_comm_us;
    {
        let _rewrite = obs.map(|o| o.tracer.phase_span("rewrite"));
        rewriter::realize(&mut image, &classifier, &distribution)?;
        store(path, &image)?;
    }
    Ok(format!(
        "analyzed for {}: {client} classification(s) on the client, {server} on the server; \
         predicted communication {:.1} ms; {} now loads first",
        profile.network_name,
        predicted / 1000.0,
        rewriter::COIGN_LITE_DLL,
    ))
}

/// `coign sweep <image> [--json]` — evaluates the min-cut partition
/// across a fixed grid of network latency/bandwidth points (warm-starting
/// each solve from its predecessor and cross-validating against a cold
/// Dinic solve) and reports where the best distribution changes.
pub fn cmd_sweep(path: &Path, json: bool) -> ComResult<String> {
    cmd_sweep_observed(path, json, None)
}

/// [`cmd_sweep`] with an optional observability bundle: the command runs
/// under a `sweep` phase span and the registry gains the warm/cold solve
/// counts. The sweep itself always runs [`SweepMode::WarmValidated`] — one
/// warm-started solve per grid point, each cross-validated by a cold Dinic
/// solve — so both counters equal the number of grid points.
pub fn cmd_sweep_observed(path: &Path, json: bool, obs: Option<&Obs>) -> ComResult<String> {
    let _span = obs.map(|o| o.tracer.phase_span("sweep"));
    let image = load(path)?;
    let record = rewriter::read_config(&image)?;
    if record.profile.total_messages() == 0 {
        return Err(ComError::App(
            "no profile accumulated yet — run `coign profile` first".to_string(),
        ));
    }
    let app = app_for_image(&image)?;
    let grid = SweepGrid::paper_networks();
    let result = sweep(
        app.as_ref(),
        &record.profile,
        &grid,
        SweepMode::WarmValidated,
    )?;
    if let Some(o) = obs {
        let points = result.points.len() as u64;
        o.registry
            .counter("coign_sweep_warm_solves_total")
            .add(points);
        o.registry
            .counter("coign_sweep_cold_solves_total")
            .add(points);
    }
    if json {
        return Ok(render_sweep_json(&grid, &result));
    }
    let mut out = format!(
        "partition sweep over {} network point(s), {} distinct partition(s):\n",
        result.points.len(),
        result.distinct_partitions(),
    );
    out.push_str("  latency_us bandwidth_B/s    cut_value  predicted_ms  client/server\n");
    for p in &result.points {
        out.push_str(&format!(
            "  {:>10} {:>13} {:>12} {:>13.3} {:>8}/{}\n",
            p.latency_us,
            p.bandwidth_bps,
            p.cut_value,
            p.predicted_comm_us / 1000.0,
            p.client.len(),
            p.server.len(),
        ));
    }
    Ok(out)
}

fn render_sweep_json(grid: &SweepGrid, result: &coign::sweep::SweepResult) -> String {
    let nums = |v: &[f64]| {
        v.iter()
            .map(|x| format!("{x}"))
            .collect::<Vec<_>>()
            .join(",")
    };
    let mut out = String::from("{");
    out.push_str(&format!(
        "\"grid\":{{\"latencies_us\":[{}],\"bandwidths_bps\":[{}]}},",
        nums(&grid.latencies_us),
        nums(&grid.bandwidths_bps),
    ));
    out.push_str(&format!(
        "\"distinct_partitions\":{},\"points\":[",
        result.distinct_partitions()
    ));
    for (i, p) in result.points.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let server: Vec<String> = p.server.iter().map(|c| format!("\"{c}\"")).collect();
        out.push_str(&format!(
            "{{\"latency_us\":{},\"bandwidth_bps\":{},\"cut_value\":{},\
             \"predicted_comm_us\":{:.3},\"client\":{},\"server\":[{}]}}",
            p.latency_us,
            p.bandwidth_bps,
            p.cut_value,
            p.predicted_comm_us,
            p.client.len(),
            server.join(","),
        ));
    }
    out.push_str("]}");
    out
}

/// Options for `coign place` (`--machines`, `--replicate`, `--json`).
#[derive(Debug, Clone)]
pub struct PlaceOptions {
    /// Number of machines in the topology (≥ 2).
    pub machines: usize,
    /// Permit replication of classes the lint stages prove immutable.
    pub replicate: bool,
    /// Emit the machine-readable JSON record instead of the human report.
    pub json: bool,
}

impl Default for PlaceOptions {
    fn default() -> Self {
        PlaceOptions {
            machines: 3,
            replicate: false,
            json: false,
        }
    }
}

/// `coign place <image> <scenario> [network] [--machines N] [--replicate]
/// [--json]` — partitions the accumulated profile across N machines with
/// the isolation-heuristic multiway cut plus exact warm refinement.
///
/// With `--replicate`, classes the stage-4/5 lints prove immutable
/// ([`coign::lint::analyze_replication`]) may additionally be *copied* onto
/// machines whose local traffic they serve, whenever the copy strictly
/// reduces modeled cut traffic. The report is rendered purely from the
/// resulting placement, so on an application with no replicable classes
/// `--replicate` output is byte-identical to the plain multiway placement.
pub fn cmd_place(
    path: &Path,
    scenario: &str,
    network_name: &str,
    opts: &PlaceOptions,
) -> ComResult<String> {
    cmd_place_observed(path, scenario, network_name, opts, None)
}

/// [`cmd_place`] with an optional observability bundle: the command runs
/// under a `place` phase span and the registry gains
/// `coign_replicas_placed` / `coign_replication_gain_us` counters.
pub fn cmd_place_observed(
    path: &Path,
    scenario: &str,
    network_name: &str,
    opts: &PlaceOptions,
    obs: Option<&Obs>,
) -> ComResult<String> {
    use coign::multiway::{
        analyze_multiway_with_replication, anchor_unpinned_machines, derive_tier_constraints,
        ReplicationPlan,
    };

    let _span = obs.map(|o| o.tracer.phase_span("place"));
    let image = load(path)?;
    let record = rewriter::read_config(&image)?;
    if record.profile.total_messages() == 0 {
        return Err(ComError::App(
            "no profile accumulated yet — run `coign profile` first".to_string(),
        ));
    }
    if !record.profile.scenarios.iter().any(|s| s == scenario) {
        return Err(ComError::App(format!(
            "scenario `{scenario}` was never profiled into this image (profiled: {})",
            record.profile.scenarios.join(", ")
        )));
    }
    if opts.machines < 2 {
        return Err(ComError::App(
            "placement needs at least two machines (--machines N)".to_string(),
        ));
    }
    let app = app_for_image(&image)?;
    let rt = ComRuntime::single_machine();
    app.register(&rt);
    let registry = rt.registry();
    let network = network_by_name(network_name)?;
    let profile = NetworkProfile::measure(&network, PROFILE_SAMPLES, SEED);

    // Replication legality comes exclusively from the stage-4/5 lints:
    // without `--replicate` (or without annotation evidence) the plan is
    // empty and the solver provably places zero replicas.
    let plan = if opts.replicate {
        let mut sink = coign::lint::DiagnosticSink::new();
        let report = coign::lint::analyze_replication(registry, &mut sink);
        ReplicationPlan::from_report(&report, &record.profile, registry)
    } else {
        ReplicationPlan::empty()
    };

    let mut constraints = derive_tier_constraints(
        &record.profile,
        registry,
        MachineId::CLIENT,
        MachineId((opts.machines - 1) as u16),
    );
    let extra = anchor_unpinned_machines(&record.profile, &profile, &constraints, opts.machines)?;
    constraints.extend(extra);

    let placement = {
        let _mincut = obs.map(|o| o.tracer.phase_span("mincut"));
        analyze_multiway_with_replication(
            &record.profile,
            &profile,
            &constraints,
            opts.machines,
            &plan,
        )?
    };
    if let Some(o) = obs {
        o.registry
            .counter("coign_replicas_placed")
            .add(placement.replicas.len() as u64);
        o.registry
            .counter("coign_replication_gain_us")
            .add(placement.replication_gain_us().round() as u64);
    }

    let label = |id: coign::ClassificationId| {
        coign::lint::classification_label(&record.profile, registry, id)
    };
    // Name-sorted per-machine rosters, deterministically.
    let mut rosters: Vec<Vec<String>> = vec![Vec::new(); opts.machines];
    for (class, machine) in &placement.distribution.placement {
        rosters[machine.0 as usize].push(label(*class));
    }
    for roster in &mut rosters {
        roster.sort();
    }

    if opts.json {
        let mut out = String::from("{");
        out.push_str(&format!(
            "\"app\":\"{}\",\"scenario\":\"{scenario}\",\"network\":\"{}\",\"machines\":{},",
            image.name, profile.network_name, opts.machines
        ));
        out.push_str(&format!(
            "\"heuristic_cut_us\":{:.3},\"predicted_comm_us\":{:.3},\
             \"replicated_comm_us\":{:.3},\"replication_gain_us\":{:.3},",
            placement.heuristic_cut_us,
            placement.distribution.predicted_comm_us,
            placement.replicated_comm_us,
            placement.replication_gain_us(),
        ));
        out.push_str("\"placement\":[");
        for (m, roster) in rosters.iter().enumerate() {
            if m > 0 {
                out.push(',');
            }
            let classes: Vec<String> = roster.iter().map(|c| format!("\"{c}\"")).collect();
            out.push_str(&format!(
                "{{\"machine\":{m},\"classes\":[{}]}}",
                classes.join(",")
            ));
        }
        out.push_str("],\"replicas\":[");
        for (i, replica) in placement.replicas.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"class\":\"{}\",\"machine\":{},\"gain_us\":{:.3}}}",
                label(replica.class),
                replica.machine.0,
                replica.gain_us,
            ));
        }
        out.push_str("]}");
        return Ok(out);
    }

    let mut out = format!(
        "placed {} for {scenario} across {} machine(s) on {}:\n",
        image.name, opts.machines, profile.network_name
    );
    for (m, roster) in rosters.iter().enumerate() {
        out.push_str(&format!("  machine {m}: {}\n", roster.join(", ")));
    }
    out.push_str(&format!(
        "cut: heuristic {:.3} ms, refined {:.3} ms\n",
        placement.heuristic_cut_us / 1000.0,
        placement.distribution.predicted_comm_us / 1000.0,
    ));
    if placement.replicas.is_empty() {
        out.push_str("replicas: none\n");
    } else {
        out.push_str(&format!(
            "replicas: {} (gain {:.3} ms, replicated traffic {:.3} ms)\n",
            placement.replicas.len(),
            placement.replication_gain_us() / 1000.0,
            placement.replicated_comm_us / 1000.0,
        ));
        for replica in &placement.replicas {
            out.push_str(&format!(
                "  + {} -> machine {} (gain {:.3} ms)\n",
                label(replica.class),
                replica.machine.0,
                replica.gain_us / 1000.0,
            ));
        }
    }
    Ok(out)
}

/// Fault-injection options of `coign run` (`--fault-plan`, `--fault-seed`,
/// `--summary`).
#[derive(Debug, Clone, Default)]
pub struct RunFaults {
    /// Path to a textual fault plan (see [`FaultPlan::parse`]); `None`
    /// leaves the wire perfect.
    pub plan_path: Option<std::path::PathBuf>,
    /// Seed for the fault RNG, independent of the transport jitter seed.
    pub fault_seed: u64,
    /// Emit the full machine-diffable report instead of the one-line
    /// human summary.
    pub summary: bool,
}

/// `coign run <image> <scenario> [network] [--fault-plan FILE]
/// [--fault-seed N] [--summary]` — executes a realized image distributed,
/// optionally over a faulty wire.
pub fn cmd_run(
    path: &Path,
    scenario: &str,
    network_name: &str,
    faults: &RunFaults,
) -> ComResult<String> {
    cmd_run_observed(path, scenario, network_name, faults, None)
}

/// [`cmd_run`] with an optional observability bundle: the command runs
/// under a `run` phase span, every cut-crossing call emits an `icc_call`
/// instant at its simulated-clock time, fault-layer events are traced, the
/// flight recorder retains the tail of cut-crossing traffic (dumped on
/// `Timeout`/`Partitioned`/`MachineDown`), and the report's counters are
/// added to the registry.
pub fn cmd_run_observed(
    path: &Path,
    scenario: &str,
    network_name: &str,
    faults: &RunFaults,
    obs: Option<&Obs>,
) -> ComResult<String> {
    let _span = obs.map(|o| o.tracer.phase_span("run"));
    let image = load(path)?;
    let record = rewriter::read_config(&image)?;
    if record.mode != RuntimeMode::Distributed {
        return Err(ComError::App(
            "image is not realized — run `coign analyze` first".to_string(),
        ));
    }
    let distribution = record
        .distribution
        .ok_or_else(|| ComError::App("record carries no distribution".to_string()))?;
    let app = app_for_image(&image)?;
    // Fast-fail: refuse to execute a distribution whose constraint set no
    // longer holds (e.g. the record was realized against different
    // metadata). The error carries the `coign check` diagnostic report.
    check_constraints(app.as_ref(), &record.profile)?;
    let classifier = Arc::new(InstanceClassifier::decode(&record.classifier)?);
    let network = network_by_name(network_name)?;
    let plan = match &faults.plan_path {
        None => FaultPlan::none(),
        Some(plan_path) => {
            let text = std::fs::read_to_string(plan_path)
                .map_err(|e| ComError::App(format!("cannot read {}: {e}", plan_path.display())))?;
            FaultPlan::parse(&text)?
        }
    };
    let report = run_distributed_faulty_observed(
        app.as_ref(),
        scenario,
        &classifier,
        &distribution,
        network,
        SEED,
        plan,
        CallPolicy::default(),
        faults.fault_seed,
        obs,
    )?;
    if faults.summary {
        return Ok(format!("scenario={scenario}\n{}", report.summary()));
    }
    let mut out = format!(
        "ran {scenario} distributed: {} instance(s) on the server of {}, \
         {:.3} s communication, {:.3} s total, {} cross-machine call(s)",
        report.server_instances(),
        report.total_instances(),
        report.comm_secs(),
        report.exec_secs(),
        report.stats.cross_machine_calls,
    );
    if !report.faults.is_clean() {
        out.push_str(&format!(
            "\nfaults: {} drop(s), {} timeout(s), {} retry(s), {} failed call(s), \
             {} local fallback(s), {:.3} s wasted",
            report.faults.drops,
            report.faults.timeouts,
            report.faults.retries,
            report.faults.failed_calls,
            report.faults.fallbacks,
            report.faults.wasted_us as f64 / 1e6,
        ));
    }
    Ok(out)
}

/// Options for `coign chaos`.
#[derive(Debug, Clone)]
pub struct ChaosOptions {
    /// Master seed: trial `t` derives its plan and fault schedule from
    /// `seed` and `t` alone, so the summary is byte-identical across
    /// repeated runs and across `--jobs` settings.
    pub seed: u64,
    /// Number of trials to run.
    pub trials: usize,
    /// Worker threads (1 = sequential; the summary does not depend on it).
    pub jobs: usize,
    /// `--replicate`: install the lint-derived replica routing table, so
    /// machine-death trials whose victims are fully replica-covered
    /// recover by pure failover (no solve) — and the invariant checker
    /// enforces exactly that.
    pub replicate: bool,
}

impl Default for ChaosOptions {
    fn default() -> Self {
        ChaosOptions {
            seed: 0,
            trials: 8,
            jobs: 1,
            replicate: false,
        }
    }
}

/// A bounded fault window inside the run horizon.
fn chaos_window(rng: &mut StdRng, horizon_us: u64) -> TimeWindow {
    let from = rng.gen_range(0..horizon_us / 2);
    let len = rng.gen_range(horizon_us / 20..=horizon_us / 2).max(1);
    TimeWindow::new(from, from.saturating_add(len))
}

/// Draws one seeded random fault plan: 1–3 faults over the scenario's
/// fault-free horizon. Machine-death faults always target the server and
/// are permanent, so every drawn death must end in a recovery, never a
/// comeback.
fn chaos_plan(rng: &mut StdRng, horizon_us: u64) -> FaultPlan {
    let horizon_us = horizon_us.max(40);
    let mut plan = FaultPlan::none();
    for _ in 0..rng.gen_range(1..=3u32) {
        match rng.gen_range(0..4u32) {
            0 => {
                let probability = rng.gen_range(5..=30u32) as f64 / 100.0;
                plan.push(Fault::Loss {
                    link: LinkSelector::AllLinks,
                    probability,
                    window: chaos_window(rng, horizon_us),
                });
            }
            1 => {
                let factor = rng.gen_range(2..=8u32) as f64;
                plan.push(Fault::LatencySpike {
                    link: LinkSelector::AllLinks,
                    factor,
                    window: chaos_window(rng, horizon_us),
                });
            }
            2 => plan.push(Fault::Partition {
                link: LinkSelector::Link(MachineId::CLIENT, MachineId::SERVER),
                window: chaos_window(rng, horizon_us),
            }),
            _ => {
                let from = rng.gen_range(horizon_us / 8..=horizon_us / 2);
                plan.push(Fault::MachineDown {
                    machine: MachineId::SERVER,
                    window: TimeWindow::new(from, u64::MAX),
                });
            }
        }
    }
    plan
}

/// One finished chaos trial, rendered and judged.
struct ChaosTrial {
    line: String,
    outcome: &'static str,
    recoveries: u64,
    migrations: u64,
    violations: Vec<String>,
}

/// Runs trial `index` of the chaos schedule: draw a plan, execute the
/// scenario under the self-healing runtime, check the invariants.
#[allow(clippy::too_many_arguments)]
fn chaos_trial(
    app: &dyn Application,
    scenario: &str,
    classifier: &InstanceClassifier,
    distribution: &Distribution,
    profile: &coign::IccProfile,
    network: &NetworkModel,
    master_seed: u64,
    horizon_us: u64,
    index: usize,
    replicas: Option<&ReplicaRouter>,
    obs: Option<&Obs>,
) -> ComResult<ChaosTrial> {
    let trial_seed = master_seed ^ (index as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    let mut rng = StdRng::seed_from_u64(trial_seed);
    let plan = chaos_plan(&mut rng, horizon_us);
    let faults_desc = plan
        .faults()
        .iter()
        .map(|f| f.to_string())
        .collect::<Vec<_>>()
        .join("; ");
    let fork = Arc::new(classifier.fork());
    let run = run_distributed_recovering_observed(
        app,
        scenario,
        &fork,
        distribution,
        profile,
        network.clone(),
        SEED,
        plan,
        CallPolicy::default(),
        trial_seed,
        RecoveryConfig {
            replicas: replicas.cloned(),
            ..RecoveryConfig::default()
        },
        obs,
    )?;
    let coord = &run.coordinator;
    let mut violations = Vec::new();
    // Invariant: every trial either completes, is recovered, or fails with
    // a *typed* transport error — never an untyped crash.
    let outcome = match &run.outcome {
        Ok(()) if coord.recovery_count() > 0 => "recovered",
        Ok(()) => "ok",
        Err(ComError::Timeout { .. }) => "failed(timeout)",
        Err(ComError::Partitioned { .. }) => "failed(partitioned)",
        Err(ComError::MachineDown(_)) => "failed(machine_down)",
        Err(other) => {
            violations.push(format!("untyped failure: {other}"));
            "failed(untyped)"
        }
    };
    // Invariant: no call ever executes twice, whatever the retry protocol did.
    if coord.double_executions() != 0 {
        violations.push(format!(
            "{} double-executed call(s)",
            coord.double_executions()
        ));
    }
    // Invariant: the final placement satisfies every constraint with the
    // dead machines excluded.
    let placement = match coord.validate() {
        Ok(()) => "ok",
        Err(detail) => {
            violations.push(format!("placement: {detail}"));
            "VIOLATED"
        }
    };
    // Invariant: recovery re-solves are warm-started from the base flow —
    // and a recovery whose every event resolved by replica failover must
    // not have run any solve at all.
    let events = coord.events();
    let via_replicas = events.iter().filter(|e| e.via_replicas).count();
    if coord.recovery_count() > 0 {
        let solver_recoveries = events.len() - via_replicas;
        if solver_recoveries > 0 && coord.warm_solves() == 0 {
            violations.push("recovery re-solve was not warm-started".to_string());
        }
        if solver_recoveries == 0 && coord.warm_solves() != 0 {
            violations.push(format!(
                "{} warm solve(s) despite replica-covered failover",
                coord.warm_solves()
            ));
        }
        if coord.cold_solves() != 1 {
            violations.push(format!(
                "{} cold solve(s), expected exactly the base solve",
                coord.cold_solves()
            ));
        }
    }
    let mut line = format!(
        "trial {index:02} faults=[{faults_desc}] outcome={outcome} recoveries={} epoch={} \
         warm={} migrations={} redelivered={} replayed={} double={} placement={placement}",
        coord.recovery_count(),
        coord.epoch(),
        coord.warm_solves(),
        coord.migration_count(),
        coord.redelivered_calls(),
        coord.replayed_completions(),
        coord.double_executions(),
    );
    // Replica columns only render when a router is installed, keeping the
    // classic summary bytes untouched.
    if replicas.is_some() {
        line.push_str(&format!(
            " failovers={} via_replicas={via_replicas}",
            coord.replica_failovers(),
        ));
    }
    Ok(ChaosTrial {
        line,
        outcome,
        recoveries: coord.recovery_count(),
        migrations: coord.migration_count(),
        violations,
    })
}

/// `coign chaos <image> <scenario> [network] [--seed N] [--trials N]
/// [--jobs N]` — the chaos harness: N trials of the scenario under seeded
/// random fault plans with the self-healing runtime enabled, each trial
/// checked against the recovery invariants (typed outcomes only, zero
/// double executions, constraint-satisfying post-recovery placements,
/// warm-started re-solves). The summary is byte-identical for a given
/// seed, across repeated runs and across `--jobs`.
pub fn cmd_chaos(
    path: &Path,
    scenario: &str,
    network_name: &str,
    opts: &ChaosOptions,
) -> ComResult<String> {
    cmd_chaos_observed(path, scenario, network_name, opts, None)
}

/// [`cmd_chaos`] with an optional observability bundle: trials emit the
/// full fault/recovery instrumentation (breaker transitions, `recovery`
/// instants, flight-recorder dumps) and the recovery counters accumulate
/// in the registry across trials.
pub fn cmd_chaos_observed(
    path: &Path,
    scenario: &str,
    network_name: &str,
    opts: &ChaosOptions,
    obs: Option<&Obs>,
) -> ComResult<String> {
    let _span = obs.map(|o| o.tracer.phase_span("chaos"));
    let image = load(path)?;
    let record = rewriter::read_config(&image)?;
    if record.mode != RuntimeMode::Distributed {
        return Err(ComError::App(
            "image is not realized — run `coign analyze` first".to_string(),
        ));
    }
    let distribution = record
        .distribution
        .ok_or_else(|| ComError::App("record carries no distribution".to_string()))?;
    let app = app_for_image(&image)?;
    check_constraints(app.as_ref(), &record.profile)?;
    let classifier = Arc::new(InstanceClassifier::decode(&record.classifier)?);
    let network = network_by_name(network_name)?;
    // A fault-free probe run fixes the horizon the fault windows are drawn
    // from (and proves the scenario is healthy before we break it).
    let probe = run_distributed_recovering(
        app.as_ref(),
        scenario,
        &classifier,
        &distribution,
        &record.profile,
        network.clone(),
        SEED,
        FaultPlan::none(),
        CallPolicy::default(),
        0,
        RecoveryConfig::default(),
    )?;
    probe.outcome?;
    let horizon_us = probe.report.clock_us.max(1);
    // With `--replicate`, every trial runs with the same lint-derived
    // routing table a serve fleet would install.
    let replicas = if opts.replicate {
        let net_profile = NetworkProfile::measure(&network, PROFILE_SAMPLES, SEED);
        derive_replica_router(app.as_ref(), &record.profile, &net_profile, &distribution)
    } else {
        None
    };

    let jobs = opts.jobs.max(1).min(opts.trials.max(1));
    let slots: Vec<std::sync::Mutex<Option<ComResult<ChaosTrial>>>> = (0..opts.trials)
        .map(|_| std::sync::Mutex::new(None))
        .collect();
    let next = std::sync::atomic::AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..jobs {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                if i >= opts.trials {
                    break;
                }
                let trial = chaos_trial(
                    app.as_ref(),
                    scenario,
                    &classifier,
                    &distribution,
                    &record.profile,
                    &network,
                    opts.seed,
                    horizon_us,
                    i,
                    replicas.as_ref(),
                    obs,
                );
                *slots[i].lock().expect("chaos slot") = Some(trial);
            });
        }
    });

    let mut out = format!(
        "chaos scenario={scenario} network={network_name} seed={} trials={}{}\n",
        opts.seed,
        opts.trials,
        if replicas.is_some() {
            " replicate=on"
        } else {
            ""
        },
    );
    let (mut ok, mut recovered, mut failed) = (0usize, 0usize, 0usize);
    let (mut recoveries, mut migrations) = (0u64, 0u64);
    let mut violations = Vec::new();
    for (i, slot) in slots.into_iter().enumerate() {
        let trial = slot
            .into_inner()
            .expect("chaos slot lock")
            .expect("chaos worker exited without reporting a result")?;
        out.push_str(&trial.line);
        out.push('\n');
        match trial.outcome {
            "ok" => ok += 1,
            "recovered" => recovered += 1,
            _ => failed += 1,
        }
        recoveries += trial.recoveries;
        migrations += trial.migrations;
        violations.extend(
            trial
                .violations
                .into_iter()
                .map(|v| format!("trial {i:02}: {v}")),
        );
    }
    out.push_str(&format!(
        "totals: ok={ok} recovered={recovered} failed={failed} \
         recoveries={recoveries} migrations={migrations}\n"
    ));
    if violations.is_empty() {
        out.push_str("invariants: ok\n");
        Ok(out)
    } else {
        out.push_str(&format!("invariants: {} VIOLATION(S)\n", violations.len()));
        for violation in &violations {
            out.push_str(&format!("  {violation}\n"));
        }
        Err(ComError::App(out))
    }
}

/// Options for `coign serve`.
#[derive(Debug, Clone)]
pub struct ServeCliOptions {
    /// Total simulated sessions.
    pub sessions: u64,
    /// Independently-clocked shards (the summary depends on it).
    pub shards: usize,
    /// Worker threads (the summary does not depend on it).
    pub jobs: usize,
    /// Master seed for arrival jitter, network jitter, and think times.
    pub seed: u64,
    /// Per-link batching (`--no-batch` clears it).
    pub batching: bool,
    /// Batch coalescing window, simulated µs.
    pub window_us: u64,
    /// Emit the machine-readable JSON record instead of the human report.
    pub json: bool,
    /// `--timeline PATH`: write the simulated-time series there (`.csv`
    /// extension selects CSV, anything else JSON; `-` appends a sparkline
    /// dashboard to the report instead of writing a file).
    pub timeline: Option<String>,
    /// `--timeline-window US`: width of the telemetry windows. Distinct
    /// from `--window`, which is the batch coalescing window.
    pub timeline_window_us: u64,
    /// `--slo-p99-us N`: evaluate a per-window p99 latency target and
    /// report violations plus worst-window attribution.
    pub slo_p99_us: Option<u64>,
    /// `--trace-sample N`: emit causal spans for every Nth session into
    /// the global `--trace` file (0 = no session tracing).
    pub trace_sample: u64,
    /// `--fault-plan FILE`: inject faults per the textual plan (see
    /// [`FaultPlan::parse`]); `None` leaves the wire perfect.
    pub fault_plan: Option<PathBuf>,
    /// `--fault-seed N`: synthesize a seeded chaos plan over the run's
    /// fault-free horizon (0 = no faults; ignored under `--fault-plan`).
    pub fault_seed: u64,
    /// `--replicate`: serve lint-proved immutable classes from replica
    /// copies, so a machine death fails over without a re-solve.
    pub replicate: bool,
}

impl Default for ServeCliOptions {
    fn default() -> Self {
        let base = coign::ServeOptions::default();
        ServeCliOptions {
            sessions: base.sessions,
            shards: base.shards,
            jobs: 1,
            seed: 0,
            batching: true,
            window_us: base.window_us,
            json: false,
            timeline: None,
            // 100ms of simulated time per window: long serve runs span
            // minutes of simulated time, so this keeps the series around a
            // thousand points with enough completions per window (tens)
            // for the windowed p99 to be statistically meaningful — and
            // keeps recorder overhead low. Narrow with --timeline-window
            // for burst forensics.
            timeline_window_us: 100_000,
            slo_p99_us: None,
            trace_sample: 0,
            fault_plan: None,
            fault_seed: 0,
            replicate: false,
        }
    }
}

/// Derives the replica routing table for a realized distribution: the
/// stage-4/5 lints prove which classes are immutable
/// ([`coign::lint::analyze_replication`]), the greedy pass copies them
/// where a copy pays ([`replicate_for_distribution`]), and the router
/// indexes the result home-first. `None` when no class is provably
/// replicable or no copy strictly reduces modeled cut traffic.
fn derive_replica_router(
    app: &dyn Application,
    profile: &coign::IccProfile,
    net_profile: &NetworkProfile,
    distribution: &Distribution,
) -> Option<ReplicaRouter> {
    let rt = ComRuntime::single_machine();
    app.register(&rt);
    let registry = rt.registry();
    let mut sink = coign::lint::DiagnosticSink::new();
    let report = coign::lint::analyze_replication(registry, &mut sink);
    let plan = ReplicationPlan::from_report(&report, profile, registry);
    let machines = distribution
        .placement
        .values()
        .map(|m| m.0 as usize + 1)
        .max()
        .unwrap_or(2)
        .max(2);
    let replicas =
        replicate_for_distribution(profile, net_profile, distribution, machines, &plan, &[]);
    if replicas.is_empty() {
        return None;
    }
    Some(ReplicaRouter::new(distribution, &replicas))
}

/// `coign serve <image> <scenario> [network] [--sessions N] [--shards K]
/// [--jobs N] [--seed N] [--window US] [--no-batch] [--json]` — the
/// fleet-scale serving harness: multiplexes N simulated user sessions over
/// the distribution chosen for the image's accumulated profile, as a
/// sharded discrete-event simulation with per-link ICC batching and
/// session-state pooling ([`coign::serve`]). The summary is byte-identical
/// for a given seed across repeated runs and across `--jobs`.
pub fn cmd_serve(
    path: &Path,
    scenario: &str,
    network_name: &str,
    opts: &ServeCliOptions,
) -> ComResult<String> {
    cmd_serve_observed(path, scenario, network_name, opts, None)
}

/// [`cmd_serve`] with an optional observability bundle: the registry gains
/// the serve counters (sessions, calls, batches, pool hits/misses), the
/// merged session-latency histogram, and simulated-throughput gauges — all
/// deterministic, so `--metrics` output stays byte-identical per seed.
pub fn cmd_serve_observed(
    path: &Path,
    scenario: &str,
    network_name: &str,
    opts: &ServeCliOptions,
    obs: Option<&Obs>,
) -> ComResult<String> {
    let _span = obs.map(|o| o.tracer.phase_span("serve"));
    let image = load(path)?;
    let record = rewriter::read_config(&image)?;
    if record.profile.total_messages() == 0 {
        return Err(ComError::App(
            "no profile accumulated yet — run `coign profile` first".to_string(),
        ));
    }
    if !record.profile.scenarios.iter().any(|s| s == scenario) {
        return Err(ComError::App(format!(
            "scenario `{scenario}` was never profiled into this image (profiled: {})",
            record.profile.scenarios.join(", ")
        )));
    }
    let app = app_for_image(&image)?;
    let network = network_by_name(network_name)?;
    // The placement under load: chosen fresh from the accumulated profile
    // for the named network, exactly like `coign analyze` would.
    let net_profile = NetworkProfile::measure(&network, PROFILE_SAMPLES, SEED);
    let distribution = choose_distribution(app.as_ref(), &record.profile, &net_profile)?;
    // The fault plan: an explicit file wins; otherwise a non-zero
    // `--fault-seed` synthesizes the seeded chaos mix over the run's own
    // fault-free horizon — measured by a probe run, exactly like `coign
    // chaos` fixes its fault windows — with every non-client machine a
    // victim. Both paths are deterministic per seed, so the faulted
    // summary stays byte-identical across `--jobs`.
    let plan = match (&opts.fault_plan, opts.fault_seed) {
        (Some(plan_path), _) => {
            let text = std::fs::read_to_string(plan_path)
                .map_err(|e| ComError::App(format!("cannot read {}: {e}", plan_path.display())))?;
            FaultPlan::parse(&text)?
        }
        (None, 0) => FaultPlan::none(),
        (None, fault_seed) => {
            let mut victims: Vec<MachineId> = distribution
                .placement
                .values()
                .copied()
                .filter(|m| *m != MachineId::CLIENT)
                .collect();
            victims.sort();
            victims.dedup();
            let probe = coign::serve::serve(
                &record.profile,
                &distribution,
                &network,
                &coign::ServeOptions {
                    sessions: opts.sessions,
                    shards: opts.shards,
                    jobs: opts.jobs,
                    seed: opts.seed,
                    batching: opts.batching,
                    window_us: opts.window_us,
                    ..coign::ServeOptions::default()
                },
            )?;
            FaultPlan::seeded(fault_seed, probe.horizon_us, &victims)
        }
    };
    // Replicas only matter once something can die; deriving them under a
    // clean wire would change nothing but still cost a lint pass.
    let replicas = if opts.replicate && !plan.is_empty() {
        derive_replica_router(app.as_ref(), &record.profile, &net_profile, &distribution)
    } else {
        None
    };
    let inject_desc = plan
        .faults()
        .iter()
        .map(|f| f.to_string())
        .collect::<Vec<_>>()
        .join("; ");
    let replicated = replicas.is_some();
    // Telemetry only runs when something consumes it: a timeline sink or
    // an SLO target turns the windowed recorder on; otherwise the serve
    // hot path stays recording-free and the output bytes stay identical to
    // a build without telemetry at all.
    let want_timeline = opts.timeline.is_some() || opts.slo_p99_us.is_some();
    let serve_opts = coign::ServeOptions {
        sessions: opts.sessions,
        shards: opts.shards,
        jobs: opts.jobs,
        seed: opts.seed,
        batching: opts.batching,
        window_us: opts.window_us,
        timeline_window_us: if want_timeline {
            opts.timeline_window_us.max(1)
        } else {
            0
        },
        trace_sample: opts.trace_sample,
        faults: plan.clone(),
        replicas,
        ..coign::ServeOptions::default()
    };
    let (report, timeline) = coign::serve::serve_traced(
        &record.profile,
        &distribution,
        &network,
        &serve_opts,
        obs.map(|o| &*o.tracer),
    )?;
    if let Some(o) = obs {
        o.registry
            .counter("coign_serve_sessions_total")
            .add(report.sessions);
        o.registry
            .counter("coign_serve_calls_total")
            .add(report.calls);
        o.registry
            .counter("coign_serve_remote_messages_total")
            .add(report.remote_messages);
        o.registry
            .counter("coign_serve_batches_total")
            .add(report.batches);
        o.registry
            .counter("coign_serve_pool_hits_total")
            .add(report.pool_hits);
        o.registry
            .counter("coign_serve_pool_misses_total")
            .add(report.pool_misses);
        o.registry
            .gauge("coign_serve_sim_sessions_per_sec")
            .set(report.sessions_per_sim_sec());
        o.registry
            .gauge("coign_serve_sim_calls_per_sec")
            .set(report.calls_per_sim_sec());
        o.registry
            .gauge("coign_serve_latency_p50_us")
            .set(report.latency_quantile_us(0.50));
        o.registry
            .gauge("coign_serve_latency_p95_us")
            .set(report.latency_quantile_us(0.95));
        o.registry
            .gauge("coign_serve_latency_p99_us")
            .set(report.latency_quantile_us(0.99));
        o.registry
            .histogram("coign_serve_session_latency_us", report.latency.bounds())
            .merge_from(&report.latency);
    }
    // The SLO verdict rides on the timeline's per-window latency
    // histograms; the dashboard (`--timeline -`) appends after the report
    // in either mode, and file sinks pick their format by extension.
    let slo = match (opts.slo_p99_us, timeline.as_ref()) {
        (Some(target), Some(series)) => Some(series.slo(target)),
        _ => None,
    };
    let mut dashboard = None;
    if let (Some(sink), Some(series)) = (opts.timeline.as_deref(), timeline.as_ref()) {
        if sink == "-" {
            dashboard = Some(series.dashboard());
        } else {
            let rendered = if sink.ends_with(".csv") {
                series.to_csv()
            } else {
                series.to_json()
            };
            std::fs::write(sink, rendered)
                .map_err(|e| ComError::App(format!("cannot write timeline {sink}: {e}")))?;
        }
    }
    let mut out = if opts.json {
        let slo_field = slo
            .as_ref()
            .map(|s| format!(",\"slo\":{}", s.render_json()))
            .unwrap_or_default();
        let inject_field = if plan.is_empty() {
            String::new()
        } else {
            format!(",\"inject\":\"{inject_desc}\",\"replicated\":{replicated}")
        };
        format!(
            "{{\"scenario\":\"{scenario}\",\"network\":\"{network_name}\",\"seed\":{},\
             \"window_us\":{}{inject_field},\"report\":{}{slo_field}}}\n",
            opts.seed,
            opts.window_us,
            report.summary(true).trim_end(),
        )
    } else {
        let mut human = format!(
            "serve scenario={scenario} network={network_name} seed={} sessions={} \
             shards={} window={}us\n",
            opts.seed, opts.sessions, opts.shards, opts.window_us,
        );
        if !plan.is_empty() {
            human.push_str(&format!(
                "inject: {inject_desc}{}\n",
                if replicated { " [replicated]" } else { "" }
            ));
        }
        human.push_str(&report.summary(false));
        if let Some(s) = &slo {
            human.push_str(&s.render_human());
        }
        human
    };
    if let Some(dash) = dashboard {
        out.push_str(&dash);
    }
    Ok(out)
}

/// `coign gen --seed S [--size small|medium|large] [--emit <dir>] [--json]`
/// — prints the topology summary of the generated application, and with
/// `--emit` writes its instrumented image into the directory (the same
/// artifact `gen:<seed>` addressing materializes on demand).
pub fn cmd_gen(seed: u64, size: GenSize, emit: Option<&Path>, json: bool) -> ComResult<String> {
    let spec = GenSpec::new(seed, size);
    let app = GeneratedApp::new(spec);
    let mut out = app.summary(json);
    if let Some(dir) = emit {
        std::fs::create_dir_all(dir)
            .map_err(|e| ComError::App(format!("cannot create {}: {e}", dir.display())))?;
        let mut image = app.image();
        let classifier = InstanceClassifier::new(ClassifierKind::Ifcb);
        rewriter::instrument(&mut image, &classifier);
        let path = dir.join(format!("{}.cimg", spec.stem()));
        store(&path, &image)?;
        if !json {
            out.push_str(&format!(
                "emitted {} ({} bytes, instrumented)\n",
                path.display(),
                image.encode().len()
            ));
        }
    }
    Ok(out)
}

/// CLI options for `coign explore` (a thin shell over
/// [`coign_gen::explore::ExploreOptions`]: the network arrives by name).
pub struct ExploreCliOptions {
    /// Explicit fault instants (µs); `None` enumerates a grid.
    pub faults_at: Option<Vec<u64>>,
    /// Grid depth: 128·depth instants across the fault-free horizon.
    pub depth: u32,
    /// Breaker failure thresholds to permute.
    pub thresholds: Vec<u32>,
    /// Add a drift-armed variant of every interleaving.
    pub with_drift: bool,
    /// Worker threads (the summary does not depend on it).
    pub jobs: usize,
    /// Master seed for per-interleaving fault seeds.
    pub seed: u64,
    /// Run every interleaving with the lint-derived replica routing table
    /// installed, with the no-solve-failover invariants armed.
    pub with_replicas: bool,
}

impl Default for ExploreCliOptions {
    fn default() -> Self {
        let base = ExploreOptions::default();
        ExploreCliOptions {
            faults_at: None,
            depth: base.depth,
            thresholds: base.thresholds,
            with_drift: false,
            jobs: 1,
            seed: 0,
            with_replicas: false,
        }
    }
}

/// `coign explore gen:<seed>[:<size>] <scenario> [network] [--faults-at
/// T,T,…|--enumerate-depth D] [--thresholds F,F,…] [--drift] [--jobs N]
/// [--seed N]` — systematic schedule-space exploration around recovery
/// epochs: every (fault instant × breaker threshold × drift mode)
/// interleaving runs under the self-healing runtime and is checked against
/// the exactly-once ledger, `validate_placement`, and replication-legality
/// invariants. Violations are minimized and reported as replayable command
/// lines; the summary is byte-identical per seed across `--jobs`.
pub fn cmd_explore(
    image_spec: &str,
    scenario: &str,
    network_name: &str,
    opts: &ExploreCliOptions,
) -> ComResult<String> {
    let rest = image_spec.strip_prefix("gen:").ok_or_else(|| {
        ComError::App(format!(
            "explore runs over generated applications — address one as \
             gen:<seed>[:<size>], got `{image_spec}`"
        ))
    })?;
    let spec = coign_gen::parse_gen_spec(rest).ok_or_else(|| {
        ComError::App(format!(
            "bad generated-image address `{image_spec}` (use gen:<seed> or \
             gen:<seed>:<size> with size small|medium|large)"
        ))
    })?;
    let network = network_by_name(network_name)?;
    let gen_opts = ExploreOptions {
        network,
        network_name: network_name.to_string(),
        faults_at: opts.faults_at.clone(),
        depth: opts.depth,
        thresholds: opts.thresholds.clone(),
        with_drift: opts.with_drift,
        jobs: opts.jobs,
        seed: opts.seed,
        with_replicas: opts.with_replicas,
    };
    coign_gen::explore::explore(spec, scenario, &gen_opts).map(|report| report.summary)
}

/// `coign show <image>` — prints the configuration record.
pub fn cmd_show(path: &Path) -> ComResult<String> {
    let image = load(path)?;
    let record = rewriter::read_config(&image)?;
    let mut out = String::new();
    out.push_str(&format!(
        "image:      {} ({} bytes)\n",
        image.name,
        image.encode().len()
    ));
    out.push_str(&format!(
        "imports:    {}\n",
        image
            .imports
            .iter()
            .map(|i| i.name.as_str())
            .collect::<Vec<_>>()
            .join(", ")
    ));
    out.push_str(&format!(
        "mode:       {}\n",
        match record.mode {
            RuntimeMode::Profiling => "profiling",
            RuntimeMode::Distributed => "distributed (lightweight runtime)",
        }
    ));
    out.push_str(&format!(
        "scenarios:  {}\n",
        record.profile.scenarios.join(", ")
    ));
    out.push_str(&format!(
        "profile:    {} messages, {} bytes, {} classifications, {} non-remotable pair(s)\n",
        record.profile.total_messages(),
        record.profile.total_bytes(),
        record.profile.classifications().len(),
        record.profile.non_remotable.len(),
    ));
    if let Some(dist) = &record.distribution {
        out.push_str(&format!(
            "distribution: {} client / {} server, predicted {:.1} ms on {}\n",
            dist.count_on(MachineId::CLIENT),
            dist.count_on(MachineId::SERVER),
            dist.predicted_comm_us / 1000.0,
            dist.network_name,
        ));
    }
    Ok(out)
}

/// `coign hotspots <image>` — the developer-feedback report (§6).
pub fn cmd_hotspots(path: &Path, top: usize) -> ComResult<String> {
    let image = load(path)?;
    let record = rewriter::read_config(&image)?;
    let app = app_for_image(&image)?;
    let rt = ComRuntime::single_machine();
    app.register(&rt);
    let names = report::interface_names(&rt);
    let network = NetworkProfile::measure(&NetworkModel::ethernet_10baset(), PROFILE_SAMPLES, SEED);
    let spots = report::hotspots(
        &record.profile,
        &network,
        record.distribution.as_ref(),
        &names,
    );
    let mut out = String::from("communication hot spots (heaviest first):\n");
    for spot in spots.iter().take(top) {
        out.push_str(&format!(
            "  {:<18} m{:<3} {:>9} msgs {:>12} bytes {:>10.1} ms {}\n",
            spot.interface,
            spot.method,
            spot.messages,
            spot.bytes,
            spot.predicted_us / 1000.0,
            if spot.crosses_cut {
                "[crosses cut]"
            } else {
                ""
            },
        ));
    }
    if let Some(dist) = &record.distribution {
        let candidates =
            report::caching_candidates(&record.profile, &network, dist, &names, 10, 2_048);
        if !candidates.is_empty() {
            out.push_str("per-interface caching candidates (semi-custom marshaling):\n");
            for cand in candidates.iter().take(top) {
                out.push_str(&format!(
                    "  {:<18} m{:<3} {:>7} calls, avg {:>5} B, could save {:>8.1} ms\n",
                    cand.interface,
                    cand.method,
                    cand.calls,
                    cand.avg_message_bytes,
                    cand.potential_savings_us / 1000.0,
                ));
            }
        }
    }
    Ok(out)
}

/// `coign script <image> <script>` — profiles a scripted scenario (the
/// Visual Test analog; Octarine only) and accumulates the log.
pub fn cmd_script(path: &Path, script_path: &Path) -> ComResult<String> {
    use coign::classifier::InstanceClassifier as Ic;
    use coign::logger::ProfilingLogger;
    use coign::rte::CoignRte;
    use coign_apps::octarine::script::{parse_script, run_ops};

    let mut image = load(path)?;
    let record = rewriter::read_config(&image)?;
    let app = app_for_image(&image)?;
    if app.name() != "octarine" {
        return Err(ComError::App(format!(
            "scenario scripts are only supported for octarine, not {}",
            app.name()
        )));
    }
    let text = std::fs::read_to_string(script_path)
        .map_err(|e| ComError::App(format!("cannot read {}: {e}", script_path.display())))?;
    let ops = parse_script(&text)?;

    let rt = ComRuntime::single_machine();
    app.register(&rt);
    let classifier = Arc::new(Ic::decode(&record.classifier)?);
    classifier.begin_execution();
    let logger = Arc::new(ProfilingLogger::new());
    logger.set_scenario(&format!("script:{}", script_path.display()));
    rt.add_hook(Arc::new(CoignRte::profiling(
        classifier.clone(),
        logger.clone(),
    )));
    run_ops(&rt, &ops)?;
    let profile = logger.take_profile();

    rewriter::accumulate_profile(&mut image, &profile)?;
    let mut record = rewriter::read_config(&image)?;
    record.classifier = classifier.encode();
    image.set_config_record(record.encode());
    store(path, &image)?;
    Ok(format!(
        "scripted profile ({} op(s)): {} messages, {} bytes, {} instances",
        ops.len(),
        profile.total_messages(),
        profile.total_bytes(),
        rt.instance_count(),
    ))
}

/// `coign dot <image> <out.dot>` — exports the communication graph in
/// Graphviz form (the textual equivalent of the paper's figures).
pub fn cmd_dot(path: &Path, out: &Path) -> ComResult<String> {
    let image = load(path)?;
    let record = rewriter::read_config(&image)?;
    let app = app_for_image(&image)?;
    let rt = ComRuntime::single_machine();
    app.register(&rt);
    let names = report::class_names(&rt);
    let network = NetworkProfile::measure(&NetworkModel::ethernet_10baset(), PROFILE_SAMPLES, SEED);
    let constraints = derive_constraints(app.as_ref(), &record.profile);
    // Replication-legality overlay: double-circle the replicable classes,
    // shade the mutable-shared ones, and label read-only edges. Shading
    // mirrors COIGN043's gating — only classes with annotation evidence,
    // so the conservative mutates-by-default mass stays unshaded.
    let mut sink = coign::lint::DiagnosticSink::new();
    let effect_analysis = coign::lint::effects::check_effects(rt.registry(), &mut sink);
    let mut replication =
        coign::lint::sharing::check_sharing(rt.registry(), &effect_analysis, &mut sink);
    replication
        .mutable_shared
        .retain(|class| effect_analysis.is_annotated(class));
    let facts = report::DotFacts {
        replication: Some(replication),
        effects: report::method_effects(&rt),
    };
    let dot = report::to_dot_annotated(
        &record.profile,
        &network,
        record.distribution.as_ref(),
        &constraints,
        &names,
        &facts,
    );
    std::fs::write(out, &dot)
        .map_err(|e| ComError::App(format!("cannot write {}: {e}", out.display())))?;
    Ok(format!(
        "wrote {} ({} nodes, render with `dot -Tsvg`)",
        out.display(),
        record.profile.classifications().len(),
    ))
}

/// `coign strip <image>` — removes all Coign artifacts from the image.
pub fn cmd_strip(path: &Path) -> ComResult<String> {
    let mut image = load(path)?;
    rewriter::strip(&mut image);
    store(path, &image)?;
    Ok(format!(
        "stripped {} back to its original shape",
        image.name
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn temp_image(tag: &str) -> PathBuf {
        let mut path = std::env::temp_dir();
        path.push(format!("coign_cli_test_{tag}_{}.cimg", std::process::id()));
        path
    }

    #[test]
    fn full_cli_workflow_on_octarine() {
        let path = temp_image("wf");
        let msg = cmd_instrument("octarine", &path).unwrap();
        assert!(msg.contains("coignrte.dll"));

        let msg = cmd_profile(&path, &["o_oldtb3"], 1).unwrap();
        assert!(msg.contains("messages"));
        // Honest annotations: the dynamic cross-check stays silent.
        assert!(!msg.contains("COIGN045"));

        let msg = cmd_show(&path).unwrap();
        assert!(msg.contains("mode:       profiling"));
        assert!(msg.contains("o_oldtb3"));

        let msg = cmd_analyze(&path, "ethernet").unwrap();
        assert!(msg.contains("server"));

        let msg = cmd_show(&path).unwrap();
        assert!(msg.contains("distributed"));

        let msg = cmd_run(&path, "o_oldtb3", "ethernet", &RunFaults::default()).unwrap();
        assert!(msg.contains("cross-machine"));
        // A clean wire prints no fault line.
        assert!(!msg.contains("faults:"));

        let msg = cmd_hotspots(&path, 5).unwrap();
        assert!(msg.contains("hot spots"));

        let msg = cmd_strip(&path).unwrap();
        assert!(msg.contains("stripped"));
        // After stripping, the record is gone.
        assert!(cmd_show(&path).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn profiles_accumulate_across_invocations() {
        let path = temp_image("acc");
        cmd_instrument("benefits", &path).unwrap();
        let msg = cmd_profile(&path, &["b_vueone"], 1).unwrap();
        assert!(!msg.contains("COIGN045"));
        cmd_profile(&path, &["b_addone"], 1).unwrap();
        let show = cmd_show(&path).unwrap();
        assert!(show.contains("b_vueone, b_addone"));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn parallel_profile_produces_byte_identical_images() {
        // The acceptance bar for `--jobs`: profiling every octarine
        // scenario on 4 workers must leave the exact same bytes on disk
        // (profile log *and* classifier table) as a sequential pass.
        let seq_path = temp_image("jobs1");
        let par_path = temp_image("jobs4");
        cmd_instrument("octarine", &seq_path).unwrap();
        cmd_instrument("octarine", &par_path).unwrap();
        let scenarios = ["o_oldtb3", "o_newdoc", "o_oldwp7"];
        cmd_profile(&seq_path, &scenarios, 1).unwrap();
        cmd_profile(&par_path, &scenarios, 4).unwrap();
        let seq_bytes = std::fs::read(&seq_path).unwrap();
        let par_bytes = std::fs::read(&par_path).unwrap();
        assert_eq!(seq_bytes, par_bytes);
        std::fs::remove_file(&seq_path).ok();
        std::fs::remove_file(&par_path).ok();
    }

    #[test]
    fn sweep_reports_partition_shifts() {
        let path = temp_image("sweep");
        cmd_instrument("octarine", &path).unwrap();
        // Sweeping before profiling is rejected.
        assert!(cmd_sweep(&path, false)
            .unwrap_err()
            .to_string()
            .contains("no profile"));
        cmd_profile(&path, &["o_oldtb3", "o_newdoc"], 2).unwrap();
        let human = cmd_sweep(&path, false).unwrap();
        assert!(human.contains("partition sweep over 16 network point(s)"));
        let json = cmd_sweep(&path, true).unwrap();
        assert!(json.starts_with("{\"grid\":"));
        assert!(json.contains("\"points\":["));
        // Deterministic output, twice in a row.
        assert_eq!(json, cmd_sweep(&path, true).unwrap());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn analyze_requires_a_profile() {
        let path = temp_image("noprof");
        cmd_instrument("photodraw", &path).unwrap();
        let err = cmd_analyze(&path, "ethernet").unwrap_err();
        assert!(err.to_string().contains("no profile"));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn run_requires_realization() {
        let path = temp_image("norun");
        cmd_instrument("octarine", &path).unwrap();
        cmd_profile(&path, &["o_newdoc"], 1).unwrap();
        let err = cmd_run(&path, "o_newdoc", "ethernet", &RunFaults::default()).unwrap_err();
        assert!(err.to_string().contains("not realized"));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn scripted_profiling_and_dot_export() {
        let img = temp_image("script");
        let script = {
            let mut p = std::env::temp_dir();
            p.push(format!("coign_script_{}.txt", std::process::id()));
            std::fs::write(&p, "open table 5\nidle 1\npaint\n").unwrap();
            p
        };
        cmd_instrument("octarine", &img).unwrap();
        let msg = cmd_script(&img, &script).unwrap();
        assert!(msg.contains("scripted profile (3 op(s))"));
        cmd_analyze(&img, "ethernet").unwrap();

        let dot_path = {
            let mut p = std::env::temp_dir();
            p.push(format!("coign_dot_{}.dot", std::process::id()));
            p
        };
        let msg = cmd_dot(&img, &dot_path).unwrap();
        assert!(msg.contains("nodes"));
        let dot = std::fs::read_to_string(&dot_path).unwrap();
        assert!(dot.starts_with("graph icc {"));
        // Constraint edges render dashed against synthetic machine nodes
        // (the ROOT pin alone guarantees at least one).
        assert!(dot.contains("shape=diamond"));
        assert!(dot.contains("n0 -- client [style=dashed"));
        // The replication overlay: the table flyweights are effect-free,
        // so their nodes draw double-circled and the model→column edges
        // carry the declared effect label.
        assert!(dot.contains("peripheries=2"));
        assert!(dot.contains("(pure)"));

        // Scripts are octarine-only.
        let pd = temp_image("pdscript");
        cmd_instrument("photodraw", &pd).unwrap();
        assert!(cmd_script(&pd, &script).is_err());

        for p in [img, script, dot_path, pd] {
            std::fs::remove_file(&p).ok();
        }
    }

    #[test]
    fn fault_injected_run_reports_counters_and_reproduces() {
        let path = temp_image("faultrun");
        cmd_instrument("octarine", &path).unwrap();
        cmd_profile(&path, &["o_oldtb3"], 1).unwrap();
        cmd_analyze(&path, "ethernet").unwrap();

        let plan_path = {
            let mut p = std::env::temp_dir();
            p.push(format!("coign_plan_{}.fplan", std::process::id()));
            std::fs::write(&p, "loss 0.05\n").unwrap();
            p
        };
        let faults = RunFaults {
            plan_path: Some(plan_path.clone()),
            fault_seed: 7,
            summary: false,
        };
        let msg = cmd_run(&path, "o_oldtb3", "ethernet", &faults).unwrap();
        assert!(
            msg.contains("faults:"),
            "lossy run must report faults: {msg}"
        );
        assert!(msg.contains("retry"));

        // Same fault seed ⇒ byte-identical machine summary, twice in a row.
        let summary_opts = RunFaults {
            summary: true,
            ..faults.clone()
        };
        let a = cmd_run(&path, "o_oldtb3", "ethernet", &summary_opts).unwrap();
        let b = cmd_run(&path, "o_oldtb3", "ethernet", &summary_opts).unwrap();
        assert_eq!(a, b);
        assert!(a.contains("fault_drops="));

        // A different fault seed perturbs the wire differently.
        let other = cmd_run(
            &path,
            "o_oldtb3",
            "ethernet",
            &RunFaults {
                fault_seed: 8,
                ..summary_opts
            },
        )
        .unwrap();
        assert_ne!(a, other);

        // A malformed plan is rejected with its line number.
        std::fs::write(&plan_path, "explode 1\n").unwrap();
        let err = cmd_run(&path, "o_oldtb3", "ethernet", &faults).unwrap_err();
        assert!(err.to_string().contains("line 1"));

        std::fs::remove_file(&path).ok();
        std::fs::remove_file(&plan_path).ok();
    }

    #[test]
    fn chaos_summary_is_deterministic_across_runs_and_jobs() {
        let path = temp_image("chaos");
        cmd_instrument("octarine", &path).unwrap();
        cmd_profile(&path, &["o_oldtb3"], 1).unwrap();
        cmd_analyze(&path, "ethernet").unwrap();
        let opts = ChaosOptions {
            seed: 7,
            trials: 6,
            jobs: 1,
            replicate: false,
        };
        let a = cmd_chaos(&path, "o_oldtb3", "ethernet", &opts).unwrap();
        let b = cmd_chaos(&path, "o_oldtb3", "ethernet", &opts).unwrap();
        assert_eq!(a, b, "same seed must reproduce the summary byte-for-byte");
        for jobs in [2, 4, 8] {
            let par = cmd_chaos(
                &path,
                "o_oldtb3",
                "ethernet",
                &ChaosOptions {
                    jobs,
                    ..opts.clone()
                },
            )
            .unwrap();
            assert_eq!(a, par, "summary differs at jobs={jobs}");
        }
        assert!(a.contains("invariants: ok"), "summary: {a}");
        // A different seed draws different fault plans.
        let other = cmd_chaos(
            &path,
            "o_oldtb3",
            "ethernet",
            &ChaosOptions { seed: 8, ..opts },
        )
        .unwrap();
        assert_ne!(a, other);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn chaos_machine_death_trials_recover_with_warm_resolves() {
        let path = temp_image("chaosdeath");
        cmd_instrument("octarine", &path).unwrap();
        cmd_profile(&path, &["o_oldtb3"], 1).unwrap();
        cmd_analyze(&path, "ethernet").unwrap();
        // Enough trials that the seeded generator draws at least one
        // permanent server death; the invariant checker inside cmd_chaos
        // then enforces warm re-solves, valid placements, and zero double
        // executions (a violation makes cmd_chaos return Err).
        let summary = cmd_chaos(
            &path,
            "o_oldtb3",
            "ethernet",
            &ChaosOptions {
                seed: 7,
                trials: 8,
                jobs: 2,
                replicate: false,
            },
        )
        .unwrap();
        assert!(
            summary.contains("outcome=recovered"),
            "no trial recovered: {summary}"
        );
        assert!(summary.contains("warm=1"), "summary: {summary}");
        assert!(summary.contains("invariants: ok"), "summary: {summary}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn serve_fault_seed_is_deterministic_and_transparent_at_zero() {
        let path = temp_image("servefault");
        cmd_instrument("octarine", &path).unwrap();
        cmd_profile(&path, &["o_oldtb3"], 1).unwrap();
        let base = ServeCliOptions {
            sessions: 500,
            shards: 2,
            seed: 7,
            ..ServeCliOptions::default()
        };
        // fault_seed 0 is the explicit zero-fault seed: no inject line, no
        // fault counters — byte-identical to a build with no fault layer.
        let clean = cmd_serve(&path, "o_oldtb3", "ethernet", &base).unwrap();
        assert!(!clean.contains("inject:"), "{clean}");
        assert!(!clean.contains("faults:"), "{clean}");
        let faulted = ServeCliOptions {
            fault_seed: 11,
            replicate: true,
            ..base.clone()
        };
        let a = cmd_serve(&path, "o_oldtb3", "ethernet", &faulted).unwrap();
        assert!(a.contains("inject: down "), "{a}");
        assert!(a.contains("faults: "), "{a}");
        for jobs in [2, 4] {
            let b = cmd_serve(
                &path,
                "o_oldtb3",
                "ethernet",
                &ServeCliOptions {
                    jobs,
                    ..faulted.clone()
                },
            )
            .unwrap();
            assert_eq!(a, b, "faulted summary differs at jobs={jobs}");
        }
        // A plan file drives the same machinery; the JSON record carries
        // the injected plan.
        let plan_path = {
            let mut p = std::env::temp_dir();
            p.push(format!("coign_serve_plan_{}.fplan", std::process::id()));
            std::fs::write(&p, "loss 0.05\n").unwrap();
            p
        };
        let json = cmd_serve(
            &path,
            "o_oldtb3",
            "ethernet",
            &ServeCliOptions {
                fault_plan: Some(plan_path.clone()),
                json: true,
                ..base
            },
        )
        .unwrap();
        assert!(json.contains("\"inject\":\"loss 0.05 * ..\""), "{json}");
        assert!(json.contains("\"faults\":{"), "{json}");
        std::fs::remove_file(&path).ok();
        std::fs::remove_file(&plan_path).ok();
    }

    #[test]
    fn chaos_replicate_runs_clean_and_marks_the_summary() {
        let path = temp_image("chaosrep");
        cmd_instrument("octarine", &path).unwrap();
        cmd_profile(&path, &["o_oldwp7"], 1).unwrap();
        cmd_analyze(&path, "ethernet").unwrap();
        let summary = cmd_chaos(
            &path,
            "o_oldwp7",
            "ethernet",
            &ChaosOptions {
                seed: 7,
                trials: 4,
                jobs: 2,
                replicate: true,
            },
        )
        .unwrap();
        assert!(summary.contains("replicate=on"), "{summary}");
        assert!(summary.contains("via_replicas="), "{summary}");
        assert!(summary.contains("invariants: ok"), "{summary}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn place_partitions_across_three_machines_deterministically() {
        let path = temp_image("place");
        cmd_instrument("octarine", &path).unwrap();
        // Placing before profiling (or for an unprofiled scenario) is
        // rejected.
        assert!(
            cmd_place(&path, "o_oldtb3", "ethernet", &PlaceOptions::default())
                .unwrap_err()
                .to_string()
                .contains("no profile")
        );
        cmd_profile(&path, &["o_oldtb3"], 1).unwrap();
        assert!(
            cmd_place(&path, "o_newdoc", "ethernet", &PlaceOptions::default())
                .unwrap_err()
                .to_string()
                .contains("never profiled")
        );

        let opts = PlaceOptions::default();
        let human = cmd_place(&path, "o_oldtb3", "ethernet", &opts).unwrap();
        assert!(human.contains("across 3 machine(s)"));
        assert!(human.contains("machine 2:"));
        assert!(human.contains("cut: heuristic"));
        // Deterministic, twice in a row.
        assert_eq!(
            human,
            cmd_place(&path, "o_oldtb3", "ethernet", &opts).unwrap()
        );

        let json_opts = PlaceOptions {
            json: true,
            ..opts.clone()
        };
        let json = cmd_place(&path, "o_oldtb3", "ethernet", &json_opts).unwrap();
        assert!(json.starts_with("{\"app\":\"octarine.exe\""));
        assert!(json.contains("\"placement\":["));
        assert_eq!(
            json,
            cmd_place(&path, "o_oldtb3", "ethernet", &json_opts).unwrap()
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn place_replication_strictly_reduces_octarine_traffic() {
        let path = temp_image("placerep");
        cmd_instrument("octarine", &path).unwrap();
        // The 208-page text document: reader and properties split away from
        // the layout cluster, so the effect-free flyweights (text blocks,
        // font caches) see traffic from more than one machine.
        cmd_profile(&path, &["o_oldwp7"], 1).unwrap();
        let plain = cmd_place(&path, "o_oldwp7", "ethernet", &PlaceOptions::default()).unwrap();
        let replicated = cmd_place(
            &path,
            "o_oldwp7",
            "ethernet",
            &PlaceOptions {
                replicate: true,
                ..PlaceOptions::default()
            },
        )
        .unwrap();
        // The annotated example app has at least one provably replicable
        // class whose copy strictly reduces modeled cut traffic.
        assert!(replicated.contains("replicas: "), "{replicated}");
        assert!(!replicated.contains("replicas: none"), "{replicated}");
        // The home assignment (and the whole preamble) never changes;
        // replication only adds copies.
        let preamble = |s: &str| {
            s.lines()
                .take_while(|l| !l.starts_with("replicas:"))
                .collect::<Vec<_>>()
                .join("\n")
        };
        assert_eq!(preamble(&plain), preamble(&replicated));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn check_passes_on_fresh_image_without_profiling() {
        let path = temp_image("check");
        cmd_instrument("photodraw", &path).unwrap();
        // No `coign profile` ran: the pass needs no profiling data.
        let report = cmd_check(&path, false).unwrap();
        // PhotoDraw's sprite cache shares memory through an opaque-pointer
        // interface — the remotability stage flags it (warn, not error).
        assert!(report.contains("COIGN010"));
        assert!(report.contains("COIGN012"));
        assert!(report.contains("0 error(s)"));
        let json = cmd_check(&path, true).unwrap();
        assert!(json.starts_with("{\"errors\":0,"));
        assert!(json.contains("\"code\":\"COIGN010\""));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn check_flags_corrupted_images() {
        let path = temp_image("checkbad");
        cmd_instrument("octarine", &path).unwrap();
        let mut image = load(&path).unwrap();
        // Demote the runtime import out of slot 0.
        let runtime = image.imports.remove(0);
        image.imports.push(runtime);
        store(&path, &image).unwrap();
        let report = cmd_check(&path, false).unwrap_err();
        assert!(report.contains("COIGN030"));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn bad_inputs_are_rejected() {
        assert!(cmd_instrument("excel", &temp_image("bad")).is_err());
        assert!(network_by_name("token-ring").is_err());
        assert!(cmd_show(Path::new("/nonexistent/image.cimg")).is_err());
    }
}
