//! `coign` — the tool-chain CLI. See the crate docs for the workflow.

use coign_cli::{
    cmd_analyze, cmd_check, cmd_dot, cmd_hotspots, cmd_instrument, cmd_profile, cmd_run,
    cmd_script, cmd_show, cmd_strip, cmd_sweep, RunFaults,
};
use std::path::{Path, PathBuf};
use std::process::ExitCode;

const USAGE: &str = "\
coign — automatic distributed partitioning (OSDI '99 reproduction)

USAGE:
  coign instrument <app> <image>        instrument an application (octarine|photodraw|benefits)
  coign check      <image> [--json]     static analysis: remotability, constraints, image lints
  coign profile    <image> <scenario>... [--jobs N]   run profiling scenarios, accumulate logs
                                        (--jobs N profiles scenarios on N worker threads;
                                         the merged log is identical for every N)
  coign analyze    <image> [network]    choose & realize a distribution (ethernet|isdn|atm|san)
  coign sweep      <image> [--json]     partition across a latency/bandwidth grid (warm-started)
  coign run        <image> <scenario> [network]   execute distributed
        [--fault-plan FILE]             inject faults per FILE (loss/spike/partition/down lines)
        [--fault-seed N]                seed the fault schedule (default 0)
        [--summary]                     print the machine-diffable run report
  coign show       <image>              inspect the configuration record
  coign hotspots   <image> [top]        communication hot spots & caching candidates
  coign script     <image> <script>     profile a scripted scenario (octarine)
  coign dot        <image> <out.dot>    export the ICC graph in Graphviz form
  coign strip      <image>              restore the original binary
";

/// Parses `coign profile`'s trailing arguments: one or more scenario
/// names plus an optional `--jobs N` anywhere among them.
fn parse_profile_args(rest: &[String]) -> Result<(Vec<String>, usize), String> {
    let mut scenarios = Vec::new();
    let mut jobs = 1usize;
    let mut it = rest.iter();
    while let Some(token) = it.next() {
        match token.as_str() {
            "--jobs" => {
                let value = it.next().ok_or("--jobs needs a number argument")?;
                jobs = value
                    .parse()
                    .ok()
                    .filter(|n| *n >= 1)
                    .ok_or_else(|| format!("bad job count `{value}`"))?;
            }
            flag if flag.starts_with("--") => {
                return Err(format!("unknown flag `{flag}` for `coign profile`"));
            }
            scenario => scenarios.push(scenario.to_string()),
        }
    }
    if scenarios.is_empty() {
        return Err("`coign profile` needs at least one scenario".to_string());
    }
    Ok((scenarios, jobs))
}

/// Parses `coign run`'s trailing arguments: an optional positional network
/// name followed by the fault flags in any order.
fn parse_run_args(rest: &[String]) -> Result<(String, RunFaults), String> {
    let mut network = None;
    let mut faults = RunFaults::default();
    let mut it = rest.iter();
    while let Some(token) = it.next() {
        match token.as_str() {
            "--fault-plan" => {
                let value = it.next().ok_or("--fault-plan needs a file argument")?;
                faults.plan_path = Some(PathBuf::from(value));
            }
            "--fault-seed" => {
                let value = it.next().ok_or("--fault-seed needs a number argument")?;
                faults.fault_seed = value
                    .parse()
                    .map_err(|_| format!("bad fault seed `{value}`"))?;
            }
            "--summary" => faults.summary = true,
            flag if flag.starts_with("--") => {
                return Err(format!("unknown flag `{flag}` for `coign run`"));
            }
            positional => {
                if network.replace(positional.to_string()).is_some() {
                    return Err(format!("unexpected argument `{positional}`"));
                }
            }
        }
    }
    Ok((network.unwrap_or_else(|| "ethernet".to_string()), faults))
}

fn dispatch(args: &[String]) -> Result<String, String> {
    let arg = |i: usize| -> Result<&str, String> {
        args.get(i)
            .map(String::as_str)
            .ok_or_else(|| USAGE.to_string())
    };
    let result = match arg(0)? {
        "instrument" => cmd_instrument(arg(1)?, Path::new(arg(2)?)),
        "profile" => {
            let (scenarios, jobs) = parse_profile_args(&args[2.min(args.len())..])?;
            let refs: Vec<&str> = scenarios.iter().map(String::as_str).collect();
            cmd_profile(Path::new(arg(1)?), &refs, jobs)
        }
        "analyze" => cmd_analyze(Path::new(arg(1)?), arg(2).unwrap_or("ethernet")),
        "sweep" => cmd_sweep(
            Path::new(arg(1)?),
            args.get(2).map(String::as_str) == Some("--json"),
        ),
        "run" => {
            let (network, faults) = parse_run_args(&args[3.min(args.len())..])?;
            cmd_run(Path::new(arg(1)?), arg(2)?, &network, &faults)
        }
        "show" => cmd_show(Path::new(arg(1)?)),
        "hotspots" => {
            let top = arg(2).ok().and_then(|s| s.parse().ok()).unwrap_or(10);
            cmd_hotspots(Path::new(arg(1)?), top)
        }
        "script" => cmd_script(Path::new(arg(1)?), Path::new(arg(2)?)),
        "dot" => cmd_dot(Path::new(arg(1)?), Path::new(arg(2)?)),
        "strip" => cmd_strip(Path::new(arg(1)?)),
        _ => return Err(USAGE.to_string()),
    };
    result.map_err(|e| format!("error: {e}"))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    // `check` owns its exit semantics: the report is the output either way
    // and always goes to stdout; the exit status alone signals whether an
    // error-level diagnostic fired.
    if args.first().map(String::as_str) == Some("check") {
        let Some(path) = args.get(1) else {
            eprintln!("{USAGE}");
            return ExitCode::FAILURE;
        };
        let json = args.get(2).map(String::as_str) == Some("--json");
        return match cmd_check(Path::new(path), json) {
            Ok(report) => {
                println!("{}", report.trim_end());
                ExitCode::SUCCESS
            }
            Err(report) => {
                println!("{}", report.trim_end());
                ExitCode::FAILURE
            }
        };
    }
    match dispatch(&args) {
        Ok(message) => {
            println!("{message}");
            ExitCode::SUCCESS
        }
        Err(message) => {
            eprintln!("{message}");
            ExitCode::FAILURE
        }
    }
}
