//! `coign` — the tool-chain CLI. See the crate docs for the workflow.

use coign_cli::{
    cmd_analyze_observed, cmd_chaos_observed, cmd_check, cmd_dot, cmd_explore, cmd_gen,
    cmd_hotspots, cmd_instrument, cmd_place_observed, cmd_profile_observed, cmd_run_observed,
    cmd_script, cmd_serve_observed, cmd_show, cmd_strip, cmd_sweep_observed, resolve_image_spec,
    ChaosOptions, ExploreCliOptions, PlaceOptions, RunFaults, ServeCliOptions,
};
use coign_gen::GenSize;
use coign_obs::Obs;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

const USAGE: &str = "\
coign — automatic distributed partitioning (OSDI '99 reproduction)

USAGE:
  coign instrument <app> <image>        instrument an application (octarine|photodraw|benefits)
  coign check      <image> [--json]     static analysis: remotability, constraints, image lints
  coign profile    <image> <scenario>... [--jobs N]   run profiling scenarios, accumulate logs
                                        (--jobs N profiles scenarios on N worker threads;
                                         the merged log is identical for every N)
  coign analyze    <image> [network]    choose & realize a distribution (ethernet|isdn|atm|san)
  coign sweep      <image> [--json]     partition across a latency/bandwidth grid (warm-started)
  coign place      <image> <scenario> [network]   multiway placement across N machines
        [--machines N]                  topology size (default 3)
        [--replicate]                   copy classes the stage-4/5 lints prove immutable
        [--json]                        emit the machine-readable placement record
  coign run        <image> <scenario> [network]   execute distributed
        [--fault-plan FILE]             inject faults per FILE (loss/spike/partition/down lines)
        [--fault-seed N]                seed the fault schedule (default 0)
        [--summary]                     print the machine-diffable run report
  coign chaos      <image> <scenario> [network]   chaos harness: seeded random fault
        [--seed N]                      plans over N trials with the self-healing
        [--trials N]                    runtime, invariants checked per trial; the
        [--jobs N]                      summary is byte-identical per seed and jobs
        [--replicate]                   install lint-derived replicas: covered machine
                                        deaths must fail over with zero solves
  coign serve      <image> <scenario> [network]   fleet-scale serving harness:
        [--sessions N]                  simulated sessions (default 10000) multiplexed
        [--shards K]                    over K independently-clocked event shards
        [--jobs N]                      executed by N worker threads (summary is
        [--seed N]                      byte-identical per seed across --jobs)
        [--window US]                   per-link batch coalescing window (simulated us)
        [--no-batch]                    send every cut-crossing message alone
        [--json]                        emit the machine-readable serving record
        [--timeline <out|->]            write the simulated-time series (.csv for CSV,
                                        else JSON; - appends a sparkline dashboard)
        [--timeline-window US]          telemetry window width (default 100000 us)
        [--slo-p99-us N]                report per-window p99 SLO violations and the
                                        worst window's dominant link/class
        [--trace-sample N]              with --trace: emit causal spans for every Nth
                                        session (session/call/batch_wait/link_transit)
        [--fault-plan FILE]             inject faults per FILE on the simulated wire
                                        (loss/spike/partition/down lines)
        [--fault-seed N]                synthesize a seeded chaos plan over the run's
                                        fault-free horizon (0 = perfect wire)
        [--replicate]                   serve immutable classes from replica copies:
                                        machine death fails over without a re-solve
  coign gen        --seed N              generate a seeded synthetic application
        [--size small|medium|large]     topology size class (default small)
        [--emit <dir>]                  write the instrumented image into <dir>
        [--json]                        emit the machine-readable topology summary
                                        (every <image> above also accepts the address
                                         gen:<seed>[:<size>] — generated on demand)
  coign explore    gen:<seed>[:<size>] <scenario> [network]   schedule-space
        [--faults-at T,T,...]           exploration: run every (fault instant x
        [--enumerate-depth D]           breaker threshold x drift mode) interleaving
        [--thresholds F,F,...]          around recovery epochs, checking exactly-once,
        [--drift]                       placement-validity, and replication-legality
        [--seed N] [--jobs N]           invariants; violations minimize to a replay line
        [--replicate]                   install lint-derived replicas: covered deaths
                                        must fail over with zero solves
  coign show       <image>              inspect the configuration record
  coign hotspots   <image> [top]        communication hot spots & caching candidates
  coign script     <image> <script>     profile a scripted scenario (octarine)
  coign dot        <image> <out.dot>    export the ICC graph in Graphviz form
  coign strip      <image>              restore the original binary

GLOBAL FLAGS (any subcommand):
  --trace <out.json>                    write a Chrome trace-event file (open in
                                        chrome://tracing or https://ui.perfetto.dev)
  --metrics <out.json|out.prom>         write a metrics snapshot (JSON, or Prometheus
                                        text exposition when the path ends in .prom)
";

/// Parses `coign profile`'s trailing arguments: one or more scenario
/// names plus an optional `--jobs N` anywhere among them.
fn parse_profile_args(rest: &[String]) -> Result<(Vec<String>, usize), String> {
    let mut scenarios = Vec::new();
    let mut jobs = 1usize;
    let mut it = rest.iter();
    while let Some(token) = it.next() {
        match token.as_str() {
            "--jobs" => {
                let value = it.next().ok_or("--jobs needs a number argument")?;
                jobs = value
                    .parse()
                    .ok()
                    .filter(|n| *n >= 1)
                    .ok_or_else(|| format!("bad job count `{value}`"))?;
            }
            flag if flag.starts_with("--") => {
                return Err(format!("unknown flag `{flag}` for `coign profile`"));
            }
            scenario => scenarios.push(scenario.to_string()),
        }
    }
    if scenarios.is_empty() {
        return Err("`coign profile` needs at least one scenario".to_string());
    }
    Ok((scenarios, jobs))
}

/// Parses `coign run`'s trailing arguments: an optional positional network
/// name followed by the fault flags in any order.
fn parse_run_args(rest: &[String]) -> Result<(String, RunFaults), String> {
    let mut network = None;
    let mut faults = RunFaults::default();
    let mut it = rest.iter();
    while let Some(token) = it.next() {
        match token.as_str() {
            "--fault-plan" => {
                let value = it.next().ok_or("--fault-plan needs a file argument")?;
                faults.plan_path = Some(PathBuf::from(value));
            }
            "--fault-seed" => {
                let value = it.next().ok_or("--fault-seed needs a number argument")?;
                faults.fault_seed = value
                    .parse()
                    .map_err(|_| format!("bad fault seed `{value}`"))?;
            }
            "--summary" => faults.summary = true,
            flag if flag.starts_with("--") => {
                return Err(format!("unknown flag `{flag}` for `coign run`"));
            }
            positional => {
                if network.replace(positional.to_string()).is_some() {
                    return Err(format!("unexpected argument `{positional}`"));
                }
            }
        }
    }
    Ok((network.unwrap_or_else(|| "ethernet".to_string()), faults))
}

/// Parses `coign place`'s trailing arguments: an optional positional
/// network name plus `--machines/--replicate/--json` in any order.
fn parse_place_args(rest: &[String]) -> Result<(String, PlaceOptions), String> {
    let mut network = None;
    let mut opts = PlaceOptions::default();
    let mut it = rest.iter();
    while let Some(token) = it.next() {
        match token.as_str() {
            "--machines" => {
                let value = it.next().ok_or("--machines needs a number argument")?;
                opts.machines = value
                    .parse()
                    .ok()
                    .filter(|n| *n >= 2)
                    .ok_or_else(|| format!("bad machine count `{value}` (need ≥ 2)"))?;
            }
            "--replicate" => opts.replicate = true,
            "--json" => opts.json = true,
            flag if flag.starts_with("--") => {
                return Err(format!("unknown flag `{flag}` for `coign place`"));
            }
            positional => {
                if network.replace(positional.to_string()).is_some() {
                    return Err(format!("unexpected argument `{positional}`"));
                }
            }
        }
    }
    Ok((network.unwrap_or_else(|| "ethernet".to_string()), opts))
}

/// Parses `coign chaos`'s trailing arguments: an optional positional
/// network name plus `--seed/--trials/--jobs` in any order.
fn parse_chaos_args(rest: &[String]) -> Result<(String, ChaosOptions), String> {
    let mut network = None;
    let mut opts = ChaosOptions::default();
    let mut it = rest.iter();
    while let Some(token) = it.next() {
        match token.as_str() {
            "--seed" => {
                let value = it.next().ok_or("--seed needs a number argument")?;
                opts.seed = value.parse().map_err(|_| format!("bad seed `{value}`"))?;
            }
            "--trials" => {
                let value = it.next().ok_or("--trials needs a number argument")?;
                opts.trials = value
                    .parse()
                    .ok()
                    .filter(|n| *n >= 1)
                    .ok_or_else(|| format!("bad trial count `{value}`"))?;
            }
            "--jobs" => {
                let value = it.next().ok_or("--jobs needs a number argument")?;
                opts.jobs = value
                    .parse()
                    .ok()
                    .filter(|n| *n >= 1)
                    .ok_or_else(|| format!("bad job count `{value}`"))?;
            }
            "--replicate" => opts.replicate = true,
            flag if flag.starts_with("--") => {
                return Err(format!("unknown flag `{flag}` for `coign chaos`"));
            }
            positional => {
                if network.replace(positional.to_string()).is_some() {
                    return Err(format!("unexpected argument `{positional}`"));
                }
            }
        }
    }
    Ok((network.unwrap_or_else(|| "ethernet".to_string()), opts))
}

/// Parses `coign serve`'s trailing arguments: an optional positional
/// network name plus the serving flags in any order.
fn parse_serve_args(rest: &[String]) -> Result<(String, ServeCliOptions), String> {
    let mut network = None;
    let mut opts = ServeCliOptions::default();
    let mut it = rest.iter();
    while let Some(token) = it.next() {
        match token.as_str() {
            "--sessions" => {
                let value = it.next().ok_or("--sessions needs a number argument")?;
                opts.sessions = value
                    .parse()
                    .ok()
                    .filter(|n| *n >= 1)
                    .ok_or_else(|| format!("bad session count `{value}`"))?;
            }
            "--shards" => {
                let value = it.next().ok_or("--shards needs a number argument")?;
                opts.shards = value
                    .parse()
                    .ok()
                    .filter(|n| *n >= 1)
                    .ok_or_else(|| format!("bad shard count `{value}`"))?;
            }
            "--jobs" => {
                let value = it.next().ok_or("--jobs needs a number argument")?;
                opts.jobs = value
                    .parse()
                    .ok()
                    .filter(|n| *n >= 1)
                    .ok_or_else(|| format!("bad job count `{value}`"))?;
            }
            "--seed" => {
                let value = it.next().ok_or("--seed needs a number argument")?;
                opts.seed = value.parse().map_err(|_| format!("bad seed `{value}`"))?;
            }
            "--window" => {
                let value = it.next().ok_or("--window needs a number argument (us)")?;
                opts.window_us = value.parse().map_err(|_| format!("bad window `{value}`"))?;
            }
            "--no-batch" => opts.batching = false,
            "--json" => opts.json = true,
            "--timeline" => {
                let value = it.next().ok_or("--timeline needs a path argument (or -)")?;
                opts.timeline = Some(value.to_string());
            }
            "--timeline-window" => {
                let value = it
                    .next()
                    .ok_or("--timeline-window needs a number argument (us)")?;
                opts.timeline_window_us = value
                    .parse()
                    .ok()
                    .filter(|n| *n >= 1)
                    .ok_or_else(|| format!("bad timeline window `{value}`"))?;
            }
            "--slo-p99-us" => {
                let value = it.next().ok_or("--slo-p99-us needs a number argument")?;
                opts.slo_p99_us = Some(
                    value
                        .parse()
                        .map_err(|_| format!("bad slo target `{value}`"))?,
                );
            }
            "--trace-sample" => {
                let value = it.next().ok_or("--trace-sample needs a number argument")?;
                opts.trace_sample = value
                    .parse()
                    .map_err(|_| format!("bad trace sample rate `{value}`"))?;
            }
            "--fault-plan" => {
                let value = it.next().ok_or("--fault-plan needs a file argument")?;
                opts.fault_plan = Some(PathBuf::from(value));
            }
            "--fault-seed" => {
                let value = it.next().ok_or("--fault-seed needs a number argument")?;
                opts.fault_seed = value
                    .parse()
                    .map_err(|_| format!("bad fault seed `{value}`"))?;
            }
            "--replicate" => opts.replicate = true,
            flag if flag.starts_with("--") => {
                return Err(format!("unknown flag `{flag}` for `coign serve`"));
            }
            positional => {
                if network.replace(positional.to_string()).is_some() {
                    return Err(format!("unexpected argument `{positional}`"));
                }
            }
        }
    }
    Ok((network.unwrap_or_else(|| "ethernet".to_string()), opts))
}

/// Parses `coign gen`'s arguments: `--seed N` (required) plus
/// `--size/--emit/--json` in any order.
fn parse_gen_args(rest: &[String]) -> Result<(u64, GenSize, Option<PathBuf>, bool), String> {
    let mut seed = None;
    let mut size = GenSize::Small;
    let mut emit = None;
    let mut json = false;
    let mut it = rest.iter();
    while let Some(token) = it.next() {
        match token.as_str() {
            "--seed" => {
                let value = it.next().ok_or("--seed needs a number argument")?;
                seed = Some(value.parse().map_err(|_| format!("bad seed `{value}`"))?);
            }
            "--size" => {
                let value = it.next().ok_or("--size needs small|medium|large")?;
                size = GenSize::parse(value).ok_or_else(|| {
                    format!("bad size `{value}` (expected small, medium, or large)")
                })?;
            }
            "--emit" => {
                let value = it.next().ok_or("--emit needs a directory argument")?;
                emit = Some(PathBuf::from(value));
            }
            "--json" => json = true,
            other => return Err(format!("unknown argument `{other}` for `coign gen`")),
        }
    }
    let seed = seed.ok_or("`coign gen` needs --seed N")?;
    Ok((seed, size, emit, json))
}

/// Parses a comma-separated list of numbers for `--faults-at`/`--thresholds`.
fn parse_number_list<T: std::str::FromStr>(flag: &str, value: &str) -> Result<Vec<T>, String> {
    value
        .split(',')
        .filter(|part| !part.is_empty())
        .map(|part| {
            part.trim()
                .parse()
                .map_err(|_| format!("bad {flag} entry `{part}`"))
        })
        .collect()
}

/// Parses `coign explore`'s trailing arguments: an optional positional
/// network name plus the schedule flags in any order.
fn parse_explore_args(rest: &[String]) -> Result<(String, ExploreCliOptions), String> {
    let mut network = None;
    let mut opts = ExploreCliOptions::default();
    let mut it = rest.iter();
    while let Some(token) = it.next() {
        match token.as_str() {
            "--faults-at" => {
                let value = it
                    .next()
                    .ok_or("--faults-at needs a comma-separated list")?;
                let instants: Vec<u64> = parse_number_list("--faults-at", value)?;
                if instants.is_empty() {
                    return Err("--faults-at needs at least one instant".to_string());
                }
                opts.faults_at = Some(instants);
            }
            "--enumerate-depth" => {
                let value = it
                    .next()
                    .ok_or("--enumerate-depth needs a number argument")?;
                opts.depth = value
                    .parse()
                    .ok()
                    .filter(|n| *n >= 1)
                    .ok_or_else(|| format!("bad depth `{value}`"))?;
            }
            "--thresholds" => {
                let value = it
                    .next()
                    .ok_or("--thresholds needs a comma-separated list")?;
                let thresholds: Vec<u32> = parse_number_list("--thresholds", value)?;
                if thresholds.is_empty() || thresholds.contains(&0) {
                    return Err("--thresholds needs one or more values ≥ 1".to_string());
                }
                opts.thresholds = thresholds;
            }
            "--drift" => opts.with_drift = true,
            "--replicate" => opts.with_replicas = true,
            "--seed" => {
                let value = it.next().ok_or("--seed needs a number argument")?;
                opts.seed = value.parse().map_err(|_| format!("bad seed `{value}`"))?;
            }
            "--jobs" => {
                let value = it.next().ok_or("--jobs needs a number argument")?;
                opts.jobs = value
                    .parse()
                    .ok()
                    .filter(|n| *n >= 1)
                    .ok_or_else(|| format!("bad job count `{value}`"))?;
            }
            flag if flag.starts_with("--") => {
                return Err(format!("unknown flag `{flag}` for `coign explore`"));
            }
            positional => {
                if network.replace(positional.to_string()).is_some() {
                    return Err(format!("unexpected argument `{positional}`"));
                }
            }
        }
    }
    Ok((network.unwrap_or_else(|| "ethernet".to_string()), opts))
}

/// The global `--trace` / `--metrics` flags plus the remaining arguments.
struct GlobalFlags {
    rest: Vec<String>,
    trace: Option<PathBuf>,
    metrics: Option<PathBuf>,
}

/// Extracts the global `--trace <path>` / `--metrics <path>` flags from
/// anywhere on the command line, returning the remaining arguments.
fn parse_global_flags(args: &[String]) -> Result<GlobalFlags, String> {
    let mut rest = Vec::new();
    let mut trace = None;
    let mut metrics = None;
    let mut it = args.iter();
    while let Some(token) = it.next() {
        match token.as_str() {
            "--trace" => {
                let value = it.next().ok_or("--trace needs a file argument")?;
                trace = Some(PathBuf::from(value));
            }
            "--metrics" => {
                let value = it.next().ok_or("--metrics needs a file argument")?;
                metrics = Some(PathBuf::from(value));
            }
            other => rest.push(other.to_string()),
        }
    }
    Ok(GlobalFlags {
        rest,
        trace,
        metrics,
    })
}

fn dispatch(args: &[String], obs: Option<&Obs>) -> Result<String, String> {
    let arg = |i: usize| -> Result<&str, String> {
        args.get(i)
            .map(String::as_str)
            .ok_or_else(|| USAGE.to_string())
    };
    // Image-positional arguments accept `gen:<seed>[:<size>]` addresses;
    // those materialize an instrumented image on demand.
    let image = |i: usize| -> Result<PathBuf, String> {
        resolve_image_spec(arg(i)?).map_err(|e| format!("error: {e}"))
    };
    let result = match arg(0)? {
        "instrument" => cmd_instrument(arg(1)?, Path::new(arg(2)?)),
        "profile" => {
            let (scenarios, jobs) = parse_profile_args(&args[2.min(args.len())..])?;
            let refs: Vec<&str> = scenarios.iter().map(String::as_str).collect();
            cmd_profile_observed(&image(1)?, &refs, jobs, obs)
        }
        "analyze" => cmd_analyze_observed(&image(1)?, arg(2).unwrap_or("ethernet"), obs),
        "sweep" => cmd_sweep_observed(
            &image(1)?,
            args.get(2).map(String::as_str) == Some("--json"),
            obs,
        ),
        "run" => {
            let (network, faults) = parse_run_args(&args[3.min(args.len())..])?;
            cmd_run_observed(&image(1)?, arg(2)?, &network, &faults, obs)
        }
        "place" => {
            let (network, opts) = parse_place_args(&args[3.min(args.len())..])?;
            cmd_place_observed(&image(1)?, arg(2)?, &network, &opts, obs)
        }
        "chaos" => {
            let (network, opts) = parse_chaos_args(&args[3.min(args.len())..])?;
            cmd_chaos_observed(&image(1)?, arg(2)?, &network, &opts, obs)
        }
        "serve" => {
            let (network, opts) = parse_serve_args(&args[3.min(args.len())..])?;
            cmd_serve_observed(&image(1)?, arg(2)?, &network, &opts, obs)
        }
        "gen" => {
            let (seed, size, emit, json) = parse_gen_args(&args[1.min(args.len())..])?;
            cmd_gen(seed, size, emit.as_deref(), json)
        }
        "explore" => {
            let (network, opts) = parse_explore_args(&args[3.min(args.len())..])?;
            cmd_explore(arg(1)?, arg(2)?, &network, &opts)
        }
        "show" => cmd_show(&image(1)?),
        "hotspots" => {
            let top = arg(2).ok().and_then(|s| s.parse().ok()).unwrap_or(10);
            cmd_hotspots(&image(1)?, top)
        }
        "script" => cmd_script(&image(1)?, Path::new(arg(2)?)),
        "dot" => cmd_dot(&image(1)?, Path::new(arg(2)?)),
        "strip" => cmd_strip(&image(1)?),
        _ => return Err(USAGE.to_string()),
    };
    result.map_err(|e| format!("error: {e}"))
}

fn run(args: &[String], obs: Option<&Obs>) -> ExitCode {
    let _span = obs.map(|o| {
        o.tracer.phase_span_with(
            format!("cli:{}", args.first().map(String::as_str).unwrap_or("?")),
            Vec::new(),
        )
    });
    // `check` owns its exit semantics: the report is the output either way
    // and always goes to stdout; the exit status alone signals whether an
    // error-level diagnostic fired.
    if args.first().map(String::as_str) == Some("check") {
        let Some(path) = args.get(1) else {
            eprintln!("{USAGE}");
            return ExitCode::FAILURE;
        };
        let json = args.get(2).map(String::as_str) == Some("--json");
        let path = match resolve_image_spec(path) {
            Ok(resolved) => resolved,
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::FAILURE;
            }
        };
        return match cmd_check(&path, json) {
            Ok(report) => {
                println!("{}", report.trim_end());
                ExitCode::SUCCESS
            }
            Err(report) => {
                println!("{}", report.trim_end());
                ExitCode::FAILURE
            }
        };
    }
    match dispatch(args, obs) {
        Ok(message) => {
            println!("{message}");
            ExitCode::SUCCESS
        }
        Err(message) => {
            eprintln!("{message}");
            ExitCode::FAILURE
        }
    }
}

/// Writes the collected trace and metrics to their requested files. A
/// `--metrics` path ending in `.prom` selects the Prometheus text
/// exposition; anything else gets the JSON snapshot.
fn write_observability(
    obs: &Obs,
    trace: Option<&Path>,
    metrics: Option<&Path>,
) -> Result<(), String> {
    if let Some(path) = trace {
        std::fs::write(path, obs.tracer.export_chrome_json())
            .map_err(|e| format!("cannot write {}: {e}", path.display()))?;
    }
    if let Some(path) = metrics {
        let text = if path.extension().is_some_and(|e| e == "prom") {
            obs.registry.render_prometheus()
        } else {
            obs.registry.snapshot_json()
        };
        std::fs::write(path, text).map_err(|e| format!("cannot write {}: {e}", path.display()))?;
    }
    Ok(())
}

fn main() -> ExitCode {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let GlobalFlags {
        rest: args,
        trace: trace_path,
        metrics: metrics_path,
    } = match parse_global_flags(&raw) {
        Ok(parsed) => parsed,
        Err(message) => {
            eprintln!("error: {message}");
            return ExitCode::FAILURE;
        }
    };
    let obs = if trace_path.is_some() || metrics_path.is_some() {
        let obs = Obs::enabled();
        coign_obs::install_global(obs.clone());
        Some(obs)
    } else {
        None
    };
    // The `cli:<subcommand>` span must close before export, so the trace
    // is written only after `run` returns.
    let code = run(&args, obs.as_ref());
    if let Some(o) = &obs {
        if let Err(message) = write_observability(o, trace_path.as_deref(), metrics_path.as_deref())
        {
            eprintln!("error: {message}");
            return ExitCode::FAILURE;
        }
    }
    code
}
