//! Golden-output tests: the rendered diagnostics of `coign check` are an
//! interface (CI and editors parse the JSON), so their exact shape is
//! pinned against committed expectations. If a change to diagnostic codes
//! or renderers is intentional, regenerate the golden file with
//!
//! ```text
//! cargo run -p coign-cli --bin coign -- check examples/octarine.cimg --json \
//!     > crates/cli/tests/golden/octarine_check.json
//! ```
//!
//! The `coign sweep --json` output is pinned the same way. The example
//! image ships unprofiled, so the golden sequence profiles a scratch copy
//! first (profiling is deterministic, and the merged log is identical for
//! every `--jobs` count):
//!
//! ```text
//! cp examples/octarine.cimg /tmp/sweep.cimg
//! cargo run -p coign-cli --bin coign -- profile /tmp/sweep.cimg o_oldtb3 o_newdoc --jobs 2
//! cargo run -p coign-cli --bin coign -- sweep /tmp/sweep.cimg --json \
//!     > crates/cli/tests/golden/octarine_sweep.json
//! ```

use coign_cli::{cmd_check, cmd_profile, cmd_sweep};
use std::path::{Path, PathBuf};

fn example_image() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../../examples/octarine.cimg")
        .canonicalize()
        .expect("examples/octarine.cimg exists")
}

#[test]
fn check_json_output_matches_golden_file() {
    let report = cmd_check(&example_image(), true).expect("check passes on the example image");
    let golden = include_str!("golden/octarine_check.json");
    assert_eq!(
        report.trim_end(),
        golden.trim_end(),
        "`coign check --json` drifted from the committed golden output; \
         if the change is intentional, regenerate the golden file (see module docs)"
    );
}

#[test]
fn check_json_golden_is_wellformed() {
    // Guard the golden file itself: it must stay one JSON object with the
    // summary counters first, so downstream `head -c`/jq pipelines keep
    // working.
    let golden = include_str!("golden/octarine_check.json");
    let trimmed = golden.trim_end();
    assert!(trimmed.starts_with("{\"errors\":"));
    assert!(trimmed.ends_with("]}"));
    assert_eq!(trimmed.matches("\"code\":").count(), 2);
}

#[test]
fn sweep_json_output_matches_golden_file() {
    let scratch =
        std::env::temp_dir().join(format!("coign_golden_sweep_{}.cimg", std::process::id()));
    std::fs::copy(example_image(), &scratch).expect("copy example image to scratch path");
    let swept =
        cmd_profile(&scratch, &["o_oldtb3", "o_newdoc"], 2).and_then(|_| cmd_sweep(&scratch, true));
    std::fs::remove_file(&scratch).ok();
    let report = swept.expect("profile + sweep succeed on the example image");
    let golden = include_str!("golden/octarine_sweep.json");
    assert_eq!(
        report.trim_end(),
        golden.trim_end(),
        "`coign sweep --json` drifted from the committed golden output; \
         if the change is intentional, regenerate the golden file (see module docs)"
    );
}

#[test]
fn sweep_json_golden_is_wellformed() {
    // Guard the golden file itself: one JSON object, grid first, then the
    // full 4x4 paper-network grid of points.
    let golden = include_str!("golden/octarine_sweep.json");
    let trimmed = golden.trim_end();
    assert!(trimmed.starts_with("{\"grid\":"));
    assert!(trimmed.ends_with("]}"));
    assert_eq!(trimmed.matches("\"cut_value\":").count(), 16);
}

#[test]
fn check_human_output_is_stable_in_shape() {
    let report = cmd_check(&example_image(), false).unwrap();
    assert!(report.contains("COIGN010"));
    assert!(report.contains("COIGN012"));
    assert!(report.contains("0 error(s)"));
}
