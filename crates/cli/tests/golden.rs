//! Golden-output tests: the rendered diagnostics of `coign check` are an
//! interface (CI and editors parse the JSON), so their exact shape is
//! pinned against committed expectations. If a change to diagnostic codes
//! or renderers is intentional, regenerate the golden file with
//!
//! ```text
//! cargo run -p coign-cli --bin coign -- check examples/octarine.cimg --json \
//!     > crates/cli/tests/golden/octarine_check.json
//! ```
//!
//! The `coign sweep --json` output is pinned the same way. The example
//! image ships unprofiled, so the golden sequence profiles a scratch copy
//! first (profiling is deterministic, and the merged log is identical for
//! every `--jobs` count):
//!
//! ```text
//! cp examples/octarine.cimg /tmp/sweep.cimg
//! cargo run -p coign-cli --bin coign -- profile /tmp/sweep.cimg o_oldtb3 o_newdoc --jobs 2
//! cargo run -p coign-cli --bin coign -- sweep /tmp/sweep.cimg --json \
//!     > crates/cli/tests/golden/octarine_sweep.json
//! ```
//!
//! The benefits and photodraw `check --json` reports pin the replication-
//! legality stages (COIGN040–044) across the other two applications; their
//! images are freshly instrumented scratch copies (`coign instrument
//! benefits /tmp/b.cimg && coign check /tmp/b.cimg --json > ...`). The
//! `coign dot` overlay is pinned from a profiled + analyzed octarine
//! image (same profile recipe as the sweep golden, then `coign analyze
//! <img> ethernet && coign dot <img> .../octarine_dot.gv`). COIGN045 is
//! dynamic-only — it renders in `coign profile` output, never in `check`,
//! and stays absent from honest runs (asserted in the CLI unit tests).

//! The generator goldens pin the `coign gen --seed 42 --json` topology
//! summary and a violation-free `coign explore` report over the same
//! seed (explicit `--faults-at` schedule, so the run stays fast):
//!
//! ```text
//! cargo run -p coign-cli --bin coign -- gen --seed 42 --json \
//!     > crates/cli/tests/golden/gen_seed42.json
//! cargo run -p coign-cli --bin coign -- explore gen:42 g_main \
//!     --faults-at 4000,9000,14000,21000 --thresholds 1,3 \
//!     > crates/cli/tests/golden/explore_small.txt
//! ```

use coign_cli::{
    cmd_analyze, cmd_check, cmd_dot, cmd_explore, cmd_gen, cmd_instrument, cmd_profile, cmd_serve,
    cmd_sweep, resolve_image_spec, ExploreCliOptions, ServeCliOptions,
};
use coign_gen::GenSize;
use std::path::{Path, PathBuf};

fn example_image() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../../examples/octarine.cimg")
        .canonicalize()
        .expect("examples/octarine.cimg exists")
}

fn scratch(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("coign_golden_{tag}_{}.cimg", std::process::id()))
}

#[test]
fn check_json_output_matches_golden_file() {
    let report = cmd_check(&example_image(), true).expect("check passes on the example image");
    let golden = include_str!("golden/octarine_check.json");
    assert_eq!(
        report.trim_end(),
        golden.trim_end(),
        "`coign check --json` drifted from the committed golden output; \
         if the change is intentional, regenerate the golden file (see module docs)"
    );
}

#[test]
fn check_json_golden_is_wellformed() {
    // Guard the golden file itself: it must stay one JSON object with the
    // summary counters first, so downstream `head -c`/jq pipelines keep
    // working.
    let golden = include_str!("golden/octarine_check.json");
    let trimmed = golden.trim_end();
    assert!(trimmed.starts_with("{\"errors\":"));
    assert!(trimmed.ends_with("]}"));
    assert_eq!(trimmed.matches("\"code\":").count(), 20);
    // The replication-legality stages contribute their share: partial
    // annotations, pure interfaces, mutable-shared warnings, and the
    // replicable flyweight verdicts.
    assert_eq!(trimmed.matches("\"code\":\"COIGN040\"").count(), 2);
    assert_eq!(trimmed.matches("\"code\":\"COIGN042\"").count(), 6);
    assert_eq!(trimmed.matches("\"code\":\"COIGN043\"").count(), 2);
    assert_eq!(trimmed.matches("\"code\":\"COIGN044\"").count(), 8);
}

#[test]
fn check_json_output_is_deterministic_across_runs() {
    // Byte-identity across two full passes over the same image: every
    // stage iterates name-sorted structures, so nothing may depend on
    // hash-map order or interleaving.
    let first = cmd_check(&example_image(), true).unwrap();
    let second = cmd_check(&example_image(), true).unwrap();
    assert_eq!(first, second, "`coign check --json` must be deterministic");
}

#[test]
fn benefits_check_json_matches_golden_file() {
    let img = scratch("bencheck");
    let report = cmd_instrument("benefits", &img)
        .map_err(|e| e.to_string())
        .and_then(|_| cmd_check(&img, true));
    std::fs::remove_file(&img).ok();
    let report = report.expect("instrument + check succeed on benefits");
    let golden = include_str!("golden/benefits_check.json");
    assert_eq!(
        report.trim_end(),
        golden.trim_end(),
        "`coign check --json` on benefits drifted from the committed golden \
         output; if the change is intentional, regenerate it (see module docs)"
    );
}

#[test]
fn photodraw_check_json_matches_golden_file() {
    let img = scratch("pdcheck");
    let report = cmd_instrument("photodraw", &img)
        .map_err(|e| e.to_string())
        .and_then(|_| cmd_check(&img, true));
    std::fs::remove_file(&img).ok();
    let report = report.expect("instrument + check succeed on photodraw");
    let golden = include_str!("golden/photodraw_check.json");
    assert_eq!(
        report.trim_end(),
        golden.trim_end(),
        "`coign check --json` on photodraw drifted from the committed golden \
         output; if the change is intentional, regenerate it (see module docs)"
    );
}

#[test]
fn dot_output_matches_golden_file() {
    // The full replication-legality overlay on a profiled + analyzed
    // octarine image: double-circled replicable flyweights, shaded
    // annotated mutable-shared classes, and effect-labelled edges.
    let img = scratch("dot");
    let out = std::env::temp_dir().join(format!("coign_golden_dot_{}.gv", std::process::id()));
    std::fs::copy(example_image(), &img).expect("copy example image to scratch path");
    let rendered = cmd_profile(&img, &["o_oldtb3", "o_newdoc"], 2)
        .and_then(|_| cmd_analyze(&img, "ethernet"))
        .and_then(|_| cmd_dot(&img, &out))
        .and_then(|_| {
            std::fs::read_to_string(&out)
                .map_err(|e| coign_com::ComError::App(format!("read {}: {e}", out.display())))
        });
    std::fs::remove_file(&img).ok();
    std::fs::remove_file(&out).ok();
    let rendered = rendered.expect("profile + analyze + dot succeed");
    let golden = include_str!("golden/octarine_dot.gv");
    assert_eq!(
        rendered, golden,
        "`coign dot` drifted from the committed golden output; if the \
         change is intentional, regenerate it (see module docs)"
    );
    assert!(golden.contains("peripheries=2"));
    assert!(golden.contains("fillcolor=mistyrose"));
    assert!(golden.contains("(pure)") && golden.contains("(reads)"));
}

#[test]
fn sweep_json_output_matches_golden_file() {
    let scratch =
        std::env::temp_dir().join(format!("coign_golden_sweep_{}.cimg", std::process::id()));
    std::fs::copy(example_image(), &scratch).expect("copy example image to scratch path");
    let swept =
        cmd_profile(&scratch, &["o_oldtb3", "o_newdoc"], 2).and_then(|_| cmd_sweep(&scratch, true));
    std::fs::remove_file(&scratch).ok();
    let report = swept.expect("profile + sweep succeed on the example image");
    let golden = include_str!("golden/octarine_sweep.json");
    assert_eq!(
        report.trim_end(),
        golden.trim_end(),
        "`coign sweep --json` drifted from the committed golden output; \
         if the change is intentional, regenerate the golden file (see module docs)"
    );
}

#[test]
fn sweep_json_golden_is_wellformed() {
    // Guard the golden file itself: one JSON object, grid first, then the
    // full 4x4 paper-network grid of points.
    let golden = include_str!("golden/octarine_sweep.json");
    let trimmed = golden.trim_end();
    assert!(trimmed.starts_with("{\"grid\":"));
    assert!(trimmed.ends_with("]}"));
    assert_eq!(trimmed.matches("\"cut_value\":").count(), 16);
}

#[test]
fn gen_topology_summary_matches_golden_file() {
    let report = cmd_gen(42, GenSize::Small, None, true).expect("gen succeeds");
    let golden = include_str!("golden/gen_seed42.json");
    assert_eq!(
        report.trim_end(),
        golden.trim_end(),
        "`coign gen --seed 42 --json` drifted from the committed golden \
         output; if the change is intentional, regenerate it (see module docs)"
    );
}

#[test]
fn gen_golden_is_wellformed() {
    // Guard the golden file: one JSON object whose identity keys come
    // first, so downstream jq pipelines keep working.
    let golden = include_str!("golden/gen_seed42.json");
    let trimmed = golden.trim_end();
    assert!(trimmed.starts_with("{\n  \"app\": \"gen-42-small\""));
    assert!(trimmed.ends_with("}"));
    for key in [
        "\"seed\": 42",
        "\"size\": \"small\"",
        "\"classes\":",
        "\"non_remotable_interfaces\":",
        "\"explicit_constraints\":",
        "\"scenarios\": [\"g_main\",\"g_doc\",\"g_idle\"]",
    ] {
        assert!(trimmed.contains(key), "golden summary lost `{key}`");
    }
}

#[test]
fn explore_report_matches_golden_file() {
    // A violation-free schedule-space sweep over the golden seed: the
    // explicit fault schedule keeps the run to 8 interleavings, and the
    // summary is byte-stable (it never includes host time or job count).
    let opts = ExploreCliOptions {
        faults_at: Some(vec![4000, 9000, 14000, 21000]),
        thresholds: vec![1, 3],
        ..ExploreCliOptions::default()
    };
    let report = cmd_explore("gen:42", "g_main", "ethernet", &opts).expect("explore succeeds");
    let golden = include_str!("golden/explore_small.txt");
    assert_eq!(
        report.trim_end(),
        golden.trim_end(),
        "`coign explore` drifted from the committed golden output; if the \
         change is intentional, regenerate it (see module docs)"
    );
    assert!(golden.contains("invariants: ok (0 violation(s)"));
    assert!(golden.contains("calibration: ks="));
}

#[test]
fn check_human_output_is_stable_in_shape() {
    let report = cmd_check(&example_image(), false).unwrap();
    assert!(report.contains("COIGN010"));
    assert!(report.contains("COIGN012"));
    assert!(report.contains("0 error(s)"));
}

#[test]
fn serve_json_output_matches_golden_file() {
    // The serving-harness summary is fully simulated (no wall-clock
    // numbers), so its exact JSON shape is pinned. Regenerate with
    //
    //   cargo run -p coign-cli --bin coign -- serve gen:42 g_main \
    //       --sessions 2000 --json > crates/cli/tests/golden/serve_gen42.json
    let img = resolve_image_spec("gen:42").expect("gen:42 materializes");
    let opts = ServeCliOptions {
        sessions: 2_000,
        json: true,
        ..ServeCliOptions::default()
    };
    let report = cmd_serve(&img, "g_main", "ethernet", &opts).expect("serve succeeds");
    let golden = include_str!("golden/serve_gen42.json");
    assert_eq!(
        report.trim_end(),
        golden.trim_end(),
        "`coign serve --json` drifted from the committed golden output; if \
         the change is intentional, regenerate it (see the test body)"
    );
    assert!(golden.contains("\"batching\":true"));
    assert!(golden.contains("\"latency_us\""));
}

#[test]
fn serve_timeline_json_matches_golden_file() {
    // The timeline is pure simulated time (windows, busy-µs, per-window
    // quantiles), so its bytes are pinned too. Regenerate with
    //
    //   cargo run -p coign-cli --bin coign -- serve gen:42 g_main --sessions 2000 \
    //       --timeline crates/cli/tests/golden/serve_gen42_timeline.json
    let img = resolve_image_spec("gen:42").expect("gen:42 materializes");
    let sink =
        std::env::temp_dir().join(format!("coign_golden_timeline_{}.json", std::process::id()));
    let opts = ServeCliOptions {
        sessions: 2_000,
        timeline: Some(sink.display().to_string()),
        ..ServeCliOptions::default()
    };
    let run = cmd_serve(&img, "g_main", "ethernet", &opts);
    let written = std::fs::read_to_string(&sink);
    std::fs::remove_file(&sink).ok();
    run.expect("serve succeeds");
    let written = written.expect("serve wrote the timeline file");
    let golden = include_str!("golden/serve_gen42_timeline.json");
    assert_eq!(
        written, golden,
        "`coign serve --timeline` drifted from the committed golden output; \
         if the change is intentional, regenerate it (see the test body)"
    );
    assert!(golden.starts_with("{\"window_us\":100000,\"windows\":["));
    assert!(golden.contains("\"latency_us\""));
    assert!(golden.contains("\"links\":[{\"link\":\"0->1\""));
}

#[test]
fn serve_timeline_is_byte_identical_across_jobs() {
    // Per-shard series merge in shard order, so the exported timeline —
    // like the summary — must not depend on the worker-thread count.
    let img = resolve_image_spec("gen:42").expect("gen:42 materializes");
    let render = |jobs: usize| {
        let sink = std::env::temp_dir().join(format!(
            "coign_golden_timeline_j{jobs}_{}.csv",
            std::process::id()
        ));
        let opts = ServeCliOptions {
            sessions: 2_000,
            jobs,
            timeline: Some(sink.display().to_string()),
            slo_p99_us: Some(4_000),
            ..ServeCliOptions::default()
        };
        let out = cmd_serve(&img, "g_main", "ethernet", &opts).expect("serve succeeds");
        let written = std::fs::read_to_string(&sink).expect("timeline file written");
        std::fs::remove_file(&sink).ok();
        out + &written
    };
    let base = render(1);
    assert!(base.contains("slo: target p99<=4000us"));
    for jobs in [2, 4, 8] {
        assert_eq!(
            base,
            render(jobs),
            "serve timeline changed between --jobs 1 and --jobs {jobs}"
        );
    }
}

#[test]
fn serve_summary_is_byte_identical_across_jobs() {
    // `--jobs` picks the worker-thread count, never the schedule: the
    // rendered summary must not change with it (mirrors chaos/explore).
    let img = resolve_image_spec("gen:42").expect("gen:42 materializes");
    let opts = |jobs| ServeCliOptions {
        sessions: 2_000,
        jobs,
        json: true,
        ..ServeCliOptions::default()
    };
    let base = cmd_serve(&img, "g_main", "ethernet", &opts(1)).expect("serve with one worker");
    for jobs in [2, 4, 8] {
        let out = cmd_serve(&img, "g_main", "ethernet", &opts(jobs))
            .expect("serve with parallel workers");
        assert_eq!(
            base, out,
            "serve summary changed between --jobs 1 and --jobs {jobs}"
        );
    }
}

#[test]
fn gen_image_materialization_is_cached() {
    // A seed no other test uses, so nothing regenerates it concurrently:
    // the second resolve must memo-hit and leave the artifact untouched.
    let first = resolve_image_spec("gen:97").expect("gen:97 materializes");
    let stamp = std::fs::metadata(&first)
        .expect("materialized image exists")
        .modified()
        .expect("filesystem records mtime");
    let second = resolve_image_spec("gen:97").expect("cached resolve succeeds");
    assert_eq!(first, second, "cache returned a different artifact path");
    let stamp_again = std::fs::metadata(&second)
        .expect("materialized image still exists")
        .modified()
        .expect("filesystem records mtime");
    assert_eq!(
        stamp, stamp_again,
        "second resolve regenerated the image instead of hitting the cache"
    );
}
