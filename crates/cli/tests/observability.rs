//! Observability integration tests: trace validity, determinism under a
//! fixed seed, zero overhead when disabled, and the golden metrics
//! snapshot.
//!
//! Determinism is the load-bearing property: `--trace` and `--metrics`
//! exist so CI can diff two same-seed runs byte for byte, which only works
//! if nothing nondeterministic (host time, thread interleaving, map
//! ordering) leaks into the exports.
//!
//! Regenerate the golden metrics snapshot after an intentional change with:
//!
//! ```text
//! T=$(mktemp -d)
//! cargo run -rp coign-cli -- instrument octarine $T/o.cimg
//! cargo run -rp coign-cli -- profile $T/o.cimg o_oldtb3
//! cargo run -rp coign-cli -- analyze $T/o.cimg ethernet
//! cargo run -rp coign-cli -- run $T/o.cimg o_oldtb3 ethernet \
//!     --fault-plan examples/faults/demo.fplan --fault-seed 7 \
//!     --metrics crates/cli/tests/golden/octarine_run_metrics.json
//! ```

use coign_cli::{
    cmd_analyze_observed, cmd_instrument, cmd_profile, cmd_profile_observed, cmd_run,
    cmd_run_observed, cmd_serve_observed, cmd_sweep_observed, resolve_image_spec, RunFaults,
    ServeCliOptions,
};
use coign_obs::{validate_chrome_trace, Obs};
use std::path::{Path, PathBuf};
use std::process::Command;

fn temp(tag: &str) -> PathBuf {
    let mut path = std::env::temp_dir();
    path.push(format!("coign_obs_{tag}_{}.cimg", std::process::id()));
    path
}

fn demo_plan() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../../examples/faults/demo.fplan")
        .canonicalize()
        .expect("examples/faults/demo.fplan exists")
}

/// Instrument → profile → analyze, exactly like the CI fault block.
fn realized_image(tag: &str) -> PathBuf {
    let path = temp(tag);
    cmd_instrument("octarine", &path).unwrap();
    cmd_profile(&path, &["o_oldtb3"], 1).unwrap();
    cmd_analyze_observed(&path, "ethernet", None).unwrap();
    path
}

fn run_faults() -> RunFaults {
    RunFaults {
        plan_path: Some(demo_plan()),
        fault_seed: 7,
        summary: true,
    }
}

/// A fresh bundle with host-time export pinned off, so traces compare
/// byte-for-byte even if the ambient environment opts host time in.
fn fresh_obs() -> Obs {
    let obs = Obs::enabled();
    obs.tracer.set_host_time(false);
    obs
}

fn observed_run(path: &Path) -> (Obs, String) {
    let obs = fresh_obs();
    let out = cmd_run_observed(path, "o_oldtb3", "ethernet", &run_faults(), Some(&obs)).unwrap();
    (obs, out)
}

#[test]
fn fault_run_trace_and_metrics_are_byte_identical_across_runs() {
    let path = realized_image("det");
    let (a_obs, a_out) = observed_run(&path);
    let (b_obs, b_out) = observed_run(&path);
    assert_eq!(a_out, b_out, "run summary must reproduce");
    assert_eq!(
        a_obs.tracer.export_chrome_json(),
        b_obs.tracer.export_chrome_json(),
        "same seed + fault plan must serialize a byte-identical trace"
    );
    assert_eq!(
        a_obs.registry.snapshot_json(),
        b_obs.registry.snapshot_json(),
        "same seed + fault plan must snapshot byte-identical metrics"
    );
    std::fs::remove_file(&path).ok();
}

#[test]
fn parallel_profile_trace_is_byte_identical_across_runs() {
    // Two `--jobs 4` passes over the same suite must serialize the same
    // trace regardless of worker interleaving: scenario events buffer in
    // child tracers and merge back in scenario order.
    let scenarios = ["o_oldtb3", "o_newdoc", "o_oldwp7"];
    let mut exports = Vec::new();
    for tag in ["ptrace_a", "ptrace_b"] {
        let path = temp(tag);
        cmd_instrument("octarine", &path).unwrap();
        let obs = fresh_obs();
        cmd_profile_observed(&path, &scenarios, 4, Some(&obs)).unwrap();
        exports.push((
            obs.tracer.export_chrome_json(),
            obs.registry.snapshot_json(),
        ));
        std::fs::remove_file(&path).ok();
    }
    assert_eq!(exports[0].0, exports[1].0, "parallel profile trace differs");
    assert_eq!(
        exports[0].1, exports[1].1,
        "parallel profile metrics differ"
    );
    let summary = validate_chrome_trace(&exports[0].0).expect("parallel trace validates");
    assert_eq!(summary.instant_count("classifier_fork"), scenarios.len());
    assert_eq!(summary.instant_count("classifier_absorb"), scenarios.len());
    for scenario in scenarios {
        assert!(summary.has_span(&format!("scenario:{scenario}")));
    }
}

#[test]
fn disabled_observability_leaves_the_run_report_unchanged() {
    let path = realized_image("zero");
    let plain = cmd_run(&path, "o_oldtb3", "ethernet", &run_faults()).unwrap();

    // A disabled bundle records no trace and must not perturb the report.
    let disabled = Obs::disabled();
    let off = cmd_run_observed(
        &path,
        "o_oldtb3",
        "ethernet",
        &run_faults(),
        Some(&disabled),
    )
    .unwrap();
    assert_eq!(plain, off, "disabled tracer changed the run report");
    assert!(disabled.tracer.is_empty());

    // An enabled bundle records plenty — and still must not perturb it:
    // tracing observes the simulation, it never charges simulated time.
    let (obs, on) = observed_run(&path);
    assert_eq!(plain, on, "enabled tracer changed the run report");
    assert!(!obs.tracer.is_empty());
    std::fs::remove_file(&path).ok();
}

#[test]
fn chrome_trace_is_valid_and_covers_every_pipeline_phase() {
    let path = temp("schema");
    let obs = fresh_obs();
    cmd_instrument("octarine", &path).unwrap();
    cmd_profile_observed(&path, &["o_oldtb3"], 1, Some(&obs)).unwrap();
    cmd_analyze_observed(&path, "ethernet", Some(&obs)).unwrap();
    cmd_run_observed(&path, "o_oldtb3", "ethernet", &run_faults(), Some(&obs)).unwrap();
    cmd_sweep_observed(&path, true, Some(&obs)).unwrap();

    let trace = obs.tracer.export_chrome_json();
    let summary = validate_chrome_trace(&trace).expect("pipeline trace validates");
    for phase in ["profile", "analyze", "mincut", "rewrite", "run", "sweep"] {
        assert!(summary.has_span(phase), "missing phase span `{phase}`");
    }
    assert!(summary.has_span("scenario:o_oldtb3"));
    // The demo fault plan drops messages, so fault instants must appear.
    assert!(
        summary.instant_count("fault_drop") + summary.instant_count("fault_timeout") > 0,
        "fault plan left no fault events in the trace"
    );
    // Marshal-size memoization misses (the first walk of each new argument
    // shape) are traced during profiling; hits stay aggregate.
    assert!(summary.instant_count("marshal_cache_miss") > 0);
    assert_eq!(summary.instant_count("marshal_cache_hit"), 0);
    // Sweep solve counts landed in the registry.
    assert_eq!(
        obs.registry.counter_value("coign_sweep_warm_solves_total"),
        Some(16)
    );
    assert_eq!(
        obs.registry.counter_value("coign_sweep_cold_solves_total"),
        Some(16)
    );
    std::fs::remove_file(&path).ok();
}

#[test]
fn run_trace_emits_one_instant_per_cut_crossing_call() {
    let path = realized_image("icc");
    let (obs, _) = observed_run(&path);
    let summary =
        validate_chrome_trace(&obs.tracer.export_chrome_json()).expect("run trace validates");
    let crossing = obs
        .registry
        .counter_value("coign_cross_machine_calls_total")
        .expect("run records the cross-machine call counter");
    assert!(crossing > 0);
    assert_eq!(
        summary.instant_count("icc_call") as u64,
        crossing,
        "every cut-crossing call must emit exactly one icc_call instant"
    );
    std::fs::remove_file(&path).ok();
}

#[test]
fn run_metrics_snapshot_matches_golden_file() {
    let path = realized_image("goldenm");
    let (obs, summary_text) = observed_run(&path);
    let snapshot = obs.registry.snapshot_json();
    let golden = include_str!("golden/octarine_run_metrics.json");
    assert_eq!(
        snapshot.trim_end(),
        golden.trim_end(),
        "`coign run --metrics` drifted from the committed golden snapshot; \
         if the change is intentional, regenerate it (see module docs)"
    );
    // The snapshot supersets the machine-diffable summary: every numeric
    // `key=value` line of the report is backed by a registry counter with
    // the same value.
    let names = obs.registry.counter_names();
    for line in summary_text.lines() {
        let Some((key, value)) = line.split_once('=') else {
            continue;
        };
        let Ok(value) = value.parse::<u64>() else {
            continue; // scenario=, placements=, instances_per_machine=
        };
        let metric = names
            .iter()
            .find(|n| {
                let stem = n.trim_start_matches("coign_");
                stem == key || stem.trim_end_matches("_total") == key
            })
            .unwrap_or_else(|| panic!("summary key `{key}` has no backing metric"));
        assert_eq!(
            obs.registry.counter_value(metric),
            Some(value),
            "summary key `{key}` disagrees with metric `{metric}`"
        );
    }
    std::fs::remove_file(&path).ok();
}

#[test]
fn binary_writes_trace_and_metrics_files() {
    let exe = env!("CARGO_BIN_EXE_coign");
    let image = temp("binflags");
    let trace_path = temp("binflags_trace").with_extension("json");
    let json_path = temp("binflags_metrics").with_extension("json");
    let prom_path = temp("binflags_metrics").with_extension("prom");
    let run = |args: &[&str]| {
        let output = Command::new(exe).args(args).output().expect("spawn coign");
        assert!(
            output.status.success(),
            "coign {args:?} failed: {}",
            String::from_utf8_lossy(&output.stderr)
        );
    };
    let image_str = image.to_str().unwrap();
    run(&["instrument", "octarine", image_str]);
    run(&[
        "profile",
        image_str,
        "o_oldtb3",
        "--trace",
        trace_path.to_str().unwrap(),
        "--metrics",
        json_path.to_str().unwrap(),
    ]);
    let trace = std::fs::read_to_string(&trace_path).expect("--trace wrote a file");
    let summary = validate_chrome_trace(&trace).expect("binary trace validates");
    assert!(summary.has_span("cli:profile"));
    assert!(summary.has_span("profile"));
    let metrics = std::fs::read_to_string(&json_path).expect("--metrics wrote a file");
    assert!(metrics.starts_with("{\"counters\":"));
    assert!(metrics.contains("coign_marshal_cache_hits_total"));

    // A `.prom` extension selects the Prometheus text exposition.
    run(&[
        "analyze",
        image_str,
        "ethernet",
        "--metrics",
        prom_path.to_str().unwrap(),
    ]);
    let prom = std::fs::read_to_string(&prom_path).expect(".prom metrics written");
    assert!(prom.is_empty() || prom.contains("# TYPE"));

    // A missing flag argument is a clean CLI error.
    let output = Command::new(exe)
        .args(["show", image_str, "--trace"])
        .output()
        .expect("spawn coign");
    assert!(!output.status.success());
    assert!(String::from_utf8_lossy(&output.stderr).contains("--trace needs a file argument"));

    for p in [image, trace_path, json_path, prom_path] {
        std::fs::remove_file(&p).ok();
    }
}

#[test]
fn serve_session_trace_is_sampled_valid_and_jobs_independent() {
    // `--trace --trace-sample N`: sampled sessions emit causal spans
    // (session/call/batch_wait/link_transit plus batch spans tied by flow
    // ids), buffered per shard and merged in shard order — so the exported
    // trace must not depend on the worker-thread count.
    let img = resolve_image_spec("gen:42").expect("gen:42 materializes");
    let render = |jobs: usize| {
        let obs = fresh_obs();
        let opts = ServeCliOptions {
            sessions: 2_000,
            jobs,
            trace_sample: 100,
            ..ServeCliOptions::default()
        };
        let out = cmd_serve_observed(&img, "g_main", "ethernet", &opts, Some(&obs))
            .expect("serve succeeds");
        (out, obs.tracer.export_chrome_json())
    };
    let (out_one, trace_one) = render(1);
    for jobs in [2, 4] {
        assert_eq!(
            (out_one.clone(), trace_one.clone()),
            render(jobs),
            "serve trace changed between --jobs 1 and --jobs {jobs}"
        );
    }
    let summary = validate_chrome_trace(&trace_one).expect("serve trace validates");
    assert!(summary.has_span("serve"), "pipeline phase span present");
    for span in ["call", "batch_wait", "link_transit", "batch"] {
        assert!(summary.has_span(span), "missing serve span `{span}`");
    }
    // Every 100th of 2000 global session ids: sessions 0, 100, ... 1900.
    let sampled: Vec<_> = summary
        .span_names
        .iter()
        .filter(|n| n.starts_with("session:"))
        .collect();
    assert_eq!(sampled.len(), 20, "sample rate must pick every Nth session");

    // Without --trace-sample the serve trace carries only the phase span.
    let obs = fresh_obs();
    let opts = ServeCliOptions {
        sessions: 2_000,
        ..ServeCliOptions::default()
    };
    cmd_serve_observed(&img, "g_main", "ethernet", &opts, Some(&obs)).expect("serve succeeds");
    let summary = validate_chrome_trace(&obs.tracer.export_chrome_json())
        .expect("unsampled serve trace validates");
    assert!(
        !summary.has_span("call"),
        "no session spans without sampling"
    );
}
