//! Drives the compiled `coign` binary end to end through its command-line
//! interface — argument parsing, exit codes, and the on-disk workflow.

use std::path::PathBuf;
use std::process::Command;

fn coign(args: &[&str]) -> (bool, String, String) {
    let exe = env!("CARGO_BIN_EXE_coign");
    let output = Command::new(exe).args(args).output().expect("spawn coign");
    (
        output.status.success(),
        String::from_utf8_lossy(&output.stdout).into_owned(),
        String::from_utf8_lossy(&output.stderr).into_owned(),
    )
}

fn temp(tag: &str) -> PathBuf {
    let mut path = std::env::temp_dir();
    path.push(format!("coign_bin_{tag}_{}.cimg", std::process::id()));
    path
}

#[test]
fn usage_on_no_arguments() {
    let (ok, _, err) = coign(&[]);
    assert!(!ok);
    assert!(err.contains("USAGE"));
}

#[test]
fn unknown_command_fails_with_usage() {
    let (ok, _, err) = coign(&["defenestrate"]);
    assert!(!ok);
    assert!(err.contains("USAGE"));
}

#[test]
fn full_workflow_through_the_binary() {
    let image = temp("flow");
    let image_str = image.to_str().unwrap();

    let (ok, out, _) = coign(&["instrument", "benefits", image_str]);
    assert!(ok, "instrument failed");
    assert!(out.contains("coignrte.dll"));

    let (ok, out, _) = coign(&["profile", image_str, "b_vueone"]);
    assert!(ok, "profile failed");
    assert!(out.contains("messages"));

    let (ok, out, _) = coign(&["analyze", image_str]);
    assert!(ok, "analyze failed");
    assert!(out.contains("coignlte.dll"));

    let (ok, out, _) = coign(&["run", image_str, "b_vueone"]);
    assert!(ok, "run failed");
    assert!(out.contains("cross-machine"));

    let (ok, out, _) = coign(&["show", image_str]);
    assert!(ok, "show failed");
    assert!(out.contains("distributed"));

    let (ok, _, err) = coign(&["profile", image_str, "no_such_scenario"]);
    assert!(!ok);
    assert!(err.contains("error:"));

    let (ok, _, _) = coign(&["strip", image_str]);
    assert!(ok, "strip failed");
    std::fs::remove_file(&image).ok();
}

#[test]
fn check_reports_diagnostics_with_exit_semantics() {
    let image = temp("check");
    let image_str = image.to_str().unwrap();
    let (ok, _, _) = coign(&["instrument", "photodraw", image_str]);
    assert!(ok, "instrument failed");

    // Healthy image: warnings only (PhotoDraw's opaque-pointer interfaces),
    // exit 0, no profiling data needed.
    let (ok, out, _) = coign(&["check", image_str]);
    assert!(ok, "check should exit 0 without error diagnostics: {out}");
    assert!(out.contains("COIGN010"));
    assert!(out.contains("COIGN012"));
    assert!(out.contains("0 error(s)"));

    // JSON mode is machine-readable and carries the same codes.
    let (ok, out, _) = coign(&["check", image_str, "--json"]);
    assert!(ok);
    assert!(out.trim_end().starts_with("{\"errors\":0,"));
    assert!(out.contains("\"code\":\"COIGN010\""));
    assert!(out.contains("\"severity\":\"warn\""));

    std::fs::remove_file(&image).ok();
}

#[test]
fn check_exits_nonzero_on_error_diagnostics() {
    let image = temp("checkerr");
    let image_str = image.to_str().unwrap();
    let (ok, _, _) = coign(&["instrument", "octarine", image_str]);
    assert!(ok);

    // Corrupt the configuration record: undecodable garbage is COIGN035.
    let bytes = std::fs::read(&image).unwrap();
    let mut img = coign_com::AppImage::decode(&bytes).unwrap();
    img.set_config_record(vec![0xba, 0xad]);
    std::fs::write(&image, img.encode()).unwrap();

    let (ok, out, _) = coign(&["check", image_str]);
    assert!(!ok, "error diagnostics must produce a failure exit");
    assert!(out.contains("COIGN035"));

    let (ok, out, _) = coign(&["check", image_str, "--json"]);
    assert!(!ok);
    assert!(out.contains("\"code\":\"COIGN035\""));

    std::fs::remove_file(&image).ok();
}

#[test]
fn errors_surface_on_stderr_with_failure_exit() {
    let (ok, out, err) = coign(&["show", "/definitely/not/a/file.cimg"]);
    assert!(!ok);
    assert!(out.is_empty());
    assert!(err.contains("error:"));
}
