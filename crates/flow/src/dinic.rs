//! Dinic's maximum-flow algorithm (level graph + blocking flow).
//!
//! The fastest of the three implementations on sparse communication graphs
//! (`O(V²·E)`, far better in practice); used as the second cross-validation
//! baseline and as the performance yardstick in the benchmark suite.

use crate::graph::{FlowNetwork, NodeId};
use std::collections::VecDeque;

/// Computes a maximum `s`–`t` flow with Dinic's algorithm.
///
/// # Panics
///
/// Panics if `s == t`.
pub fn max_flow(g: &mut FlowNetwork, s: NodeId, t: NodeId) -> u64 {
    assert_ne!(s, t, "source and sink must differ");
    let n = g.node_count();
    let mut total: u128 = 0;
    loop {
        // Build the level graph by BFS over residual arcs.
        let mut level = vec![usize::MAX; n];
        level[s] = 0;
        let mut queue = VecDeque::new();
        queue.push_back(s);
        while let Some(u) = queue.pop_front() {
            for &e in g.edges_of(u) {
                let v = g.head(e);
                if g.residual(e) > 0 && level[v] == usize::MAX {
                    level[v] = level[u] + 1;
                    queue.push_back(v);
                }
            }
        }
        if level[t] == usize::MAX {
            break;
        }
        // Blocking flow by iterative DFS with current-arc pointers.
        let mut iter = vec![0usize; n];
        loop {
            let pushed = dfs(g, s, t, u64::MAX, &level, &mut iter);
            if pushed == 0 {
                break;
            }
            total += u128::from(pushed);
        }
    }
    debug_assert!(g.conservation_violations(s, t).is_empty());
    u64::try_from(total).expect("flow exceeds u64")
}

fn dfs(
    g: &mut FlowNetwork,
    u: NodeId,
    t: NodeId,
    limit: u64,
    level: &[usize],
    iter: &mut [usize],
) -> u64 {
    if u == t {
        return limit;
    }
    while iter[u] < g.edges_of(u).len() {
        let e = g.edges_of(u)[iter[u]];
        let v = g.head(e);
        let cap = g.residual(e);
        if cap > 0 && level[v] == level[u] + 1 {
            let pushed = dfs(g, v, t, limit.min(cap), level, iter);
            if pushed > 0 {
                g.push_along(e, pushed);
                return pushed;
            }
        }
        iter[u] += 1;
    }
    0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bottleneck() {
        let mut g = FlowNetwork::new(3);
        g.add_edge(0, 1, 10);
        g.add_edge(1, 2, 3);
        assert_eq!(max_flow(&mut g, 0, 2), 3);
    }

    #[test]
    fn clrs_example() {
        let (s, v1, v2, v3, v4, t) = (0, 1, 2, 3, 4, 5);
        let mut g = FlowNetwork::new(6);
        g.add_edge(s, v1, 16);
        g.add_edge(s, v2, 13);
        g.add_edge(v1, v2, 10);
        g.add_edge(v2, v1, 4);
        g.add_edge(v1, v3, 12);
        g.add_edge(v3, v2, 9);
        g.add_edge(v2, v4, 14);
        g.add_edge(v4, v3, 7);
        g.add_edge(v3, t, 20);
        g.add_edge(v4, t, 4);
        assert_eq!(max_flow(&mut g, s, t), 23);
    }

    #[test]
    fn diamond_with_cross_edge() {
        let mut g = FlowNetwork::new(4);
        g.add_edge(0, 1, 1);
        g.add_edge(0, 2, 1);
        g.add_edge(1, 2, 1);
        g.add_edge(1, 3, 1);
        g.add_edge(2, 3, 1);
        assert_eq!(max_flow(&mut g, 0, 3), 2);
    }

    #[test]
    fn repeated_runs_after_reset_agree() {
        let mut g = FlowNetwork::new(4);
        g.add_undirected(0, 1, 7);
        g.add_undirected(1, 2, 4);
        g.add_undirected(2, 3, 9);
        let first = max_flow(&mut g, 0, 3);
        g.reset();
        let second = max_flow(&mut g, 0, 3);
        assert_eq!(first, second);
        assert_eq!(first, 4);
    }
}
