//! Max-flow / min-cut algorithms for distributed partitioning.
//!
//! Coign chooses a two-machine distribution by cutting the concrete
//! inter-component communication graph with the **lift-to-front
//! (relabel-to-front) minimum-cut algorithm** of Cormen, Leiserson & Rivest.
//! This crate implements that algorithm ([`push_relabel`]) plus two
//! independent baselines ([`edmonds_karp`], [`dinic`]) used to cross-validate
//! cut values in tests and benchmarks, and a heuristic multiway cut
//! ([`multiway`]) for the paper's ≥3-machine future-work case (which is
//! NP-hard to solve exactly).
//!
//! All algorithms operate on the shared residual-graph representation in
//! [`graph`]. Location constraints are expressed with [`graph::INFINITE`]
//! capacities: an infinite edge can never be cut, which is how pinned
//! components and non-remotable interfaces are enforced.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dinic;
pub mod edmonds_karp;
pub mod graph;
pub mod mincut;
pub mod multiway;
pub mod push_relabel;

pub use graph::{FlowNetwork, NodeId, INFINITE};
pub use mincut::{min_cut, min_cut_invocations, min_cut_warm, CutResult, MaxFlowAlgorithm};
pub use multiway::{crossing_value, multiway_cut, refine_assignment, MultiwayCut};
