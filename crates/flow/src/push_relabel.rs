//! The lift-to-front (relabel-to-front) maximum-flow algorithm.
//!
//! This is the algorithm the Coign paper names for choosing distributions:
//! "Coign employs the lift-to-front minimum-cut graph-cutting algorithm
//! \[CLRS\] to choose a distribution with minimal communication time."
//!
//! The implementation follows CLRS §26.4–26.5: each overflowing vertex is
//! *discharged* (pushed and relabeled until its excess reaches zero), and
//! vertices are kept in a list ordered so that discharging front-to-back,
//! moving any relabeled vertex to the front, terminates with a maximum
//! preflow — which equals a maximum flow at the sink. Runs in `O(V³)`.

use crate::graph::{FlowNetwork, NodeId};

/// Computes a maximum `s`–`t` flow with relabel-to-front.
///
/// The network retains the residual state on return, so
/// [`FlowNetwork::residual_reachable`] immediately yields the minimum cut.
///
/// # Panics
///
/// Panics if `s == t`.
pub fn max_flow(g: &mut FlowNetwork, s: NodeId, t: NodeId) -> u64 {
    assert_ne!(s, t, "source and sink must differ");
    let n = g.node_count();
    let mut height = vec![0usize; n];
    let mut excess = vec![0u128; n];
    // Current-arc pointers (CLRS "current neighbor").
    let mut cursor = vec![0usize; n];

    // Initialize preflow: h[s] = |V|, saturate every residual arc out of s
    // (forward edges and the reverse direction of undirected edges alike).
    height[s] = n;
    let s_edges: Vec<usize> = g.edges_of(s).to_vec();
    for e in s_edges {
        let cap = g.residual(e);
        if cap > 0 {
            let v = g.head(e);
            g.push_along(e, cap);
            excess[v] += u128::from(cap);
        }
    }

    // The list L: every vertex except s and t, any order.
    let mut list: Vec<NodeId> = (0..n).filter(|&v| v != s && v != t).collect();

    let mut i = 0;
    while i < list.len() {
        let u = list[i];
        let old_height = height[u];
        discharge(g, u, &mut height, &mut excess, &mut cursor);
        if height[u] > old_height {
            // u was relabeled: move it to the front and restart the scan
            // just after it.
            list.remove(i);
            list.insert(0, u);
            i = 0;
        }
        i += 1;
    }

    debug_assert!(g.conservation_violations(s, t).is_empty());
    u64::try_from(excess[t]).expect("flow exceeds u64")
}

/// Pushes and relabels `u` until it no longer overflows (CLRS `DISCHARGE`).
fn discharge(
    g: &mut FlowNetwork,
    u: NodeId,
    height: &mut [usize],
    excess: &mut [u128],
    cursor: &mut [usize],
) {
    while excess[u] > 0 {
        let edges = g.edges_of(u);
        if cursor[u] >= edges.len() {
            relabel(g, u, height);
            cursor[u] = 0;
            continue;
        }
        let e = edges[cursor[u]];
        let v = g.head(e);
        let cap = g.residual(e);
        if cap > 0 && height[u] == height[v] + 1 {
            // PUSH(u, v).
            let amount = u64::try_from(excess[u].min(u128::from(cap))).unwrap_or(cap);
            g.push_along(e, amount);
            excess[u] -= u128::from(amount);
            excess[v] += u128::from(amount);
        } else {
            cursor[u] += 1;
        }
    }
}

/// Lifts `u` to one more than its lowest admissible neighbor (CLRS
/// `RELABEL`).
fn relabel(g: &FlowNetwork, u: NodeId, height: &mut [usize]) {
    let mut min_height = usize::MAX;
    for &e in g.edges_of(u) {
        if g.residual(e) > 0 {
            min_height = min_height.min(height[g.head(e)]);
        }
    }
    debug_assert!(min_height != usize::MAX, "relabel of disconnected node");
    height[u] = min_height.saturating_add(1);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::INFINITE;

    #[test]
    fn single_edge() {
        let mut g = FlowNetwork::new(2);
        g.add_edge(0, 1, 7);
        assert_eq!(max_flow(&mut g, 0, 1), 7);
    }

    #[test]
    fn series_takes_bottleneck() {
        let mut g = FlowNetwork::new(3);
        g.add_edge(0, 1, 10);
        g.add_edge(1, 2, 3);
        assert_eq!(max_flow(&mut g, 0, 2), 3);
    }

    #[test]
    fn parallel_paths_sum() {
        let mut g = FlowNetwork::new(4);
        g.add_edge(0, 1, 4);
        g.add_edge(1, 3, 4);
        g.add_edge(0, 2, 6);
        g.add_edge(2, 3, 6);
        assert_eq!(max_flow(&mut g, 0, 3), 10);
    }

    #[test]
    fn clrs_figure_26_1() {
        // The classic CLRS example network; max flow is 23.
        let (s, v1, v2, v3, v4, t) = (0, 1, 2, 3, 4, 5);
        let mut g = FlowNetwork::new(6);
        g.add_edge(s, v1, 16);
        g.add_edge(s, v2, 13);
        g.add_edge(v1, v2, 10);
        g.add_edge(v2, v1, 4);
        g.add_edge(v1, v3, 12);
        g.add_edge(v3, v2, 9);
        g.add_edge(v2, v4, 14);
        g.add_edge(v4, v3, 7);
        g.add_edge(v3, t, 20);
        g.add_edge(v4, t, 4);
        assert_eq!(max_flow(&mut g, s, t), 23);
    }

    #[test]
    fn undirected_edges_carry_flow_either_way() {
        let mut g = FlowNetwork::new(3);
        g.add_undirected(0, 1, 5);
        g.add_undirected(1, 2, 5);
        assert_eq!(max_flow(&mut g, 0, 2), 5);
        g.reset();
        assert_eq!(max_flow(&mut g, 2, 0), 5);
    }

    #[test]
    fn disconnected_sink_has_zero_flow() {
        let mut g = FlowNetwork::new(4);
        g.add_edge(0, 1, 10);
        g.add_edge(2, 3, 10);
        assert_eq!(max_flow(&mut g, 0, 3), 0);
    }

    #[test]
    fn infinite_edges_do_not_overflow() {
        let mut g = FlowNetwork::new(4);
        g.add_edge(0, 1, INFINITE);
        g.add_edge(0, 2, INFINITE);
        g.add_edge(1, 3, INFINITE);
        g.add_edge(2, 3, 5);
        assert_eq!(max_flow(&mut g, 0, 3), INFINITE + 5);
    }

    #[test]
    fn cut_side_after_flow_is_minimal() {
        // Source component {0,1} separated from {2,3} by a 3-capacity edge.
        let mut g = FlowNetwork::new(4);
        g.add_undirected(0, 1, 100);
        g.add_undirected(1, 2, 3);
        g.add_undirected(2, 3, 100);
        let flow = max_flow(&mut g, 0, 3);
        assert_eq!(flow, 3);
        let side = g.residual_reachable(0);
        assert_eq!(side, vec![true, true, false, false]);
    }

    #[test]
    #[should_panic(expected = "source and sink must differ")]
    fn same_source_and_sink_panics() {
        let mut g = FlowNetwork::new(2);
        max_flow(&mut g, 1, 1);
    }
}
