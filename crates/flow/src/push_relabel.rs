//! The lift-to-front (relabel-to-front) maximum-flow algorithm.
//!
//! This is the algorithm the Coign paper names for choosing distributions:
//! "Coign employs the lift-to-front minimum-cut graph-cutting algorithm
//! \[CLRS\] to choose a distribution with minimal communication time."
//!
//! The implementation follows CLRS §26.4–26.5: each overflowing vertex is
//! *discharged* (pushed and relabeled until its excess reaches zero), and
//! vertices are kept in a list ordered so that discharging front-to-back,
//! moving any relabeled vertex to the front, terminates with a maximum
//! preflow — which equals a maximum flow at the sink. Runs in `O(V³)`.
//!
//! Two practical accelerations on top of the textbook algorithm:
//!
//! * **Global relabeling at start-up** — initial heights are exact
//!   residual-graph BFS distances to the sink rather than zero, so early
//!   pushes head toward the sink immediately.
//! * **Gap relabeling** — whenever a height level between `0` and `|V|`
//!   empties, every vertex stranded above the gap (and below `|V|`) is
//!   lifted straight past `|V|`: no residual path to the sink can cross an
//!   empty level, so those vertices can only return excess to the source.
//!
//! Both preserve the height-function invariants, so correctness follows
//! from the standard push-relabel argument.
//!
//! [`max_flow_warm`] additionally supports *warm starts*: re-solving a
//! network whose topology is unchanged but whose capacities grew (e.g. a
//! sweep over network speeds) by re-installing the previous solve's flow
//! as the starting preflow instead of starting from zero.

use crate::graph::{FlowNetwork, NodeId};
use std::collections::VecDeque;

/// Computes a maximum `s`–`t` flow with relabel-to-front.
///
/// The network retains the residual state on return, so
/// [`FlowNetwork::residual_reachable`] immediately yields the minimum cut.
///
/// # Panics
///
/// Panics if `s == t`.
pub fn max_flow(g: &mut FlowNetwork, s: NodeId, t: NodeId) -> u64 {
    assert_ne!(s, t, "source and sink must differ");
    let mut excess = vec![0u128; g.node_count()];
    saturate_source(g, s, &mut excess);
    let height = global_heights(g, s, t);
    discharge_all(g, s, t, height, excess)
}

/// Computes a maximum `s`–`t` flow, warm-started from a previous solve.
///
/// `previous_flows` must be a [`FlowNetwork::snapshot_flows`] taken after a
/// completed max-flow run on a network with *identical topology* (same
/// nodes, same edges in the same order) and edge capacities no larger than
/// the current ones. The old flow is then still feasible here, so it is
/// re-installed as the starting assignment and only the incremental flow
/// admitted by the enlarged capacities has to be found. When consecutive
/// solves differ only by a capacity rescaling — a sweep across network
/// latency/bandwidth points — this skips almost all of the work.
///
/// The result is exactly the maximum flow value; warm starting changes the
/// amount of work, never the answer.
///
/// # Panics
///
/// Panics if `s == t`, if the snapshot length does not match the network's
/// edge table, or if some edge capacity shrank below its previous flow
/// (the snapshot would be infeasible here — the caller broke the
/// monotonicity contract).
pub fn max_flow_warm(g: &mut FlowNetwork, s: NodeId, t: NodeId, previous_flows: &[u64]) -> u64 {
    assert_ne!(s, t, "source and sink must differ");
    assert_eq!(
        previous_flows.len(),
        g.edge_count() * 2,
        "flow snapshot does not match the network topology"
    );
    let n = g.node_count();
    // Re-install the previous flow, pair by pair. For each undirected pair
    // only the net direction carries flow (the snapshot's saturating
    // subtraction guarantees one slot of each pair is zero).
    let mut balance = vec![0i128; n];
    for base in (0..previous_flows.len()).step_by(2) {
        let f = i128::from(previous_flows[base]) - i128::from(previous_flows[base + 1]);
        let (arc, amount) = if f >= 0 {
            (base, u64::try_from(f).expect("net flow fits u64"))
        } else {
            (base + 1, u64::try_from(-f).expect("net flow fits u64"))
        };
        if amount > 0 {
            assert!(
                g.residual(arc) >= amount,
                "warm start infeasible: an edge capacity shrank below its previous flow"
            );
            g.push_along(arc, amount);
        }
        let u = g.head(base + 1); // tail of the forward edge
        let v = g.head(base);
        balance[u] -= f;
        balance[v] += f;
    }
    // A valid previous flow conserves at every interior node, leaving
    // excess only at the sink (and a deficit at the source, which
    // push-relabel never tracks).
    let mut excess = vec![0u128; n];
    for (v, &b) in balance.iter().enumerate() {
        if v == s {
            continue;
        }
        debug_assert!(b >= 0, "previous flow violates conservation at node {v}");
        excess[v] = u128::try_from(b.max(0)).expect("balance fits u128");
    }
    saturate_source(g, s, &mut excess);
    let height = global_heights(g, s, t);
    discharge_all(g, s, t, height, excess)
}

/// Saturates every remaining residual arc out of `s` (the preflow
/// initialization step), accumulating the pushed units at the arc heads.
fn saturate_source(g: &mut FlowNetwork, s: NodeId, excess: &mut [u128]) {
    let s_edges: Vec<usize> = g.edges_of(s).to_vec();
    for e in s_edges {
        let cap = g.residual(e);
        if cap > 0 {
            let v = g.head(e);
            g.push_along(e, cap);
            excess[v] += u128::from(cap);
        }
    }
}

/// Global relabeling: exact BFS distances to `t` in the current residual
/// graph. Nodes that cannot reach the sink get height `n`, which is valid
/// because every arc out of `s` is already saturated (so `h[s] = n` has no
/// residual arc to justify) and an unreachable node's residual arcs lead
/// only to other unreachable nodes.
fn global_heights(g: &FlowNetwork, s: NodeId, t: NodeId) -> Vec<usize> {
    let n = g.node_count();
    let mut height = vec![n; n];
    height[t] = 0;
    let mut queue = VecDeque::new();
    queue.push_back(t);
    while let Some(v) = queue.pop_front() {
        for &e in g.edges_of(v) {
            let u = g.head(e);
            // The residual arc u → v is e's pair, which leaves u.
            if u != s && height[u] == n && g.residual(e ^ 1) > 0 {
                height[u] = height[v] + 1;
                queue.push_back(u);
            }
        }
    }
    height[s] = n;
    height
}

/// Runs the relabel-to-front discharge loop to completion and returns the
/// flow arriving at `t`.
fn discharge_all(
    g: &mut FlowNetwork,
    s: NodeId,
    t: NodeId,
    mut height: Vec<usize>,
    mut excess: Vec<u128>,
) -> u64 {
    let n = g.node_count();
    let mut cursor = vec![0usize; n];
    // Occupancy of each height level (source excluded), for gap relabeling.
    let mut level_count = vec![0usize; 2 * n + 2];
    for (v, &h) in height.iter().enumerate() {
        if v != s {
            level_count[h] += 1;
        }
    }

    // The list L: every vertex except s and t. Classic relabel-to-front
    // admits any initial order because all-zero heights admit no arcs; our
    // BFS-initialized heights do, so seed the list in descending height
    // order (admissible arcs always point one level down, making this a
    // topological order of the admissible network).
    let mut list: Vec<NodeId> = (0..n).filter(|&v| v != s && v != t).collect();
    list.sort_by(|&a, &b| height[b].cmp(&height[a]));

    // Gap relabeling lifts vertices other than the one being discharged,
    // which can break the list's topological invariant mid-pass — a push
    // may then target an already-scanned vertex without triggering the
    // relabel restart. Generic push-relabel is correct under *any*
    // discharge order, so simply rescan until a full pass leaves every
    // listed vertex drained.
    loop {
        let mut i = 0;
        while i < list.len() {
            let u = list[i];
            let old_height = height[u];
            discharge(
                g,
                u,
                s,
                &mut height,
                &mut excess,
                &mut cursor,
                &mut level_count,
            );
            if height[u] > old_height {
                // u was relabeled: move it to the front and restart the
                // scan just after it.
                list.remove(i);
                list.insert(0, u);
                i = 0;
            }
            i += 1;
        }
        if list.iter().all(|&v| excess[v] == 0) {
            break;
        }
    }

    debug_assert!(g.conservation_violations(s, t).is_empty());
    u64::try_from(excess[t]).expect("flow exceeds u64")
}

/// Pushes and relabels `u` until it no longer overflows (CLRS `DISCHARGE`).
#[allow(clippy::too_many_arguments)]
fn discharge(
    g: &mut FlowNetwork,
    u: NodeId,
    s: NodeId,
    height: &mut [usize],
    excess: &mut [u128],
    cursor: &mut [usize],
    level_count: &mut [usize],
) {
    while excess[u] > 0 {
        let edges = g.edges_of(u);
        if cursor[u] >= edges.len() {
            relabel(g, u, s, height, cursor, level_count);
            cursor[u] = 0;
            continue;
        }
        let e = edges[cursor[u]];
        let v = g.head(e);
        let cap = g.residual(e);
        if cap > 0 && height[u] == height[v] + 1 {
            // PUSH(u, v).
            let amount = u64::try_from(excess[u].min(u128::from(cap))).unwrap_or(cap);
            g.push_along(e, amount);
            excess[u] -= u128::from(amount);
            excess[v] += u128::from(amount);
        } else {
            cursor[u] += 1;
        }
    }
}

/// Lifts `u` to one more than its lowest admissible neighbor (CLRS
/// `RELABEL`), then applies the gap heuristic if `u` vacated its level.
fn relabel(
    g: &FlowNetwork,
    u: NodeId,
    s: NodeId,
    height: &mut [usize],
    cursor: &mut [usize],
    level_count: &mut [usize],
) {
    let n = g.node_count();
    let old = height[u];
    let mut min_height = usize::MAX;
    for &e in g.edges_of(u) {
        if g.residual(e) > 0 {
            min_height = min_height.min(height[g.head(e)]);
        }
    }
    debug_assert!(min_height != usize::MAX, "relabel of disconnected node");
    let new = min_height.saturating_add(1);
    height[u] = new;
    level_count[old] -= 1;
    if new < level_count.len() {
        level_count[new] += 1;
    }
    // Gap heuristic: level `old` just emptied below n — no residual path to
    // the sink can cross an empty level, so every vertex stranded between
    // the gap and n is lifted past n and will only drain back to the
    // source. Cursors reset because a raised height can make previously
    // skipped arcs admissible again.
    if old < n && level_count[old] == 0 {
        for v in 0..n {
            if v != s && height[v] > old && height[v] < n {
                level_count[height[v]] -= 1;
                height[v] = n + 1;
                level_count[n + 1] += 1;
                cursor[v] = 0;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::INFINITE;

    #[test]
    fn single_edge() {
        let mut g = FlowNetwork::new(2);
        g.add_edge(0, 1, 7);
        assert_eq!(max_flow(&mut g, 0, 1), 7);
    }

    #[test]
    fn series_takes_bottleneck() {
        let mut g = FlowNetwork::new(3);
        g.add_edge(0, 1, 10);
        g.add_edge(1, 2, 3);
        assert_eq!(max_flow(&mut g, 0, 2), 3);
    }

    #[test]
    fn parallel_paths_sum() {
        let mut g = FlowNetwork::new(4);
        g.add_edge(0, 1, 4);
        g.add_edge(1, 3, 4);
        g.add_edge(0, 2, 6);
        g.add_edge(2, 3, 6);
        assert_eq!(max_flow(&mut g, 0, 3), 10);
    }

    #[test]
    fn clrs_figure_26_1() {
        // The classic CLRS example network; max flow is 23.
        let (s, v1, v2, v3, v4, t) = (0, 1, 2, 3, 4, 5);
        let mut g = FlowNetwork::new(6);
        g.add_edge(s, v1, 16);
        g.add_edge(s, v2, 13);
        g.add_edge(v1, v2, 10);
        g.add_edge(v2, v1, 4);
        g.add_edge(v1, v3, 12);
        g.add_edge(v3, v2, 9);
        g.add_edge(v2, v4, 14);
        g.add_edge(v4, v3, 7);
        g.add_edge(v3, t, 20);
        g.add_edge(v4, t, 4);
        assert_eq!(max_flow(&mut g, s, t), 23);
    }

    #[test]
    fn undirected_edges_carry_flow_either_way() {
        let mut g = FlowNetwork::new(3);
        g.add_undirected(0, 1, 5);
        g.add_undirected(1, 2, 5);
        assert_eq!(max_flow(&mut g, 0, 2), 5);
        g.reset();
        assert_eq!(max_flow(&mut g, 2, 0), 5);
    }

    #[test]
    fn disconnected_sink_has_zero_flow() {
        let mut g = FlowNetwork::new(4);
        g.add_edge(0, 1, 10);
        g.add_edge(2, 3, 10);
        assert_eq!(max_flow(&mut g, 0, 3), 0);
    }

    #[test]
    fn infinite_edges_do_not_overflow() {
        let mut g = FlowNetwork::new(4);
        g.add_edge(0, 1, INFINITE);
        g.add_edge(0, 2, INFINITE);
        g.add_edge(1, 3, INFINITE);
        g.add_edge(2, 3, 5);
        assert_eq!(max_flow(&mut g, 0, 3), INFINITE + 5);
    }

    #[test]
    fn cut_side_after_flow_is_minimal() {
        // Source component {0,1} separated from {2,3} by a 3-capacity edge.
        let mut g = FlowNetwork::new(4);
        g.add_undirected(0, 1, 100);
        g.add_undirected(1, 2, 3);
        g.add_undirected(2, 3, 100);
        let flow = max_flow(&mut g, 0, 3);
        assert_eq!(flow, 3);
        let side = g.residual_reachable(0);
        assert_eq!(side, vec![true, true, false, false]);
    }

    #[test]
    #[should_panic(expected = "source and sink must differ")]
    fn same_source_and_sink_panics() {
        let mut g = FlowNetwork::new(2);
        max_flow(&mut g, 1, 1);
    }

    /// The chain network at a given capacity scale (same topology each time).
    fn chain_scaled(mul: u64) -> FlowNetwork {
        let mut g = FlowNetwork::new(4);
        g.add_undirected(0, 1, 100 * mul);
        g.add_undirected(1, 2, 3 * mul);
        g.add_undirected(2, 3, 100 * mul);
        g
    }

    #[test]
    fn warm_start_matches_cold_solve_after_capacity_growth() {
        let mut g = chain_scaled(1);
        assert_eq!(max_flow(&mut g, 0, 3), 3);
        let flows = g.snapshot_flows();

        let mut warm = chain_scaled(5);
        assert_eq!(max_flow_warm(&mut warm, 0, 3, &flows), 15);
        assert_eq!(warm.residual_reachable(0), vec![true, true, false, false]);

        let mut cold = chain_scaled(5);
        assert_eq!(max_flow(&mut cold, 0, 3), 15);
    }

    #[test]
    fn warm_start_with_identical_capacities_is_a_no_op_resolve() {
        let mut g = chain_scaled(2);
        let value = max_flow(&mut g, 0, 3);
        let flows = g.snapshot_flows();
        let mut again = chain_scaled(2);
        assert_eq!(max_flow_warm(&mut again, 0, 3, &flows), value);
    }

    #[test]
    #[should_panic(expected = "warm start infeasible")]
    fn warm_start_rejects_shrunken_capacities() {
        let mut g = chain_scaled(4);
        max_flow(&mut g, 0, 3);
        let flows = g.snapshot_flows();
        let mut smaller = chain_scaled(1);
        max_flow_warm(&mut smaller, 0, 3, &flows);
    }

    #[test]
    #[should_panic(expected = "snapshot does not match")]
    fn warm_start_rejects_mismatched_topology() {
        let mut g = chain_scaled(1);
        max_flow(&mut g, 0, 3);
        let flows = g.snapshot_flows();
        let mut other = FlowNetwork::new(4);
        other.add_undirected(0, 3, 1);
        max_flow_warm(&mut other, 0, 3, &flows);
    }
}
