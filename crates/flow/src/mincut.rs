//! Minimum `s`–`t` cut extraction.
//!
//! By max-flow/min-cut duality, once a maximum flow is established the nodes
//! reachable from the source in the residual graph form the source side of a
//! minimum cut. For Coign, `s` is the client, `t` is the server, and the cut
//! assigns every component classification to one machine while minimizing
//! the total communication time crossing the network.

use crate::graph::{FlowNetwork, NodeId};
use crate::{dinic, edmonds_karp, push_relabel};
use std::cell::Cell;

thread_local! {
    /// Count of [`min_cut`] calls on this thread; see [`min_cut_invocations`].
    static MIN_CUT_INVOCATIONS: Cell<u64> = const { Cell::new(0) };
}

/// Number of times [`min_cut`] has run on the current thread.
///
/// Callers that reject infeasible inputs *before* cutting (Coign's
/// constraint-satisfiability pre-check) use this counter in tests to prove
/// the solver was never reached. Thread-local so concurrently running tests
/// cannot disturb each other's counts.
pub fn min_cut_invocations() -> u64 {
    MIN_CUT_INVOCATIONS.with(Cell::get)
}

/// Selects which maximum-flow algorithm drives the cut.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MaxFlowAlgorithm {
    /// Lift-to-front (relabel-to-front) — the algorithm used in the paper.
    LiftToFront,
    /// Edmonds–Karp baseline.
    EdmondsKarp,
    /// Dinic baseline.
    Dinic,
}

impl MaxFlowAlgorithm {
    /// All implemented algorithms (for cross-validation loops).
    pub const ALL: [MaxFlowAlgorithm; 3] = [
        MaxFlowAlgorithm::LiftToFront,
        MaxFlowAlgorithm::EdmondsKarp,
        MaxFlowAlgorithm::Dinic,
    ];

    /// Runs the selected algorithm.
    pub fn run(self, g: &mut FlowNetwork, s: NodeId, t: NodeId) -> u64 {
        match self {
            MaxFlowAlgorithm::LiftToFront => push_relabel::max_flow(g, s, t),
            MaxFlowAlgorithm::EdmondsKarp => edmonds_karp::max_flow(g, s, t),
            MaxFlowAlgorithm::Dinic => dinic::max_flow(g, s, t),
        }
    }
}

/// Result of a two-way minimum cut.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CutResult {
    /// Total capacity crossing the cut (equals the max-flow value).
    pub cut_value: u64,
    /// `true` for nodes on the source (client) side.
    pub source_side: Vec<bool>,
}

impl CutResult {
    /// Number of nodes on the source side.
    pub fn source_count(&self) -> usize {
        self.source_side.iter().filter(|&&b| b).count()
    }

    /// Number of nodes on the sink side.
    pub fn sink_count(&self) -> usize {
        self.source_side.len() - self.source_count()
    }
}

/// Computes a minimum `s`–`t` cut of the network.
///
/// The network is left in its post-flow residual state; call
/// [`FlowNetwork::reset`] to reuse it.
pub fn min_cut(
    g: &mut FlowNetwork,
    s: NodeId,
    t: NodeId,
    algorithm: MaxFlowAlgorithm,
) -> CutResult {
    MIN_CUT_INVOCATIONS.with(|n| n.set(n.get() + 1));
    let cut_value = algorithm.run(g, s, t);
    let source_side = g.residual_reachable(s);
    debug_assert!(source_side[s]);
    debug_assert!(!source_side[t]);
    CutResult {
        cut_value,
        source_side,
    }
}

/// Computes a minimum `s`–`t` cut, warm-starting lift-to-front from a
/// previous solve's flow when one is supplied.
///
/// `previous_flows` is a [`FlowNetwork::snapshot_flows`] taken after a
/// completed solve on a network with identical topology whose capacities
/// were no larger than this one's (see
/// [`push_relabel::max_flow_warm`](crate::push_relabel::max_flow_warm) for
/// the feasibility argument). With `None` this is exactly
/// [`min_cut`] with [`MaxFlowAlgorithm::LiftToFront`]. Warm starting never
/// changes the cut value or the source side — only how much work the solve
/// performs.
pub fn min_cut_warm(
    g: &mut FlowNetwork,
    s: NodeId,
    t: NodeId,
    previous_flows: Option<&[u64]>,
) -> CutResult {
    MIN_CUT_INVOCATIONS.with(|n| n.set(n.get() + 1));
    let cut_value = match previous_flows {
        Some(flows) => push_relabel::max_flow_warm(g, s, t, flows),
        None => push_relabel::max_flow(g, s, t),
    };
    let source_side = g.residual_reachable(s);
    debug_assert!(source_side[s]);
    debug_assert!(!source_side[t]);
    CutResult {
        cut_value,
        source_side,
    }
}

/// Sums the original capacities of forward edges crossing from the source
/// side to the sink side — used by tests to confirm duality.
pub fn crossing_capacity(g: &FlowNetwork, side: &[bool]) -> u64 {
    let mut total = 0u64;
    for u in 0..g.node_count() {
        if !side[u] {
            continue;
        }
        for &e in g.edges_of(u) {
            let v = g.head(e);
            if !side[v] {
                total += g.original(e);
            }
        }
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::INFINITE;

    fn chain() -> FlowNetwork {
        let mut g = FlowNetwork::new(5);
        g.add_undirected(0, 1, 10);
        g.add_undirected(1, 2, 2); // the cheap edge to cut
        g.add_undirected(2, 3, 8);
        g.add_undirected(3, 4, 9);
        g
    }

    #[test]
    fn all_algorithms_agree_on_cut_value() {
        let mut values = Vec::new();
        for alg in MaxFlowAlgorithm::ALL {
            let mut g = chain();
            values.push(min_cut(&mut g, 0, 4, alg).cut_value);
        }
        assert!(values.windows(2).all(|w| w[0] == w[1]));
        assert_eq!(values[0], 2);
    }

    #[test]
    fn cut_separates_at_cheapest_edge() {
        let mut g = chain();
        let cut = min_cut(&mut g, 0, 4, MaxFlowAlgorithm::LiftToFront);
        assert_eq!(cut.source_side, vec![true, true, false, false, false]);
        assert_eq!(cut.source_count(), 2);
        assert_eq!(cut.sink_count(), 3);
    }

    #[test]
    fn duality_cut_equals_crossing_capacity() {
        let mut g = chain();
        let cut = min_cut(&mut g, 0, 4, MaxFlowAlgorithm::Dinic);
        assert_eq!(crossing_capacity(&g, &cut.source_side), cut.cut_value);
    }

    #[test]
    fn infinite_edge_is_never_cut() {
        // 0 —INF— 1 —5— 2: the only finite cut is the 5 edge.
        let mut g = FlowNetwork::new(3);
        g.add_undirected(0, 1, INFINITE);
        g.add_undirected(1, 2, 5);
        let cut = min_cut(&mut g, 0, 2, MaxFlowAlgorithm::LiftToFront);
        assert_eq!(cut.cut_value, 5);
        assert!(cut.source_side[1], "node 1 must stay with the source");
    }

    #[test]
    fn isolated_nodes_fall_on_source_side_or_sink_side_consistently() {
        let mut g = FlowNetwork::new(4);
        g.add_undirected(0, 1, 3);
        // Nodes 2 is isolated; node 3 is the sink.
        let cut = min_cut(&mut g, 0, 3, MaxFlowAlgorithm::LiftToFront);
        assert_eq!(cut.cut_value, 0);
        // Isolated node is unreachable from s, so it lands on the sink side.
        assert!(!cut.source_side[2]);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// Builds a random connected undirected graph from a seed, with every
    /// capacity scaled by `mul`. The RNG sequence depends only on the seed,
    /// so the same seed always yields the same topology — different `mul`
    /// values give capacity-rescaled copies of one graph.
    fn random_graph_scaled(seed: u64, n: usize, extra_edges: usize, mul: u64) -> FlowNetwork {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut g = FlowNetwork::new(n);
        // Spanning chain keeps it connected.
        for i in 1..n {
            g.add_undirected(i - 1, i, rng.gen_range(1u64..100) * mul);
        }
        for _ in 0..extra_edges {
            let u = rng.gen_range(0..n);
            let v = rng.gen_range(0..n);
            if u != v {
                g.add_undirected(u, v, rng.gen_range(1u64..100) * mul);
            }
        }
        g
    }

    /// Builds a random connected undirected graph from a seed.
    fn random_graph(seed: u64, n: usize, extra_edges: usize) -> FlowNetwork {
        random_graph_scaled(seed, n, extra_edges, 1)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn algorithms_agree_on_random_graphs(seed in any::<u64>(), n in 3usize..24, extra in 0usize..30) {
            let mut expected = None;
            for alg in MaxFlowAlgorithm::ALL {
                let mut g = random_graph(seed, n, extra);
                let cut = min_cut(&mut g, 0, n - 1, alg);
                // Duality holds for every algorithm.
                prop_assert_eq!(crossing_capacity(&g, &cut.source_side), cut.cut_value);
                match expected {
                    None => expected = Some(cut.cut_value),
                    Some(v) => prop_assert_eq!(v, cut.cut_value),
                }
            }
        }

        #[test]
        fn warm_starts_agree_with_every_cold_algorithm(
            seed in any::<u64>(),
            n in 3usize..20,
            extra in 0usize..24,
        ) {
            // Solve a sequence of monotonically growing rescalings of one
            // graph, warm-starting each solve from the previous flow, and
            // check every point against all three algorithms run cold.
            let mut previous: Option<Vec<u64>> = None;
            for mul in [1u64, 3, 3, 8] {
                let mut g = random_graph_scaled(seed, n, extra, mul);
                let warm = min_cut_warm(&mut g, 0, n - 1, previous.as_deref());
                prop_assert_eq!(crossing_capacity(&g, &warm.source_side), warm.cut_value);
                for alg in MaxFlowAlgorithm::ALL {
                    let mut cold = random_graph_scaled(seed, n, extra, mul);
                    let cut = min_cut(&mut cold, 0, n - 1, alg);
                    prop_assert_eq!(cut.cut_value, warm.cut_value);
                    prop_assert_eq!(&cut.source_side, &warm.source_side);
                }
                prop_assert!(g.conservation_violations(0, n - 1).is_empty());
                previous = Some(g.snapshot_flows());
            }
        }

        #[test]
        fn clamped_warm_starts_survive_capacity_shrinks(
            seed in any::<u64>(),
            n in 3usize..16,
            extra in 0usize..16,
        ) {
            // Solve once, then rewrite every edge capacity from a second
            // seeded stream — some shrink (including to zero), some grow.
            // `clamp_flows` must repair the stale snapshot into a legal
            // warm start that reproduces the cold answer exactly.
            let mut g = random_graph_scaled(seed, n, extra, 4);
            min_cut(&mut g, 0, n - 1, MaxFlowAlgorithm::LiftToFront);
            let mut flows = g.snapshot_flows();
            g.reset();
            let mut caps = StdRng::seed_from_u64(seed ^ 0x5eed);
            for pair in 0..g.edge_count() {
                g.set_undirected_capacity(pair, caps.gen_range(0u64..600));
            }
            g.clamp_flows(0, n - 1, &mut flows);
            for (e, &f) in flows.iter().enumerate() {
                prop_assert!(f <= g.original(e), "clamped flow exceeds capacity");
            }
            let warm = min_cut_warm(&mut g, 0, n - 1, Some(&flows));
            prop_assert!(g.conservation_violations(0, n - 1).is_empty());
            for alg in MaxFlowAlgorithm::ALL {
                let mut cold = random_graph_scaled(seed, n, extra, 4);
                let mut caps = StdRng::seed_from_u64(seed ^ 0x5eed);
                for pair in 0..cold.edge_count() {
                    cold.set_undirected_capacity(pair, caps.gen_range(0u64..600));
                }
                let cut = min_cut(&mut cold, 0, n - 1, alg);
                prop_assert_eq!(cut.cut_value, warm.cut_value);
            }
        }

        #[test]
        fn flow_conserves_on_random_graphs(seed in any::<u64>(), n in 3usize..16) {
            let mut g = random_graph(seed, n, 10);
            crate::push_relabel::max_flow(&mut g, 0, n - 1);
            prop_assert!(g.conservation_violations(0, n - 1).is_empty());
        }

        #[test]
        fn cut_value_never_exceeds_any_single_side_degree(seed in any::<u64>(), n in 3usize..16) {
            // The trivial cut that isolates the source bounds the min cut.
            let mut g = random_graph(seed, n, 10);
            let trivial: u64 = g.edges_of(0).iter().map(|&e| g.original(e)).sum();
            let cut = min_cut(&mut g, 0, n - 1, MaxFlowAlgorithm::Dinic);
            prop_assert!(cut.cut_value <= trivial);
        }
    }
}
