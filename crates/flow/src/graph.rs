//! Residual flow-network representation shared by all algorithms.

/// Node index within a [`FlowNetwork`].
pub type NodeId = usize;

/// Capacity treated as uncuttable.
///
/// Large enough that no realistic communication graph sums to it, small
/// enough that summing millions of infinite edges cannot overflow `u64`
/// arithmetic inside the algorithms (excess bookkeeping uses `u128`).
pub const INFINITE: u64 = u64::MAX / (1 << 22);

#[derive(Debug, Clone)]
struct RawEdge {
    to: NodeId,
    cap: u64,
}

/// A directed flow network with residual bookkeeping.
///
/// Edges are stored in pairs: edge `2k` and its reverse `2k + 1`. Capacities
/// mutate as flow is pushed; [`FlowNetwork::reset`] restores the original
/// capacities so several algorithms can run on the same instance.
#[derive(Debug, Clone)]
pub struct FlowNetwork {
    adj: Vec<Vec<usize>>,
    edges: Vec<RawEdge>,
    original_caps: Vec<u64>,
}

impl FlowNetwork {
    /// Creates a network with `n` nodes and no edges.
    pub fn new(n: usize) -> Self {
        FlowNetwork {
            adj: vec![Vec::new(); n],
            edges: Vec::new(),
            original_caps: Vec::new(),
        }
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.adj.len()
    }

    /// Number of directed edges (excluding the implicit reverses).
    pub fn edge_count(&self) -> usize {
        self.edges.len() / 2
    }

    /// Adds a node, returning its id.
    pub fn add_node(&mut self) -> NodeId {
        self.adj.push(Vec::new());
        self.adj.len() - 1
    }

    /// Adds a directed edge `u → v` with the given capacity.
    ///
    /// # Panics
    ///
    /// Panics if `u` or `v` is out of range (a programming error in the
    /// graph construction, not a runtime condition).
    pub fn add_edge(&mut self, u: NodeId, v: NodeId, cap: u64) {
        self.add_edge_with_reverse(u, v, cap, 0);
    }

    /// Adds an undirected edge: capacity `cap` in both directions.
    ///
    /// Communication edges are undirected — cutting the edge costs its
    /// weight no matter which side initiates the calls.
    pub fn add_undirected(&mut self, u: NodeId, v: NodeId, cap: u64) {
        self.add_edge_with_reverse(u, v, cap, cap);
    }

    /// Adds an edge with explicit forward and reverse capacities.
    pub fn add_edge_with_reverse(&mut self, u: NodeId, v: NodeId, cap: u64, rev_cap: u64) {
        assert!(
            u < self.adj.len() && v < self.adj.len(),
            "node out of range"
        );
        let fwd = self.edges.len();
        self.edges.push(RawEdge { to: v, cap });
        self.edges.push(RawEdge {
            to: u,
            cap: rev_cap,
        });
        self.original_caps.push(cap);
        self.original_caps.push(rev_cap);
        self.adj[u].push(fwd);
        self.adj[v].push(fwd + 1);
    }

    /// Rewrites the capacity of undirected edge pair `pair` (both
    /// directions get `cap`) and clears any flow on it.
    ///
    /// Topology is untouched, so edge ids — and therefore
    /// [`FlowNetwork::snapshot_flows`] layouts taken before the rewrite —
    /// stay index-compatible. This is the re-parameterization primitive
    /// behind capacity sweeps: build the network once, then rescale edge
    /// weights point by point instead of rebuilding.
    ///
    /// # Panics
    ///
    /// Panics if `pair` is out of range.
    pub fn set_undirected_capacity(&mut self, pair: usize, cap: u64) {
        let base = pair * 2;
        assert!(base + 1 < self.edges.len(), "edge pair out of range");
        self.original_caps[base] = cap;
        self.original_caps[base + 1] = cap;
        self.edges[base].cap = cap;
        self.edges[base + 1].cap = cap;
    }

    /// Restores every edge to its original capacity (undoes all flow).
    pub fn reset(&mut self) {
        for (edge, cap) in self.edges.iter_mut().zip(&self.original_caps) {
            edge.cap = *cap;
        }
    }

    /// Residual capacity of edge `e`.
    pub fn residual(&self, e: usize) -> u64 {
        self.edges[e].cap
    }

    /// Original capacity of edge `e`.
    pub fn original(&self, e: usize) -> u64 {
        self.original_caps[e]
    }

    /// Head node of edge `e`.
    pub fn head(&self, e: usize) -> NodeId {
        self.edges[e].to
    }

    /// Edge indices leaving `u` (including reverse edges).
    pub fn edges_of(&self, u: NodeId) -> &[usize] {
        &self.adj[u]
    }

    /// Flow currently on forward edge `e` (original − residual).
    pub fn flow_on(&self, e: usize) -> u64 {
        self.original_caps[e].saturating_sub(self.edges[e].cap)
    }

    /// Snapshot of the flow on every directed edge slot (forward and
    /// reverse, in raw edge-id order) — the format consumed by
    /// warm-started solvers such as
    /// [`push_relabel::max_flow_warm`](crate::push_relabel::max_flow_warm).
    ///
    /// Take it after a completed max-flow run; pass it to a later solve on
    /// a network with identical topology and capacities that only grew.
    pub fn snapshot_flows(&self) -> Vec<u64> {
        (0..self.edges.len()).map(|e| self.flow_on(e)).collect()
    }

    /// Repairs a [`FlowNetwork::snapshot_flows`] snapshot so it is a valid
    /// feasible flow under the network's *current* capacities, which may be
    /// smaller than the capacities the snapshot was taken under.
    ///
    /// [`push_relabel::max_flow_warm`](crate::push_relabel::max_flow_warm)
    /// requires capacities that only grew since the snapshot; a recovery
    /// re-solve violates that — pinning a component away from a dead
    /// machine shrinks an edge that may have carried flow. This primitive
    /// restores feasibility: each pair is normalized to its net flow and
    /// clamped to the current capacity, then conservation is repaired by
    /// cancelling flow into over-full nodes (propagating the cancellation
    /// backward toward the flow's origin) and out of starved nodes
    /// (propagating forward). Every repair step strictly decreases the
    /// total flow, so the loop terminates; nodes are visited lowest-id
    /// first and adjacency lists in insertion order, so the result is
    /// deterministic. The repaired snapshot is then a legal warm start.
    ///
    /// # Panics
    ///
    /// Panics if the snapshot length does not match the edge table.
    pub fn clamp_flows(&self, s: NodeId, t: NodeId, flows: &mut [u64]) {
        assert_eq!(
            flows.len(),
            self.edges.len(),
            "flow snapshot does not match the network topology"
        );
        // Normalize each pair to its net direction and clamp to the
        // current capacity of that slot.
        for base in (0..flows.len()).step_by(2) {
            let net = i128::from(flows[base]) - i128::from(flows[base + 1]);
            let (slot, amount) = if net >= 0 {
                (base, u64::try_from(net).expect("net flow fits u64"))
            } else {
                (base + 1, u64::try_from(-net).expect("net flow fits u64"))
            };
            flows[base] = 0;
            flows[base + 1] = 0;
            flows[slot] = amount.min(self.original_caps[slot]);
        }
        let mut balance = vec![0i128; self.node_count()];
        for (e, &f) in flows.iter().enumerate() {
            if f > 0 {
                balance[self.edges[e ^ 1].to] -= i128::from(f);
                balance[self.edges[e].to] += i128::from(f);
            }
        }
        // Interior nodes must conserve exactly; the source may only emit
        // (net inflow there would surface as a deficit at the sink) and
        // the sink may only absorb.
        let needs_repair = |v: NodeId, b: i128| {
            if v == s {
                b > 0
            } else if v == t {
                b < 0
            } else {
                b != 0
            }
        };
        while let Some(v) = (0..self.node_count()).find(|&v| needs_repair(v, balance[v])) {
            if balance[v] > 0 {
                // Excess inflow: cancel incoming flow, handing the excess
                // back to each arc's tail.
                let mut need = u64::try_from(balance[v]).expect("balance fits u64");
                for &e in &self.adj[v] {
                    let inc = e ^ 1; // the arc head(e) → v
                    let cut = need.min(flows[inc]);
                    if cut > 0 {
                        flows[inc] -= cut;
                        balance[v] -= i128::from(cut);
                        balance[self.edges[e].to] += i128::from(cut);
                        need -= cut;
                    }
                    if need == 0 {
                        break;
                    }
                }
                debug_assert_eq!(need, 0, "excess exceeds inflow at node {v}");
            } else {
                // Starved: cancel outgoing flow, handing the deficit
                // forward to each arc's head.
                let mut need = u64::try_from(-balance[v]).expect("balance fits u64");
                for &e in &self.adj[v] {
                    let cut = need.min(flows[e]);
                    if cut > 0 {
                        flows[e] -= cut;
                        balance[v] += i128::from(cut);
                        balance[self.edges[e].to] -= i128::from(cut);
                        need -= cut;
                    }
                    if need == 0 {
                        break;
                    }
                }
                debug_assert_eq!(need, 0, "deficit exceeds outflow at node {v}");
            }
        }
    }

    pub(crate) fn push_along(&mut self, e: usize, amount: u64) {
        self.edges[e].cap -= amount;
        self.edges[e ^ 1].cap += amount;
    }

    /// Nodes reachable from `s` in the residual graph — the source side of
    /// a minimum cut once a maximum flow has been established.
    pub fn residual_reachable(&self, s: NodeId) -> Vec<bool> {
        let mut seen = vec![false; self.node_count()];
        let mut queue = std::collections::VecDeque::new();
        seen[s] = true;
        queue.push_back(s);
        while let Some(u) = queue.pop_front() {
            for &e in &self.adj[u] {
                let edge = &self.edges[e];
                if edge.cap > 0 && !seen[edge.to] {
                    seen[edge.to] = true;
                    queue.push_back(edge.to);
                }
            }
        }
        seen
    }

    /// Checks flow conservation at every node except `s` and `t`.
    ///
    /// Returns the list of violating nodes (empty when the flow is valid).
    /// Used by tests and debug assertions.
    pub fn conservation_violations(&self, s: NodeId, t: NodeId) -> Vec<NodeId> {
        let mut net: Vec<i128> = vec![0; self.node_count()];
        for base in (0..self.edges.len()).step_by(2) {
            let flow = self.flow_on(base) as i128 - self.flow_on(base + 1) as i128;
            // Positive flow travels along the forward edge.
            let u = self.edges[base + 1].to;
            let v = self.edges[base].to;
            net[u] -= flow;
            net[v] += flow;
        }
        (0..self.node_count())
            .filter(|&n| n != s && n != t && net[n] != 0)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_inspect() {
        let mut g = FlowNetwork::new(3);
        g.add_edge(0, 1, 10);
        g.add_undirected(1, 2, 5);
        assert_eq!(g.node_count(), 3);
        assert_eq!(g.edge_count(), 2);
        assert_eq!(g.residual(0), 10);
        assert_eq!(g.residual(1), 0); // reverse of the directed edge
        assert_eq!(g.residual(2), 5);
        assert_eq!(g.residual(3), 5); // undirected: both directions
        assert_eq!(g.head(0), 1);
        assert_eq!(g.head(1), 0);
    }

    #[test]
    fn add_node_grows_graph() {
        let mut g = FlowNetwork::new(0);
        let a = g.add_node();
        let b = g.add_node();
        g.add_edge(a, b, 1);
        assert_eq!(g.node_count(), 2);
    }

    #[test]
    #[should_panic(expected = "node out of range")]
    fn out_of_range_edge_panics() {
        let mut g = FlowNetwork::new(1);
        g.add_edge(0, 5, 1);
    }

    #[test]
    fn push_and_reset() {
        let mut g = FlowNetwork::new(2);
        g.add_edge(0, 1, 10);
        g.push_along(0, 4);
        assert_eq!(g.residual(0), 6);
        assert_eq!(g.residual(1), 4);
        assert_eq!(g.flow_on(0), 4);
        g.reset();
        assert_eq!(g.residual(0), 10);
        assert_eq!(g.flow_on(0), 0);
    }

    #[test]
    fn reachability_respects_residuals() {
        let mut g = FlowNetwork::new(3);
        g.add_edge(0, 1, 1);
        g.add_edge(1, 2, 1);
        g.push_along(0, 1); // saturate 0→1
        let seen = g.residual_reachable(0);
        assert!(seen[0] && !seen[1] && !seen[2]);
    }

    #[test]
    fn conservation_detects_imbalance() {
        let mut g = FlowNetwork::new(3);
        g.add_edge(0, 1, 5);
        g.add_edge(1, 2, 5);
        g.push_along(0, 3);
        // Node 1 received 3 but forwarded 0 → violation.
        assert_eq!(g.conservation_violations(0, 2), vec![1]);
        g.push_along(2, 3);
        assert!(g.conservation_violations(0, 2).is_empty());
    }

    /// Per-node net balance of a snapshot (inflow − outflow).
    fn balances(g: &FlowNetwork, flows: &[u64]) -> Vec<i128> {
        let mut balance = vec![0i128; g.node_count()];
        for (e, &f) in flows.iter().enumerate() {
            balance[g.head(e ^ 1)] -= f as i128;
            balance[g.head(e)] += f as i128;
        }
        balance
    }

    #[test]
    fn clamp_flows_repairs_a_shrunk_chain() {
        // 0 —10— 1 —10— 2 carrying 10 units; the middle edge shrinks to 3.
        let mut g = FlowNetwork::new(3);
        g.add_undirected(0, 1, 10);
        g.add_undirected(1, 2, 10);
        crate::push_relabel::max_flow(&mut g, 0, 2);
        let mut flows = g.snapshot_flows();
        g.reset();
        g.set_undirected_capacity(1, 3);
        g.clamp_flows(0, 2, &mut flows);
        // Both edges now carry 3 units forward: feasible and conserving.
        assert_eq!(flows, vec![3, 0, 3, 0]);
        assert_eq!(balances(&g, &flows), vec![-3, 0, 3]);
    }

    #[test]
    fn clamp_flows_to_zero_capacity_drains_the_path() {
        let mut g = FlowNetwork::new(3);
        g.add_undirected(0, 1, 5);
        g.add_undirected(1, 2, 5);
        crate::push_relabel::max_flow(&mut g, 0, 2);
        let mut flows = g.snapshot_flows();
        g.reset();
        g.set_undirected_capacity(0, 0);
        g.clamp_flows(0, 2, &mut flows);
        assert_eq!(flows, vec![0; 4]);
    }

    #[test]
    fn clamp_flows_is_identity_on_a_feasible_snapshot() {
        let mut g = FlowNetwork::new(4);
        g.add_undirected(0, 1, 7);
        g.add_undirected(1, 2, 4);
        g.add_undirected(2, 3, 9);
        crate::push_relabel::max_flow(&mut g, 0, 3);
        let snapshot = g.snapshot_flows();
        g.reset();
        let mut flows = snapshot.clone();
        g.clamp_flows(0, 3, &mut flows);
        assert_eq!(flows, snapshot);
    }

    #[test]
    fn clamp_flows_reroutes_around_a_dead_branch() {
        // Two disjoint 0→3 paths; killing one leaves the other intact.
        let mut g = FlowNetwork::new(4);
        g.add_undirected(0, 1, 6);
        g.add_undirected(1, 3, 6);
        g.add_undirected(0, 2, 4);
        g.add_undirected(2, 3, 4);
        crate::push_relabel::max_flow(&mut g, 0, 3);
        let mut flows = g.snapshot_flows();
        g.reset();
        g.set_undirected_capacity(1, 0); // sever 1→3
        g.clamp_flows(0, 3, &mut flows);
        let balance = balances(&g, &flows);
        assert_eq!(balance[1], 0);
        assert_eq!(balance[2], 0);
        assert_eq!(balance[3], 4, "the surviving path still carries 4");
        for (e, &f) in flows.iter().enumerate() {
            assert!(f <= g.original(e), "clamped flow exceeds capacity");
        }
    }

    #[test]
    #[should_panic(expected = "does not match")]
    fn clamp_flows_rejects_wrong_snapshot_length() {
        let mut g = FlowNetwork::new(2);
        g.add_undirected(0, 1, 1);
        g.clamp_flows(0, 1, &mut [0u64; 3]);
    }

    #[test]
    fn infinite_is_far_from_overflow() {
        // A million infinite edges still fits in u64 arithmetic.
        assert!(INFINITE.checked_mul(1 << 20).is_some());
    }
}
