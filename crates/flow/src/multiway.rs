//! Heuristic multiway cut for three or more machines.
//!
//! The paper restricts itself to an exact two-way cut because multiway
//! partitioning is NP-hard, but names the heuristic literature (Dahlhaus et
//! al.) as the path to ≥3-machine distributions. This module implements the
//! classic **isolation heuristic**: for each terminal, compute the minimum
//! cut isolating it from all other terminals; take the union of all
//! isolating cuts except the heaviest. The result is within `2 − 2/k` of the
//! optimal multiway cut.

use crate::graph::{FlowNetwork, NodeId, INFINITE};
use crate::mincut::{min_cut, MaxFlowAlgorithm};

/// Result of a heuristic multiway cut.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MultiwayCut {
    /// For every node, the index (into the terminal list) of its machine.
    pub assignment: Vec<usize>,
    /// Total capacity crossing between different machines.
    pub cut_value: u64,
}

/// Partitions the graph among `terminals` using the isolation heuristic.
///
/// Every node is assigned to exactly one terminal; terminal `i` is always
/// assigned to itself. Nodes not reachable by any isolating cut fall to the
/// terminal whose isolating cut was dropped (the heaviest).
///
/// # Panics
///
/// Panics if fewer than two terminals are given or if a terminal repeats.
pub fn multiway_cut(
    g: &FlowNetwork,
    terminals: &[NodeId],
    algorithm: MaxFlowAlgorithm,
) -> MultiwayCut {
    assert!(terminals.len() >= 2, "need at least two terminals");
    let mut seen = std::collections::HashSet::new();
    assert!(
        terminals.iter().all(|t| seen.insert(*t)),
        "terminals must be distinct"
    );

    let n = g.node_count();
    // For each terminal, the isolating min cut: terminal vs. super-sink
    // wired to every other terminal with infinite edges.
    let mut cuts: Vec<(usize, u64, Vec<bool>)> = Vec::with_capacity(terminals.len());
    for (i, &term) in terminals.iter().enumerate() {
        let mut work = g.clone();
        work.reset();
        let super_sink = work.add_node();
        for (j, &other) in terminals.iter().enumerate() {
            if j != i {
                work.add_edge(other, super_sink, INFINITE);
            }
        }
        let cut = min_cut(&mut work, term, super_sink, algorithm);
        let mut side = cut.source_side;
        side.truncate(n);
        cuts.push((i, cut.cut_value, side));
    }

    // Drop the heaviest isolating cut (2 − 2/k approximation).
    let heaviest = cuts
        .iter()
        .enumerate()
        .max_by_key(|(_, (_, value, _))| *value)
        .map(|(pos, _)| pos)
        .expect("at least two cuts");
    let dropped_terminal = cuts[heaviest].0;

    // Assign greedily: lightest cuts claim their source side first.
    let mut order: Vec<usize> = (0..cuts.len()).filter(|&p| p != heaviest).collect();
    order.sort_by_key(|&p| cuts[p].1);

    let mut assignment = vec![usize::MAX; n];
    for &p in &order {
        let (terminal_idx, _, side) = &cuts[p];
        for (node, &in_side) in side.iter().enumerate() {
            if in_side && assignment[node] == usize::MAX {
                assignment[node] = *terminal_idx;
            }
        }
    }
    // Everything unclaimed belongs to the dropped terminal's machine.
    for slot in assignment.iter_mut() {
        if *slot == usize::MAX {
            *slot = dropped_terminal;
        }
    }
    // Terminals always live on their own machine.
    for (i, &term) in terminals.iter().enumerate() {
        assignment[term] = i;
    }

    let cut_value = crossing_value(g, &assignment);
    MultiwayCut {
        assignment,
        cut_value,
    }
}

/// Greedy local refinement of a multiway assignment by single-node moves.
///
/// Repeatedly moves one `movable` node to the machine holding most of its
/// adjacent capacity; every move strictly reduces the crossing value, so
/// the pass terminates. Nodes are visited in index order and a node only
/// moves on a *strict* improvement (ties keep the current machine), making
/// the result deterministic. The caller is responsible for marking nodes
/// that must not move (terminals, pinned or constraint-bound nodes) as not
/// movable. Returns the crossing value of the refined assignment.
///
/// # Panics
///
/// Panics if `assignment` or `movable` is shorter than the node count, or
/// if an assignment refers to a machine `>= machine_count`.
pub fn refine_assignment(
    g: &FlowNetwork,
    assignment: &mut [usize],
    movable: &[bool],
    machine_count: usize,
) -> u64 {
    let n = g.node_count();
    assert!(assignment.len() >= n && movable.len() >= n);
    assert!(assignment[..n].iter().all(|&m| m < machine_count));
    loop {
        let mut improved = false;
        for u in 0..n {
            if !movable[u] {
                continue;
            }
            // Adjacent undirected capacity per machine.
            let mut pull = vec![0u64; machine_count];
            for &e in g.edges_of(u) {
                let v = g.head(e);
                if v < n && v != u {
                    pull[assignment[v]] =
                        pull[assignment[v]].saturating_add(g.original(e).max(g.original(e ^ 1)));
                }
            }
            let here = assignment[u];
            let (best, best_pull) = pull
                .iter()
                .enumerate()
                .max_by_key(|&(m, p)| (*p, std::cmp::Reverse(m)))
                .expect("at least one machine");
            if best != here && *best_pull > pull[here] {
                assignment[u] = best;
                improved = true;
            }
        }
        if !improved {
            return crossing_value(g, assignment);
        }
    }
}

/// Total original capacity of edges whose endpoints are assigned to
/// different machines.
pub fn crossing_value(g: &FlowNetwork, assignment: &[usize]) -> u64 {
    let mut total = 0u64;
    for u in 0..g.node_count() {
        for &e in g.edges_of(u) {
            if e % 2 != 0 {
                continue; // count each stored edge once, via its forward half
            }
            let v = g.head(e);
            if assignment[u] != assignment[v] {
                total += g.original(e).max(g.original(e ^ 1));
            }
        }
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Three clusters joined by thin bridges; terminals one per cluster.
    fn three_cluster_graph() -> (FlowNetwork, Vec<NodeId>) {
        let mut g = FlowNetwork::new(9);
        // Cluster A: 0,1,2 (terminal 0), heavy internal edges.
        g.add_undirected(0, 1, 100);
        g.add_undirected(1, 2, 100);
        // Cluster B: 3,4,5 (terminal 3).
        g.add_undirected(3, 4, 100);
        g.add_undirected(4, 5, 100);
        // Cluster C: 6,7,8 (terminal 6).
        g.add_undirected(6, 7, 100);
        g.add_undirected(7, 8, 100);
        // Thin bridges.
        g.add_undirected(2, 3, 1);
        g.add_undirected(5, 6, 2);
        g.add_undirected(8, 0, 3);
        (g, vec![0, 3, 6])
    }

    #[test]
    fn clusters_stay_whole() {
        let (g, terminals) = three_cluster_graph();
        let cut = multiway_cut(&g, &terminals, MaxFlowAlgorithm::Dinic);
        assert_eq!(cut.assignment[0], cut.assignment[1]);
        assert_eq!(cut.assignment[1], cut.assignment[2]);
        assert_eq!(cut.assignment[3], cut.assignment[4]);
        assert_eq!(cut.assignment[6], cut.assignment[8]);
        // Only the three bridges are cut.
        assert_eq!(cut.cut_value, 1 + 2 + 3);
    }

    #[test]
    fn terminals_keep_their_machines() {
        let (g, terminals) = three_cluster_graph();
        let cut = multiway_cut(&g, &terminals, MaxFlowAlgorithm::LiftToFront);
        for (i, &t) in terminals.iter().enumerate() {
            assert_eq!(cut.assignment[t], i);
        }
    }

    #[test]
    fn two_terminals_reduce_to_ordinary_min_cut() {
        let mut g = FlowNetwork::new(4);
        g.add_undirected(0, 1, 10);
        g.add_undirected(1, 2, 2);
        g.add_undirected(2, 3, 10);
        let multi = multiway_cut(&g, &[0, 3], MaxFlowAlgorithm::Dinic);
        let mut g2 = g.clone();
        let two = min_cut(&mut g2, 0, 3, MaxFlowAlgorithm::Dinic);
        assert_eq!(multi.cut_value, two.cut_value);
    }

    #[test]
    fn approximation_bound_holds_on_clusters() {
        // For the cluster graph the optimum is the bridge total; the
        // heuristic must be within 2 − 2/3 = 4/3 of it.
        let (g, terminals) = three_cluster_graph();
        let cut = multiway_cut(&g, &terminals, MaxFlowAlgorithm::Dinic);
        let optimum = 6;
        assert!(cut.cut_value as f64 <= optimum as f64 * (2.0 - 2.0 / 3.0));
    }

    #[test]
    #[should_panic(expected = "need at least two terminals")]
    fn single_terminal_panics() {
        let g = FlowNetwork::new(2);
        multiway_cut(&g, &[0], MaxFlowAlgorithm::Dinic);
    }

    #[test]
    #[should_panic(expected = "terminals must be distinct")]
    fn duplicate_terminals_panic() {
        let g = FlowNetwork::new(2);
        multiway_cut(&g, &[0, 0], MaxFlowAlgorithm::Dinic);
    }

    #[test]
    fn every_node_is_assigned() {
        let (g, terminals) = three_cluster_graph();
        let cut = multiway_cut(&g, &terminals, MaxFlowAlgorithm::EdmondsKarp);
        assert!(cut.assignment.iter().all(|&a| a < terminals.len()));
    }

    #[test]
    fn refinement_repairs_a_bad_assignment() {
        let (g, _) = three_cluster_graph();
        // Node 1 misassigned away from its heavy cluster.
        let mut assignment = vec![0, 1, 0, 1, 1, 1, 2, 2, 2];
        let movable = vec![false, true, true, false, true, true, false, true, true];
        let before = crossing_value(&g, &assignment);
        let after = refine_assignment(&g, &mut assignment, &movable, 3);
        assert!(after < before);
        assert_eq!(assignment[1], 0);
        assert_eq!(after, crossing_value(&g, &assignment));
    }

    #[test]
    fn refinement_never_moves_pinned_nodes() {
        let (g, _) = three_cluster_graph();
        let mut assignment = vec![0, 2, 0, 1, 1, 1, 2, 2, 2];
        let movable = vec![false; 9];
        let before = crossing_value(&g, &assignment);
        let after = refine_assignment(&g, &mut assignment, &movable, 3);
        assert_eq!(after, before);
        assert_eq!(assignment, vec![0, 2, 0, 1, 1, 1, 2, 2, 2]);
    }

    #[test]
    fn refinement_of_an_optimal_assignment_is_identity() {
        let (g, terminals) = three_cluster_graph();
        let cut = multiway_cut(&g, &terminals, MaxFlowAlgorithm::Dinic);
        let mut refined = cut.assignment.clone();
        let movable: Vec<bool> = (0..g.node_count())
            .map(|u| !terminals.contains(&u))
            .collect();
        let value = refine_assignment(&g, &mut refined, &movable, terminals.len());
        assert!(value <= cut.cut_value);
        assert_eq!(value, crossing_value(&g, &refined));
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// Random connected graph with `k` spread-out terminals.
    fn random_instance(seed: u64, n: usize, k: usize) -> (FlowNetwork, Vec<NodeId>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut g = FlowNetwork::new(n);
        for i in 1..n {
            g.add_undirected(i - 1, i, rng.gen_range(1..50));
        }
        for _ in 0..n {
            let u = rng.gen_range(0..n);
            let v = rng.gen_range(0..n);
            if u != v {
                g.add_undirected(u, v, rng.gen_range(1..50));
            }
        }
        let terminals: Vec<NodeId> = (0..k).map(|i| i * (n - 1) / (k - 1).max(1)).collect();
        (g, terminals)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        /// Structural invariants on random instances: every node assigned,
        /// terminals fixed, and the cut value bounded by the sum of the
        /// isolating cuts (the heuristic's construction guarantees it).
        #[test]
        fn multiway_invariants(seed in any::<u64>(), n in 6usize..24, k in 2usize..5) {
            prop_assume!(k <= n);
            let (g, terminals) = random_instance(seed, n, k);
            // Terminals generated this way can collide on tiny graphs.
            let mut distinct = terminals.clone();
            distinct.dedup();
            prop_assume!(distinct.len() == terminals.len());

            let cut = multiway_cut(&g, &terminals, MaxFlowAlgorithm::Dinic);
            prop_assert_eq!(cut.assignment.len(), g.node_count());
            for (i, &t) in terminals.iter().enumerate() {
                prop_assert_eq!(cut.assignment[t], i);
            }
            prop_assert!(cut.assignment.iter().all(|&a| a < terminals.len()));
            prop_assert_eq!(crossing_value(&g, &cut.assignment), cut.cut_value);

            // Upper bound: the sum of all isolating min cuts.
            let mut isolating_sum = 0u64;
            for (i, &term) in terminals.iter().enumerate() {
                let mut work = g.clone();
                work.reset();
                let sink = work.add_node();
                for (j, &other) in terminals.iter().enumerate() {
                    if j != i {
                        work.add_edge(other, sink, INFINITE);
                    }
                }
                isolating_sum +=
                    crate::mincut::min_cut(&mut work, term, sink, MaxFlowAlgorithm::Dinic)
                        .cut_value;
            }
            prop_assert!(
                cut.cut_value <= isolating_sum,
                "cut {} > isolating sum {}", cut.cut_value, isolating_sum
            );
        }

        /// With two terminals the heuristic is exact: it equals the s-t
        /// min cut.
        #[test]
        fn two_terminals_are_exact(seed in any::<u64>(), n in 4usize..20) {
            let (g, _) = random_instance(seed, n, 2);
            let terminals = vec![0, n - 1];
            let multi = multiway_cut(&g, &terminals, MaxFlowAlgorithm::Dinic);
            let mut work = g.clone();
            let exact = crate::mincut::min_cut(&mut work, 0, n - 1, MaxFlowAlgorithm::Dinic);
            prop_assert_eq!(multi.cut_value, exact.cut_value);
        }
    }
}
