//! Edmonds–Karp maximum flow (BFS augmenting paths).
//!
//! An independent baseline used to cross-validate the relabel-to-front
//! implementation: both must report identical flow values on every graph
//! (the max-flow value is unique even though flows are not). `O(V·E²)`.

use crate::graph::{FlowNetwork, NodeId};
use std::collections::VecDeque;

/// Computes a maximum `s`–`t` flow with Edmonds–Karp.
///
/// # Panics
///
/// Panics if `s == t`.
pub fn max_flow(g: &mut FlowNetwork, s: NodeId, t: NodeId) -> u64 {
    assert_ne!(s, t, "source and sink must differ");
    let mut total: u128 = 0;
    loop {
        // BFS for the shortest augmenting path, remembering arrival edges.
        let mut pred: Vec<Option<usize>> = vec![None; g.node_count()];
        let mut queue = VecDeque::new();
        queue.push_back(s);
        let mut found = false;
        'bfs: while let Some(u) = queue.pop_front() {
            for &e in g.edges_of(u) {
                let v = g.head(e);
                if g.residual(e) > 0 && pred[v].is_none() && v != s {
                    pred[v] = Some(e);
                    if v == t {
                        found = true;
                        break 'bfs;
                    }
                    queue.push_back(v);
                }
            }
        }
        if !found {
            break;
        }
        // Bottleneck along the path.
        let mut bottleneck = u64::MAX;
        let mut v = t;
        while v != s {
            let e = pred[v].expect("path is connected");
            bottleneck = bottleneck.min(g.residual(e));
            v = g.head(e ^ 1);
        }
        // Augment.
        let mut v = t;
        while v != s {
            let e = pred[v].expect("path is connected");
            g.push_along(e, bottleneck);
            v = g.head(e ^ 1);
        }
        total += u128::from(bottleneck);
    }
    debug_assert!(g.conservation_violations(s, t).is_empty());
    u64::try_from(total).expect("flow exceeds u64")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_known_answers() {
        let mut g = FlowNetwork::new(3);
        g.add_edge(0, 1, 10);
        g.add_edge(1, 2, 3);
        assert_eq!(max_flow(&mut g, 0, 2), 3);
    }

    #[test]
    fn clrs_example() {
        let (s, v1, v2, v3, v4, t) = (0, 1, 2, 3, 4, 5);
        let mut g = FlowNetwork::new(6);
        g.add_edge(s, v1, 16);
        g.add_edge(s, v2, 13);
        g.add_edge(v1, v2, 10);
        g.add_edge(v2, v1, 4);
        g.add_edge(v1, v3, 12);
        g.add_edge(v3, v2, 9);
        g.add_edge(v2, v4, 14);
        g.add_edge(v4, v3, 7);
        g.add_edge(v3, t, 20);
        g.add_edge(v4, t, 4);
        assert_eq!(max_flow(&mut g, s, t), 23);
    }

    #[test]
    fn zigzag_network_needs_back_edges() {
        // Classic case where augmenting must undo flow via reverse edges.
        let mut g = FlowNetwork::new(4);
        g.add_edge(0, 1, 1);
        g.add_edge(0, 2, 1);
        g.add_edge(1, 2, 1);
        g.add_edge(1, 3, 1);
        g.add_edge(2, 3, 1);
        assert_eq!(max_flow(&mut g, 0, 3), 2);
    }

    #[test]
    fn no_path_means_zero() {
        let mut g = FlowNetwork::new(2);
        assert_eq!(max_flow(&mut g, 0, 1), 0);
    }
}
