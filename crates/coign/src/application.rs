//! The application abstraction the Coign tool chain operates on.
//!
//! Coign works on *binary* applications: it needs only the ability to load
//! the binary ([`Application::image`]), register its component classes with
//! the COM runtime ([`Application::register`]), and drive it through usage
//! scenarios ([`Application::run_scenario`]). No source-level knowledge is
//! required — the trait is the simulation's equivalent of "a COM application
//! on disk plus a Visual Test script".

use crate::constraints::NamedConstraint;
use coign_com::{AppImage, ComResult, ComRuntime, MachineId};

/// A component-based application under Coign's control.
pub trait Application: Send + Sync {
    /// Application name, e.g. `"octarine"`.
    fn name(&self) -> &str;

    /// Registers every component class with the runtime (the equivalent of
    /// loading the binary and its DLLs, which self-register their classes).
    fn register(&self, rt: &ComRuntime);

    /// Scenario names this application supports, in Table 1 order.
    fn scenarios(&self) -> Vec<&'static str>;

    /// Runs one usage scenario to completion.
    fn run_scenario(&self, rt: &ComRuntime, scenario: &str) -> ComResult<()>;

    /// The modeled binary image (input to the binary rewriter).
    fn image(&self) -> AppImage;

    /// The machine a class runs on in the application's *default*
    /// (as-shipped) distribution. Desktop applications run entirely on the
    /// client with data files on a server; client/server applications ship
    /// a programmer-chosen split.
    fn default_placement(&self, class_name: &str) -> MachineId {
        let _ = class_name;
        MachineId::CLIENT
    }

    /// Explicit programmer-supplied location constraints (usually empty;
    /// the Benefits sample uses them to guarantee data security).
    fn explicit_constraints(&self) -> Vec<NamedConstraint> {
        Vec::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Trivial;
    impl Application for Trivial {
        fn name(&self) -> &str {
            "trivial"
        }
        fn register(&self, _rt: &ComRuntime) {}
        fn scenarios(&self) -> Vec<&'static str> {
            vec!["t_nothing"]
        }
        fn run_scenario(&self, _rt: &ComRuntime, _scenario: &str) -> ComResult<()> {
            Ok(())
        }
        fn image(&self) -> AppImage {
            AppImage::new("trivial.exe", vec![])
        }
    }

    #[test]
    fn defaults_are_client_and_unconstrained() {
        let app = Trivial;
        assert_eq!(app.default_placement("Anything"), MachineId::CLIENT);
        assert!(app.explicit_constraints().is_empty());
    }
}
