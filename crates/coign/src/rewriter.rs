//! The binary rewriter.
//!
//! Starting with the original binary files for an application, the rewriter
//! makes exactly two modifications (§2 of the paper):
//!
//! 1. It inserts an entry into the **first slot** of the application's DLL
//!    import table to load the Coign runtime, so the runtime loads and
//!    executes before the application or any of its DLLs and can instrument
//!    the COM library in the application's address space.
//! 2. It adds a **configuration record** data segment at the end of the
//!    binary, telling the runtime how to profile the application and how to
//!    classify components during execution.
//!
//! After analysis, the rewriter replaces the profiling instrumentation with
//! the lightweight runtime and writes the chosen distribution into the
//! configuration record.

use crate::analysis::Distribution;
use crate::classifier::InstanceClassifier;
use crate::config::{ConfigRecord, RuntimeMode};
use crate::profile::IccProfile;
use coign_com::{AppImage, ComError, ComResult};

/// Import-table entry of the full (profiling) Coign runtime.
pub const COIGN_RTE_DLL: &str = "coignrte.dll";

/// Import-table entry of the lightweight (distribution) runtime.
pub const COIGN_LITE_DLL: &str = "coignlte.dll";

/// Instruments an application binary for profiling.
///
/// Idempotent: re-instrumenting resets the configuration record.
pub fn instrument(image: &mut AppImage, classifier: &InstanceClassifier) {
    image.remove_import(COIGN_LITE_DLL);
    image.insert_import_first(COIGN_RTE_DLL);
    let record = ConfigRecord::profiling(classifier.encode());
    image.set_config_record(record.encode());
}

/// Reads the configuration record out of an instrumented binary.
pub fn read_config(image: &AppImage) -> ComResult<ConfigRecord> {
    let bytes = image.config_record().ok_or_else(|| {
        ComError::Codec(format!(
            "image {} carries no Coign configuration record",
            image.name
        ))
    })?;
    ConfigRecord::decode(bytes)
}

/// Accumulates a profiling run's summarized log into the binary's
/// configuration record (the storage-saving alternative to log files: the
/// record's summaries merge communication from similar interface calls).
pub fn accumulate_profile(image: &mut AppImage, run: &IccProfile) -> ComResult<()> {
    let mut record = read_config(image)?;
    record.profile.merge(run);
    image.set_config_record(record.encode());
    Ok(())
}

/// Rewrites the binary to realize a chosen distribution.
///
/// The profiling instrumentation is removed from the import table; in its
/// place the lightweight runtime is loaded to enforce the distribution
/// chosen by the graph-cutting algorithm.
pub fn realize(
    image: &mut AppImage,
    classifier: &InstanceClassifier,
    distribution: &Distribution,
) -> ComResult<()> {
    let mut record = read_config(image)?;
    record.mode = RuntimeMode::Distributed;
    record.classifier = classifier.encode();
    record.distribution = Some(distribution.clone());
    image.remove_import(COIGN_RTE_DLL);
    image.insert_import_first(COIGN_LITE_DLL);
    image.set_config_record(record.encode());
    Ok(())
}

/// Restores the original (un-instrumented) binary.
pub fn strip(image: &mut AppImage) {
    image.remove_import(COIGN_RTE_DLL);
    image.remove_import(COIGN_LITE_DLL);
    image.remove_section(coign_com::image::CONFIG_SECTION);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classifier::{ClassificationId, ClassifierKind};
    use coign_com::{Clsid, MachineId};
    use std::collections::HashMap;

    fn image() -> AppImage {
        AppImage::new("octarine.exe", vec![Clsid::from_name("Story")])
    }

    fn classifier() -> InstanceClassifier {
        InstanceClassifier::new(ClassifierKind::Ifcb)
    }

    #[test]
    fn instrument_adds_import_first_and_record() {
        let mut img = image();
        instrument(&mut img, &classifier());
        assert_eq!(img.imports[0].name, COIGN_RTE_DLL);
        let record = read_config(&img).unwrap();
        assert_eq!(record.mode, RuntimeMode::Profiling);
        assert!(record.distribution.is_none());
    }

    #[test]
    fn instrument_is_idempotent() {
        let mut img = image();
        instrument(&mut img, &classifier());
        instrument(&mut img, &classifier());
        assert_eq!(
            img.imports
                .iter()
                .filter(|i| i.name == COIGN_RTE_DLL)
                .count(),
            1
        );
    }

    #[test]
    fn uninstrumented_image_has_no_config() {
        assert!(read_config(&image()).is_err());
    }

    #[test]
    fn profiles_accumulate_in_the_record() {
        let mut img = image();
        instrument(&mut img, &classifier());
        let mut run = IccProfile::new();
        run.record_instance(ClassificationId(1), Clsid::from_name("Story"));
        run.scenarios.push("o_newdoc".into());
        accumulate_profile(&mut img, &run).unwrap();
        accumulate_profile(&mut img, &run).unwrap();
        let record = read_config(&img).unwrap();
        assert_eq!(record.profile.instances[&ClassificationId(1)], 2);
        assert_eq!(record.profile.scenarios.len(), 2);
    }

    #[test]
    fn realize_swaps_runtime_and_writes_distribution() {
        let mut img = image();
        let cl = classifier();
        instrument(&mut img, &cl);
        let mut placement = HashMap::new();
        placement.insert(ClassificationId(1), MachineId::SERVER);
        let dist = Distribution {
            placement,
            predicted_comm_us: 42.0,
            network_name: "10BaseT Ethernet".into(),
        };
        realize(&mut img, &cl, &dist).unwrap();
        assert_eq!(img.imports[0].name, COIGN_LITE_DLL);
        assert!(!img.has_import(COIGN_RTE_DLL));
        let record = read_config(&img).unwrap();
        assert_eq!(record.mode, RuntimeMode::Distributed);
        assert_eq!(record.distribution.unwrap(), dist);
    }

    #[test]
    fn realize_requires_prior_instrumentation() {
        let mut img = image();
        let dist = Distribution {
            placement: HashMap::new(),
            predicted_comm_us: 0.0,
            network_name: "x".into(),
        };
        assert!(realize(&mut img, &classifier(), &dist).is_err());
    }

    #[test]
    fn strip_restores_original_shape() {
        let original = image();
        let mut img = image();
        instrument(&mut img, &classifier());
        strip(&mut img);
        assert_eq!(img, original);
    }

    #[test]
    fn image_roundtrips_with_config_through_bytes() {
        // The instrumented binary survives save/load — the rewriter writes
        // real bytes, not in-memory-only state.
        let mut img = image();
        instrument(&mut img, &classifier());
        let bytes = img.encode();
        let back = AppImage::decode(&bytes).unwrap();
        let record = read_config(&back).unwrap();
        assert_eq!(record.mode, RuntimeMode::Profiling);
    }
}
