//! The configuration record embedded in application binaries.
//!
//! The binary rewriter appends a data segment to the application binary that
//! tells the Coign runtime how to behave at load time. During profiling it
//! names the classifier and accumulates summarized profiles; after analysis
//! it carries the classifier's descriptor table and the chosen distribution,
//! and instructs the runtime to load the lightweight instrumentation
//! instead.

use crate::analysis::Distribution;
use crate::profile::IccProfile;
use coign_com::codec::{Decoder, Encoder};
use coign_com::{ComError, ComResult};

/// Which runtime the configuration record instructs Coign to load.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RuntimeMode {
    /// Full profiling instrumentation.
    Profiling,
    /// Lightweight distribution-realization instrumentation.
    Distributed,
}

/// The contents of the `.coign` configuration section.
#[derive(Debug, Clone, PartialEq)]
pub struct ConfigRecord {
    /// Runtime mode at next load.
    pub mode: RuntimeMode,
    /// Serialized instance classifier (kind, depth, descriptor table).
    pub classifier: Vec<u8>,
    /// Accumulated communication profile (summary information from
    /// profiling scenarios merges here instead of growing a log file).
    pub profile: IccProfile,
    /// The chosen distribution, once analysis has run.
    pub distribution: Option<Distribution>,
}

impl ConfigRecord {
    /// A fresh profiling-mode record with an empty profile.
    pub fn profiling(classifier_bytes: Vec<u8>) -> Self {
        ConfigRecord {
            mode: RuntimeMode::Profiling,
            classifier: classifier_bytes,
            profile: IccProfile::new(),
            distribution: None,
        }
    }

    /// Serializes the record for embedding in an [`coign_com::AppImage`].
    pub fn encode(&self) -> Vec<u8> {
        let mut e = Encoder::new();
        e.put_str("COIGNCFG");
        e.put_u8(match self.mode {
            RuntimeMode::Profiling => 0,
            RuntimeMode::Distributed => 1,
        });
        e.put_bytes(&self.classifier);
        e.put_bytes(&self.profile.encode());
        match &self.distribution {
            Some(dist) => {
                e.put_bool(true);
                e.put_bytes(&dist.encode());
            }
            None => e.put_bool(false),
        }
        e.finish()
    }

    /// Deserializes a record from section bytes.
    pub fn decode(bytes: &[u8]) -> ComResult<Self> {
        let mut d = Decoder::new(bytes);
        let magic = d.get_str()?;
        if magic != "COIGNCFG" {
            return Err(ComError::Codec(format!(
                "bad configuration record magic {magic:?}"
            )));
        }
        let mode = match d.get_u8()? {
            0 => RuntimeMode::Profiling,
            1 => RuntimeMode::Distributed,
            other => return Err(ComError::Codec(format!("unknown runtime mode {other}"))),
        };
        let classifier = d.get_bytes()?;
        let profile = IccProfile::decode(&d.get_bytes()?)?;
        let distribution = if d.get_bool()? {
            Some(Distribution::decode(&d.get_bytes()?)?)
        } else {
            None
        };
        Ok(ConfigRecord {
            mode,
            classifier,
            profile,
            distribution,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classifier::{ClassificationId, ClassifierKind, InstanceClassifier};
    use coign_com::{Clsid, Iid, MachineId};
    use std::collections::HashMap;

    fn sample_record() -> ConfigRecord {
        let classifier = InstanceClassifier::new(ClassifierKind::Ifcb);
        let mut profile = IccProfile::new();
        profile.record_instance(ClassificationId(1), Clsid::from_name("A"));
        profile.record_message(
            ClassificationId::ROOT,
            ClassificationId(1),
            Iid::from_name("IA"),
            0,
            500,
        );
        profile.scenarios.push("o_newdoc".into());
        let mut placement = HashMap::new();
        placement.insert(ClassificationId(1), MachineId::SERVER);
        ConfigRecord {
            mode: RuntimeMode::Distributed,
            classifier: classifier.encode(),
            profile,
            distribution: Some(Distribution {
                placement,
                predicted_comm_us: 123.5,
                network_name: "10BaseT Ethernet".into(),
            }),
        }
    }

    #[test]
    fn roundtrip_full_record() {
        let record = sample_record();
        let back = ConfigRecord::decode(&record.encode()).unwrap();
        assert_eq!(back, record);
    }

    #[test]
    fn roundtrip_profiling_record() {
        let record =
            ConfigRecord::profiling(InstanceClassifier::new(ClassifierKind::Ifcb).encode());
        assert_eq!(record.mode, RuntimeMode::Profiling);
        assert!(record.distribution.is_none());
        let back = ConfigRecord::decode(&record.encode()).unwrap();
        assert_eq!(back, record);
        // The embedded classifier decodes too.
        let classifier = InstanceClassifier::decode(&back.classifier).unwrap();
        assert_eq!(classifier.kind(), ClassifierKind::Ifcb);
    }

    #[test]
    fn bad_magic_is_rejected() {
        let mut e = Encoder::new();
        e.put_str("NOTCOIGN");
        assert!(ConfigRecord::decode(&e.finish()).is_err());
    }

    #[test]
    fn bad_mode_is_rejected() {
        let mut e = Encoder::new();
        e.put_str("COIGNCFG");
        e.put_u8(9);
        assert!(ConfigRecord::decode(&e.finish()).is_err());
    }

    #[test]
    fn truncated_record_is_rejected() {
        let bytes = sample_record().encode();
        for cut in [1, bytes.len() / 2, bytes.len() - 1] {
            assert!(
                ConfigRecord::decode(&bytes[..cut]).is_err(),
                "cut at {cut} should fail"
            );
        }
    }
}
