//! Warm-started partition sweeps across a grid of network conditions.
//!
//! The paper's motivating observation is that the best distribution of an
//! application *changes with the network*: a cut tuned for a SAN is wrong
//! for ISDN. Answering "where does the partition flip?" means solving the
//! same min-cut over a whole grid of latency/bandwidth points — and those
//! solves are highly related: raising latency or lowering bandwidth only
//! ever *increases* edge capacities (`α·messages + β·bytes` with
//! `α = latency + overhead/bw` and `β = 1/bw`), never shrinks them.
//!
//! The warm sweep exploits that relatedness twice. First, the flow
//! network's *topology* is network-independent — node order, edge keys,
//! and constraint edges depend only on the profile — so it is built once
//! and only its communication-edge capacities are rewritten per point
//! ([`coign_flow::FlowNetwork::set_undirected_capacity`]), skipping the
//! per-point graph rebuild entirely. Second, a max flow that was feasible
//! at one grid point remains feasible at the next: points are visited in
//! capacity-monotone order (latency ascending; within a latency row,
//! bandwidth descending) and each solve is warm-started from its
//! predecessor's flow via [`coign_flow::min_cut_warm`]. The first point of
//! each row chains from the first point of the previous row (same
//! bandwidth, lower latency), so every consecutive pair along the warm
//! chain is capacity-monotone. Warm or cold, the residual-reachability cut
//! extraction returns the *unique minimal source side* of the min cut, so
//! placements are identical — [`SweepMode::WarmValidated`] proves it
//! against a cold Dinic solve on an independently rebuilt network at
//! every point.

use crate::analysis::build_flow_network;
use crate::application::Application;
use crate::classifier::ClassificationId;
use crate::constraints::Constraint;
use crate::icc::IccGraph;
use crate::profile::IccProfile;
use crate::runtime::{check_constraints, derive_constraints};
use coign_com::{ComError, ComResult, MachineId};
use coign_dcom::{NetworkModel, NetworkProfile};
use coign_flow::{min_cut, min_cut_warm, MaxFlowAlgorithm, INFINITE};

/// The latency/bandwidth grid a sweep evaluates.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepGrid {
    /// One-way per-message latencies to evaluate, microseconds.
    pub latencies_us: Vec<f64>,
    /// Link bandwidths to evaluate, bytes per second.
    pub bandwidths_bps: Vec<f64>,
}

impl SweepGrid {
    /// The default grid: latencies and bandwidths spanning the paper's
    /// network generations, from SAN-class links to ISDN.
    pub fn paper_networks() -> Self {
        SweepGrid {
            latencies_us: vec![20.0, 300.0, 1_000.0, 10_000.0],
            bandwidths_bps: vec![16e3, 1.25e6, 19.4e6, 125e6],
        }
    }

    /// Latencies sorted ascending, deduplicated.
    fn sorted_latencies(&self) -> Vec<f64> {
        let mut v: Vec<f64> = self
            .latencies_us
            .iter()
            .copied()
            .filter(|l| *l >= 0.0)
            .collect();
        v.sort_by(|a, b| a.partial_cmp(b).expect("latency must not be NaN"));
        v.dedup();
        v
    }

    /// Bandwidths sorted descending, deduplicated.
    fn sorted_bandwidths(&self) -> Vec<f64> {
        let mut v: Vec<f64> = self
            .bandwidths_bps
            .iter()
            .copied()
            .filter(|b| *b > 0.0)
            .collect();
        v.sort_by(|a, b| b.partial_cmp(a).expect("bandwidth must not be NaN"));
        v.dedup();
        v
    }
}

/// How the sweep solves each grid point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SweepMode {
    /// Build the flow network once, re-parameterize its capacities per
    /// point, and warm-start each solve from its predecessor along the
    /// capacity-monotone chain (lift-to-front with gap relabeling).
    Warm,
    /// Solve every point from scratch — full graph rebuild plus a cold
    /// lift-to-front solve, exactly what running `coign analyze` once per
    /// network point would cost. The baseline the warm chain is
    /// benchmarked against.
    Cold,
    /// Warm-start, then re-solve every point cold with Dinic — an
    /// independent algorithm on an independently rebuilt network — and
    /// fail if cut value or placement disagree.
    WarmValidated,
}

/// The partition chosen at one grid point.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepPoint {
    /// One-way message latency of this point, microseconds.
    pub latency_us: f64,
    /// Link bandwidth of this point, bytes per second.
    pub bandwidth_bps: f64,
    /// Minimum cut value in scaled capacity units ([`IccGraph::capacity_of`]).
    pub cut_value: u64,
    /// Predicted communication time of the chosen partition, microseconds.
    pub predicted_comm_us: f64,
    /// Classifications placed on the client, sorted.
    pub client: Vec<ClassificationId>,
    /// Classifications placed on the server, sorted.
    pub server: Vec<ClassificationId>,
}

/// A completed sweep: one [`SweepPoint`] per grid point, in evaluation
/// order (latency ascending, bandwidth descending within each latency).
#[derive(Debug, Clone, PartialEq)]
pub struct SweepResult {
    /// Per-point partitions.
    pub points: Vec<SweepPoint>,
}

impl SweepResult {
    /// Number of distinct partitions across the grid — how often the best
    /// distribution actually changes with the network.
    pub fn distinct_partitions(&self) -> usize {
        let mut seen: Vec<&Vec<ClassificationId>> = Vec::new();
        for p in &self.points {
            if !seen.contains(&&p.server) {
                seen.push(&p.server);
            }
        }
        seen.len()
    }
}

/// Sweeps the min-cut partition across `grid`, deriving constraints from
/// the application exactly as [`crate::runtime::choose_distribution`]
/// does. The constraint set is vetted once up front; contradictions fail
/// fast without invoking the solver.
pub fn sweep(
    app: &dyn Application,
    profile: &IccProfile,
    grid: &SweepGrid,
    mode: SweepMode,
) -> ComResult<SweepResult> {
    check_constraints(app, profile)?;
    let constraints = derive_constraints(app, profile);
    sweep_profile(profile, &constraints, grid, mode)
}

/// Sweeps with an explicit constraint set (no application needed) — the
/// core loop behind [`sweep`].
pub fn sweep_profile(
    profile: &IccProfile,
    constraints: &[Constraint],
    grid: &SweepGrid,
    mode: SweepMode,
) -> ComResult<SweepResult> {
    let latencies = grid.sorted_latencies();
    let bandwidths = grid.sorted_bandwidths();
    if latencies.is_empty() || bandwidths.is_empty() {
        return Err(ComError::App(
            "sweep grid is empty: need at least one latency and one bandwidth".to_string(),
        ));
    }
    match mode {
        SweepMode::Cold => sweep_cold(profile, constraints, &latencies, &bandwidths),
        SweepMode::Warm | SweepMode::WarmValidated => sweep_warm(
            profile,
            constraints,
            &latencies,
            &bandwidths,
            mode == SweepMode::WarmValidated,
        ),
    }
}

/// The cold baseline: at every grid point, rebuild the concrete graph and
/// flow network from scratch and solve with lift-to-front — exactly what
/// running [`crate::analysis::analyze`] once per network point would do.
fn sweep_cold(
    profile: &IccProfile,
    constraints: &[Constraint],
    latencies: &[f64],
    bandwidths: &[f64],
) -> ComResult<SweepResult> {
    let mut points = Vec::with_capacity(latencies.len() * bandwidths.len());
    for &latency_us in latencies {
        for &bandwidth_bps in bandwidths {
            let network = NetworkProfile::exact(&grid_model(latency_us, bandwidth_bps));
            let graph = IccGraph::build(profile, &network);
            let (mut flow, source, sink) = build_flow_network(&graph, constraints);
            let cut = min_cut(&mut flow, source, sink, MaxFlowAlgorithm::LiftToFront);
            check_cuttable(cut.cut_value)?;
            points.push(make_point(
                latency_us,
                bandwidth_bps,
                cut.cut_value,
                graph.crossing_time_us(&cut.source_side[..graph.node_count()]),
                &graph.nodes,
                &cut.source_side,
            ));
        }
    }
    Ok(SweepResult { points })
}

/// The warm path: the flow network's *topology* never changes across the
/// grid — only its communication-edge capacities do — so it is built once
/// and re-parameterized per point with
/// [`FlowNetwork::set_undirected_capacity`], and each solve is
/// warm-started from its predecessor's flow along the capacity-monotone
/// chain. With `validate`, every point is additionally re-solved cold
/// (full rebuild, Dinic) and the sweep fails on any disagreement.
///
/// [`FlowNetwork::set_undirected_capacity`]: coign_flow::FlowNetwork::set_undirected_capacity
fn sweep_warm(
    profile: &IccProfile,
    constraints: &[Constraint],
    latencies: &[f64],
    bandwidths: &[f64],
    validate: bool,
) -> ComResult<SweepResult> {
    // Build the graph once at the first grid point. Node order, the
    // non-remotable set, and the communication-edge *keys* depend only on
    // the profile, never on the network, so everything except the edge
    // weights is shared by the whole grid.
    let base_network = NetworkProfile::exact(&grid_model(latencies[0], bandwidths[0]));
    let base_graph = IccGraph::build(profile, &base_network);
    let (mut flow, source, sink) = build_flow_network(&base_graph, constraints);

    // Per-pair traffic in graph-key order: the network-independent part
    // of each edge weight. Communication edges are the first
    // `weights_us.len()` pairs of the flow network, in this same order,
    // so index `k` below addresses pair `k` directly.
    let mut traffic: Vec<((usize, usize), (u64, u64))> = profile
        .pair_traffic()
        .into_iter()
        .filter_map(|(pair, stats)| {
            let (a, b) = (base_graph.index[&pair.0], base_graph.index[&pair.1]);
            (a != b).then_some((
                if a < b { (a, b) } else { (b, a) },
                (stats.messages, stats.bytes),
            ))
        })
        .collect();
    traffic.sort_unstable_by_key(|(key, _)| *key);
    debug_assert!(traffic
        .iter()
        .map(|(key, _)| key)
        .eq(base_graph.weights_us.keys()));

    let mut points = Vec::with_capacity(latencies.len() * bandwidths.len());
    // Flow snapshot of the previous point in the warm chain, and of the
    // first point of the previous latency row (the row-to-row link).
    let mut previous: Option<Vec<u64>> = None;
    let mut row_start: Option<Vec<u64>> = None;
    let mut weights = vec![0.0f64; traffic.len()];

    for &latency_us in latencies {
        for (col, &bandwidth_bps) in bandwidths.iter().enumerate() {
            let network = NetworkProfile::exact(&grid_model(latency_us, bandwidth_bps));
            flow.reset();
            for (k, ((_, _), (messages, bytes))) in traffic.iter().enumerate() {
                let w = network.predict_traffic_us(*messages, *bytes);
                flow.set_undirected_capacity(k, IccGraph::capacity_of(w));
                weights[k] = w;
            }

            let warm_from = if col == 0 { &row_start } else { &previous };
            let cut = min_cut_warm(&mut flow, source, sink, warm_from.as_deref());
            check_cuttable(cut.cut_value)?;
            if validate {
                let graph = IccGraph::build(profile, &network);
                let (mut cold_flow, s, t) = build_flow_network(&graph, constraints);
                let cold = min_cut(&mut cold_flow, s, t, MaxFlowAlgorithm::Dinic);
                if cold.cut_value != cut.cut_value || cold.source_side != cut.source_side {
                    return Err(ComError::App(format!(
                        "warm-started sweep diverged from cold solve at \
                         latency={latency_us}us bandwidth={bandwidth_bps}B/s: \
                         warm cut {} vs cold cut {}",
                        cut.cut_value, cold.cut_value
                    )));
                }
            }

            // Crossing-time sum in the same sorted-key order as
            // `IccGraph::crossing_time_us`, so warm and cold points carry
            // bit-identical predictions.
            let predicted_comm_us = traffic
                .iter()
                .zip(&weights)
                .filter(|(((a, b), _), _)| cut.source_side[*a] != cut.source_side[*b])
                .map(|(_, w)| w)
                .sum();
            points.push(make_point(
                latency_us,
                bandwidth_bps,
                cut.cut_value,
                predicted_comm_us,
                &base_graph.nodes,
                &cut.source_side,
            ));

            let snapshot = flow.snapshot_flows();
            if col == 0 {
                row_start = Some(snapshot.clone());
            }
            previous = Some(snapshot);
        }
    }
    Ok(SweepResult { points })
}

/// Rejects a cut that severs an infinite (constraint / non-remotable) edge.
fn check_cuttable(cut_value: u64) -> ComResult<()> {
    if cut_value >= INFINITE {
        return Err(ComError::App(
            "location constraints are contradictory: the minimum cut severs an \
             infinite-capacity (constraint or non-remotable) edge"
                .to_string(),
        ));
    }
    Ok(())
}

/// Assembles one grid point from a solved cut.
fn make_point(
    latency_us: f64,
    bandwidth_bps: f64,
    cut_value: u64,
    predicted_comm_us: f64,
    nodes: &[ClassificationId],
    source_side: &[bool],
) -> SweepPoint {
    let mut client = Vec::new();
    let mut server = Vec::new();
    for (node, class) in nodes.iter().enumerate() {
        if source_side[node] {
            client.push(*class);
        } else {
            server.push(*class);
        }
    }
    SweepPoint {
        latency_us,
        bandwidth_bps,
        cut_value,
        predicted_comm_us,
        client,
        server,
    }
}

/// The network model of one grid point: a jitter-free pure pipe so that
/// `NetworkProfile::exact` is monotone in latency and `1/bandwidth` — the
/// property the warm chain's feasibility rests on.
fn grid_model(latency_us: f64, bandwidth_bps: f64) -> NetworkModel {
    let mut model = NetworkModel::new("sweep-grid", latency_us, bandwidth_bps);
    model.jitter = 0.0;
    model
}

/// Converts a machine placement of one sweep point into the common
/// `(classification, machine)` listing, client first.
pub fn point_placements(point: &SweepPoint) -> Vec<(ClassificationId, MachineId)> {
    let mut out: Vec<(ClassificationId, MachineId)> = point
        .client
        .iter()
        .map(|c| (*c, MachineId::CLIENT))
        .chain(point.server.iter().map(|c| (*c, MachineId::SERVER)))
        .collect();
    out.sort();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use coign_com::{Clsid, Iid};

    fn c(n: u32) -> ClassificationId {
        ClassificationId(n)
    }

    /// Root ↔ viewer: light. viewer ↔ reader: moderate. reader ↔ storage:
    /// heavy and byte-dominated — on slow links the reader follows storage
    /// to the server, on fast ones the cut moves.
    fn document_profile() -> IccProfile {
        let iid = Iid::from_name("IX");
        let mut p = IccProfile::new();
        for (id, name) in [(1, "Viewer"), (2, "Reader"), (3, "Storage")] {
            p.record_instance(c(id), Clsid::from_name(name));
        }
        for _ in 0..50 {
            p.record_message(ClassificationId::ROOT, c(1), iid, 0, 100);
        }
        for _ in 0..5 {
            p.record_message(c(1), c(2), iid, 0, 2_000);
        }
        for _ in 0..200 {
            p.record_message(c(2), c(3), iid, 0, 60_000);
        }
        p
    }

    fn constraints() -> Vec<Constraint> {
        vec![
            Constraint::PinClient(ClassificationId::ROOT),
            Constraint::PinServer(c(3)),
        ]
    }

    #[test]
    fn warm_and_cold_sweeps_agree_everywhere() {
        let profile = document_profile();
        let grid = SweepGrid::paper_networks();
        let warm = sweep_profile(&profile, &constraints(), &grid, SweepMode::Warm).unwrap();
        let cold = sweep_profile(&profile, &constraints(), &grid, SweepMode::Cold).unwrap();
        assert_eq!(warm.points.len(), 16);
        assert_eq!(warm, cold);
    }

    #[test]
    fn validated_sweep_passes() {
        let profile = document_profile();
        let grid = SweepGrid::paper_networks();
        let result =
            sweep_profile(&profile, &constraints(), &grid, SweepMode::WarmValidated).unwrap();
        // Pinned endpoints stay pinned at every point.
        for point in &result.points {
            assert!(point.client.contains(&ClassificationId::ROOT));
            assert!(point.server.contains(&c(3)));
        }
    }

    #[test]
    fn points_are_ordered_capacity_monotone() {
        let profile = document_profile();
        let grid = SweepGrid {
            latencies_us: vec![1_000.0, 20.0],
            bandwidths_bps: vec![16e3, 125e6],
        };
        let result = sweep_profile(&profile, &constraints(), &grid, SweepMode::Warm).unwrap();
        let order: Vec<(f64, f64)> = result
            .points
            .iter()
            .map(|p| (p.latency_us, p.bandwidth_bps))
            .collect();
        assert_eq!(
            order,
            vec![
                (20.0, 125e6),
                (20.0, 16e3),
                (1_000.0, 125e6),
                (1_000.0, 16e3),
            ]
        );
        // Cut values within a row grow with shrinking bandwidth, and the
        // first column grows down the rows.
        assert!(result.points[1].cut_value >= result.points[0].cut_value);
        assert!(result.points[2].cut_value >= result.points[0].cut_value);
    }

    #[test]
    fn partition_shifts_across_the_grid() {
        let profile = document_profile();
        let grid = SweepGrid::paper_networks();
        let result =
            sweep_profile(&profile, &constraints(), &grid, SweepMode::WarmValidated).unwrap();
        // The sweep exists to show the partition moving with the network;
        // the document profile flips at least once between SAN and ISDN.
        assert!(
            result.distinct_partitions() >= 2,
            "expected the partition to change across the grid"
        );
    }

    #[test]
    fn empty_grids_are_rejected() {
        let profile = document_profile();
        let grid = SweepGrid {
            latencies_us: vec![],
            bandwidths_bps: vec![1.0],
        };
        assert!(sweep_profile(&profile, &constraints(), &grid, SweepMode::Warm).is_err());
    }

    #[test]
    fn contradictions_fail_before_any_point() {
        let mut profile = document_profile();
        profile.record_non_remotable(c(1), c(3));
        let contradictory = vec![Constraint::PinClient(c(1)), Constraint::PinServer(c(3))];
        let grid = SweepGrid::paper_networks();
        let err = sweep_profile(&profile, &contradictory, &grid, SweepMode::Warm).unwrap_err();
        assert!(err.to_string().contains("contradictory"));
    }

    #[test]
    fn point_placements_lists_every_classification_once() {
        let profile = document_profile();
        let grid = SweepGrid {
            latencies_us: vec![1_000.0],
            bandwidths_bps: vec![1.25e6],
        };
        let result = sweep_profile(&profile, &constraints(), &grid, SweepMode::Warm).unwrap();
        let placements = point_placements(&result.points[0]);
        assert_eq!(placements.len(), 4); // ROOT + 3 classifications
        assert_eq!(placements[0].0, ClassificationId::ROOT);
    }
}
