//! Event-trace replay (§3.3).
//!
//! "The event logger creates detailed traces of all component-related
//! events during application execution. A colleague has used logs from the
//! event logger to drive detailed application simulations."
//!
//! This module is that downstream consumer: it reconstructs summarized
//! profiles from raw event traces ([`profile_from_events`]) — useful to
//! re-analyze an execution offline without re-running it — and replays a
//! trace against a hypothetical distribution to estimate its communication
//! cost *in event order* ([`replay_cost_us`]), which is how a simulation
//! would consume the log.

use crate::analysis::Distribution;
use crate::logger::{InfoLogger, LogEvent};
use crate::profile::IccProfile;
use coign_dcom::NetworkProfile;
use parking_lot::Mutex;
use std::sync::Arc;

/// Rebuilds the summarized ICC profile a [`crate::logger::ProfilingLogger`]
/// would have produced from a raw event trace.
pub fn profile_from_events(events: &[LogEvent]) -> IccProfile {
    let mut profile = IccProfile::new();
    for event in events {
        match event {
            LogEvent::InstanceCreated { clsid, class, .. } => {
                profile.record_instance(*class, *clsid);
            }
            LogEvent::InstanceReleased { .. } | LogEvent::InterfaceCreated { .. } => {}
            LogEvent::Call(r) => {
                if r.remotable {
                    profile.record_message(
                        r.caller_class,
                        r.callee_class,
                        r.iid,
                        r.method,
                        r.req_bytes,
                    );
                    profile.record_message(
                        r.callee_class,
                        r.caller_class,
                        r.iid,
                        r.method,
                        r.reply_bytes,
                    );
                } else {
                    profile.record_non_remotable(r.caller_class, r.callee_class);
                }
            }
        }
    }
    profile
}

/// Replays a trace against a distribution: the predicted network time of
/// every call whose endpoints land on different machines, in event order.
///
/// Returns `(total_us, crossing_calls)`.
pub fn replay_cost_us(
    events: &[LogEvent],
    distribution: &Distribution,
    network: &NetworkProfile,
) -> (f64, u64) {
    let mut total = 0.0;
    let mut crossing = 0;
    for event in events {
        let LogEvent::Call(r) = event else { continue };
        if !r.remotable {
            continue;
        }
        if distribution.machine_of(r.caller_class) == distribution.machine_of(r.callee_class) {
            continue;
        }
        total += network.predict_us(r.req_bytes) + network.predict_us(r.reply_bytes);
        crossing += 1;
    }
    (total, crossing)
}

/// Forwards events to several loggers at once — lets a single profiling run
/// feed both the summarizing profiling logger and the raw event logger.
pub struct TeeLogger {
    sinks: Mutex<Vec<Arc<dyn InfoLogger>>>,
}

impl TeeLogger {
    /// Creates a tee over the given sinks.
    pub fn new(sinks: Vec<Arc<dyn InfoLogger>>) -> Self {
        TeeLogger {
            sinks: Mutex::new(sinks),
        }
    }

    fn each(&self, f: impl Fn(&Arc<dyn InfoLogger>)) {
        for sink in self.sinks.lock().iter() {
            f(sink);
        }
    }
}

impl InfoLogger for TeeLogger {
    fn log_instance_created(
        &self,
        id: coign_com::InstanceId,
        clsid: coign_com::Clsid,
        class: crate::classifier::ClassificationId,
    ) {
        self.each(|s| s.log_instance_created(id, clsid, class));
    }

    fn log_instance_released(&self, id: coign_com::InstanceId) {
        self.each(|s| s.log_instance_released(id));
    }

    fn log_interface_created(&self, owner: coign_com::InstanceId, iid: coign_com::Iid) {
        self.each(|s| s.log_interface_created(owner, iid));
    }

    fn log_call(&self, record: &crate::logger::CallRecord) {
        self.each(|s| s.log_call(record));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classifier::ClassificationId;
    use crate::logger::{CallRecord, EventLogger, ProfilingLogger};
    use coign_com::{Clsid, Iid, InstanceId, MachineId};

    fn c(n: u32) -> ClassificationId {
        ClassificationId(n)
    }

    fn record(caller: u32, callee: u32, req: u64, reply: u64, remotable: bool) -> CallRecord {
        CallRecord {
            caller: Some(InstanceId(u64::from(caller))),
            caller_class: c(caller),
            callee: InstanceId(u64::from(callee)),
            callee_class: c(callee),
            iid: Iid::from_name("IX"),
            method: 0,
            req_bytes: req,
            reply_bytes: reply,
            remotable,
        }
    }

    #[test]
    fn reconstructed_profile_matches_online_summary() {
        // Feed the same stream to both loggers through the tee; the
        // offline reconstruction must equal the online summary.
        let profiling = Arc::new(ProfilingLogger::new());
        let events = Arc::new(EventLogger::new());
        let tee = TeeLogger::new(vec![profiling.clone(), events.clone()]);

        tee.log_instance_created(InstanceId(1), Clsid::from_name("A"), c(1));
        tee.log_instance_created(InstanceId(2), Clsid::from_name("B"), c(2));
        for i in 0..40u64 {
            tee.log_call(&record(1, 2, 100 + i, 5000, true));
        }
        tee.log_call(&record(1, 2, 0, 0, false));
        tee.log_instance_released(InstanceId(2));

        let online = profiling.snapshot_profile();
        let offline = profile_from_events(&events.take_events());
        assert_eq!(offline, online);
    }

    #[test]
    fn replay_costs_only_crossing_calls() {
        use coign_dcom::NetworkModel;
        let events = vec![
            LogEvent::Call(record(1, 2, 1000, 1000, true)),
            LogEvent::Call(record(1, 3, 1000, 1000, true)),
            LogEvent::Call(record(1, 2, 0, 0, false)),
        ];
        let dist = Distribution {
            placement: [
                (c(1), MachineId::CLIENT),
                (c(2), MachineId::SERVER),
                (c(3), MachineId::CLIENT),
            ]
            .into_iter()
            .collect(),
            predicted_comm_us: 0.0,
            network_name: "t".into(),
        };
        let net = NetworkProfile::exact(&NetworkModel::ethernet_10baset());
        let (total, crossing) = replay_cost_us(&events, &dist, &net);
        assert_eq!(crossing, 1);
        let expected = net.predict_us(1000) * 2.0;
        assert!((total - expected).abs() < 1e-9);
    }

    #[test]
    fn replay_agrees_with_prediction_model() {
        // The event-order replay and the summarized prediction model are
        // two routes to the same number.
        let events: Vec<LogEvent> = (0..25)
            .map(|i| LogEvent::Call(record(1, 2, 100 + i, 900, true)))
            .collect();
        let dist = Distribution {
            placement: [(c(1), MachineId::CLIENT), (c(2), MachineId::SERVER)]
                .into_iter()
                .collect(),
            predicted_comm_us: 0.0,
            network_name: "t".into(),
        };
        use coign_dcom::NetworkModel;
        let net = NetworkProfile::exact(&NetworkModel::ethernet_10baset());
        let (replayed, _) = replay_cost_us(&events, &dist, &net);
        let profile = profile_from_events(&events);
        let summarized = crate::predict::predict_comm_us(&profile, &dist, &net);
        assert!(
            (replayed - summarized).abs() < 1e-6,
            "replay {replayed} vs summary {summarized}"
        );
    }
}
