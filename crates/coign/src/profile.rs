//! Inter-component communication (ICC) profiles.
//!
//! During profiling, Coign summarizes communication *online* so that log
//! storage does not grow with execution time: message counts and byte totals
//! are accumulated per (caller classification, callee classification,
//! interface, method, size bucket), where successive size buckets grow
//! exponentially. Summarization preserves network independence — the profile
//! stores *what* was communicated, and only the later analysis stage converts
//! it into time for a particular network.

use crate::classifier::ClassificationId;
use coign_com::codec::{Decoder, Encoder};
use coign_com::{Clsid, ComResult, Iid};
use std::collections::{HashMap, HashSet};

/// Smallest message-size bucket boundary, in bytes.
pub const BUCKET_BASE: u64 = 64;

/// Number of distinct size buckets (bucket 31 holds ≥ 64·2³⁰ bytes).
pub const BUCKET_COUNT: u8 = 32;

/// Maps a message size to its exponential bucket index.
///
/// Bucket `k` holds sizes in `(64·2^(k−1), 64·2^k]`, with bucket 0 holding
/// everything up to 64 bytes.
///
/// # Examples
///
/// ```
/// use coign::profile::size_bucket;
/// assert_eq!(size_bucket(0), 0);
/// assert_eq!(size_bucket(64), 0);
/// assert_eq!(size_bucket(65), 1);
/// assert_eq!(size_bucket(128), 1);
/// assert_eq!(size_bucket(129), 2);
/// ```
pub fn size_bucket(bytes: u64) -> u8 {
    let mut bucket = 0u8;
    let mut bound = BUCKET_BASE;
    while bytes > bound && bucket < BUCKET_COUNT - 1 {
        bucket += 1;
        bound = bound.saturating_mul(2);
    }
    bucket
}

/// Inclusive upper bound of a bucket, in bytes.
pub fn bucket_bound(bucket: u8) -> u64 {
    BUCKET_BASE.saturating_mul(1u64 << bucket.min(BUCKET_COUNT - 1))
}

/// The bucket bounds as finite histogram bounds for the metrics registry
/// (the registry's `coign_icc_message_bytes` histogram mirrors these
/// paper buckets exactly).
pub fn icc_size_bounds() -> Vec<u64> {
    coign_obs::metrics::exponential_bounds(BUCKET_BASE, u32::from(BUCKET_COUNT))
}

/// Key of one summarized communication entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EdgeKey {
    /// Classification of the message sender.
    pub from: ClassificationId,
    /// Classification of the message receiver.
    pub to: ClassificationId,
    /// Interface carrying the message.
    pub iid: Iid,
    /// Method index within the interface.
    pub method: u32,
    /// Exponential size bucket of the message.
    pub bucket: u8,
}

/// Accumulated traffic for one [`EdgeKey`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EdgeStats {
    /// Number of messages.
    pub messages: u64,
    /// Total bytes across those messages.
    pub bytes: u64,
}

/// A summarized inter-component communication profile.
///
/// Profiles from multiple scenarios can be merged ([`IccProfile::merge`]),
/// matching the paper's combination of log files from several profiling
/// executions.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct IccProfile {
    /// Summarized traffic.
    pub edges: HashMap<EdgeKey, EdgeStats>,
    /// Instances observed per classification (across all merged runs).
    pub instances: HashMap<ClassificationId, u64>,
    /// Component class of each classification (for static API analysis).
    pub class_of: HashMap<ClassificationId, Clsid>,
    /// Classification pairs connected by at least one non-remotable
    /// interface call (must be co-located).
    pub non_remotable: HashSet<(ClassificationId, ClassificationId)>,
    /// Names of the scenarios merged into this profile.
    pub scenarios: Vec<String>,
}

impl IccProfile {
    /// Creates an empty profile.
    pub fn new() -> Self {
        IccProfile::default()
    }

    /// Records one message from `from` to `to`.
    pub fn record_message(
        &mut self,
        from: ClassificationId,
        to: ClassificationId,
        iid: Iid,
        method: u32,
        bytes: u64,
    ) {
        let key = EdgeKey {
            from,
            to,
            iid,
            method,
            bucket: size_bucket(bytes),
        };
        let stats = self.edges.entry(key).or_default();
        stats.messages += 1;
        stats.bytes += bytes;
    }

    /// Records that `a` and `b` communicate through a non-remotable
    /// interface (stored order-normalized).
    pub fn record_non_remotable(&mut self, a: ClassificationId, b: ClassificationId) {
        let pair = if a <= b { (a, b) } else { (b, a) };
        self.non_remotable.insert(pair);
    }

    /// Records an observed instance of a classification.
    pub fn record_instance(&mut self, class: ClassificationId, clsid: Clsid) {
        *self.instances.entry(class).or_insert(0) += 1;
        self.class_of.insert(class, clsid);
    }

    /// Merges another profile into this one (log-file combination).
    pub fn merge(&mut self, other: &IccProfile) {
        for (key, stats) in &other.edges {
            let entry = self.edges.entry(*key).or_default();
            entry.messages += stats.messages;
            entry.bytes += stats.bytes;
        }
        for (class, n) in &other.instances {
            *self.instances.entry(*class).or_insert(0) += n;
        }
        for (class, clsid) in &other.class_of {
            self.class_of.insert(*class, *clsid);
        }
        self.non_remotable
            .extend(other.non_remotable.iter().copied());
        self.scenarios.extend(other.scenarios.iter().cloned());
    }

    /// Rewrites every classification id through `map` (indexed by the old
    /// raw id, as returned by `InstanceClassifier::absorb`), producing the
    /// profile as it would look had the run classified against the
    /// absorbed table. Scenario names are preserved.
    ///
    /// Colliding edge keys accumulate and non-remotable pairs are
    /// re-normalized, so the result is well-formed even for non-injective
    /// maps.
    pub fn remap_classifications(&self, map: &[ClassificationId]) -> IccProfile {
        let at = |id: ClassificationId| -> ClassificationId {
            *map.get(id.0 as usize)
                .expect("profile references a classification missing from the translation")
        };
        let mut out = IccProfile::new();
        for (key, stats) in &self.edges {
            let key = EdgeKey {
                from: at(key.from),
                to: at(key.to),
                ..*key
            };
            let entry = out.edges.entry(key).or_default();
            entry.messages += stats.messages;
            entry.bytes += stats.bytes;
        }
        for (class, n) in &self.instances {
            *out.instances.entry(at(*class)).or_insert(0) += n;
        }
        for (class, clsid) in &self.class_of {
            out.class_of.insert(at(*class), *clsid);
        }
        for (a, b) in &self.non_remotable {
            let (a, b) = (at(*a), at(*b));
            out.non_remotable
                .insert(if a <= b { (a, b) } else { (b, a) });
        }
        out.scenarios = self.scenarios.clone();
        out
    }

    /// Total messages recorded.
    pub fn total_messages(&self) -> u64 {
        self.edges.values().map(|s| s.messages).sum()
    }

    /// Total bytes recorded.
    pub fn total_bytes(&self) -> u64 {
        self.edges.values().map(|s| s.bytes).sum()
    }

    /// Classifications that appear anywhere in the profile.
    pub fn classifications(&self) -> HashSet<ClassificationId> {
        let mut set: HashSet<ClassificationId> = self.instances.keys().copied().collect();
        for key in self.edges.keys() {
            set.insert(key.from);
            set.insert(key.to);
        }
        for (a, b) in &self.non_remotable {
            set.insert(*a);
            set.insert(*b);
        }
        set
    }

    /// Aggregated undirected traffic per classification pair
    /// (order-normalized): `(messages, bytes)`.
    pub fn pair_traffic(&self) -> HashMap<(ClassificationId, ClassificationId), EdgeStats> {
        let mut out: HashMap<(ClassificationId, ClassificationId), EdgeStats> = HashMap::new();
        for (key, stats) in &self.edges {
            let pair = if key.from <= key.to {
                (key.from, key.to)
            } else {
                (key.to, key.from)
            };
            let entry = out.entry(pair).or_default();
            entry.messages += stats.messages;
            entry.bytes += stats.bytes;
        }
        out
    }

    /// Serializes the profile.
    pub fn encode(&self) -> Vec<u8> {
        let mut e = Encoder::new();
        // Deterministic order for byte-stable records.
        let mut edges: Vec<(&EdgeKey, &EdgeStats)> = self.edges.iter().collect();
        edges.sort_by_key(|(k, _)| **k);
        e.put_seq(edges.len());
        for (key, stats) in edges {
            e.put_u32(key.from.0);
            e.put_u32(key.to.0);
            e.put_guid(key.iid.0);
            e.put_u32(key.method);
            e.put_u8(key.bucket);
            e.put_u64(stats.messages);
            e.put_u64(stats.bytes);
        }
        let mut instances: Vec<(&ClassificationId, &u64)> = self.instances.iter().collect();
        instances.sort();
        e.put_seq(instances.len());
        for (class, n) in instances {
            e.put_u32(class.0);
            e.put_u64(*n);
        }
        let mut classes: Vec<(&ClassificationId, &Clsid)> = self.class_of.iter().collect();
        classes.sort();
        e.put_seq(classes.len());
        for (class, clsid) in classes {
            e.put_u32(class.0);
            e.put_guid(clsid.0);
        }
        let mut pairs: Vec<&(ClassificationId, ClassificationId)> =
            self.non_remotable.iter().collect();
        pairs.sort();
        e.put_seq(pairs.len());
        for (a, b) in pairs {
            e.put_u32(a.0);
            e.put_u32(b.0);
        }
        e.put_seq(self.scenarios.len());
        for s in &self.scenarios {
            e.put_str(s);
        }
        e.finish()
    }

    /// Writes the profile to a log file — the paper's "at the end of a
    /// profiling execution, Coign writes the inter-component communication
    /// profiles to a file for later analysis".
    pub fn write_to_file(&self, path: &std::path::Path) -> ComResult<()> {
        std::fs::write(path, self.encode())
            .map_err(|e| coign_com::ComError::App(format!("cannot write {}: {e}", path.display())))
    }

    /// Reads a profile log file written by [`IccProfile::write_to_file`].
    pub fn read_from_file(path: &std::path::Path) -> ComResult<Self> {
        let bytes = std::fs::read(path).map_err(|e| {
            coign_com::ComError::App(format!("cannot read {}: {e}", path.display()))
        })?;
        Self::decode(&bytes)
    }

    /// Deserializes a profile.
    pub fn decode(bytes: &[u8]) -> ComResult<Self> {
        let mut d = Decoder::new(bytes);
        let mut profile = IccProfile::new();
        let n_edges = d.get_seq(45)?;
        for _ in 0..n_edges {
            let key = EdgeKey {
                from: ClassificationId(d.get_u32()?),
                to: ClassificationId(d.get_u32()?),
                iid: Iid(d.get_guid()?),
                method: d.get_u32()?,
                bucket: d.get_u8()?,
            };
            let stats = EdgeStats {
                messages: d.get_u64()?,
                bytes: d.get_u64()?,
            };
            profile.edges.insert(key, stats);
        }
        let n_instances = d.get_seq(12)?;
        for _ in 0..n_instances {
            let class = ClassificationId(d.get_u32()?);
            let n = d.get_u64()?;
            profile.instances.insert(class, n);
        }
        let n_classes = d.get_seq(20)?;
        for _ in 0..n_classes {
            let class = ClassificationId(d.get_u32()?);
            let clsid = Clsid(d.get_guid()?);
            profile.class_of.insert(class, clsid);
        }
        let n_pairs = d.get_seq(8)?;
        for _ in 0..n_pairs {
            let a = ClassificationId(d.get_u32()?);
            let b = ClassificationId(d.get_u32()?);
            profile.non_remotable.insert((a, b));
        }
        let n_scen = d.get_seq(4)?;
        for _ in 0..n_scen {
            profile.scenarios.push(d.get_str()?);
        }
        Ok(profile)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(n: u32) -> ClassificationId {
        ClassificationId(n)
    }

    #[test]
    fn bucket_boundaries_grow_exponentially() {
        assert_eq!(size_bucket(1), 0);
        assert_eq!(size_bucket(64), 0);
        assert_eq!(size_bucket(65), 1);
        assert_eq!(size_bucket(128), 1);
        assert_eq!(size_bucket(256), 2);
        assert_eq!(size_bucket(1024), 4);
        assert_eq!(size_bucket(u64::MAX), BUCKET_COUNT - 1);
        for k in 0..8u8 {
            assert_eq!(bucket_bound(k), 64 << k);
            // Every bucket bound maps into its own bucket.
            assert_eq!(size_bucket(bucket_bound(k)), k);
        }
    }

    #[test]
    fn summarization_bounds_storage() {
        // Many same-shaped messages collapse into a handful of entries —
        // the paper's claim that storage does not grow with execution time.
        let mut p = IccProfile::new();
        let iid = Iid::from_name("IStream");
        for i in 0..10_000u64 {
            p.record_message(c(1), c(2), iid, 0, 100 + (i % 3));
        }
        assert_eq!(p.edges.len(), 1); // all in bucket 1
        assert_eq!(p.total_messages(), 10_000);
    }

    #[test]
    fn distinct_methods_and_buckets_stay_separate() {
        let mut p = IccProfile::new();
        let iid = Iid::from_name("IStream");
        p.record_message(c(1), c(2), iid, 0, 32);
        p.record_message(c(1), c(2), iid, 1, 32);
        p.record_message(c(1), c(2), iid, 0, 100_000);
        assert_eq!(p.edges.len(), 3);
    }

    #[test]
    fn merge_accumulates() {
        let iid = Iid::from_name("IX");
        let mut a = IccProfile::new();
        a.record_message(c(1), c(2), iid, 0, 10);
        a.record_instance(c(1), Clsid::from_name("A"));
        a.scenarios.push("s1".into());
        let mut b = IccProfile::new();
        b.record_message(c(1), c(2), iid, 0, 12);
        b.record_instance(c(1), Clsid::from_name("A"));
        b.record_non_remotable(c(3), c(2));
        b.scenarios.push("s2".into());
        a.merge(&b);
        assert_eq!(a.total_messages(), 2);
        assert_eq!(a.total_bytes(), 22);
        assert_eq!(a.instances[&c(1)], 2);
        assert_eq!(a.class_of[&c(1)], Clsid::from_name("A"));
        assert!(a.non_remotable.contains(&(c(2), c(3))));
        assert_eq!(a.scenarios, vec!["s1".to_string(), "s2".to_string()]);
    }

    #[test]
    fn non_remotable_pairs_are_normalized() {
        let mut p = IccProfile::new();
        p.record_non_remotable(c(5), c(2));
        p.record_non_remotable(c(2), c(5));
        assert_eq!(p.non_remotable.len(), 1);
    }

    #[test]
    fn pair_traffic_merges_directions() {
        let iid = Iid::from_name("IX");
        let mut p = IccProfile::new();
        p.record_message(c(1), c(2), iid, 0, 10);
        p.record_message(c(2), c(1), iid, 0, 30);
        let pairs = p.pair_traffic();
        assert_eq!(pairs.len(), 1);
        let stats = pairs[&(c(1), c(2))];
        assert_eq!(stats.messages, 2);
        assert_eq!(stats.bytes, 40);
    }

    #[test]
    fn classifications_cover_all_sources() {
        let iid = Iid::from_name("IX");
        let mut p = IccProfile::new();
        p.record_message(c(1), c(2), iid, 0, 10);
        p.record_instance(c(3), Clsid::from_name("C3"));
        p.record_non_remotable(c(4), c(5));
        let all = p.classifications();
        for id in 1..=5 {
            assert!(all.contains(&c(id)), "missing {id}");
        }
    }

    #[test]
    fn encode_decode_roundtrip() {
        let iid = Iid::from_name("IX");
        let mut p = IccProfile::new();
        p.record_message(c(1), c(2), iid, 0, 10);
        p.record_message(c(2), c(1), iid, 3, 5000);
        p.record_instance(c(1), Clsid::from_name("A"));
        p.record_instance(c(1), Clsid::from_name("A"));
        p.record_non_remotable(c(1), c(2));
        p.scenarios.push("o_newdoc".into());
        let back = IccProfile::decode(&p.encode()).unwrap();
        assert_eq!(back, p);
    }

    #[test]
    fn decode_rejects_truncation() {
        let iid = Iid::from_name("IX");
        let mut p = IccProfile::new();
        p.record_message(c(1), c(2), iid, 0, 10);
        let mut bytes = p.encode();
        bytes.truncate(bytes.len() - 3);
        assert!(IccProfile::decode(&bytes).is_err());
    }

    #[test]
    fn log_files_roundtrip_and_merge() {
        let iid = Iid::from_name("IX");
        let mut a = IccProfile::new();
        a.record_message(c(1), c(2), iid, 0, 10);
        a.scenarios.push("s1".into());
        let mut b = IccProfile::new();
        b.record_message(c(2), c(3), iid, 1, 99);
        b.scenarios.push("s2".into());

        let dir = std::env::temp_dir();
        let pa = dir.join(format!("coign_log_a_{}.icc", std::process::id()));
        let pb = dir.join(format!("coign_log_b_{}.icc", std::process::id()));
        a.write_to_file(&pa).unwrap();
        b.write_to_file(&pb).unwrap();

        // "Log files from multiple profiling scenarios may be combined and
        // summarized during later analysis."
        let mut merged = IccProfile::read_from_file(&pa).unwrap();
        merged.merge(&IccProfile::read_from_file(&pb).unwrap());
        assert_eq!(merged.total_messages(), 2);
        assert_eq!(merged.scenarios, vec!["s1".to_string(), "s2".to_string()]);

        std::fs::remove_file(&pa).ok();
        std::fs::remove_file(&pb).ok();
        assert!(IccProfile::read_from_file(&pa).is_err());
    }

    #[test]
    fn remap_rewrites_every_id_and_renormalizes_pairs() {
        let iid = Iid::from_name("IX");
        let mut p = IccProfile::new();
        p.record_message(c(1), c(2), iid, 0, 10);
        p.record_instance(c(2), Clsid::from_name("B"));
        p.record_non_remotable(c(1), c(2));
        p.scenarios.push("s".into());
        // 1 → 5, 2 → 3: the (1,2) pair flips order under the map.
        let map = [
            ClassificationId::ROOT,
            ClassificationId(5),
            ClassificationId(3),
        ];
        let out = p.remap_classifications(&map);
        let key = EdgeKey {
            from: c(5),
            to: c(3),
            iid,
            method: 0,
            bucket: size_bucket(10),
        };
        assert_eq!(out.edges[&key].bytes, 10);
        assert_eq!(out.instances[&c(3)], 1);
        assert_eq!(out.class_of[&c(3)], Clsid::from_name("B"));
        assert!(out.non_remotable.contains(&(c(3), c(5))));
        assert_eq!(out.scenarios, vec!["s".to_string()]);
    }

    #[test]
    fn identity_remap_is_a_noop() {
        let iid = Iid::from_name("IX");
        let mut p = IccProfile::new();
        p.record_message(c(1), c(2), iid, 0, 10);
        p.record_message(c(2), c(1), iid, 1, 999);
        p.record_instance(c(1), Clsid::from_name("A"));
        p.record_non_remotable(c(2), c(1));
        let map: Vec<ClassificationId> = (0..3).map(ClassificationId).collect();
        assert_eq!(p.remap_classifications(&map), p);
    }

    /// Pins the on-disk profile encoding byte for byte: any codec change
    /// must be deliberate (it invalidates every stored `.cimg` record).
    #[test]
    fn encoding_bytes_are_pinned() {
        let mut p = IccProfile::new();
        p.record_message(c(1), c(2), Iid::from_name("IX"), 3, 100);
        p.record_instance(c(1), Clsid::from_name("A"));
        p.record_non_remotable(c(2), c(1));
        p.scenarios.push("pin".into());
        let hex: String = p.encode().iter().map(|b| format!("{b:02x}")).collect();
        assert_eq!(hex, PINNED_PROFILE_HEX);
    }

    const PINNED_PROFILE_HEX: &str = "010000000100000002000000bcd67a553073a05ae91babf1e294800803000000010100000000000000640000000000000001000000010000000100000000000000010000000100000004624a4e702b9178af8c1a4f69cb28d2010000000100000002000000010000000300000070696e";

    #[test]
    fn encoding_is_deterministic() {
        let iid = Iid::from_name("IX");
        let build = || {
            let mut p = IccProfile::new();
            for i in 0..50u32 {
                p.record_message(c(i % 7), c(i % 5), iid, i % 3, u64::from(i) * 17);
            }
            p.encode()
        };
        assert_eq!(build(), build());
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use coign_com::Clsid;
    use proptest::prelude::*;

    /// One random recorded message.
    #[derive(Debug, Clone)]
    struct Msg {
        from: u32,
        to: u32,
        method: u32,
        bytes: u64,
    }

    fn arb_msg() -> impl Strategy<Value = Msg> {
        (0u32..8, 0u32..8, 0u32..4, 0u64..100_000).prop_map(|(from, to, method, bytes)| Msg {
            from,
            to,
            method,
            bytes,
        })
    }

    fn build(messages: &[Msg]) -> IccProfile {
        let iid = Iid::from_name("IProp");
        let mut p = IccProfile::new();
        for m in messages {
            p.record_message(
                ClassificationId(m.from),
                ClassificationId(m.to),
                iid,
                m.method,
                m.bytes,
            );
            p.record_instance(ClassificationId(m.from), Clsid::from_name("A"));
        }
        p
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Totals are preserved by merging regardless of how the message
        /// stream is split into runs.
        #[test]
        fn merge_preserves_totals(
            messages in proptest::collection::vec(arb_msg(), 0..60),
            split in 0usize..60,
        ) {
            let split = split.min(messages.len());
            let whole = build(&messages);
            let mut merged = build(&messages[..split]);
            merged.merge(&build(&messages[split..]));
            prop_assert_eq!(whole.total_messages(), merged.total_messages());
            prop_assert_eq!(whole.total_bytes(), merged.total_bytes());
            prop_assert_eq!(whole.edges, merged.edges);
        }

        /// Merging is associative: folding scenario logs left-to-right or
        /// merging a pre-combined tail gives the same profile — the
        /// property that lets parallel profiling combine worker results
        /// in any grouping.
        #[test]
        fn merge_is_associative(
            a in proptest::collection::vec(arb_msg(), 0..40),
            b in proptest::collection::vec(arb_msg(), 0..40),
            c in proptest::collection::vec(arb_msg(), 0..40),
        ) {
            let (mut pa, pb, pc) = (build(&a), build(&b), build(&c));
            pa.scenarios.push("sa".into());
            let mut ab_then_c = pa.clone();
            ab_then_c.merge(&pb);
            ab_then_c.merge(&pc);
            let mut bc = pb.clone();
            bc.merge(&pc);
            let mut a_then_bc = pa.clone();
            a_then_bc.merge(&bc);
            prop_assert_eq!(&ab_then_c, &a_then_bc);
            prop_assert_eq!(ab_then_c.encode(), a_then_bc.encode());
        }

        /// Merging is commutative on the summarized traffic.
        #[test]
        fn merge_is_commutative(
            a in proptest::collection::vec(arb_msg(), 0..40),
            b in proptest::collection::vec(arb_msg(), 0..40),
        ) {
            let (pa, pb) = (build(&a), build(&b));
            let mut ab = pa.clone();
            ab.merge(&pb);
            let mut ba = pb.clone();
            ba.merge(&pa);
            prop_assert_eq!(ab.edges, ba.edges);
            prop_assert_eq!(ab.non_remotable, ba.non_remotable);
        }

        /// Encode/decode round-trips arbitrary profiles.
        #[test]
        fn codec_roundtrip(messages in proptest::collection::vec(arb_msg(), 0..60)) {
            let p = build(&messages);
            let back = IccProfile::decode(&p.encode()).unwrap();
            prop_assert_eq!(back, p);
        }

        /// Pair traffic is direction-insensitive: reversing every message
        /// leaves the undirected summary unchanged.
        #[test]
        fn pair_traffic_is_undirected(messages in proptest::collection::vec(arb_msg(), 0..60)) {
            let forward = build(&messages);
            let reversed: Vec<Msg> = messages
                .iter()
                .map(|m| Msg { from: m.to, to: m.from, ..m.clone() })
                .collect();
            let backward = build(&reversed);
            prop_assert_eq!(forward.pair_traffic(), backward.pair_traffic());
        }

        /// Buckets never lose messages: the summarized message count always
        /// equals the raw stream length.
        #[test]
        fn summarization_is_lossless_in_counts(
            messages in proptest::collection::vec(arb_msg(), 0..80),
        ) {
            let p = build(&messages);
            prop_assert_eq!(p.total_messages(), messages.len() as u64);
            let byte_sum: u64 = messages.iter().map(|m| m.bytes).sum();
            prop_assert_eq!(p.total_bytes(), byte_sum);
        }
    }
}
