//! The self-healing runtime: online re-partitioning and instance migration.
//!
//! Coign's analysis normally runs once, offline: profile → min-cut →
//! distribution → execute. This module closes the loop *during* execution.
//! When the transport's circuit breakers declare a machine dead (consecutive
//! [`coign_com::ComError::MachineDown`] failures tripping the machine-level
//! breaker), or when the [`DriftMonitor`] reports that observed usage has
//! drifted from the profiled scenarios, the [`RecoveryCoordinator`]:
//!
//! 1. **Re-solves the cut online** ([`RecoverySolver`]): the same flow
//!    network the analysis engine built, with per-node adjustable pin edges
//!    to the terminals. A dead machine pins every classification to the
//!    survivor side (pins that demanded the dead machine are redirected —
//!    the machine they asked for no longer exists). The solve warm-starts
//!    from the previous solution's flow snapshot via
//!    [`FlowNetwork::clamp_flows`] + [`min_cut_warm`], so recovery never
//!    pays for a cold max-flow run.
//! 2. **Swaps the live placement**: the component factory's routing table is
//!    replaced atomically, so instantiations after the recovery land on the
//!    new cut.
//! 3. **Migrates live instances** whose classification moved: each move
//!    deep-copies a nominal state snapshot through the DCOM marshaling value
//!    tree and charges the simulated clock for the transfer, then retargets
//!    the instance record. In-flight calls observe the move through an
//!    epoch counter and the exactly-once retry protocol in the distribution
//!    informer: a call that failed *before* executing is retried (possibly
//!    landing locally after the migration); a call whose reply delivery
//!    failed *after* executing completes with the reply it already holds —
//!    the side effect never runs twice.

use crate::classifier::{ClassificationId, InstanceClassifier};
use crate::constraints::Constraint;
use crate::drift::DriftMonitor;
use crate::factory::ComponentFactory;
use crate::icc::IccGraph;
use crate::multiway::ReplicaRouter;
use coign_com::{ComError, ComResult, ComRuntime, MachineId, Value};
use coign_dcom::{value_size, BreakerPolicy, HealthMonitor};
use coign_flow::{min_cut_warm, FlowNetwork, INFINITE};
use coign_obs::{Obs, TraceArg};
use parking_lot::Mutex;
use std::collections::{BTreeSet, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Fixed cost of relocating one live instance, microseconds (the remote
/// re-instantiation round-trip, minus the state payload).
pub const MIGRATION_CALL_US: u64 = 25;

/// Cost per kilobyte of marshaled instance state moved, microseconds.
pub const MIGRATION_PER_KB_US: u64 = 2;

/// Size of the nominal per-instance state blob, bytes.
pub const MIGRATION_STATE_BLOB_BYTES: u64 = 4096;

/// The nominal state snapshot deep-copied when an instance migrates: a
/// small header plus a data blob, sized through the same value tree the
/// DCOM marshaler uses for call parameters.
fn migration_state_tree() -> Value {
    Value::Struct(vec![
        Value::I8(0),
        Value::Str(String::from("state")),
        Value::Blob(MIGRATION_STATE_BLOB_BYTES),
    ])
}

/// Tuning knobs for the self-healing runtime.
#[derive(Debug, Clone, Default)]
pub struct RecoveryConfig {
    /// Circuit-breaker policy installed on the transport's health monitor.
    pub breaker: BreakerPolicy,
    /// Usage-drift threshold that triggers a mid-run re-solve, or `None`
    /// to leave drift-triggered recovery off (machine-death recovery is
    /// always on).
    pub drift_threshold: Option<f64>,
    /// Replica routing table for the placement (home + legal copies per
    /// classification), or `None` for the classic one-authoritative-copy
    /// model. With replicas installed, a machine death whose every
    /// resident classification still has a surviving copy recovers by
    /// pure failover — no solve at all.
    pub replicas: Option<ReplicaRouter>,
}

/// What tripped a recovery.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecoveryTrigger {
    /// The machine-level circuit breaker declared a machine dead.
    MachineDeath,
    /// The drift monitor's latched threshold fired mid-run.
    Drift,
}

impl RecoveryTrigger {
    /// Stable name used in traces and summaries.
    pub fn name(self) -> &'static str {
        match self {
            RecoveryTrigger::MachineDeath => "machine_death",
            RecoveryTrigger::Drift => "drift",
        }
    }
}

/// One completed recovery: trigger, scope, and effect.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecoveryEvent {
    /// Simulated time the recovery completed, microseconds.
    pub at_us: u64,
    /// What tripped it.
    pub trigger: RecoveryTrigger,
    /// The machine declared dead, if the trigger was a machine death (or a
    /// drift re-solve while a machine was already dead).
    pub dead_machine: Option<MachineId>,
    /// Live instances relocated to realize the new cut.
    pub migrations: u64,
    /// Live instances re-pointed to a surviving replica (no state moved —
    /// the copy was already there).
    pub failovers: u64,
    /// True when the recovery resolved by replica failover alone, without
    /// any solve (neither warm nor cold).
    pub via_replicas: bool,
    /// Placement epoch after this recovery (starts at 0, +1 per recovery).
    pub epoch: u64,
}

/// The online re-partitioning solver: the analysis engine's flow network
/// kept alive across solves, with adjustable pin edges so constraints can
/// be rewritten per solve without rebuilding the graph.
///
/// Edge layout (insertion order, hence pair index order): communication
/// edges in `weights_us` (BTreeMap) order, sorted non-remotable pairs at
/// [`INFINITE`], colocation constraints at [`INFINITE`], then one
/// `(source, node)` and one `(node, sink)` pin pair per node at capacity 0.
/// Per solve the pin capacities are set (0 or [`INFINITE`]), the previous
/// flow snapshot is repaired against the new capacities with
/// [`FlowNetwork::clamp_flows`], and [`min_cut_warm`] finishes the run.
pub struct RecoverySolver {
    flow: FlowNetwork,
    source: usize,
    sink: usize,
    nodes: Vec<ClassificationId>,
    /// Per node: pair indices of its (pin-to-source, pin-to-sink) edges.
    pin_pairs: Vec<(usize, usize)>,
    /// Baseline pins from the constraint set (absolute pins are modeled
    /// here, not in the static part of the network).
    base_client: Vec<bool>,
    base_server: Vec<bool>,
    prev_flows: Option<Vec<u64>>,
    warm_solves: u64,
    cold_solves: u64,
}

impl RecoverySolver {
    /// Builds the solver's network from the concrete ICC graph and the
    /// application's constraint set.
    pub fn new(graph: &IccGraph, constraints: &[Constraint]) -> Self {
        let n = graph.node_count();
        let (source, sink) = (n, n + 1);
        let mut flow = FlowNetwork::new(n + 2);
        let mut pairs = 0usize;
        for ((a, b), weight) in &graph.weights_us {
            flow.add_undirected(*a, *b, IccGraph::capacity_of(*weight));
            pairs += 1;
        }
        let mut non_remotable: Vec<_> = graph.non_remotable.iter().copied().collect();
        non_remotable.sort_unstable();
        for (a, b) in non_remotable {
            flow.add_undirected(a, b, INFINITE);
            pairs += 1;
        }
        let mut base_client = vec![false; n];
        let mut base_server = vec![false; n];
        for constraint in constraints {
            match constraint {
                Constraint::PinClient(class) => {
                    if let Some(&node) = graph.index.get(class) {
                        base_client[node] = true;
                    }
                }
                Constraint::PinServer(class) => {
                    if let Some(&node) = graph.index.get(class) {
                        base_server[node] = true;
                    }
                }
                Constraint::Colocate(a, b) => {
                    if let (Some(&na), Some(&nb)) = (graph.index.get(a), graph.index.get(b)) {
                        if na != nb {
                            flow.add_undirected(na, nb, INFINITE);
                            pairs += 1;
                        }
                    }
                }
            }
        }
        let mut pin_pairs = Vec::with_capacity(n);
        for node in 0..n {
            let client = pairs;
            flow.add_undirected(source, node, 0);
            pairs += 1;
            let server = pairs;
            flow.add_undirected(node, sink, 0);
            pairs += 1;
            pin_pairs.push((client, server));
        }
        RecoverySolver {
            flow,
            source,
            sink,
            nodes: graph.nodes.clone(),
            pin_pairs,
            base_client,
            base_server,
            prev_flows: None,
            warm_solves: 0,
            cold_solves: 0,
        }
    }

    /// Solves the cut. With `dead: None` the baseline constraint pins
    /// apply; with a dead machine every node is pinned to the survivor
    /// side (pins that demanded the dead machine are redirected). The
    /// first solve is cold; every later one warm-starts from the previous
    /// flow snapshot.
    pub fn solve(
        &mut self,
        dead: Option<MachineId>,
    ) -> ComResult<HashMap<ClassificationId, MachineId>> {
        self.flow.reset();
        for (node, &(client_pair, server_pair)) in self.pin_pairs.iter().enumerate() {
            let (client, server) = match dead {
                None => (self.base_client[node], self.base_server[node]),
                Some(machine) => {
                    let survivor_is_client = machine != MachineId::CLIENT;
                    (survivor_is_client, !survivor_is_client)
                }
            };
            self.flow
                .set_undirected_capacity(client_pair, if client { INFINITE } else { 0 });
            self.flow
                .set_undirected_capacity(server_pair, if server { INFINITE } else { 0 });
        }
        let cut = match self.prev_flows.take() {
            Some(mut flows) => {
                self.flow.clamp_flows(self.source, self.sink, &mut flows);
                self.warm_solves += 1;
                min_cut_warm(&mut self.flow, self.source, self.sink, Some(&flows))
            }
            None => {
                self.cold_solves += 1;
                min_cut_warm(&mut self.flow, self.source, self.sink, None)
            }
        };
        if cut.cut_value >= INFINITE {
            return Err(ComError::App(
                "re-partitioning constraints are contradictory: the recovery cut severs \
                 an infinite-capacity edge"
                    .to_string(),
            ));
        }
        self.prev_flows = Some(self.flow.snapshot_flows());
        let mut placement = HashMap::with_capacity(self.nodes.len());
        for (node, class) in self.nodes.iter().enumerate() {
            let machine = if cut.source_side[node] {
                MachineId::CLIENT
            } else {
                MachineId::SERVER
            };
            placement.insert(*class, machine);
        }
        Ok(placement)
    }

    /// Warm-started solves performed so far.
    pub fn warm_solves(&self) -> u64 {
        self.warm_solves
    }

    /// Cold solves performed so far (the base solve; recovery re-solves
    /// must never add to this).
    pub fn cold_solves(&self) -> u64 {
        self.cold_solves
    }
}

/// Checks a placement against the constraint set, the non-remotable pairs,
/// and (optionally) a dead machine. With a dead machine, absolute pins to
/// it are treated as redirected to the survivor, and nothing may remain
/// placed on it. Classifications absent from the placement are skipped.
pub fn validate_placement(
    placement: &HashMap<ClassificationId, MachineId>,
    constraints: &[Constraint],
    non_remotable: &[(ClassificationId, ClassificationId)],
    dead: Option<MachineId>,
) -> Result<(), String> {
    let survivor = dead.map(|m| {
        if m == MachineId::CLIENT {
            MachineId::SERVER
        } else {
            MachineId::CLIENT
        }
    });
    if let Some(machine) = dead {
        let mut entries: Vec<_> = placement.iter().collect();
        entries.sort();
        if let Some((class, _)) = entries.iter().find(|(_, &m)| m == machine) {
            return Err(format!(
                "classification {class} is placed on dead machine {machine}"
            ));
        }
    }
    let pin_target = |want: MachineId| {
        if dead == Some(want) {
            survivor.expect("survivor exists when a machine is dead")
        } else {
            want
        }
    };
    for constraint in constraints {
        match constraint {
            Constraint::PinClient(class) => {
                if let Some(&machine) = placement.get(class) {
                    let want = pin_target(MachineId::CLIENT);
                    if machine != want {
                        return Err(format!(
                            "classification {class} pinned to client but placed on {machine}"
                        ));
                    }
                }
            }
            Constraint::PinServer(class) => {
                if let Some(&machine) = placement.get(class) {
                    let want = pin_target(MachineId::SERVER);
                    if machine != want {
                        return Err(format!(
                            "classification {class} pinned to server but placed on {machine}"
                        ));
                    }
                }
            }
            Constraint::Colocate(a, b) => {
                if let (Some(&ma), Some(&mb)) = (placement.get(a), placement.get(b)) {
                    if ma != mb {
                        return Err(format!(
                            "colocated classifications {a} and {b} split across {ma} and {mb}"
                        ));
                    }
                }
            }
        }
    }
    for &(a, b) in non_remotable {
        if let (Some(&ma), Some(&mb)) = (placement.get(&a), placement.get(&b)) {
            if ma != mb {
                return Err(format!(
                    "non-remotable pair {a}/{b} split across {ma} and {mb}"
                ));
            }
        }
    }
    Ok(())
}

/// Orchestrates online recovery: consumes machine-death declarations from
/// the transport's [`HealthMonitor`], drift fires from the
/// [`DriftMonitor`], re-solves the cut, swaps the factory's placement, and
/// migrates live instances.
pub struct RecoveryCoordinator {
    solver: Mutex<RecoverySolver>,
    factory: Arc<ComponentFactory>,
    classifier: Arc<InstanceClassifier>,
    health: Arc<HealthMonitor>,
    drift: Option<(Arc<DriftMonitor>, f64)>,
    constraints: Vec<Constraint>,
    non_remotable: Vec<(ClassificationId, ClassificationId)>,
    epoch: AtomicU64,
    events: Mutex<Vec<RecoveryEvent>>,
    dead: Mutex<BTreeSet<MachineId>>,
    replicas: Mutex<Option<ReplicaRouter>>,
    replica_failovers: AtomicU64,
    migrations: AtomicU64,
    migrated_state_bytes: AtomicU64,
    replayed_completions: AtomicU64,
    redelivered_calls: AtomicU64,
    double_executions: AtomicU64,
    obs: Option<Obs>,
}

impl RecoveryCoordinator {
    /// Creates the coordinator and performs the base solve (cold), so that
    /// every recovery re-solve warm-starts from a real flow snapshot.
    pub fn new(
        graph: &IccGraph,
        constraints: &[Constraint],
        factory: Arc<ComponentFactory>,
        classifier: Arc<InstanceClassifier>,
        health: Arc<HealthMonitor>,
        drift: Option<(Arc<DriftMonitor>, f64)>,
        obs: Option<Obs>,
    ) -> ComResult<Arc<RecoveryCoordinator>> {
        let mut solver = RecoverySolver::new(graph, constraints);
        solver.solve(None)?;
        let mut non_remotable: Vec<_> = graph
            .non_remotable
            .iter()
            .map(|&(a, b)| (graph.nodes[a], graph.nodes[b]))
            .collect();
        non_remotable.sort_unstable();
        Ok(Arc::new(RecoveryCoordinator {
            solver: Mutex::new(solver),
            factory,
            classifier,
            health,
            drift,
            constraints: constraints.to_vec(),
            non_remotable,
            epoch: AtomicU64::new(0),
            events: Mutex::new(Vec::new()),
            dead: Mutex::new(BTreeSet::new()),
            replicas: Mutex::new(None),
            replica_failovers: AtomicU64::new(0),
            migrations: AtomicU64::new(0),
            migrated_state_bytes: AtomicU64::new(0),
            replayed_completions: AtomicU64::new(0),
            redelivered_calls: AtomicU64::new(0),
            double_executions: AtomicU64::new(0),
            obs,
        }))
    }

    /// The transport's health monitor this coordinator drains.
    pub fn health(&self) -> &Arc<HealthMonitor> {
        &self.health
    }

    /// Current placement epoch: 0 until the first recovery, +1 per
    /// recovery. An in-flight call that observes an epoch bump knows its
    /// routing decision may be stale and re-reads the instance's machine.
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::SeqCst)
    }

    /// Completed recoveries, in order.
    pub fn events(&self) -> Vec<RecoveryEvent> {
        self.events.lock().clone()
    }

    /// Number of completed recoveries.
    pub fn recovery_count(&self) -> u64 {
        self.events.lock().len() as u64
    }

    /// Machines currently declared dead.
    pub fn dead_machines(&self) -> Vec<MachineId> {
        self.dead.lock().iter().copied().collect()
    }

    /// Installs a replica routing table (home + legal copies per
    /// classification), making machine-death recovery replica-aware: a
    /// death fully covered by surviving copies recovers by pure failover,
    /// and re-solves re-base the surviving replicas on the new placement.
    pub fn install_replicas(&self, router: ReplicaRouter) {
        *self.replicas.lock() = Some(router);
    }

    /// Snapshot of the current replica routing table, if one is installed.
    pub fn replica_router(&self) -> Option<ReplicaRouter> {
        self.replicas.lock().clone()
    }

    /// Live instances re-pointed to surviving replicas across all
    /// recoveries (failover moves no state — the copy already existed).
    pub fn replica_failovers(&self) -> u64 {
        self.replica_failovers.load(Ordering::Relaxed)
    }

    /// Live instances migrated across all recoveries.
    pub fn migration_count(&self) -> u64 {
        self.migrations.load(Ordering::Relaxed)
    }

    /// Marshaled state bytes moved by migrations.
    pub fn migrated_state_bytes(&self) -> u64 {
        self.migrated_state_bytes.load(Ordering::Relaxed)
    }

    /// Calls completed from an already-executed remote attempt after a
    /// recovery (the reply was replayed, the side effect did not re-run).
    pub fn replayed_completions(&self) -> u64 {
        self.replayed_completions.load(Ordering::Relaxed)
    }

    /// Reply re-delivery attempts for already-executed calls that stayed
    /// remote after a recovery.
    pub fn redelivered_calls(&self) -> u64 {
        self.redelivered_calls.load(Ordering::Relaxed)
    }

    /// Defensive ledger: calls whose side effect ran more than once. The
    /// retry protocol makes this structurally impossible; the chaos
    /// harness asserts it stays zero.
    pub fn double_executions(&self) -> u64 {
        self.double_executions.load(Ordering::Relaxed)
    }

    /// Warm-started re-solves performed.
    pub fn warm_solves(&self) -> u64 {
        self.solver.lock().warm_solves()
    }

    /// Cold solves performed (the base solve only).
    pub fn cold_solves(&self) -> u64 {
        self.solver.lock().cold_solves()
    }

    /// Upper bound on delivery attempts per logical call in the
    /// distribution informer's retry loop: enough preflight failures to
    /// trip the machine breaker, plus the post-recovery attempt.
    pub fn max_call_attempts(&self) -> u32 {
        self.health.policy().failure_threshold + 2
    }

    pub(crate) fn note_replayed_completion(&self) {
        self.replayed_completions.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn note_redelivered(&self) {
        self.redelivered_calls.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a double execution in the defensive ledger. The retry
    /// protocol never calls this on any reachable path; it exists so a
    /// future protocol change that breaks exactly-once fails the chaos
    /// invariants instead of passing silently.
    pub fn note_double_execution(&self) {
        self.double_executions.fetch_add(1, Ordering::Relaxed);
    }

    fn current_dead(&self) -> Option<MachineId> {
        self.dead.lock().iter().next().copied()
    }

    /// Validates the factory's *current* placement against the constraint
    /// set and the dead-machine set.
    pub fn validate(&self) -> Result<(), String> {
        validate_placement(
            &self.factory.placement_snapshot(),
            &self.constraints,
            &self.non_remotable,
            self.current_dead(),
        )
    }

    /// Drains machine-death declarations queued on the health monitor and
    /// runs one recovery per newly-dead machine. Both entry points —
    /// [`RecoveryCoordinator::on_call_failure`] and
    /// [`RecoveryCoordinator::poll_drift`] — funnel through here so that
    /// breaker declarations recover through exactly one code path no
    /// matter which event observes them first.
    fn drain_machine_deaths(&self, rt: &ComRuntime) -> bool {
        let mut recovered = false;
        for machine in self.health.drain_opened_machines() {
            if self.dead.lock().insert(machine) {
                recovered |= self.recover(rt, RecoveryTrigger::MachineDeath, Some(machine));
            }
        }
        recovered
    }

    /// Reacts to a failed remote call. Returns `true` when the caller
    /// should retry: either a recovery just completed (the callee may have
    /// migrated next to the caller), or the failure is a machine-down
    /// error still feeding the breaker toward a trip.
    pub fn on_call_failure(&self, rt: &ComRuntime, error: &ComError) -> bool {
        if self.drain_machine_deaths(rt) {
            return true;
        }
        matches!(error, ComError::MachineDown(_)) && self.dead.lock().is_empty()
    }

    /// Polls the drift monitor after a successful call; a latched fire
    /// triggers a warm re-solve and resets the observation window for the
    /// new placement. Returns `true` when a recovery ran.
    ///
    /// Pinned ordering: when a drift fire and a pending breaker
    /// declaration land on the same tick, the machine death recovers
    /// *first*, so the drift re-solve sees the dead machine and never
    /// re-places work onto it. (Without the drain, `recover` would run
    /// with `dead: None` while the health monitor already knew the
    /// machine was gone.)
    pub fn poll_drift(&self, rt: &ComRuntime) -> bool {
        let Some((monitor, threshold)) = &self.drift else {
            return false;
        };
        if !monitor.poll_reprofile(*threshold) {
            return false;
        }
        let mut recovered = self.drain_machine_deaths(rt);
        recovered |= self.recover(rt, RecoveryTrigger::Drift, None);
        monitor.reset();
        recovered
    }

    /// One full recovery. A machine death whose every resident
    /// classification still has a surviving replica resolves by pure
    /// failover — no solve at all, the cheap-local-reaction path. Every
    /// other case takes the classic path: warm re-solve, placement
    /// validation, factory swap, instance migration. Both paths bump the
    /// epoch and emit an event; a re-solve re-bases surviving replicas on
    /// the new placement so later deaths keep failing over.
    fn recover(&self, rt: &ComRuntime, trigger: RecoveryTrigger, dead: Option<MachineId>) -> bool {
        let dead = dead.or_else(|| self.current_dead());
        if trigger == RecoveryTrigger::MachineDeath {
            if let Some(machine) = dead {
                let mut replicas = self.replicas.lock();
                if let Some(router) = replicas.as_mut() {
                    let failover = router.drop_machine(machine);
                    if failover.is_complete() {
                        drop(replicas);
                        return self.fail_over(rt, machine, &failover);
                    }
                    // Some classification lost its last copy: fall through
                    // to the re-solve. The router already dropped the dead
                    // machine's copies and is re-based below.
                }
            }
        }
        let placement = match self.solver.lock().solve(dead) {
            Ok(placement) => placement,
            Err(_) => return false,
        };
        if validate_placement(&placement, &self.constraints, &self.non_remotable, dead).is_err() {
            return false;
        }
        if let Some(machine) = dead {
            let survivor = if machine == MachineId::CLIENT {
                MachineId::SERVER
            } else {
                MachineId::CLIENT
            };
            self.factory.retarget_pins(machine, survivor);
        }
        self.factory.swap_placement(placement.clone());
        let mut migrations = 0u64;
        for instance in rt.instances_snapshot() {
            let class = self
                .classifier
                .classification_of(instance.id)
                .unwrap_or(ClassificationId::ROOT);
            let target = placement
                .get(&class)
                .copied()
                .unwrap_or_else(|| self.factory.placement_for(class, instance.clsid));
            if instance.machine() == target {
                continue;
            }
            // Relocation is modeled as the paper would do it over DCOM:
            // marshal the instance's state, ship it, unmarshal on the
            // target — so the move costs simulated time proportional to
            // the state's wire size.
            let bytes =
                value_size(&migration_state_tree()).expect("migration state tree is remotable");
            rt.clock()
                .advance_us(MIGRATION_CALL_US + (bytes / 1024) * MIGRATION_PER_KB_US);
            instance.set_machine(target);
            self.migrated_state_bytes
                .fetch_add(bytes, Ordering::Relaxed);
            migrations += 1;
        }
        self.migrations.fetch_add(migrations, Ordering::Relaxed);
        if let Some(router) = self.replicas.lock().as_mut() {
            let dead_set = self.dead.lock().clone();
            router.rebase(&placement, &dead_set);
        }
        let epoch = self.epoch.fetch_add(1, Ordering::SeqCst) + 1;
        let event = RecoveryEvent {
            at_us: rt.clock().now_us(),
            trigger,
            dead_machine: dead,
            migrations,
            failovers: 0,
            via_replicas: false,
            epoch,
        };
        self.events.lock().push(event);
        if let Some(obs) = &self.obs {
            let mut args = vec![
                ("trigger", TraceArg::Static(trigger.name())),
                ("migrations", TraceArg::U64(migrations)),
                ("epoch", TraceArg::U64(epoch)),
            ];
            if let Some(machine) = dead {
                args.push(("dead_machine", TraceArg::U64(u64::from(machine.0))));
            }
            obs.tracer.instant_at("recovery", event.at_us, args);
            obs.recorder.record(
                event.at_us,
                "recovery",
                format!(
                    "trigger={} dead={} migrations={migrations} epoch={epoch}",
                    trigger.name(),
                    dead.map_or_else(|| "-".to_string(), |m| m.to_string()),
                ),
            );
            obs.recorder.dump("Recovery");
        }
        true
    }

    /// The no-solve recovery path: every classification homed on the dead
    /// machine has a surviving replica, so the placement and the live
    /// instances re-point to those copies. No flow network is touched and
    /// no state moves — the copies already hold it — which is why the
    /// failover is O(1) in the graph size.
    fn fail_over(
        &self,
        rt: &ComRuntime,
        machine: MachineId,
        failover: &crate::multiway::ReplicaFailover,
    ) -> bool {
        let mut placement = self.factory.placement_snapshot();
        for (class, new_home) in &failover.rehomed {
            placement.insert(*class, *new_home);
        }
        if validate_placement(
            &placement,
            &self.constraints,
            &self.non_remotable,
            Some(machine),
        )
        .is_err()
        {
            return false;
        }
        let survivor = if machine == MachineId::CLIENT {
            MachineId::SERVER
        } else {
            MachineId::CLIENT
        };
        self.factory.retarget_pins(machine, survivor);
        self.factory.swap_placement(placement.clone());
        let mut failovers = 0u64;
        for instance in rt.instances_snapshot() {
            let class = self
                .classifier
                .classification_of(instance.id)
                .unwrap_or(ClassificationId::ROOT);
            let target = placement
                .get(&class)
                .copied()
                .unwrap_or_else(|| self.factory.placement_for(class, instance.clsid));
            if instance.machine() == target {
                continue;
            }
            // The surviving replica already holds the state on the target
            // machine: the instance record re-points without marshaling,
            // wire time, or clock charge.
            instance.set_machine(target);
            failovers += 1;
        }
        self.replica_failovers
            .fetch_add(failovers, Ordering::Relaxed);
        let epoch = self.epoch.fetch_add(1, Ordering::SeqCst) + 1;
        let event = RecoveryEvent {
            at_us: rt.clock().now_us(),
            trigger: RecoveryTrigger::MachineDeath,
            dead_machine: Some(machine),
            migrations: 0,
            failovers,
            via_replicas: true,
            epoch,
        };
        self.events.lock().push(event);
        if let Some(obs) = &self.obs {
            obs.tracer.instant_at(
                "failover",
                event.at_us,
                vec![
                    ("dead_machine", TraceArg::U64(u64::from(machine.0))),
                    ("failovers", TraceArg::U64(failovers)),
                    ("epoch", TraceArg::U64(epoch)),
                ],
            );
            obs.recorder.record(
                event.at_us,
                "failover",
                format!("dead={machine} failovers={failovers} epoch={epoch}"),
            );
            obs.recorder.dump("Recovery");
        }
        true
    }

    /// Adds the coordinator's counters to a metrics registry.
    pub fn record_metrics(&self, registry: &coign_obs::Registry) {
        registry
            .counter("coign_recovery_events_total")
            .add(self.recovery_count());
        registry
            .counter("coign_recovery_warm_solves_total")
            .add(self.warm_solves());
        registry
            .counter("coign_recovery_cold_solves_total")
            .add(self.cold_solves());
        registry
            .counter("coign_recovery_migrations_total")
            .add(self.migration_count());
        registry
            .counter("coign_recovery_replica_failovers_total")
            .add(self.replica_failovers());
        registry
            .counter("coign_recovery_migrated_state_bytes")
            .add(self.migrated_state_bytes());
        registry
            .counter("coign_recovery_replayed_completions_total")
            .add(self.replayed_completions());
        registry
            .counter("coign_recovery_redelivered_calls_total")
            .add(self.redelivered_calls());
        registry
            .counter("coign_recovery_double_executions_total")
            .add(self.double_executions());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::IccProfile;
    use coign_com::{Clsid, Iid};
    use coign_dcom::{NetworkModel, NetworkProfile};

    fn c(n: u32) -> ClassificationId {
        ClassificationId(n)
    }

    /// Root ↔ viewer: light. viewer ↔ reader: light. reader ↔ storage:
    /// heavy. Storage pinned to the server.
    fn document_graph() -> (IccGraph, Vec<Constraint>) {
        let iid = Iid::from_name("IX");
        let mut p = IccProfile::new();
        for (id, name) in [(1, "Viewer"), (2, "Reader"), (3, "Storage")] {
            p.record_instance(c(id), Clsid::from_name(name));
        }
        for _ in 0..50 {
            p.record_message(ClassificationId::ROOT, c(1), iid, 0, 100);
        }
        p.record_message(c(1), c(2), iid, 0, 2_000);
        for _ in 0..200 {
            p.record_message(c(2), c(3), iid, 0, 60_000);
        }
        let network = NetworkProfile::exact(&NetworkModel::ethernet_10baset());
        let constraints = vec![
            Constraint::PinClient(ClassificationId::ROOT),
            Constraint::PinServer(c(3)),
        ];
        (IccGraph::build(&p, &network), constraints)
    }

    #[test]
    fn base_solve_matches_the_analysis_engine() {
        let (graph, constraints) = document_graph();
        let mut solver = RecoverySolver::new(&graph, &constraints);
        let placement = solver.solve(None).unwrap();
        assert_eq!(placement[&c(3)], MachineId::SERVER);
        assert_eq!(placement[&c(2)], MachineId::SERVER);
        assert_eq!(placement[&c(1)], MachineId::CLIENT);
        assert_eq!(placement[&ClassificationId::ROOT], MachineId::CLIENT);
        assert_eq!(solver.cold_solves(), 1);
        assert_eq!(solver.warm_solves(), 0);
    }

    #[test]
    fn dead_server_solve_is_warm_and_pins_everything_to_the_client() {
        let (graph, constraints) = document_graph();
        let mut solver = RecoverySolver::new(&graph, &constraints);
        solver.solve(None).unwrap();
        let placement = solver.solve(Some(MachineId::SERVER)).unwrap();
        for (&class, &machine) in &placement {
            assert_eq!(machine, MachineId::CLIENT, "{class} left on dead server");
        }
        assert_eq!(solver.cold_solves(), 1, "recovery re-solve must be warm");
        assert_eq!(solver.warm_solves(), 1);
        validate_placement(&placement, &constraints, &[], Some(MachineId::SERVER)).unwrap();
    }

    #[test]
    fn repeated_solves_alternate_without_going_cold() {
        let (graph, constraints) = document_graph();
        let mut solver = RecoverySolver::new(&graph, &constraints);
        let base = solver.solve(None).unwrap();
        solver.solve(Some(MachineId::SERVER)).unwrap();
        let back = solver.solve(None).unwrap();
        assert_eq!(base, back, "re-solving the base constraints must converge");
        assert_eq!(solver.cold_solves(), 1);
        assert_eq!(solver.warm_solves(), 2);
    }

    #[test]
    fn validate_placement_catches_violations() {
        let (_, constraints) = document_graph();
        let mut placement = HashMap::new();
        placement.insert(ClassificationId::ROOT, MachineId::CLIENT);
        placement.insert(c(3), MachineId::CLIENT); // violates PinServer
        assert!(validate_placement(&placement, &constraints, &[], None).is_err());
        placement.insert(c(3), MachineId::SERVER);
        validate_placement(&placement, &constraints, &[], None).unwrap();
        // Dead server: the redirected pin makes client placement legal...
        placement.insert(c(3), MachineId::CLIENT);
        validate_placement(&placement, &constraints, &[], Some(MachineId::SERVER)).unwrap();
        // ...but anything still on the dead machine is not.
        placement.insert(c(3), MachineId::SERVER);
        assert!(
            validate_placement(&placement, &constraints, &[], Some(MachineId::SERVER)).is_err()
        );
        // Split non-remotable pairs are caught.
        placement.insert(c(3), MachineId::SERVER);
        assert!(validate_placement(
            &placement,
            &constraints,
            &[(ClassificationId::ROOT, c(3))],
            None
        )
        .is_err());
    }

    #[test]
    fn migration_state_tree_is_remotable_and_sized() {
        let bytes = value_size(&migration_state_tree()).unwrap();
        assert!(bytes > MIGRATION_STATE_BLOB_BYTES);
    }

    /// Shared scaffolding for the replica-aware recovery tests: the
    /// document graph's base placement (root, viewer on the client;
    /// reader, storage on the server) with a coordinator whose breaker
    /// trips on the first MachineDown outcome.
    fn replica_fixture(
        replicas: &[crate::multiway::Replica],
    ) -> (ComRuntime, Arc<HealthMonitor>, Arc<RecoveryCoordinator>) {
        use crate::classifier::ClassifierKind;
        let (graph, constraints) = document_graph();
        let rt = ComRuntime::client_server();
        let classifier = Arc::new(InstanceClassifier::new(ClassifierKind::Ifcb));
        let mut base = HashMap::new();
        base.insert(ClassificationId::ROOT, MachineId::CLIENT);
        base.insert(c(1), MachineId::CLIENT);
        base.insert(c(2), MachineId::SERVER);
        base.insert(c(3), MachineId::SERVER);
        let factory = Arc::new(ComponentFactory::new(base.clone(), MachineId::CLIENT, 2));
        let health = Arc::new(HealthMonitor::new(BreakerPolicy {
            failure_threshold: 1,
            ..BreakerPolicy::default()
        }));
        let coordinator = RecoveryCoordinator::new(
            &graph,
            &constraints,
            factory,
            classifier,
            health.clone(),
            None,
            None,
        )
        .unwrap();
        let distribution = crate::analysis::Distribution {
            placement: base,
            predicted_comm_us: 0.0,
            network_name: "test".to_string(),
        };
        coordinator.install_replicas(ReplicaRouter::new(&distribution, replicas));
        (rt, health, coordinator)
    }

    #[test]
    fn full_replica_cover_recovers_by_failover_without_any_solve() {
        use crate::multiway::Replica;
        // Every server-homed classification has a client replica: the
        // death must resolve by pure failover, with zero solves beyond
        // the base cold one.
        let replicas = [
            Replica {
                class: c(2),
                machine: MachineId::CLIENT,
                gain_us: 1.0,
            },
            Replica {
                class: c(3),
                machine: MachineId::CLIENT,
                gain_us: 1.0,
            },
        ];
        let (rt, health, coordinator) = replica_fixture(&replicas);
        let down = ComError::MachineDown(MachineId::SERVER);
        let _ = health.on_failure(MachineId::CLIENT, MachineId::SERVER, &down, 0);
        assert!(coordinator.on_call_failure(&rt, &down));
        let events = coordinator.events();
        assert_eq!(events.len(), 1, "events: {events:?}");
        assert!(events[0].via_replicas, "recovery must be the no-solve path");
        assert_eq!(events[0].migrations, 0, "failover moves no state");
        assert_eq!(events[0].dead_machine, Some(MachineId::SERVER));
        assert_eq!(coordinator.warm_solves(), 0, "no warm solve either");
        assert_eq!(coordinator.cold_solves(), 1, "only the base solve");
        coordinator.validate().unwrap();
        let router = coordinator.replica_router().unwrap();
        assert_eq!(router.home_of(c(2)), Some(MachineId::CLIENT));
        assert_eq!(router.home_of(c(3)), Some(MachineId::CLIENT));
    }

    #[test]
    fn orphaned_classification_falls_back_to_the_warm_resolve() {
        use crate::multiway::Replica;
        // Only the reader has a replica; the storage loses its last copy
        // with the server, so the coordinator must warm re-solve — and
        // then re-base the router on the solved placement.
        let replicas = [Replica {
            class: c(2),
            machine: MachineId::CLIENT,
            gain_us: 1.0,
        }];
        let (rt, health, coordinator) = replica_fixture(&replicas);
        let down = ComError::MachineDown(MachineId::SERVER);
        let _ = health.on_failure(MachineId::CLIENT, MachineId::SERVER, &down, 0);
        assert!(coordinator.on_call_failure(&rt, &down));
        let events = coordinator.events();
        assert_eq!(events.len(), 1, "events: {events:?}");
        assert!(!events[0].via_replicas, "an orphan forces the solve path");
        assert_eq!(coordinator.warm_solves(), 1, "re-solve warm-starts");
        assert_eq!(coordinator.cold_solves(), 1);
        coordinator.validate().unwrap();
        // The router re-based: every home is on the survivor, and no copy
        // references the dead machine.
        let router = coordinator.replica_router().unwrap();
        for class in [ClassificationId::ROOT, c(1), c(2), c(3)] {
            assert_eq!(router.home_of(class), Some(MachineId::CLIENT));
            assert!(!router.copies_of(class).contains(&MachineId::SERVER));
        }
    }

    /// Regression: a drift fire and a breaker machine-death declaration
    /// landing on the same tick. The coordinator must drain the death
    /// *before* the drift re-solve, or the drift solve runs with
    /// `dead: None` and re-places work onto a machine the transport
    /// already knows is gone.
    #[test]
    fn same_tick_drift_fire_and_breaker_declaration_recover_the_death_first() {
        use crate::classifier::ClassifierKind;

        let (graph, constraints) = document_graph();
        let rt = ComRuntime::client_server();
        let classifier = Arc::new(InstanceClassifier::new(ClassifierKind::Ifcb));
        let mut base = HashMap::new();
        base.insert(ClassificationId::ROOT, MachineId::CLIENT);
        base.insert(c(1), MachineId::CLIENT);
        base.insert(c(2), MachineId::SERVER);
        base.insert(c(3), MachineId::SERVER);
        let factory = Arc::new(ComponentFactory::new(base, MachineId::CLIENT, 2));
        let health = Arc::new(HealthMonitor::new(BreakerPolicy {
            failure_threshold: 1,
            ..BreakerPolicy::default()
        }));
        // Empty baseline: any observed traffic reads as full drift, so the
        // latch is primed to fire on the next poll.
        let monitor = Arc::new(DriftMonitor::from_profile(&IccProfile::new()));
        monitor.record_call(c(1), c(2));
        let coordinator = RecoveryCoordinator::new(
            &graph,
            &constraints,
            factory.clone(),
            classifier,
            health.clone(),
            Some((monitor.clone(), 0.5)),
            None,
        )
        .unwrap();
        // The transport declares the server dead on the same tick the
        // drift latch fires — queued on the health monitor, undrained.
        let _ = health.on_failure(
            MachineId::CLIENT,
            MachineId::SERVER,
            &ComError::MachineDown(MachineId::SERVER),
            0,
        );
        assert!(coordinator.poll_drift(&rt));
        // Pinned order: machine death first, then the drift re-solve —
        // which must already see the declared death.
        let events = coordinator.events();
        assert_eq!(events.len(), 2, "events: {events:?}");
        assert_eq!(events[0].trigger, RecoveryTrigger::MachineDeath);
        assert_eq!(events[0].dead_machine, Some(MachineId::SERVER));
        assert_eq!(events[1].trigger, RecoveryTrigger::Drift);
        assert_eq!(
            events[1].dead_machine,
            Some(MachineId::SERVER),
            "the drift re-solve ran blind to the machine death"
        );
        // Nothing may remain placed on the dead machine, and the live
        // placement must validate against the dead-machine set.
        for (class, machine) in factory.placement_snapshot() {
            assert_ne!(machine, MachineId::SERVER, "{class} left on dead server");
        }
        coordinator.validate().unwrap();
        assert_eq!(coordinator.dead_machines(), vec![MachineId::SERVER]);
        assert_eq!(coordinator.cold_solves(), 1);
    }
}
