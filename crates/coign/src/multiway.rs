//! Multiway partitioning — the paper's ≥3-machine future work.
//!
//! "The problem of partitioning applications across three or more machines
//! is provably NP-hard. Numerous heuristic algorithms exist for multi-way
//! graph cutting." (§2). This module applies the isolation-heuristic
//! multiway cut from `coign_flow::multiway` to real application profiles:
//! constraints pin classifications to named machines (GUI → client,
//! storage/database → the data server, programmer pins anywhere), and the
//! heuristic assigns everything else to minimize cross-machine
//! communication time.

use crate::analysis::Distribution;
use crate::classifier::ClassificationId;
use crate::icc::IccGraph;
use crate::lint::ReplicationReport;
use crate::profile::IccProfile;
use coign_com::{ClassRegistry, ComError, ComResult, MachineId};
use coign_dcom::NetworkProfile;
use coign_flow::{multiway_cut, refine_assignment, FlowNetwork, MaxFlowAlgorithm, INFINITE};
use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};

/// A placement constraint for multiway partitioning.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MultiwayConstraint {
    /// The classification must run on the given machine.
    Pin(ClassificationId, MachineId),
    /// The two classifications must share a machine.
    Colocate(ClassificationId, ClassificationId),
}

/// Derives pins for a three-tier topology from static API analysis:
/// GUI importers to `client`, storage/database importers to `data_server`.
/// The application root is always pinned to the client.
pub fn derive_tier_constraints(
    profile: &IccProfile,
    registry: &ClassRegistry,
    client: MachineId,
    data_server: MachineId,
) -> Vec<MultiwayConstraint> {
    let mut constraints = vec![MultiwayConstraint::Pin(ClassificationId::ROOT, client)];
    let mut classes: Vec<_> = profile.class_of.iter().collect();
    classes.sort();
    for (class, clsid) in classes {
        let Ok(desc) = registry.get(*clsid) else {
            continue;
        };
        if desc.imports.uses_gui() {
            constraints.push(MultiwayConstraint::Pin(*class, client));
        }
        if desc.imports.uses_storage() {
            constraints.push(MultiwayConstraint::Pin(*class, data_server));
        }
    }
    constraints
}

/// Completes a constraint set so every one of `machine_count` machines has
/// an anchor. Tier derivation only pins the client (root + GUI) and the
/// data server (storage/database); middle machines of a ≥3-way topology
/// start empty. For each unanchored machine, in machine order, this pins
/// the still-unpinned classification carrying the most profiled traffic
/// (ties broken by classification id), modeling the operator assigning the
/// busiest free component to each additional server. Deterministic for a
/// given profile.
pub fn anchor_unpinned_machines(
    profile: &IccProfile,
    network: &NetworkProfile,
    constraints: &[MultiwayConstraint],
    machine_count: usize,
) -> ComResult<Vec<MultiwayConstraint>> {
    let graph = IccGraph::build(profile, network);
    let mut anchored = vec![false; machine_count];
    let mut pinned: HashSet<ClassificationId> = HashSet::new();
    for constraint in constraints {
        if let MultiwayConstraint::Pin(class, machine) = constraint {
            pinned.insert(*class);
            let m = machine.0 as usize;
            if m < machine_count && graph.index.contains_key(class) {
                anchored[m] = true;
            }
        }
    }

    // Total adjacent traffic per classification, heaviest first.
    let mut traffic: HashMap<usize, f64> = HashMap::new();
    for ((a, b), weight) in &graph.weights_us {
        *traffic.entry(*a).or_default() += weight;
        *traffic.entry(*b).or_default() += weight;
    }
    let mut candidates: Vec<(ClassificationId, f64)> = graph
        .nodes
        .iter()
        .enumerate()
        .filter(|(_, class)| **class != ClassificationId::ROOT && !pinned.contains(class))
        .map(|(node, class)| (*class, traffic.get(&node).copied().unwrap_or(0.0)))
        .collect();
    candidates.sort_by(|a, b| {
        b.1.partial_cmp(&a.1)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.0.cmp(&b.0))
    });

    let mut extra = Vec::new();
    let mut next = candidates.into_iter();
    for (m, anchored) in anchored.iter().enumerate() {
        if *anchored {
            continue;
        }
        let Some((class, _)) = next.next() else {
            return Err(ComError::App(format!(
                "cannot anchor machine {}: no free classification left to pin",
                MachineId(m as u16)
            )));
        };
        extra.push(MultiwayConstraint::Pin(class, MachineId(m as u16)));
    }
    Ok(extra)
}

/// Classifications that may legally be duplicated onto extra machines —
/// the placement-side form of the lint stages' replication-legality
/// verdicts ([`crate::lint::analyze_replication`]).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ReplicationPlan {
    /// Replicable classifications, sorted and deduplicated.
    pub replicable: Vec<ClassificationId>,
}

impl ReplicationPlan {
    /// A plan permitting no replication (the sound default).
    pub fn empty() -> Self {
        ReplicationPlan::default()
    }

    /// Maps the lint verdicts (class *names*) onto the profile's
    /// classifications. A classification is replicable only when the
    /// profile knows its class and the report proved that class immutable.
    pub fn from_report(
        report: &ReplicationReport,
        profile: &IccProfile,
        registry: &ClassRegistry,
    ) -> Self {
        let mut replicable: Vec<ClassificationId> = profile
            .class_of
            .iter()
            .filter(|(_, clsid)| {
                registry
                    .get(**clsid)
                    .is_ok_and(|desc| report.is_replicable(&desc.name))
            })
            .map(|(class, _)| *class)
            .collect();
        replicable.sort();
        replicable.dedup();
        ReplicationPlan { replicable }
    }

    /// True when the plan allows replicating the classification.
    pub fn allows(&self, class: ClassificationId) -> bool {
        self.replicable.binary_search(&class).is_ok()
    }
}

/// One replica chosen by the greedy marginal-gain pass: a read-only copy of
/// `class` placed on `machine` in addition to the class's home machine.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Replica {
    /// The replicated classification.
    pub class: ClassificationId,
    /// The extra machine receiving a copy.
    pub machine: MachineId,
    /// Cross-machine communication time the copy absorbs, microseconds.
    pub gain_us: f64,
}

/// A multiway placement: the refined home assignment plus any replicas.
#[derive(Debug, Clone, PartialEq)]
pub struct MultiwayPlacement {
    /// Home-machine assignment (identical with and without replication —
    /// replicas are *additional* copies, the authoritative home never
    /// moves).
    pub distribution: Distribution,
    /// Cut cost of the raw isolation-heuristic assignment, microseconds,
    /// before greedy refinement.
    pub heuristic_cut_us: f64,
    /// Replicas chosen by the greedy pass (empty when the plan permits
    /// none). Sorted by classification, then machine.
    pub replicas: Vec<Replica>,
    /// Predicted cross-machine communication after replicas serve their
    /// machine-local traffic, microseconds.
    pub replicated_comm_us: f64,
}

impl MultiwayPlacement {
    /// Total modeled communication time absorbed by replicas, microseconds.
    pub fn replication_gain_us(&self) -> f64 {
        self.replicas.iter().map(|r| r.gain_us).sum()
    }
}

/// Partitions a profile across `machine_count` machines.
///
/// Builds the concrete ICC graph, adds one terminal node per machine wired
/// to its pinned classifications with infinite edges, runs the isolation
/// heuristic (within `2 − 2/k` of the optimal multiway cut), and refines
/// the result with deterministic single-node moves
/// ([`coign_flow::refine_assignment`]).
///
/// Every machine must pin at least one classification (a terminal with no
/// pull would trivially attract nothing); the client terminal always has
/// the application root.
pub fn analyze_multiway(
    profile: &IccProfile,
    network: &NetworkProfile,
    constraints: &[MultiwayConstraint],
    machine_count: usize,
) -> ComResult<Distribution> {
    analyze_multiway_with_replication(
        profile,
        network,
        constraints,
        machine_count,
        &ReplicationPlan::empty(),
    )
    .map(|placement| placement.distribution)
}

/// [`analyze_multiway`] plus component replication: classifications the
/// `plan` proves legal are duplicated onto additional machines whenever the
/// copy *strictly* reduces modeled cut traffic (greedy marginal gain over
/// the refined cut). With an empty plan the result carries no replicas and
/// the distribution is identical to [`analyze_multiway`]'s.
pub fn analyze_multiway_with_replication(
    profile: &IccProfile,
    network: &NetworkProfile,
    constraints: &[MultiwayConstraint],
    machine_count: usize,
    plan: &ReplicationPlan,
) -> ComResult<MultiwayPlacement> {
    if machine_count < 2 {
        return Err(ComError::App(
            "multiway analysis needs at least two machines".to_string(),
        ));
    }
    let graph = IccGraph::build(profile, network);
    let n = graph.node_count();
    let mut flow = FlowNetwork::new(n + machine_count);
    for ((a, b), weight) in &graph.weights_us {
        flow.add_undirected(*a, *b, IccGraph::capacity_of(*weight));
    }
    // Nodes touched by an infinite-capacity edge (constraints or
    // non-remotable pairs) must never move or replicate.
    let mut constrained: HashSet<usize> = HashSet::new();
    for (a, b) in &graph.non_remotable {
        flow.add_undirected(*a, *b, INFINITE);
        constrained.insert(*a);
        constrained.insert(*b);
    }

    // Terminal node for machine m is n + m.
    let mut pinned_machines = vec![false; machine_count];
    for constraint in constraints {
        match constraint {
            MultiwayConstraint::Pin(class, machine) => {
                let m = machine.0 as usize;
                if m >= machine_count {
                    return Err(ComError::App(format!(
                        "constraint pins {class} to {machine}, outside the \
                         {machine_count}-machine topology"
                    )));
                }
                if let Some(&node) = graph.index.get(class) {
                    flow.add_undirected(node, n + m, INFINITE);
                    pinned_machines[m] = true;
                    constrained.insert(node);
                }
            }
            MultiwayConstraint::Colocate(a, b) => {
                if let (Some(&na), Some(&nb)) = (graph.index.get(a), graph.index.get(b)) {
                    if na != nb {
                        flow.add_undirected(na, nb, INFINITE);
                        constrained.insert(na);
                        constrained.insert(nb);
                    }
                }
            }
        }
    }
    if let Some(empty) = pinned_machines.iter().position(|p| !p) {
        return Err(ComError::App(format!(
            "machine {} has no pinned classification; every machine needs an anchor",
            MachineId(empty as u16)
        )));
    }

    let terminals: Vec<usize> = (0..machine_count).map(|m| n + m).collect();
    let cut = multiway_cut(&flow, &terminals, MaxFlowAlgorithm::Dinic);

    // A severed infinite edge means contradictory constraints.
    if cut.cut_value >= INFINITE {
        return Err(ComError::App(
            "multiway constraints are contradictory: the cut severs an \
             infinite-capacity edge"
                .to_string(),
        ));
    }

    // Heuristic cut cost (in modeled microseconds) before refinement.
    let mut assignment = cut.assignment;
    let heuristic_cut_us = predicted_comm_us(&graph, &assignment);

    // Exact local refinement: free nodes (no infinite incident edge) may
    // hop to the machine holding most of their traffic.
    let movable: Vec<bool> = (0..flow.node_count())
        .map(|node| node < n && !constrained.contains(&node))
        .collect();
    refine_assignment(&flow, &mut assignment, &movable, machine_count);
    let predicted = predicted_comm_us(&graph, &assignment);

    let replicas = plan_replicas(&graph, &assignment, machine_count, plan, &constrained);
    let gain: f64 = replicas.iter().map(|r| r.gain_us).sum();

    let mut placement = HashMap::with_capacity(n);
    for (node, class) in graph.nodes.iter().enumerate() {
        placement.insert(*class, MachineId(assignment[node] as u16));
    }
    Ok(MultiwayPlacement {
        distribution: Distribution {
            placement,
            predicted_comm_us: predicted,
            network_name: graph.network_name.clone(),
        },
        heuristic_cut_us,
        replicas,
        replicated_comm_us: predicted - gain,
    })
}

/// Predicted cross-machine communication of an assignment, microseconds.
/// Deterministic: iterates the ordered weight map.
fn predicted_comm_us(graph: &IccGraph, assignment: &[usize]) -> f64 {
    graph
        .weights_us
        .iter()
        .filter(|((a, b), _)| assignment[*a] != assignment[*b])
        .map(|(_, w)| w)
        .sum()
}

/// Greedy marginal-gain replica selection. A replicable, unconstrained
/// classification gets a copy on every machine whose local traffic with it
/// is strictly positive — the copy serves that traffic locally, so each
/// chosen replica strictly reduces modeled cut cost. Replica gains are
/// independent (copies never talk to each other), so the greedy pass is
/// exhaustive rather than iterative.
fn plan_replicas(
    graph: &IccGraph,
    assignment: &[usize],
    machine_count: usize,
    plan: &ReplicationPlan,
    constrained: &HashSet<usize>,
) -> Vec<Replica> {
    let mut replicas = Vec::new();
    for class in &plan.replicable {
        if *class == ClassificationId::ROOT {
            continue;
        }
        let Some(&node) = graph.index.get(class) else {
            continue;
        };
        if constrained.contains(&node) {
            continue;
        }
        let home = assignment[node];
        // Traffic the class exchanges with each machine.
        let mut pull = vec![0.0f64; machine_count];
        for ((a, b), weight) in &graph.weights_us {
            let other = if *a == node {
                *b
            } else if *b == node {
                *a
            } else {
                continue;
            };
            pull[assignment[other]] += weight;
        }
        for (machine, gain) in pull.iter().enumerate() {
            if machine != home && *gain > 0.0 {
                replicas.push(Replica {
                    class: *class,
                    machine: MachineId(machine as u16),
                    gain_us: *gain,
                });
            }
        }
    }
    replicas
}

/// Re-runs the greedy replica selection for an *existing* distribution —
/// the recovery path's "replication re-run over survivors". The home
/// assignment is taken from the distribution as-is (homes never move
/// here); non-remotable classifications stay unconstrained-copy-free as
/// in [`analyze_multiway_with_replication`]; and no replica lands on a
/// machine in `dead`. Deterministic for a given profile and distribution.
pub fn replicate_for_distribution(
    profile: &IccProfile,
    network: &NetworkProfile,
    distribution: &Distribution,
    machine_count: usize,
    plan: &ReplicationPlan,
    dead: &[MachineId],
) -> Vec<Replica> {
    let graph = IccGraph::build(profile, network);
    let assignment: Vec<usize> = graph
        .nodes
        .iter()
        .map(|class| distribution.machine_of(*class).0 as usize)
        .collect();
    let mut constrained: HashSet<usize> = HashSet::new();
    for (a, b) in &graph.non_remotable {
        constrained.insert(*a);
        constrained.insert(*b);
    }
    plan_replicas(&graph, &assignment, machine_count, plan, &constrained)
        .into_iter()
        .filter(|r| !dead.contains(&r.machine))
        .collect()
}

/// What [`ReplicaRouter::drop_machine`] did to the copy sets when a
/// machine died.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ReplicaFailover {
    /// Classifications whose *home* died and were re-homed to their
    /// lowest-id surviving replica (class, new home). Sorted by class.
    pub rehomed: Vec<(ClassificationId, MachineId)>,
    /// Classifications that lost their last copy — only a re-solve can
    /// place these again. Sorted.
    pub orphaned: Vec<ClassificationId>,
    /// Replica copies (not homes) dropped with the machine.
    pub replicas_dropped: usize,
}

impl ReplicaFailover {
    /// True when every classification on the dead machine had a surviving
    /// copy — recovery needs no solve at all.
    pub fn is_complete(&self) -> bool {
        self.orphaned.is_empty()
    }
}

/// O(1) per-call replica routing: every classification's surviving copies
/// (home first), with deterministic nearest-surviving selection.
///
/// The router is the cheap-local-reaction half of replica-aware recovery:
/// when a machine dies, read-only traffic re-resolves to a surviving copy
/// without any solve — prefer the live home, else a copy on the *caller's*
/// machine (the call becomes local), else the lowest-id surviving machine.
/// All state is plain sorted maps, so identical call sequences route
/// identically on every shard.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ReplicaRouter {
    /// Copy machines per classification: home first, then replica
    /// machines in ascending id order.
    copies: BTreeMap<ClassificationId, Vec<MachineId>>,
}

impl ReplicaRouter {
    /// Builds a router from a home placement plus the replicas a
    /// placement pass chose (empty slice = no replication: every class
    /// has exactly its home copy).
    pub fn new(distribution: &Distribution, replicas: &[Replica]) -> Self {
        let mut copies: BTreeMap<ClassificationId, Vec<MachineId>> = distribution
            .placement
            .iter()
            .map(|(class, machine)| (*class, vec![*machine]))
            .collect();
        let mut sorted: Vec<&Replica> = replicas.iter().collect();
        sorted.sort_by_key(|r| (r.class, r.machine));
        for replica in sorted {
            let set = copies.entry(replica.class).or_default();
            if !set.contains(&replica.machine) {
                set.push(replica.machine);
            }
        }
        ReplicaRouter { copies }
    }

    /// True when no classification has more than its home copy.
    pub fn has_replicas(&self) -> bool {
        self.copies.values().any(|set| set.len() > 1)
    }

    /// Number of classifications that currently have at least one extra
    /// copy beyond their home.
    pub fn replicated_class_count(&self) -> usize {
        self.copies.values().filter(|set| set.len() > 1).count()
    }

    /// The classification's copies, home first (empty when unknown).
    pub fn copies_of(&self, class: ClassificationId) -> &[MachineId] {
        self.copies.get(&class).map_or(&[], Vec::as_slice)
    }

    /// Routes a call to `class` from `caller`, avoiding `dead` machines:
    /// the live home, else a surviving copy on the caller's own machine,
    /// else the lowest-id surviving copy. `None` when the class is
    /// unknown or every copy is dead.
    pub fn route(
        &self,
        class: ClassificationId,
        caller: MachineId,
        dead: &BTreeSet<MachineId>,
    ) -> Option<MachineId> {
        let copies = self.copies.get(&class)?;
        let home = *copies.first()?;
        if !dead.contains(&home) {
            return Some(home);
        }
        let mut best: Option<MachineId> = None;
        for &machine in &copies[1..] {
            if dead.contains(&machine) {
                continue;
            }
            if machine == caller {
                return Some(machine);
            }
            if best.is_none_or(|b| machine < b) {
                best = Some(machine);
            }
        }
        best
    }

    /// Removes every copy on `dead`: replica copies are dropped, and a
    /// classification whose *home* died is re-homed to its lowest-id
    /// surviving replica (or reported orphaned when none survives). The
    /// returned summary is what the recovery layer needs to decide
    /// between pure failover and a re-solve.
    pub fn drop_machine(&mut self, dead: MachineId) -> ReplicaFailover {
        let mut failover = ReplicaFailover::default();
        for (class, copies) in self.copies.iter_mut() {
            let home_died = copies.first() == Some(&dead);
            let before = copies.len();
            copies.retain(|m| *m != dead);
            let dropped = before - copies.len();
            if home_died {
                failover.replicas_dropped += dropped.saturating_sub(1);
                // Promote the lowest-id surviving replica to home.
                copies.sort();
                match copies.first() {
                    Some(&new_home) => failover.rehomed.push((*class, new_home)),
                    None => failover.orphaned.push(*class),
                }
            } else {
                failover.replicas_dropped += dropped;
            }
        }
        failover
    }

    /// The current home of a classification (`None` when orphaned or
    /// unknown).
    pub fn home_of(&self, class: ClassificationId) -> Option<MachineId> {
        self.copies.get(&class)?.first().copied()
    }

    /// Re-bases the router on a freshly solved placement — the re-solve
    /// half of replica-aware recovery. Homes are taken from `placement`;
    /// surviving replicas keep serving unless they sit on a dead machine
    /// or became redundant (co-located with the new home). Classes the
    /// new placement no longer mentions are dropped.
    pub fn rebase(
        &mut self,
        placement: &HashMap<ClassificationId, MachineId>,
        dead: &BTreeSet<MachineId>,
    ) {
        let mut rebased: BTreeMap<ClassificationId, Vec<MachineId>> = BTreeMap::new();
        for (class, &home) in placement {
            let mut copies = vec![home];
            if let Some(old) = self.copies.get(class) {
                for &machine in old.iter() {
                    if machine != home && !dead.contains(&machine) && !copies.contains(&machine) {
                        copies.push(machine);
                    }
                }
                copies[1..].sort();
            }
            rebased.insert(*class, copies);
        }
        self.copies = rebased;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use coign_com::{Clsid, Iid};
    use coign_dcom::NetworkModel;

    fn c(n: u32) -> ClassificationId {
        ClassificationId(n)
    }

    const CLIENT: MachineId = MachineId(0);
    const MIDDLE: MachineId = MachineId(1);
    const DB: MachineId = MachineId(2);

    /// root ↔ form(1) heavy, form ↔ logic(2) light, logic ↔ store(3) heavy.
    fn tiered_profile() -> IccProfile {
        let iid = Iid::from_name("IX");
        let mut p = IccProfile::new();
        for (id, name) in [(1, "Form"), (2, "Logic"), (3, "Store")] {
            p.record_instance(c(id), Clsid::from_name(name));
        }
        for _ in 0..100 {
            p.record_message(ClassificationId::ROOT, c(1), iid, 0, 200);
        }
        p.record_message(c(1), c(2), iid, 0, 500);
        for _ in 0..100 {
            p.record_message(c(2), c(3), iid, 0, 8_000);
        }
        p
    }

    fn network() -> NetworkProfile {
        NetworkProfile::exact(&NetworkModel::ethernet_10baset())
    }

    #[test]
    fn three_way_cut_respects_affinities() {
        let profile = tiered_profile();
        let constraints = vec![
            MultiwayConstraint::Pin(ClassificationId::ROOT, CLIENT),
            MultiwayConstraint::Pin(c(2), MIDDLE),
            MultiwayConstraint::Pin(c(3), DB),
        ];
        let dist = analyze_multiway(&profile, &network(), &constraints, 3).unwrap();
        // The form follows the root (heavy edge); the store stays pinned;
        // with the store pinned to DB and logic to MIDDLE, their heavy edge
        // is the unavoidable cost.
        assert_eq!(dist.machine_of(c(1)), CLIENT);
        assert_eq!(dist.machine_of(c(2)), MIDDLE);
        assert_eq!(dist.machine_of(c(3)), DB);
        assert!(dist.predicted_comm_us > 0.0);
    }

    #[test]
    fn unpinned_heavy_talker_follows_its_peer() {
        let profile = tiered_profile();
        // Only pin root, middle anchor, and db anchor; classification 1
        // (form) is free and should join the client, 2 free→? pin only 3.
        let constraints = vec![
            MultiwayConstraint::Pin(ClassificationId::ROOT, CLIENT),
            MultiwayConstraint::Pin(c(2), MIDDLE),
            MultiwayConstraint::Pin(c(3), DB),
        ];
        let dist = analyze_multiway(&profile, &network(), &constraints, 3).unwrap();
        assert_eq!(dist.machine_of(c(1)), CLIENT);
    }

    #[test]
    fn colocate_binds_across_machines() {
        let profile = tiered_profile();
        let constraints = vec![
            MultiwayConstraint::Pin(ClassificationId::ROOT, CLIENT),
            MultiwayConstraint::Pin(c(2), MIDDLE),
            MultiwayConstraint::Pin(c(3), DB),
            // Tie the form to the logic.
            MultiwayConstraint::Colocate(c(1), c(2)),
        ];
        let dist = analyze_multiway(&profile, &network(), &constraints, 3).unwrap();
        assert_eq!(dist.machine_of(c(1)), dist.machine_of(c(2)));
    }

    #[test]
    fn unanchored_machine_is_rejected() {
        let profile = tiered_profile();
        let constraints = vec![
            MultiwayConstraint::Pin(ClassificationId::ROOT, CLIENT),
            MultiwayConstraint::Pin(c(3), DB),
        ];
        let err = analyze_multiway(&profile, &network(), &constraints, 3).unwrap_err();
        assert!(err.to_string().contains("no pinned classification"));
    }

    #[test]
    fn out_of_range_pin_is_rejected() {
        let profile = tiered_profile();
        let constraints = vec![
            MultiwayConstraint::Pin(ClassificationId::ROOT, CLIENT),
            MultiwayConstraint::Pin(c(2), MachineId(7)),
        ];
        assert!(analyze_multiway(&profile, &network(), &constraints, 3).is_err());
    }

    #[test]
    fn two_way_multiway_matches_exact_cut_cost() {
        // With k = 2 the isolation heuristic degenerates to one exact
        // min cut, so it must match the two-way analysis engine.
        let profile = tiered_profile();
        let constraints2 = vec![
            MultiwayConstraint::Pin(ClassificationId::ROOT, CLIENT),
            MultiwayConstraint::Pin(c(3), MachineId(1)),
        ];
        let multi = analyze_multiway(&profile, &network(), &constraints2, 2).unwrap();
        let exact = crate::analysis::analyze(
            &profile,
            &network(),
            &[
                crate::constraints::Constraint::PinClient(ClassificationId::ROOT),
                crate::constraints::Constraint::PinServer(c(3)),
            ],
            MaxFlowAlgorithm::LiftToFront,
        )
        .unwrap();
        assert!((multi.predicted_comm_us - exact.predicted_comm_us).abs() < 1e-6);
    }

    #[test]
    fn tier_constraints_derive_from_imports() {
        use coign_com::{ApiImports, ComRuntime};
        use std::sync::Arc;
        struct Nop;
        impl coign_com::ComObject for Nop {
            fn invoke(
                &self,
                _ctx: &coign_com::CallCtx<'_>,
                _iid: Iid,
                _method: u32,
                _msg: &mut coign_com::Message,
            ) -> ComResult<()> {
                Ok(())
            }
        }
        let rt = ComRuntime::single_machine();
        rt.registry()
            .register("Form", vec![], ApiImports::GUI, |_, _| Arc::new(Nop));
        rt.registry()
            .register("Store", vec![], ApiImports::DATABASE, |_, _| Arc::new(Nop));
        let profile = tiered_profile();
        let constraints = derive_tier_constraints(&profile, rt.registry(), CLIENT, DB);
        assert!(constraints.contains(&MultiwayConstraint::Pin(ClassificationId::ROOT, CLIENT)));
        assert!(constraints.contains(&MultiwayConstraint::Pin(c(1), CLIENT)));
        assert!(constraints.contains(&MultiwayConstraint::Pin(c(3), DB)));
    }

    /// root ↔ form(1) heavy on the client; dict(2) serves both the form and
    /// the store(3) on the database machine — the classic replication win.
    fn shared_dictionary_profile() -> IccProfile {
        let iid = Iid::from_name("IX");
        let mut p = IccProfile::new();
        for (id, name) in [(1, "Form"), (2, "Dict"), (3, "Store")] {
            p.record_instance(c(id), Clsid::from_name(name));
        }
        for _ in 0..100 {
            p.record_message(ClassificationId::ROOT, c(1), iid, 0, 200);
        }
        for _ in 0..40 {
            p.record_message(c(1), c(2), iid, 0, 1_000);
        }
        for _ in 0..60 {
            p.record_message(c(3), c(2), iid, 0, 1_000);
        }
        p
    }

    fn two_machine_anchors() -> Vec<MultiwayConstraint> {
        vec![
            MultiwayConstraint::Pin(ClassificationId::ROOT, CLIENT),
            MultiwayConstraint::Pin(c(3), MachineId(1)),
        ]
    }

    #[test]
    fn empty_plan_matches_plain_multiway_exactly() {
        let profile = shared_dictionary_profile();
        let constraints = two_machine_anchors();
        let plain = analyze_multiway(&profile, &network(), &constraints, 2).unwrap();
        let placed = analyze_multiway_with_replication(
            &profile,
            &network(),
            &constraints,
            2,
            &ReplicationPlan::empty(),
        )
        .unwrap();
        assert_eq!(placed.distribution, plain);
        assert!(placed.replicas.is_empty());
        assert!((placed.replicated_comm_us - plain.predicted_comm_us).abs() < 1e-9);
    }

    #[test]
    fn replicating_a_shared_dictionary_strictly_reduces_traffic() {
        let profile = shared_dictionary_profile();
        let constraints = two_machine_anchors();
        let plan = ReplicationPlan {
            replicable: vec![c(2)],
        };
        let placed =
            analyze_multiway_with_replication(&profile, &network(), &constraints, 2, &plan)
                .unwrap();
        // The dictionary homes with its heavier peer; the replica serves the
        // lighter side's traffic locally.
        assert_eq!(placed.replicas.len(), 1);
        let replica = placed.replicas[0];
        assert_eq!(replica.class, c(2));
        assert_ne!(replica.machine, placed.distribution.machine_of(c(2)));
        assert!(replica.gain_us > 0.0);
        assert!(placed.replicated_comm_us < placed.distribution.predicted_comm_us);
        assert!(
            (placed.replicated_comm_us + placed.replication_gain_us()
                - placed.distribution.predicted_comm_us)
                .abs()
                < 1e-9
        );
        // Replication never moves the home assignment.
        let plain = analyze_multiway(&profile, &network(), &constraints, 2).unwrap();
        assert_eq!(placed.distribution, plain);
    }

    #[test]
    fn pinned_and_root_classifications_never_replicate() {
        let profile = shared_dictionary_profile();
        let constraints = two_machine_anchors();
        // The store is pinned and the root is the user: both are named
        // replicable but neither may be copied.
        let plan = ReplicationPlan {
            replicable: vec![ClassificationId::ROOT, c(3)],
        };
        let placed =
            analyze_multiway_with_replication(&profile, &network(), &constraints, 2, &plan)
                .unwrap();
        assert!(placed.replicas.is_empty());
    }

    #[test]
    fn refinement_never_raises_the_heuristic_cut() {
        let profile = tiered_profile();
        let constraints = vec![
            MultiwayConstraint::Pin(ClassificationId::ROOT, CLIENT),
            MultiwayConstraint::Pin(c(2), MIDDLE),
            MultiwayConstraint::Pin(c(3), DB),
        ];
        let placed = analyze_multiway_with_replication(
            &profile,
            &network(),
            &constraints,
            3,
            &ReplicationPlan::empty(),
        )
        .unwrap();
        assert!(placed.distribution.predicted_comm_us <= placed.heuristic_cut_us + 1e-9);
    }

    #[test]
    fn anchoring_pins_the_heaviest_free_classification_to_middle_machines() {
        let profile = tiered_profile();
        let constraints = vec![
            MultiwayConstraint::Pin(ClassificationId::ROOT, CLIENT),
            MultiwayConstraint::Pin(c(3), DB),
        ];
        let extra = anchor_unpinned_machines(&profile, &network(), &constraints, 3).unwrap();
        // Only machine 1 lacks an anchor. The store (3) is pinned; of the
        // free classifications the logic (2) carries the heavy store edge.
        assert_eq!(extra, vec![MultiwayConstraint::Pin(c(2), MIDDLE)]);
        let mut all = constraints;
        all.extend(extra);
        assert!(analyze_multiway(&profile, &network(), &all, 3).is_ok());
    }

    #[test]
    fn anchoring_is_a_no_op_when_every_machine_is_pinned() {
        let profile = tiered_profile();
        let constraints = vec![
            MultiwayConstraint::Pin(ClassificationId::ROOT, CLIENT),
            MultiwayConstraint::Pin(c(2), MIDDLE),
            MultiwayConstraint::Pin(c(3), DB),
        ];
        let extra = anchor_unpinned_machines(&profile, &network(), &constraints, 3).unwrap();
        assert!(extra.is_empty());
    }

    #[test]
    fn anchoring_fails_when_machines_outnumber_free_classifications() {
        let profile = tiered_profile();
        let constraints = vec![MultiwayConstraint::Pin(ClassificationId::ROOT, CLIENT)];
        // Four nodes total (root + 3), three already spoken for by the
        // five remaining machines: not enough anchors to go around.
        let err = anchor_unpinned_machines(&profile, &network(), &constraints, 6).unwrap_err();
        assert!(err.to_string().contains("no free classification"));
    }

    fn router_fixture() -> ReplicaRouter {
        // Homes: 1→m0, 2→m1, 3→m2. Replicas: class 2 on m0 and m2.
        let mut placement = HashMap::new();
        placement.insert(c(1), MachineId(0));
        placement.insert(c(2), MachineId(1));
        placement.insert(c(3), MachineId(2));
        let distribution = Distribution {
            placement,
            predicted_comm_us: 0.0,
            network_name: "test".to_string(),
        };
        let replicas = [
            Replica {
                class: c(2),
                machine: MachineId(2),
                gain_us: 1.0,
            },
            Replica {
                class: c(2),
                machine: MachineId(0),
                gain_us: 2.0,
            },
        ];
        ReplicaRouter::new(&distribution, &replicas)
    }

    #[test]
    fn router_prefers_home_then_local_copy_then_lowest_id() {
        let router = router_fixture();
        assert!(router.has_replicas());
        assert_eq!(
            router.copies_of(c(2)),
            [MachineId(1), MachineId(0), MachineId(2)],
            "home first, then replicas ascending"
        );
        let none = BTreeSet::new();
        // Live home wins even when a local copy exists.
        assert_eq!(router.route(c(2), MachineId(0), &none), Some(MachineId(1)));
        let dead: BTreeSet<_> = [MachineId(1)].into();
        // Home dead: a copy on the caller's machine makes the call local.
        assert_eq!(router.route(c(2), MachineId(2), &dead), Some(MachineId(2)));
        // No local copy: lowest-id survivor.
        assert_eq!(router.route(c(2), MachineId(3), &dead), Some(MachineId(0)));
        // A class with only its home copy dies with its machine.
        assert_eq!(router.route(c(1), MachineId(2), &dead), Some(MachineId(0)));
        let dead0: BTreeSet<_> = [MachineId(0)].into();
        assert_eq!(router.route(c(1), MachineId(2), &dead0), None);
        // Unknown classes route nowhere.
        assert_eq!(router.route(c(9), MachineId(0), &none), None);
    }

    #[test]
    fn drop_machine_rehomes_replicated_classes_and_orphans_the_rest() {
        let mut router = router_fixture();
        // Machine 1 dies: class 2's home — re-homed to its lowest
        // surviving replica (m0); nothing else lived there.
        let failover = router.drop_machine(MachineId(1));
        assert_eq!(failover.rehomed, vec![(c(2), MachineId(0))]);
        assert!(failover.orphaned.is_empty());
        assert_eq!(failover.replicas_dropped, 0);
        assert!(failover.is_complete());
        assert_eq!(router.home_of(c(2)), Some(MachineId(0)));
        assert_eq!(router.copies_of(c(2)), [MachineId(0), MachineId(2)]);
        // Machine 2 dies next: class 2 loses a replica, class 3 — home
        // only, no copies — is orphaned.
        let failover = router.drop_machine(MachineId(2));
        assert_eq!(failover.rehomed, vec![]);
        assert_eq!(failover.orphaned, vec![c(3)]);
        assert_eq!(failover.replicas_dropped, 1);
        assert!(!failover.is_complete());
        assert_eq!(router.home_of(c(3)), None);
    }

    #[test]
    fn replicate_for_distribution_matches_the_placement_pass_and_skips_dead() {
        let profile = shared_dictionary_profile();
        let constraints = two_machine_anchors();
        let plan = ReplicationPlan {
            replicable: vec![c(2)],
        };
        let placed =
            analyze_multiway_with_replication(&profile, &network(), &constraints, 2, &plan)
                .unwrap();
        let rerun =
            replicate_for_distribution(&profile, &network(), &placed.distribution, 2, &plan, &[]);
        assert_eq!(rerun, placed.replicas, "re-run over all-alive == original");
        let replica_machine = placed.replicas[0].machine;
        let survivors_only = replicate_for_distribution(
            &profile,
            &network(),
            &placed.distribution,
            2,
            &plan,
            &[replica_machine],
        );
        assert!(
            survivors_only.is_empty(),
            "no replica may land on a dead machine"
        );
    }

    #[test]
    fn plan_from_report_maps_names_to_classifications() {
        use coign_com::{ApiImports, ComRuntime};
        use std::sync::Arc;
        struct Nop;
        impl coign_com::ComObject for Nop {
            fn invoke(
                &self,
                _ctx: &coign_com::CallCtx<'_>,
                _iid: Iid,
                _method: u32,
                _msg: &mut coign_com::Message,
            ) -> ComResult<()> {
                Ok(())
            }
        }
        let rt = ComRuntime::single_machine();
        for name in ["Form", "Dict", "Store"] {
            rt.registry()
                .register(name, vec![], ApiImports::NONE, |_, _| Arc::new(Nop));
        }
        let profile = shared_dictionary_profile();
        let report = crate::lint::ReplicationReport {
            replicable: vec!["Dict".to_string()],
            mutable_shared: vec![],
            holders: Default::default(),
        };
        let plan = ReplicationPlan::from_report(&report, &profile, rt.registry());
        assert_eq!(plan.replicable, vec![c(2)]);
        assert!(plan.allows(c(2)));
        assert!(!plan.allows(c(1)));
    }
}
