//! Multiway partitioning — the paper's ≥3-machine future work.
//!
//! "The problem of partitioning applications across three or more machines
//! is provably NP-hard. Numerous heuristic algorithms exist for multi-way
//! graph cutting." (§2). This module applies the isolation-heuristic
//! multiway cut from `coign_flow::multiway` to real application profiles:
//! constraints pin classifications to named machines (GUI → client,
//! storage/database → the data server, programmer pins anywhere), and the
//! heuristic assigns everything else to minimize cross-machine
//! communication time.

use crate::analysis::Distribution;
use crate::classifier::ClassificationId;
use crate::icc::IccGraph;
use crate::profile::IccProfile;
use coign_com::{ClassRegistry, ComError, ComResult, MachineId};
use coign_dcom::NetworkProfile;
use coign_flow::{multiway_cut, FlowNetwork, MaxFlowAlgorithm, INFINITE};
use std::collections::HashMap;

/// A placement constraint for multiway partitioning.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MultiwayConstraint {
    /// The classification must run on the given machine.
    Pin(ClassificationId, MachineId),
    /// The two classifications must share a machine.
    Colocate(ClassificationId, ClassificationId),
}

/// Derives pins for a three-tier topology from static API analysis:
/// GUI importers to `client`, storage/database importers to `data_server`.
/// The application root is always pinned to the client.
pub fn derive_tier_constraints(
    profile: &IccProfile,
    registry: &ClassRegistry,
    client: MachineId,
    data_server: MachineId,
) -> Vec<MultiwayConstraint> {
    let mut constraints = vec![MultiwayConstraint::Pin(ClassificationId::ROOT, client)];
    let mut classes: Vec<_> = profile.class_of.iter().collect();
    classes.sort();
    for (class, clsid) in classes {
        let Ok(desc) = registry.get(*clsid) else {
            continue;
        };
        if desc.imports.uses_gui() {
            constraints.push(MultiwayConstraint::Pin(*class, client));
        }
        if desc.imports.uses_storage() {
            constraints.push(MultiwayConstraint::Pin(*class, data_server));
        }
    }
    constraints
}

/// Partitions a profile across `machine_count` machines.
///
/// Builds the concrete ICC graph, adds one terminal node per machine wired
/// to its pinned classifications with infinite edges, and runs the
/// isolation heuristic (within `2 − 2/k` of the optimal multiway cut).
///
/// Every machine must pin at least one classification (a terminal with no
/// pull would trivially attract nothing); the client terminal always has
/// the application root.
pub fn analyze_multiway(
    profile: &IccProfile,
    network: &NetworkProfile,
    constraints: &[MultiwayConstraint],
    machine_count: usize,
) -> ComResult<Distribution> {
    if machine_count < 2 {
        return Err(ComError::App(
            "multiway analysis needs at least two machines".to_string(),
        ));
    }
    let graph = IccGraph::build(profile, network);
    let n = graph.node_count();
    let mut flow = FlowNetwork::new(n + machine_count);
    for ((a, b), weight) in &graph.weights_us {
        flow.add_undirected(*a, *b, IccGraph::capacity_of(*weight));
    }
    for (a, b) in &graph.non_remotable {
        flow.add_undirected(*a, *b, INFINITE);
    }

    // Terminal node for machine m is n + m.
    let mut pinned_machines = vec![false; machine_count];
    for constraint in constraints {
        match constraint {
            MultiwayConstraint::Pin(class, machine) => {
                let m = machine.0 as usize;
                if m >= machine_count {
                    return Err(ComError::App(format!(
                        "constraint pins {class} to {machine}, outside the \
                         {machine_count}-machine topology"
                    )));
                }
                if let Some(&node) = graph.index.get(class) {
                    flow.add_undirected(node, n + m, INFINITE);
                    pinned_machines[m] = true;
                }
            }
            MultiwayConstraint::Colocate(a, b) => {
                if let (Some(&na), Some(&nb)) = (graph.index.get(a), graph.index.get(b)) {
                    if na != nb {
                        flow.add_undirected(na, nb, INFINITE);
                    }
                }
            }
        }
    }
    if let Some(empty) = pinned_machines.iter().position(|p| !p) {
        return Err(ComError::App(format!(
            "machine {} has no pinned classification; every machine needs an anchor",
            MachineId(empty as u16)
        )));
    }

    let terminals: Vec<usize> = (0..machine_count).map(|m| n + m).collect();
    let cut = multiway_cut(&flow, &terminals, MaxFlowAlgorithm::Dinic);

    // A severed infinite edge means contradictory constraints.
    if cut.cut_value >= INFINITE {
        return Err(ComError::App(
            "multiway constraints are contradictory: the cut severs an \
             infinite-capacity edge"
                .to_string(),
        ));
    }

    let mut placement = HashMap::with_capacity(n);
    for (node, class) in graph.nodes.iter().enumerate() {
        placement.insert(*class, MachineId(cut.assignment[node] as u16));
    }
    // Predicted cross-machine communication under this assignment.
    let predicted: f64 = graph
        .weights_us
        .iter()
        .filter(|((a, b), _)| cut.assignment[*a] != cut.assignment[*b])
        .map(|(_, w)| w)
        .sum();

    Ok(Distribution {
        placement,
        predicted_comm_us: predicted,
        network_name: graph.network_name,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use coign_com::{Clsid, Iid};
    use coign_dcom::NetworkModel;

    fn c(n: u32) -> ClassificationId {
        ClassificationId(n)
    }

    const CLIENT: MachineId = MachineId(0);
    const MIDDLE: MachineId = MachineId(1);
    const DB: MachineId = MachineId(2);

    /// root ↔ form(1) heavy, form ↔ logic(2) light, logic ↔ store(3) heavy.
    fn tiered_profile() -> IccProfile {
        let iid = Iid::from_name("IX");
        let mut p = IccProfile::new();
        for (id, name) in [(1, "Form"), (2, "Logic"), (3, "Store")] {
            p.record_instance(c(id), Clsid::from_name(name));
        }
        for _ in 0..100 {
            p.record_message(ClassificationId::ROOT, c(1), iid, 0, 200);
        }
        p.record_message(c(1), c(2), iid, 0, 500);
        for _ in 0..100 {
            p.record_message(c(2), c(3), iid, 0, 8_000);
        }
        p
    }

    fn network() -> NetworkProfile {
        NetworkProfile::exact(&NetworkModel::ethernet_10baset())
    }

    #[test]
    fn three_way_cut_respects_affinities() {
        let profile = tiered_profile();
        let constraints = vec![
            MultiwayConstraint::Pin(ClassificationId::ROOT, CLIENT),
            MultiwayConstraint::Pin(c(2), MIDDLE),
            MultiwayConstraint::Pin(c(3), DB),
        ];
        let dist = analyze_multiway(&profile, &network(), &constraints, 3).unwrap();
        // The form follows the root (heavy edge); the store stays pinned;
        // with the store pinned to DB and logic to MIDDLE, their heavy edge
        // is the unavoidable cost.
        assert_eq!(dist.machine_of(c(1)), CLIENT);
        assert_eq!(dist.machine_of(c(2)), MIDDLE);
        assert_eq!(dist.machine_of(c(3)), DB);
        assert!(dist.predicted_comm_us > 0.0);
    }

    #[test]
    fn unpinned_heavy_talker_follows_its_peer() {
        let profile = tiered_profile();
        // Only pin root, middle anchor, and db anchor; classification 1
        // (form) is free and should join the client, 2 free→? pin only 3.
        let constraints = vec![
            MultiwayConstraint::Pin(ClassificationId::ROOT, CLIENT),
            MultiwayConstraint::Pin(c(2), MIDDLE),
            MultiwayConstraint::Pin(c(3), DB),
        ];
        let dist = analyze_multiway(&profile, &network(), &constraints, 3).unwrap();
        assert_eq!(dist.machine_of(c(1)), CLIENT);
    }

    #[test]
    fn colocate_binds_across_machines() {
        let profile = tiered_profile();
        let constraints = vec![
            MultiwayConstraint::Pin(ClassificationId::ROOT, CLIENT),
            MultiwayConstraint::Pin(c(2), MIDDLE),
            MultiwayConstraint::Pin(c(3), DB),
            // Tie the form to the logic.
            MultiwayConstraint::Colocate(c(1), c(2)),
        ];
        let dist = analyze_multiway(&profile, &network(), &constraints, 3).unwrap();
        assert_eq!(dist.machine_of(c(1)), dist.machine_of(c(2)));
    }

    #[test]
    fn unanchored_machine_is_rejected() {
        let profile = tiered_profile();
        let constraints = vec![
            MultiwayConstraint::Pin(ClassificationId::ROOT, CLIENT),
            MultiwayConstraint::Pin(c(3), DB),
        ];
        let err = analyze_multiway(&profile, &network(), &constraints, 3).unwrap_err();
        assert!(err.to_string().contains("no pinned classification"));
    }

    #[test]
    fn out_of_range_pin_is_rejected() {
        let profile = tiered_profile();
        let constraints = vec![
            MultiwayConstraint::Pin(ClassificationId::ROOT, CLIENT),
            MultiwayConstraint::Pin(c(2), MachineId(7)),
        ];
        assert!(analyze_multiway(&profile, &network(), &constraints, 3).is_err());
    }

    #[test]
    fn two_way_multiway_matches_exact_cut_cost() {
        // With k = 2 the isolation heuristic degenerates to one exact
        // min cut, so it must match the two-way analysis engine.
        let profile = tiered_profile();
        let constraints2 = vec![
            MultiwayConstraint::Pin(ClassificationId::ROOT, CLIENT),
            MultiwayConstraint::Pin(c(3), MachineId(1)),
        ];
        let multi = analyze_multiway(&profile, &network(), &constraints2, 2).unwrap();
        let exact = crate::analysis::analyze(
            &profile,
            &network(),
            &[
                crate::constraints::Constraint::PinClient(ClassificationId::ROOT),
                crate::constraints::Constraint::PinServer(c(3)),
            ],
            MaxFlowAlgorithm::LiftToFront,
        )
        .unwrap();
        assert!((multi.predicted_comm_us - exact.predicted_comm_us).abs() < 1e-6);
    }

    #[test]
    fn tier_constraints_derive_from_imports() {
        use coign_com::{ApiImports, ComRuntime};
        use std::sync::Arc;
        struct Nop;
        impl coign_com::ComObject for Nop {
            fn invoke(
                &self,
                _ctx: &coign_com::CallCtx<'_>,
                _iid: Iid,
                _method: u32,
                _msg: &mut coign_com::Message,
            ) -> ComResult<()> {
                Ok(())
            }
        }
        let rt = ComRuntime::single_machine();
        rt.registry()
            .register("Form", vec![], ApiImports::GUI, |_, _| Arc::new(Nop));
        rt.registry()
            .register("Store", vec![], ApiImports::DATABASE, |_, _| Arc::new(Nop));
        let profile = tiered_profile();
        let constraints = derive_tier_constraints(&profile, rt.registry(), CLIENT, DB);
        assert!(constraints.contains(&MultiwayConstraint::Pin(ClassificationId::ROOT, CLIENT)));
        assert!(constraints.contains(&MultiwayConstraint::Pin(c(1), CLIENT)));
        assert!(constraints.contains(&MultiwayConstraint::Pin(c(3), DB)));
    }
}
