//! The profile analysis engine.
//!
//! Combines merged communication profiles, location constraints, and a
//! network profile into the concrete ICC graph, cuts it with the
//! lift-to-front minimum-cut algorithm, and emits the chosen
//! [`Distribution`]: a map from instance classifications to machines.

use crate::classifier::ClassificationId;
use crate::constraints::Constraint;
use crate::icc::IccGraph;
use crate::profile::IccProfile;
use coign_com::codec::{Decoder, Encoder};
use coign_com::{ComError, ComResult, MachineId};
use coign_dcom::NetworkProfile;
use coign_flow::{min_cut, FlowNetwork, MaxFlowAlgorithm, INFINITE};
use std::collections::HashMap;

/// A chosen two-machine distribution of an application.
#[derive(Debug, Clone, PartialEq)]
pub struct Distribution {
    /// Machine assignment per classification.
    pub placement: HashMap<ClassificationId, MachineId>,
    /// Predicted communication time crossing the network, microseconds.
    pub predicted_comm_us: f64,
    /// Network the distribution was optimized for.
    pub network_name: String,
}

impl Distribution {
    /// Number of classifications assigned to a machine.
    pub fn count_on(&self, machine: MachineId) -> usize {
        self.placement.values().filter(|&&m| m == machine).count()
    }

    /// Machine of a classification (client if unknown — the safe default
    /// for classifications never seen during profiling).
    pub fn machine_of(&self, class: ClassificationId) -> MachineId {
        self.placement
            .get(&class)
            .copied()
            .unwrap_or(MachineId::CLIENT)
    }

    /// Number of *component instances* (weighted by the profile's instance
    /// counts) placed on a machine — the quantity the paper's figures
    /// report ("Coign places 8 of 295 components on the server").
    pub fn instances_on(&self, profile: &IccProfile, machine: MachineId) -> u64 {
        profile
            .instances
            .iter()
            .filter(|(class, _)| self.machine_of(**class) == machine)
            .map(|(_, n)| *n)
            .sum()
    }

    /// Serializes the distribution.
    pub fn encode(&self) -> Vec<u8> {
        let mut e = Encoder::new();
        e.put_str(&self.network_name);
        e.put_f64(self.predicted_comm_us);
        let mut entries: Vec<(&ClassificationId, &MachineId)> = self.placement.iter().collect();
        entries.sort();
        e.put_seq(entries.len());
        for (class, machine) in entries {
            e.put_u32(class.0);
            e.put_u16(machine.0);
        }
        e.finish()
    }

    /// Deserializes a distribution.
    pub fn decode(bytes: &[u8]) -> ComResult<Self> {
        let mut d = Decoder::new(bytes);
        let network_name = d.get_str()?;
        let predicted_comm_us = d.get_f64()?;
        let n = d.get_seq(6)?;
        let mut placement = HashMap::with_capacity(n);
        for _ in 0..n {
            let class = ClassificationId(d.get_u32()?);
            let machine = MachineId(d.get_u16()?);
            placement.insert(class, machine);
        }
        Ok(Distribution {
            placement,
            predicted_comm_us,
            network_name,
        })
    }
}

/// Runs the analysis engine: profile + network + constraints → distribution.
///
/// The flow network has one node per classification plus a source (the
/// client) and sink (the server). Constraint and non-remotable edges carry
/// infinite capacity; communication edges carry their predicted time. The
/// minimum cut is computed with the requested algorithm (the paper's choice
/// is [`MaxFlowAlgorithm::LiftToFront`]).
///
/// Fails with [`ComError::App`] if constraints are contradictory (e.g. a
/// GUI component connected to a storage component through a non-remotable
/// interface). Contradictions are caught by a satisfiability pre-check
/// over the colocation closure ([`crate::lint::satisfiability`]) *before*
/// any flow network is built — min-cut never runs on an unsatisfiable
/// constraint set. The infinite-cut check after the cut remains as a
/// defense-in-depth invariant.
///
/// # Examples
///
/// ```
/// use coign::analysis::analyze;
/// use coign::classifier::ClassificationId;
/// use coign::constraints::Constraint;
/// use coign::profile::IccProfile;
/// use coign_com::{Clsid, Iid, MachineId};
/// use coign_dcom::{NetworkModel, NetworkProfile};
/// use coign_flow::MaxFlowAlgorithm;
///
/// // A viewer chats with a pinned storage component.
/// let mut profile = IccProfile::new();
/// let (viewer, store) = (ClassificationId(1), ClassificationId(2));
/// profile.record_instance(viewer, Clsid::from_name("Viewer"));
/// profile.record_instance(store, Clsid::from_name("Store"));
/// for _ in 0..50 {
///     profile.record_message(viewer, store, Iid::from_name("IStore"), 0, 30_000);
/// }
/// let network = NetworkProfile::exact(&NetworkModel::ethernet_10baset());
/// let constraints = [
///     Constraint::PinClient(ClassificationId::ROOT),
///     Constraint::PinServer(store),
/// ];
/// let dist = analyze(&profile, &network, &constraints, MaxFlowAlgorithm::LiftToFront)
///     .unwrap();
/// // The chatty viewer follows the store to the server.
/// assert_eq!(dist.machine_of(viewer), MachineId::SERVER);
/// ```
pub fn analyze(
    profile: &IccProfile,
    network: &NetworkProfile,
    constraints: &[Constraint],
    algorithm: MaxFlowAlgorithm,
) -> ComResult<Distribution> {
    // Satisfiability pre-check: union the colocation constraints (explicit
    // plus non-remotable pairs) and look for a group pinned to both
    // machines. Every contradiction the min-cut would discover as an
    // infinite cut is caught here, without paying for a max-flow run.
    let mut sink = crate::lint::DiagnosticSink::new();
    let mut non_remotable: Vec<_> = profile.non_remotable.iter().copied().collect();
    non_remotable.sort();
    let label = |id: ClassificationId| id.to_string();
    if !crate::lint::satisfiability::check_constraints(
        constraints,
        &non_remotable,
        &label,
        &mut sink,
    ) {
        return Err(ComError::App(format!(
            "location constraints are contradictory\n{}",
            sink.render_human()
        )));
    }

    let graph = IccGraph::build(profile, network);
    let n = graph.node_count();
    let (mut flow, source, sink) = build_flow_network(&graph, constraints);

    let cut = min_cut(&mut flow, source, sink, algorithm);
    if cut.cut_value >= INFINITE {
        return Err(ComError::App(
            "location constraints are contradictory: the minimum cut severs an \
             infinite-capacity (constraint or non-remotable) edge"
                .to_string(),
        ));
    }

    let mut placement = HashMap::with_capacity(n);
    for (node, class) in graph.nodes.iter().enumerate() {
        let machine = if cut.source_side[node] {
            MachineId::CLIENT
        } else {
            MachineId::SERVER
        };
        placement.insert(*class, machine);
    }
    let predicted_comm_us = graph.crossing_time_us(&cut.source_side[..n]);

    Ok(Distribution {
        placement,
        predicted_comm_us,
        network_name: graph.network_name,
    })
}

/// Builds the flow network of a concrete ICC graph: one node per
/// classification plus a source (client) and sink (server), communication
/// edges at their time-derived capacities, constraint and non-remotable
/// edges at infinite capacity. Returns `(network, source, sink)`.
///
/// Edge *insertion order* is deterministic — communication edges in
/// `weights_us` (BTreeMap) order, then non-remotable pairs in sorted
/// order, then constraints in argument order — so two calls over graphs
/// built from the same profile yield index-compatible networks. The
/// warm-started sweep ([`crate::sweep`]) relies on this to replay a
/// previous grid point's flow snapshot onto the next point's network.
pub(crate) fn build_flow_network(
    graph: &IccGraph,
    constraints: &[Constraint],
) -> (FlowNetwork, usize, usize) {
    let n = graph.node_count();
    let source = n;
    let sink = n + 1;
    let mut flow = FlowNetwork::new(n + 2);

    for ((a, b), weight) in &graph.weights_us {
        flow.add_undirected(*a, *b, IccGraph::capacity_of(*weight));
    }
    let mut non_remotable: Vec<_> = graph.non_remotable.iter().copied().collect();
    non_remotable.sort_unstable();
    for (a, b) in non_remotable {
        flow.add_undirected(a, b, INFINITE);
    }
    for constraint in constraints {
        match constraint {
            Constraint::PinClient(class) => {
                if let Some(&node) = graph.index.get(class) {
                    flow.add_undirected(source, node, INFINITE);
                }
            }
            Constraint::PinServer(class) => {
                if let Some(&node) = graph.index.get(class) {
                    flow.add_undirected(node, sink, INFINITE);
                }
            }
            Constraint::Colocate(a, b) => {
                if let (Some(&na), Some(&nb)) = (graph.index.get(a), graph.index.get(b)) {
                    if na != nb {
                        flow.add_undirected(na, nb, INFINITE);
                    }
                }
            }
        }
    }
    (flow, source, sink)
}

#[cfg(test)]
mod tests {
    use super::*;
    use coign_com::{Clsid, Iid};
    use coign_dcom::NetworkModel;

    fn c(n: u32) -> ClassificationId {
        ClassificationId(n)
    }

    fn network() -> NetworkProfile {
        NetworkProfile::exact(&NetworkModel::ethernet_10baset())
    }

    /// Root ↔ viewer(1): light. viewer(1) ↔ reader(2): light.
    /// reader(2) ↔ storage(3): heavy. Storage pinned to server.
    fn document_profile() -> IccProfile {
        let iid = Iid::from_name("IX");
        let mut p = IccProfile::new();
        for (id, name) in [(1, "Viewer"), (2, "Reader"), (3, "Storage")] {
            p.record_instance(c(id), Clsid::from_name(name));
        }
        // The user chats constantly with the viewer (GUI traffic)...
        for _ in 0..50 {
            p.record_message(ClassificationId::ROOT, c(1), iid, 0, 100);
        }
        // ...the viewer asks the reader for the document once...
        p.record_message(c(1), c(2), iid, 0, 2_000);
        // ...and the reader hammers storage.
        for _ in 0..200 {
            p.record_message(c(2), c(3), iid, 0, 60_000);
        }
        p
    }

    #[test]
    fn heavy_talkers_follow_their_pinned_peers() {
        let profile = document_profile();
        let constraints = vec![
            Constraint::PinClient(ClassificationId::ROOT),
            Constraint::PinServer(c(3)),
        ];
        let dist = analyze(
            &profile,
            &network(),
            &constraints,
            MaxFlowAlgorithm::LiftToFront,
        )
        .unwrap();
        // The reader chats constantly with storage → joins it on the server.
        assert_eq!(dist.machine_of(c(3)), MachineId::SERVER);
        assert_eq!(dist.machine_of(c(2)), MachineId::SERVER);
        // The viewer talks lightly → stays with the root on the client.
        assert_eq!(dist.machine_of(c(1)), MachineId::CLIENT);
        assert_eq!(dist.machine_of(ClassificationId::ROOT), MachineId::CLIENT);
        // Predicted cost is the viewer→reader link only.
        assert!(dist.predicted_comm_us > 0.0);
        let net = network();
        let full = IccGraph::build(&profile, &net).total_time_us();
        assert!(dist.predicted_comm_us < full / 10.0);
    }

    #[test]
    fn all_algorithms_choose_equal_cost_distributions() {
        let profile = document_profile();
        let constraints = vec![
            Constraint::PinClient(ClassificationId::ROOT),
            Constraint::PinServer(c(3)),
        ];
        let costs: Vec<f64> = MaxFlowAlgorithm::ALL
            .iter()
            .map(|&alg| {
                analyze(&profile, &network(), &constraints, alg)
                    .unwrap()
                    .predicted_comm_us
            })
            .collect();
        for w in costs.windows(2) {
            assert!((w[0] - w[1]).abs() < 1e-6);
        }
    }

    #[test]
    fn non_remotable_interfaces_force_colocation() {
        let mut profile = document_profile();
        // Viewer and reader share memory: they cannot be split.
        profile.record_non_remotable(c(1), c(2));
        let constraints = vec![
            Constraint::PinClient(ClassificationId::ROOT),
            Constraint::PinServer(c(3)),
        ];
        let dist = analyze(
            &profile,
            &network(),
            &constraints,
            MaxFlowAlgorithm::LiftToFront,
        )
        .unwrap();
        assert_eq!(dist.machine_of(c(1)), dist.machine_of(c(2)));
    }

    #[test]
    fn contradictory_constraints_are_detected() {
        let mut profile = document_profile();
        profile.record_non_remotable(c(1), c(3));
        let constraints = vec![Constraint::PinClient(c(1)), Constraint::PinServer(c(3))];
        let err = analyze(
            &profile,
            &network(),
            &constraints,
            MaxFlowAlgorithm::LiftToFront,
        )
        .unwrap_err();
        assert!(matches!(err, ComError::App(_)));
    }

    #[test]
    fn contradictions_never_invoke_min_cut() {
        // The satisfiability pre-check rejects the constraint set before a
        // flow network is ever built; the (thread-local) min-cut invocation
        // counter proves the solver did not run.
        let mut profile = document_profile();
        profile.record_non_remotable(c(1), c(3));
        let constraints = vec![Constraint::PinClient(c(1)), Constraint::PinServer(c(3))];
        let before = coign_flow::min_cut_invocations();
        let err = analyze(
            &profile,
            &network(),
            &constraints,
            MaxFlowAlgorithm::LiftToFront,
        )
        .unwrap_err();
        assert_eq!(coign_flow::min_cut_invocations(), before);
        let ComError::App(detail) = err else {
            panic!("expected App error");
        };
        assert!(detail.contains("COIGN020"), "{detail}");
    }

    #[test]
    fn colocate_constraint_binds_pairs() {
        let profile = document_profile();
        let constraints = vec![
            Constraint::PinClient(ClassificationId::ROOT),
            Constraint::PinServer(c(3)),
            // Tie the viewer to storage explicitly.
            Constraint::Colocate(c(1), c(3)),
        ];
        let dist = analyze(
            &profile,
            &network(),
            &constraints,
            MaxFlowAlgorithm::LiftToFront,
        )
        .unwrap();
        assert_eq!(dist.machine_of(c(1)), MachineId::SERVER);
    }

    #[test]
    fn unconstrained_profile_keeps_everything_on_client() {
        // With only the ROOT pinned, splitting anything would cost > 0, so
        // the min cut keeps the application whole.
        let profile = document_profile();
        let constraints = vec![Constraint::PinClient(ClassificationId::ROOT)];
        let dist = analyze(
            &profile,
            &network(),
            &constraints,
            MaxFlowAlgorithm::LiftToFront,
        )
        .unwrap();
        assert_eq!(dist.count_on(MachineId::SERVER), 0);
        assert_eq!(dist.predicted_comm_us, 0.0);
    }

    #[test]
    fn distribution_roundtrips_through_codec() {
        let profile = document_profile();
        let constraints = vec![
            Constraint::PinClient(ClassificationId::ROOT),
            Constraint::PinServer(c(3)),
        ];
        let dist = analyze(
            &profile,
            &network(),
            &constraints,
            MaxFlowAlgorithm::LiftToFront,
        )
        .unwrap();
        let back = Distribution::decode(&dist.encode()).unwrap();
        assert_eq!(back, dist);
    }

    #[test]
    fn instances_on_weights_by_instance_count() {
        let mut profile = document_profile();
        // Classification 1 has 10 instances, 2 and 3 have 1 each.
        for _ in 0..9 {
            profile.record_instance(c(1), Clsid::from_name("Viewer"));
        }
        let constraints = vec![
            Constraint::PinClient(ClassificationId::ROOT),
            Constraint::PinServer(c(3)),
        ];
        let dist = analyze(
            &profile,
            &network(),
            &constraints,
            MaxFlowAlgorithm::LiftToFront,
        )
        .unwrap();
        assert_eq!(dist.instances_on(&profile, MachineId::CLIENT), 10);
        assert_eq!(dist.instances_on(&profile, MachineId::SERVER), 2);
    }
}
