//! Stage 4 — state-effect analysis over interface metadata.
//!
//! Every method carries a declared [`StateEffect`] (`Pure`, `ReadsState`,
//! or the conservative default `MutatesState`). This stage folds the
//! per-method declarations into a per-class **mutability verdict**: a class
//! is *immutable after construction* iff every method of every interface it
//! declares is read-only. Immutability is the first half of the
//! replication-legality proof (stage 5 adds instance sharing).
//!
//! Diagnostics:
//!
//! * **COIGN040** (info): a class that declares at least one read-only
//!   method but still has state-mutating methods — partially annotated, so
//!   the mutating remainder is what blocks replication. Classes with no
//!   read-only annotations at all stay silent: the conservative default is
//!   already speaking for them, and reporting it would bury annotated apps
//!   in noise.
//! * **COIGN041** (warn): the same interface name is declared by several
//!   classes with *different* effect annotations. The analyzer cannot trust
//!   either declaration, so every declaring class is conservatively treated
//!   as mutable.
//! * **COIGN042** (info): an interface whose every method is read-only —
//!   components reached exclusively through it can be duplicated without
//!   their state diverging.

use crate::lint::diag::{DiagnosticSink, Severity};
use coign_com::idl::InterfaceDesc;
use coign_com::{ClassRegistry, StateEffect};
use std::collections::BTreeMap;
use std::sync::Arc;

/// Per-class mutability verdicts derived from effect annotations.
#[derive(Debug, Clone, Default)]
pub struct EffectAnalysis {
    /// Class name → true when some method may mutate instance state (or an
    /// inconsistent interface declaration forced the conservative verdict).
    pub class_mutable: BTreeMap<String, bool>,
    /// Class name → true when the class declares at least one read-only
    /// method, i.e. somebody actually annotated it. Wholly unannotated
    /// classes are conservatively mutable but not worth diagnostics.
    pub class_annotated: BTreeMap<String, bool>,
    /// Interface name → true when every method is `Pure` or `ReadsState`.
    pub interface_read_only: BTreeMap<String, bool>,
}

impl EffectAnalysis {
    /// True when the class may mutate instance state. Unknown classes are
    /// conservatively mutable.
    pub fn is_mutable(&self, class: &str) -> bool {
        self.class_mutable.get(class).copied().unwrap_or(true)
    }

    /// True when the class declares at least one read-only method.
    pub fn is_annotated(&self, class: &str) -> bool {
        self.class_annotated.get(class).copied().unwrap_or(false)
    }

    /// Classes proven immutable after construction, in name order.
    pub fn immutable_classes(&self) -> Vec<&str> {
        self.class_mutable
            .iter()
            .filter(|(_, mutable)| !**mutable)
            .map(|(name, _)| name.as_str())
            .collect()
    }
}

/// Runs the state-effect stage over every class in the registry and returns
/// the folded per-class verdicts.
pub fn check_effects(registry: &ClassRegistry, sink: &mut DiagnosticSink) -> EffectAnalysis {
    // Collect every (interface, declaring class) pair, name-sorted for
    // deterministic reports. `ClassRegistry::all()` order is unspecified.
    let mut classes = registry.all();
    classes.sort_by(|a, b| a.name.cmp(&b.name));

    // Interface name → every distinct declaration seen (shared `Arc`s
    // collapse; only genuinely divergent re-declarations survive as extras).
    let mut declarations: BTreeMap<String, Vec<Arc<InterfaceDesc>>> = BTreeMap::new();
    for class in &classes {
        for iface in &class.interfaces {
            let seen = declarations.entry(iface.name.clone()).or_default();
            if !seen.iter().any(|d| effects_match(d, iface)) {
                seen.push(iface.clone());
            }
        }
    }

    let mut analysis = EffectAnalysis::default();
    let mut inconsistent: BTreeMap<String, bool> = BTreeMap::new();
    for (name, decls) in &declarations {
        if decls.len() > 1 {
            sink.report(
                "COIGN041",
                Severity::Warn,
                name.clone(),
                format!(
                    "interface `{name}` is declared with {} different effect annotations \
                     across registered classes; the declarations cannot all be honest, so \
                     every class declaring `{name}` is conservatively treated as mutable",
                    decls.len()
                ),
                Some(format!(
                    "share one interface description for `{name}` so its effect \
                     annotations have a single source of truth"
                )),
            );
        }
        inconsistent.insert(name.clone(), decls.len() > 1);
        let read_only = decls.len() == 1
            && decls[0]
                .methods
                .iter()
                .all(|method| method.effect.is_read_only());
        analysis.interface_read_only.insert(name.clone(), read_only);
        if read_only && !decls[0].methods.is_empty() {
            sink.report(
                "COIGN042",
                Severity::Info,
                name.clone(),
                format!(
                    "interface `{name}` is effect-pure (every method is pure or \
                     reads-state): components reached only through it can be \
                     replicated without state divergence"
                ),
                None,
            );
        }
    }

    for class in &classes {
        let mut mutating: Vec<String> = Vec::new();
        let mut read_only_declared = false;
        let mut forced_by_inconsistency = false;
        for iface in &class.interfaces {
            if inconsistent.get(&iface.name).copied().unwrap_or(false) {
                forced_by_inconsistency = true;
            }
            for method in &iface.methods {
                if method.effect == StateEffect::MutatesState {
                    mutating.push(format!("{}::{}", iface.name, method.name));
                } else {
                    read_only_declared = true;
                }
            }
        }
        let mutable = !mutating.is_empty() || forced_by_inconsistency;
        analysis.class_mutable.insert(class.name.clone(), mutable);
        analysis
            .class_annotated
            .insert(class.name.clone(), read_only_declared);
        // Only partially annotated classes are worth a note: the mutating
        // remainder is exactly what stands between them and replication.
        if mutable && read_only_declared && !mutating.is_empty() {
            sink.report(
                "COIGN040",
                Severity::Info,
                class.name.clone(),
                format!(
                    "class `{}` mutates instance state in {} ({}); it is not a \
                     replication candidate",
                    class.name,
                    if mutating.len() == 1 {
                        "one method".to_string()
                    } else {
                        format!("{} methods", mutating.len())
                    },
                    mutating.join(", ")
                ),
                Some(
                    "replication requires every method to be annotated pure or \
                     reads-state; mutating methods keep the class single-copy"
                        .to_string(),
                ),
            );
        }
    }
    analysis
}

/// True when two declarations of one interface agree method-for-method on
/// names and effects (parameter lists are stage 1's concern).
fn effects_match(a: &InterfaceDesc, b: &InterfaceDesc) -> bool {
    a.methods.len() == b.methods.len()
        && a.methods
            .iter()
            .zip(&b.methods)
            .all(|(ma, mb)| ma.name == mb.name && ma.effect == mb.effect)
}

#[cfg(test)]
mod tests {
    use super::*;
    use coign_com::idl::InterfaceBuilder;
    use coign_com::registry::ApiImports;
    use coign_com::{Iid, PType};
    use std::sync::Arc;

    struct Nop;
    impl coign_com::ComObject for Nop {
        fn invoke(
            &self,
            _ctx: &coign_com::CallCtx<'_>,
            _iid: Iid,
            _method: u32,
            _msg: &mut coign_com::Message,
        ) -> coign_com::ComResult<()> {
            Ok(())
        }
    }

    #[test]
    fn unannotated_classes_are_mutable_and_silent() {
        let reg = ClassRegistry::new();
        let iface = InterfaceBuilder::new("IPlain")
            .method("Do", |m| m.input("x", PType::I4))
            .build();
        reg.register("Plain", vec![iface], ApiImports::NONE, |_, _| Arc::new(Nop));
        let mut sink = DiagnosticSink::new();
        let analysis = check_effects(&reg, &mut sink);
        assert!(analysis.is_mutable("Plain"));
        assert!(analysis.immutable_classes().is_empty());
        assert!(sink.is_empty(), "{:?}", sink.diagnostics());
    }

    #[test]
    fn fully_read_only_class_is_immutable_with_pure_interface_fact() {
        let reg = ClassRegistry::new();
        let iface = InterfaceBuilder::new("ILookup")
            .method("Hash", |m| m.input("data", PType::Blob).pure())
            .method("Peek", |m| m.output("v", PType::I4).reads_state())
            .build();
        reg.register("Table", vec![iface], ApiImports::NONE, |_, _| Arc::new(Nop));
        let mut sink = DiagnosticSink::new();
        let analysis = check_effects(&reg, &mut sink);
        assert!(!analysis.is_mutable("Table"));
        assert_eq!(analysis.immutable_classes(), vec!["Table"]);
        let codes: Vec<_> = sink.diagnostics().iter().map(|d| d.code).collect();
        assert_eq!(codes, vec!["COIGN042"]);
    }

    #[test]
    fn partially_annotated_class_notes_the_mutating_remainder() {
        let reg = ClassRegistry::new();
        let iface = InterfaceBuilder::new("ICache")
            .method("Fill", |m| m.input("rows", PType::Blob).mutates_state())
            .method("Get", |m| m.output("row", PType::Blob).reads_state())
            .build();
        reg.register("Cache", vec![iface], ApiImports::NONE, |_, _| Arc::new(Nop));
        let mut sink = DiagnosticSink::new();
        let analysis = check_effects(&reg, &mut sink);
        assert!(analysis.is_mutable("Cache"));
        let d = &sink.diagnostics()[0];
        assert_eq!(d.code, "COIGN040");
        assert_eq!(d.severity, Severity::Info);
        assert!(d.message.contains("ICache::Fill"));
    }

    #[test]
    fn inconsistent_redeclaration_warns_and_forces_mutable() {
        // Same interface name, two different effect annotations: the
        // (name-derived) IID collides but the declarations disagree.
        let honest = InterfaceBuilder::new("IQuery")
            .method("Run", |m| m.input("q", PType::Str).reads_state())
            .build();
        let lying = InterfaceBuilder::new("IQuery")
            .method("Run", |m| m.input("q", PType::Str))
            .build();
        let reg = ClassRegistry::new();
        reg.register("A", vec![honest], ApiImports::NONE, |_, _| Arc::new(Nop));
        reg.register("B", vec![lying], ApiImports::NONE, |_, _| Arc::new(Nop));
        let mut sink = DiagnosticSink::new();
        let analysis = check_effects(&reg, &mut sink);
        assert!(sink.diagnostics().iter().any(|d| d.code == "COIGN041"));
        assert!(analysis.is_mutable("A"));
        assert!(analysis.is_mutable("B"));
        assert!(!analysis.interface_read_only["IQuery"]);
    }

    #[test]
    fn shared_declarations_do_not_trip_the_inconsistency_check() {
        let iface = InterfaceBuilder::new("IShared")
            .method("Get", |m| m.output("v", PType::I4).reads_state())
            .build();
        let reg = ClassRegistry::new();
        reg.register("A", vec![iface.clone()], ApiImports::NONE, |_, _| {
            Arc::new(Nop)
        });
        reg.register("B", vec![iface], ApiImports::NONE, |_, _| Arc::new(Nop));
        let mut sink = DiagnosticSink::new();
        let analysis = check_effects(&reg, &mut sink);
        assert!(sink.diagnostics().iter().all(|d| d.code != "COIGN041"));
        assert!(!analysis.is_mutable("A"));
        assert!(!analysis.is_mutable("B"));
    }

    #[test]
    fn interface_with_no_methods_is_not_reported_pure() {
        let reg = ClassRegistry::new();
        reg.register(
            "Empty",
            vec![InterfaceBuilder::new("IEmpty").build()],
            ApiImports::NONE,
            |_, _| Arc::new(Nop),
        );
        let mut sink = DiagnosticSink::new();
        let analysis = check_effects(&reg, &mut sink);
        // Vacuously read-only, but an empty interface is not evidence.
        assert!(sink.is_empty());
        assert!(!analysis.is_mutable("Empty"));
    }
}
