//! Stage 3 — well-formedness lints over the application image itself.
//!
//! The binary rewriter maintains two invariants on an instrumented image:
//! the Coign runtime DLL occupies the **first** import slot (so it loads
//! before the application and can instrument COM in its address space), and
//! a single `.coign` section carries the configuration record. These lints
//! verify the invariants plus the consistency of the record's contents:
//!
//! * **COIGN030** (error): a Coign runtime DLL is imported but does not sit
//!   in the first import slot (or both runtimes are imported at once).
//! * **COIGN031** (error/warn): runtime import and `.coign` section do not
//!   come in a pair.
//! * **COIGN032** (error): a section name appears more than once.
//! * **COIGN033** (error): the image declares a component class the
//!   registry does not know.
//! * **COIGN034** (error): a stale distribution — the record's distribution
//!   places classifications its own classifier never defined.
//! * **COIGN035** (error): the configuration record (or its embedded
//!   classifier) does not decode.

use crate::classifier::InstanceClassifier;
use crate::config::ConfigRecord;
use crate::lint::diag::{DiagnosticSink, Severity};
use crate::rewriter::{COIGN_LITE_DLL, COIGN_RTE_DLL};
use coign_com::image::CONFIG_SECTION;
use coign_com::{AppImage, ClassRegistry};
use std::collections::BTreeMap;

/// Runs every image lint.
pub fn check_image(image: &AppImage, registry: &ClassRegistry, sink: &mut DiagnosticSink) {
    check_runtime_import(image, sink);
    check_sections(image, sink);
    check_classes(image, registry, sink);
    check_record(image, sink);
}

/// COIGN030: the runtime DLL, when present, must be the first import.
fn check_runtime_import(image: &AppImage, sink: &mut DiagnosticSink) {
    let rte = image.has_import(COIGN_RTE_DLL);
    let lite = image.has_import(COIGN_LITE_DLL);
    if rte && lite {
        sink.report(
            "COIGN030",
            Severity::Error,
            "import table",
            format!(
                "both {COIGN_RTE_DLL} (profiling) and {COIGN_LITE_DLL} (distribution) are \
                 imported; the runtimes are mutually exclusive"
            ),
            Some("re-run `coign instrument` or `coign analyze` to repair the image".to_string()),
        );
        return;
    }
    let runtime = if rte {
        COIGN_RTE_DLL
    } else if lite {
        COIGN_LITE_DLL
    } else {
        return;
    };
    let first = image.imports.first().map(|imp| imp.name.as_str());
    if first != Some(runtime) {
        let slot = image
            .imports
            .iter()
            .position(|imp| imp.name == runtime)
            .unwrap_or(0);
        sink.report(
            "COIGN030",
            Severity::Error,
            format!("import slot {slot}"),
            format!(
                "{runtime} is imported at slot {slot}, not slot 0; the Coign runtime must \
                 load before the application and its DLLs"
            ),
            Some("re-run `coign instrument` to restore the import order".to_string()),
        );
    }
}

/// COIGN031/COIGN032: section multiplicity and the import/section pairing.
fn check_sections(image: &AppImage, sink: &mut DiagnosticSink) {
    let mut counts: BTreeMap<&str, usize> = BTreeMap::new();
    for section in &image.sections {
        *counts.entry(section.name.as_str()).or_insert(0) += 1;
    }
    for (name, count) in &counts {
        if *count > 1 {
            sink.report(
                "COIGN032",
                Severity::Error,
                format!("section `{name}`"),
                format!("section `{name}` appears {count} times; section names must be unique"),
                Some("strip and re-instrument the image".to_string()),
            );
        }
    }
    let instrumented = image.has_import(COIGN_RTE_DLL) || image.has_import(COIGN_LITE_DLL);
    let has_record = counts.contains_key(CONFIG_SECTION);
    if instrumented && !has_record {
        sink.report(
            "COIGN031",
            Severity::Error,
            format!("section `{CONFIG_SECTION}`"),
            "a Coign runtime is imported but the image carries no configuration record; \
             the runtime would find no instructions at load time"
                .to_string(),
            Some("re-run `coign instrument` to write a fresh record".to_string()),
        );
    } else if !instrumented && has_record {
        sink.report(
            "COIGN031",
            Severity::Warn,
            format!("section `{CONFIG_SECTION}`"),
            "the image carries a configuration record but imports no Coign runtime; \
             the record is dead weight"
                .to_string(),
            Some("run `coign strip` to remove it, or `coign instrument` to use it".to_string()),
        );
    }
}

/// COIGN033: every class the image declares must be registered.
fn check_classes(image: &AppImage, registry: &ClassRegistry, sink: &mut DiagnosticSink) {
    for clsid in &image.classes {
        if registry.get(*clsid).is_err() {
            sink.report(
                "COIGN033",
                Severity::Error,
                clsid.to_string(),
                format!(
                    "image `{}` declares component class {clsid}, which is not in the \
                     class registry; its instances can never be created or profiled",
                    image.name
                ),
                Some("register the class with the application, or drop it from the image".into()),
            );
        }
    }
}

/// COIGN034/COIGN035: the configuration record decodes, and its
/// distribution only references classifications the classifier defines.
fn check_record(image: &AppImage, sink: &mut DiagnosticSink) {
    let Some(bytes) = image.config_record() else {
        return;
    };
    let record = match ConfigRecord::decode(bytes) {
        Ok(record) => record,
        Err(e) => {
            sink.report(
                "COIGN035",
                Severity::Error,
                format!("section `{CONFIG_SECTION}`"),
                format!("configuration record does not decode: {e}"),
                Some("strip and re-instrument the image".to_string()),
            );
            return;
        }
    };
    let classifier = match InstanceClassifier::decode(&record.classifier) {
        Ok(classifier) => classifier,
        Err(e) => {
            sink.report(
                "COIGN035",
                Severity::Error,
                format!("section `{CONFIG_SECTION}`"),
                format!("embedded instance classifier does not decode: {e}"),
                Some("strip and re-instrument the image".to_string()),
            );
            return;
        }
    };
    let Some(distribution) = &record.distribution else {
        return;
    };
    // Classification ids are dense: ROOT (0) plus 1..=classification_count().
    let known = classifier.classification_count();
    let mut stale: Vec<u32> = distribution
        .placement
        .keys()
        .map(|class| class.0)
        .filter(|id| *id > known)
        .collect();
    stale.sort_unstable();
    for id in stale {
        sink.report(
            "COIGN034",
            Severity::Error,
            format!("classification #{id}"),
            format!(
                "the realized distribution places classification #{id}, but the record's \
                 classifier only defines {known} classification(s); the distribution is \
                 stale relative to the classifier"
            ),
            Some("re-run `coign profile` and `coign analyze` to refresh the record".to_string()),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::Distribution;
    use crate::classifier::{ClassificationId, ClassifierKind};
    use crate::config::RuntimeMode;
    use crate::rewriter;
    use coign_com::image::ConfigSection;
    use coign_com::registry::ApiImports;
    use coign_com::{Clsid, ComRuntime, MachineId};
    use std::collections::HashMap;
    use std::sync::Arc;

    struct Nop;
    impl coign_com::ComObject for Nop {
        fn invoke(
            &self,
            _ctx: &coign_com::CallCtx<'_>,
            _iid: coign_com::Iid,
            _method: u32,
            _msg: &mut coign_com::Message,
        ) -> coign_com::ComResult<()> {
            Ok(())
        }
    }

    fn registry() -> ComRuntime {
        let rt = ComRuntime::single_machine();
        rt.registry()
            .register("Story", vec![], ApiImports::NONE, |_, _| Arc::new(Nop));
        rt
    }

    fn instrumented() -> AppImage {
        let mut image = AppImage::new("octarine.exe", vec![Clsid::from_name("Story")]);
        rewriter::instrument(&mut image, &InstanceClassifier::new(ClassifierKind::Ifcb));
        image
    }

    fn run(image: &AppImage) -> DiagnosticSink {
        let rt = registry();
        let mut sink = DiagnosticSink::new();
        check_image(image, rt.registry(), &mut sink);
        sink
    }

    #[test]
    fn healthy_instrumented_image_is_clean() {
        assert!(run(&instrumented()).is_empty());
    }

    #[test]
    fn uninstrumented_image_is_clean() {
        let image = AppImage::new("octarine.exe", vec![Clsid::from_name("Story")]);
        assert!(run(&image).is_empty());
    }

    #[test]
    fn runtime_not_first_is_an_error() {
        let mut image = instrumented();
        // Demote the runtime to the back of the import table.
        let runtime = image.imports.remove(0);
        image.imports.push(runtime);
        let sink = run(&image);
        assert!(sink.diagnostics().iter().any(|d| d.code == "COIGN030"));
        assert!(sink.has_errors());
    }

    #[test]
    fn both_runtimes_imported_is_an_error() {
        let mut image = instrumented();
        image.insert_import_first(rewriter::COIGN_LITE_DLL);
        let sink = run(&image);
        let d = sink
            .diagnostics()
            .iter()
            .find(|d| d.code == "COIGN030")
            .unwrap();
        assert!(d.message.contains("mutually exclusive"));
    }

    #[test]
    fn missing_record_under_runtime_is_an_error() {
        let mut image = instrumented();
        image.remove_section(CONFIG_SECTION);
        let sink = run(&image);
        let d = sink
            .diagnostics()
            .iter()
            .find(|d| d.code == "COIGN031")
            .unwrap();
        assert_eq!(d.severity, Severity::Error);
    }

    #[test]
    fn orphaned_record_is_a_warning() {
        let mut image = instrumented();
        image.remove_import(rewriter::COIGN_RTE_DLL);
        let sink = run(&image);
        let d = sink
            .diagnostics()
            .iter()
            .find(|d| d.code == "COIGN031")
            .unwrap();
        assert_eq!(d.severity, Severity::Warn);
        assert!(!sink.has_errors());
    }

    #[test]
    fn duplicate_sections_are_an_error() {
        let mut image = instrumented();
        let existing = image.section(CONFIG_SECTION).unwrap().clone();
        image.sections.push(ConfigSection {
            name: existing.name,
            data: existing.data,
        });
        let sink = run(&image);
        assert!(sink.diagnostics().iter().any(|d| d.code == "COIGN032"));
    }

    #[test]
    fn unregistered_image_classes_are_an_error() {
        let mut image = instrumented();
        image.classes.push(Clsid::from_name("GhostClass"));
        let sink = run(&image);
        let d = sink
            .diagnostics()
            .iter()
            .find(|d| d.code == "COIGN033")
            .unwrap();
        assert!(d.message.contains("not in the"));
    }

    #[test]
    fn garbage_record_is_an_error() {
        let mut image = instrumented();
        image.set_config_record(vec![0xde, 0xad, 0xbe, 0xef]);
        let sink = run(&image);
        assert!(sink.diagnostics().iter().any(|d| d.code == "COIGN035"));
    }

    #[test]
    fn stale_distribution_is_an_error() {
        let mut image = instrumented();
        let mut record = rewriter::read_config(&image).unwrap();
        // The fresh classifier defines zero classifications, yet the
        // distribution places #7 — a record from a previous profile.
        record.mode = RuntimeMode::Distributed;
        record.distribution = Some(Distribution {
            placement: HashMap::from([
                (ClassificationId::ROOT, MachineId::CLIENT),
                (ClassificationId(7), MachineId::SERVER),
            ]),
            predicted_comm_us: 0.0,
            network_name: "test".into(),
        });
        image.set_config_record(record.encode());
        let sink = run(&image);
        let d = sink
            .diagnostics()
            .iter()
            .find(|d| d.code == "COIGN034")
            .unwrap();
        assert_eq!(d.subject, "classification #7");
        // ROOT is always valid, so exactly one stale id fires.
        assert_eq!(
            sink.diagnostics()
                .iter()
                .filter(|d| d.code == "COIGN034")
                .count(),
            1
        );
    }
}
