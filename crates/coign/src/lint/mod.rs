//! `coign check` — profiling-free static analysis over component metadata.
//!
//! The profiling pipeline only tells the truth about scenarios somebody ran;
//! this module reports everything Coign can know about an application
//! *without* running it, from three inputs: the interface metadata of the
//! registered component classes, the full location-constraint set, and the
//! modeled binary image. Three analysis stages push typed [`Diagnostic`]s
//! into one [`DiagnosticSink`]:
//!
//! 1. [`remotability`] — walk every method parameter of every registered
//!    interface; flag opaque-pointer parameters and interface pointers
//!    nobody declares (COIGN010–COIGN012).
//! 2. [`satisfiability`] — close the colocation constraints under union and
//!    prove that no group is pinned to both machines (COIGN020–COIGN021).
//! 3. [`image_lints`] — verify the rewriter's invariants on the binary
//!    image and its configuration record (COIGN030–COIGN035).
//! 4. [`effects`] — fold per-method [`coign_com::StateEffect`] annotations
//!    into per-class mutability verdicts (COIGN040–COIGN042).
//! 5. [`sharing`] — a union-find flow over interface-pointer parameters
//!    computing which classes are reachable from multiple holders;
//!    `shared ∧ mutable` is non-replicable (COIGN043), immutable classes
//!    are proven replicable (COIGN044).
//!
//! The same stages guard the pipeline: [`crate::runtime::check_constraints`]
//! runs stage 2 before `analyze` ever builds a flow network, so an
//! unsatisfiable constraint set fails fast with the **same rendered
//! diagnostics** `coign check` prints — min-cut is never invoked on a
//! contradiction. Stages 4 and 5 feed `coign place --replicate`: only
//! classes they prove replicable may be duplicated onto extra machines
//! ([`crate::multiway::ReplicationPlan`]).

#![deny(missing_docs)]

pub mod diag;
pub mod effects;
pub mod image_lints;
pub mod remotability;
pub mod satisfiability;
pub mod sharing;

pub use diag::{Diagnostic, DiagnosticSink, Severity};
pub use effects::EffectAnalysis;
pub use sharing::ReplicationReport;

use crate::application::Application;
use crate::classifier::ClassificationId;
use crate::config::ConfigRecord;
use crate::constraints::{Constraint, NamedConstraint};
use crate::profile::IccProfile;
use coign_com::{AppImage, ClassRegistry, ComRuntime};

/// Human label for a classification: the component class name when the
/// profile knows it, the bare id otherwise, and `user` for the root.
pub fn classification_label(
    profile: &IccProfile,
    registry: &ClassRegistry,
    id: ClassificationId,
) -> String {
    if id == ClassificationId::ROOT {
        return "user (c:root)".to_string();
    }
    match profile
        .class_of
        .get(&id)
        .and_then(|clsid| registry.get(*clsid).ok())
    {
        Some(desc) => format!("{} ({})", desc.name, id),
        None => id.to_string(),
    }
}

/// Stage 2 as one call: named-constraint resolution checks plus
/// satisfiability of the colocation closure. Returns `true` when the
/// constraint set admits a distribution.
///
/// Both `coign check` and the analysis pipeline call this, so a
/// contradiction produces byte-identical diagnostics on either path.
pub fn check_constraint_stage(
    profile: &IccProfile,
    registry: &ClassRegistry,
    named: &[NamedConstraint],
    constraints: &[Constraint],
    sink: &mut DiagnosticSink,
) -> bool {
    satisfiability::check_named(named, registry, sink);
    let mut non_remotable: Vec<_> = profile.non_remotable.iter().copied().collect();
    non_remotable.sort();
    let label = |id: ClassificationId| classification_label(profile, registry, id);
    satisfiability::check_constraints(constraints, &non_remotable, &label, sink)
}

/// Stages 4 and 5 as one call: state-effect folding followed by the
/// instance-sharing flow. Emits COIGN040–COIGN044 into the sink and
/// returns the replication-legality verdicts `coign place --replicate`
/// consumes.
pub fn analyze_replication(
    registry: &ClassRegistry,
    sink: &mut DiagnosticSink,
) -> sharing::ReplicationReport {
    let effect_analysis = effects::check_effects(registry, sink);
    sharing::check_sharing(registry, &effect_analysis, sink)
}

/// Runs all five stages over an application image — the engine behind
/// `coign check`. Needs no profiling data: when the image's configuration
/// record holds an accumulated profile it is used to name classifications
/// and recover recorded non-remotable pairs; otherwise stage 2 runs over
/// the purely static constraint set.
pub fn check_app_image(image: &AppImage, app: &dyn Application) -> DiagnosticSink {
    let rt = ComRuntime::single_machine();
    app.register(&rt);
    let mut sink = DiagnosticSink::new();

    remotability::check_registry(rt.registry(), &mut sink);
    analyze_replication(rt.registry(), &mut sink);

    let profile = image
        .config_record()
        .and_then(|bytes| ConfigRecord::decode(bytes).ok())
        .map(|record| record.profile)
        .unwrap_or_default();
    let named = app.explicit_constraints();
    let constraints = crate::runtime::derive_constraints(app, &profile);
    check_constraint_stage(&profile, rt.registry(), &named, &constraints, &mut sink);

    image_lints::check_image(image, rt.registry(), &mut sink);
    sink
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rewriter;
    use coign_com::registry::ApiImports;
    use coign_com::{Clsid, ComResult, MachineId};
    use std::sync::Arc;

    struct Nop;
    impl coign_com::ComObject for Nop {
        fn invoke(
            &self,
            _ctx: &coign_com::CallCtx<'_>,
            _iid: coign_com::Iid,
            _method: u32,
            _msg: &mut coign_com::Message,
        ) -> ComResult<()> {
            Ok(())
        }
    }

    struct TwoClassApp {
        named: Vec<NamedConstraint>,
    }

    impl Application for TwoClassApp {
        fn name(&self) -> &str {
            "twoclass"
        }
        fn register(&self, rt: &ComRuntime) {
            rt.registry()
                .register("Window", vec![], ApiImports::GUI, |_, _| Arc::new(Nop));
            rt.registry()
                .register("Store", vec![], ApiImports::STORAGE, |_, _| Arc::new(Nop));
        }
        fn scenarios(&self) -> Vec<&'static str> {
            vec![]
        }
        fn run_scenario(&self, _rt: &ComRuntime, _scenario: &str) -> ComResult<()> {
            Ok(())
        }
        fn image(&self) -> AppImage {
            AppImage::new(
                "twoclass.exe",
                vec![Clsid::from_name("Window"), Clsid::from_name("Store")],
            )
        }
        fn explicit_constraints(&self) -> Vec<NamedConstraint> {
            self.named.clone()
        }
    }

    #[test]
    fn labels_prefer_class_names() {
        let rt = ComRuntime::single_machine();
        rt.registry()
            .register("Story", vec![], ApiImports::NONE, |_, _| Arc::new(Nop));
        let mut profile = IccProfile::new();
        profile.record_instance(ClassificationId(3), Clsid::from_name("Story"));
        assert_eq!(
            classification_label(&profile, rt.registry(), ClassificationId(3)),
            "Story (c:3)"
        );
        assert_eq!(
            classification_label(&profile, rt.registry(), ClassificationId::ROOT),
            "user (c:root)"
        );
        // Unprofiled classification: bare id.
        assert_eq!(
            classification_label(&profile, rt.registry(), ClassificationId(9)),
            "c:9"
        );
    }

    #[test]
    fn uninstrumented_app_checks_clean() {
        let app = TwoClassApp { named: vec![] };
        let sink = check_app_image(&app.image(), &app);
        assert!(!sink.has_errors(), "{}", sink.render_human());
    }

    #[test]
    fn instrumented_app_checks_clean_without_any_profile() {
        let app = TwoClassApp { named: vec![] };
        let mut image = app.image();
        rewriter::instrument(
            &mut image,
            &crate::classifier::InstanceClassifier::new(crate::classifier::ClassifierKind::Ifcb),
        );
        let sink = check_app_image(&image, &app);
        assert!(!sink.has_errors(), "{}", sink.render_human());
    }

    #[test]
    fn unknown_named_constraint_is_an_error() {
        let app = TwoClassApp {
            named: vec![NamedConstraint::Absolute(
                "NoSuchClass".into(),
                MachineId::SERVER,
            )],
        };
        let sink = check_app_image(&app.image(), &app);
        assert!(sink.has_errors());
        assert!(sink.diagnostics().iter().any(|d| d.code == "COIGN021"));
    }
}
