//! Stage 1 — remotability analysis over interface metadata.
//!
//! Walks every method and parameter of every interface declared by a
//! registered class — the static equivalent of what the profiling informer
//! learns call by call — and reports:
//!
//! * **COIGN010** (warn): a parameter whose type contains an opaque pointer;
//!   the standard marshaler cannot transfer it, so the whole interface is
//!   non-remotable.
//! * **COIGN011** (warn): an interface-pointer parameter whose target IID is
//!   not declared by any registered class; the analyzer cannot check the
//!   referenced interface's remotability.
//! * **COIGN012** (info): the resulting colocation fact for each
//!   non-remotable interface — its endpoints can never be split across
//!   machines.

use crate::lint::diag::{DiagnosticSink, Severity};
use coign_com::idl::InterfaceDesc;
use coign_com::{ClassRegistry, Iid};
use std::collections::{BTreeMap, HashSet};
use std::sync::Arc;

/// Runs the remotability stage over every interface in the registry.
pub fn check_registry(registry: &ClassRegistry, sink: &mut DiagnosticSink) {
    let declared = registry.declared_iids();
    // Interface descriptions are shared between classes; analyze each one
    // once, in name order for deterministic reports.
    let mut interfaces: BTreeMap<String, Arc<InterfaceDesc>> = BTreeMap::new();
    for class in registry.all() {
        for iface in &class.interfaces {
            interfaces
                .entry(iface.name.clone())
                .or_insert_with(|| iface.clone());
        }
    }
    for iface in interfaces.values() {
        check_interface(iface, &declared, sink);
    }
}

/// Analyzes one interface: every parameter of every method, then the
/// interface-level colocation fact.
fn check_interface(iface: &InterfaceDesc, declared: &HashSet<Iid>, sink: &mut DiagnosticSink) {
    for (method_id, method) in iface.methods.iter().enumerate() {
        for param in &method.params {
            let subject = format!("{}::{}({})", iface.name, method.name, param.name);
            if !param.ty.is_remotable() {
                sink.report(
                    "COIGN010",
                    Severity::Warn,
                    subject.clone(),
                    format!(
                        "parameter `{}` of method #{method_id} has an opaque-pointer type \
                         ({:?}); the standard marshaler cannot transfer it, so `{}` is \
                         non-remotable",
                        param.name, param.ty, iface.name
                    ),
                    Some(format!(
                        "replace the raw pointer with a marshalable type, or accept that \
                         both endpoints of `{}` are colocated",
                        iface.name
                    )),
                );
            }
            let mut referenced = Vec::new();
            param.ty.collect_interface_iids(&mut referenced);
            referenced.sort();
            referenced.dedup();
            for iid in referenced {
                if !declared.contains(&iid) {
                    sink.report(
                        "COIGN011",
                        Severity::Warn,
                        subject.clone(),
                        format!(
                            "interface-pointer parameter `{}` references {iid}, which no \
                             registered class declares; its remotability cannot be checked",
                            param.name
                        ),
                        Some(
                            "declare the referenced interface on a registered class so the \
                             analyzer can inspect its signature"
                                .to_string(),
                        ),
                    );
                }
            }
        }
    }
    if !iface.remotable {
        sink.report(
            "COIGN012",
            Severity::Info,
            iface.name.clone(),
            format!(
                "interface `{}` is non-remotable: every pair of components communicating \
                 through it will be pinned to one machine",
                iface.name
            ),
            None,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use coign_com::idl::InterfaceBuilder;
    use coign_com::registry::ApiImports;
    use coign_com::PType;

    struct Nop;
    impl coign_com::ComObject for Nop {
        fn invoke(
            &self,
            _ctx: &coign_com::CallCtx<'_>,
            _iid: Iid,
            _method: u32,
            _msg: &mut coign_com::Message,
        ) -> coign_com::ComResult<()> {
            Ok(())
        }
    }

    fn registry_with(interfaces: Vec<Arc<InterfaceDesc>>) -> ClassRegistry {
        let reg = ClassRegistry::new();
        reg.register("Holder", interfaces, ApiImports::NONE, |_, _| Arc::new(Nop));
        reg
    }

    #[test]
    fn clean_interfaces_report_nothing() {
        let iface = InterfaceBuilder::new("IClean")
            .method("Get", |m| m.input("key", PType::Str).output("v", PType::I4))
            .build();
        let mut sink = DiagnosticSink::new();
        check_registry(&registry_with(vec![iface]), &mut sink);
        assert!(sink.is_empty(), "{:?}", sink.diagnostics());
    }

    #[test]
    fn opaque_params_warn_and_emit_colocation_fact() {
        let iface = InterfaceBuilder::new("IShared")
            .method("Map", |m| m.input("handle", PType::Opaque))
            .method("Size", |m| m.output("bytes", PType::I8))
            .build();
        let mut sink = DiagnosticSink::new();
        check_registry(&registry_with(vec![iface]), &mut sink);
        let codes: Vec<_> = sink.diagnostics().iter().map(|d| d.code).collect();
        assert_eq!(codes, vec!["COIGN010", "COIGN012"]);
        assert_eq!(sink.diagnostics()[0].subject, "IShared::Map(handle)");
        assert!(sink.diagnostics()[0].message.contains("non-remotable"));
    }

    #[test]
    fn opaque_inside_structs_and_arrays_is_found() {
        let iface = InterfaceBuilder::new("INested")
            .method("Put", |m| {
                m.input(
                    "rec",
                    PType::Struct(vec![PType::I4, PType::Array(Box::new(PType::Opaque))]),
                )
            })
            .build();
        let mut sink = DiagnosticSink::new();
        check_registry(&registry_with(vec![iface]), &mut sink);
        assert!(sink.diagnostics().iter().any(|d| d.code == "COIGN010"));
    }

    #[test]
    fn undeclared_interface_pointers_warn() {
        let iface = InterfaceBuilder::new("IFactory")
            .method("Make", |m| {
                m.output("obj", PType::Interface(Iid::from_name("INeverDeclared")))
            })
            .build();
        let mut sink = DiagnosticSink::new();
        check_registry(&registry_with(vec![iface]), &mut sink);
        assert_eq!(sink.diagnostics().len(), 1);
        let d = &sink.diagnostics()[0];
        assert_eq!(d.code, "COIGN011");
        assert_eq!(d.severity, Severity::Warn);
        assert!(d.message.contains("which no"));
        assert!(d.subject.contains("IFactory::Make(obj)"));
    }

    #[test]
    fn declared_interface_pointers_are_fine() {
        let target = InterfaceBuilder::new("ITarget").build();
        let iface = InterfaceBuilder::new("IFactory")
            .method("Make", |m| m.output("obj", PType::Interface(target.iid)))
            .build();
        let mut sink = DiagnosticSink::new();
        check_registry(&registry_with(vec![target, iface]), &mut sink);
        assert!(sink.is_empty());
    }

    #[test]
    fn shared_interfaces_are_analyzed_once() {
        let iface = InterfaceBuilder::new("IShared")
            .method("Map", |m| m.input("handle", PType::Opaque))
            .build();
        let reg = ClassRegistry::new();
        reg.register("A", vec![iface.clone()], ApiImports::NONE, |_, _| {
            Arc::new(Nop)
        });
        reg.register("B", vec![iface], ApiImports::NONE, |_, _| Arc::new(Nop));
        let mut sink = DiagnosticSink::new();
        check_registry(&reg, &mut sink);
        assert_eq!(
            sink.diagnostics()
                .iter()
                .filter(|d| d.code == "COIGN010")
                .count(),
            1
        );
    }
}
