//! Stage 5 — instance-sharing / aliasing analysis.
//!
//! Replicating an immutable class is always safe; replicating a *mutable*
//! class is safe only when no instance can be observed through more than
//! one holder (each holder then owns a private copy whose mutations nobody
//! else sees). This stage computes the conservative **holder sets**: which
//! classes (or their anonymous clients) can simultaneously hold a reference
//! to an instance of each class.
//!
//! References travel exclusively through interface-pointer parameters, so
//! the analysis is a flow over the method signatures stage 1 already
//! validated:
//!
//! 1. A union-find groups interface IIDs declared by the same class — the
//!    facets of one object alias each other (`QueryInterface` can turn any
//!    of them into any other), so a holder of one facet potentially holds
//!    them all.
//! 2. Every interface-pointer parameter of a method of class `A` is an
//!    aliasing event: for an `[in]` parameter the caller held the target
//!    and `A` receives it; for an `[out]` parameter `A` held it and the
//!    caller receives it. Both sides are holders.
//! 3. Holder sets propagate to a fixpoint: whoever holds `A` can extract
//!    everything `A` emits.
//!
//! Verdicts (`shared` means ≥ 2 distinct holders):
//!
//! * **COIGN043** (warn): `shared ∧ mutable` — replication would fork state
//!   observable through the aliases, so the class is non-replicable.
//!   Reported only for classes carrying at least one read-only annotation;
//!   wholly unannotated classes already fall to the conservative default.
//! * **COIGN044** (info): a class proven immutable after construction by
//!   stage 4 — replicable regardless of sharing, because every copy stays
//!   identical.

use crate::lint::diag::{DiagnosticSink, Severity};
use crate::lint::effects::EffectAnalysis;
use coign_com::{ClassRegistry, Iid};
use std::collections::{BTreeMap, BTreeSet};

/// Replication-legality verdicts for every registered class.
#[derive(Debug, Clone, Default)]
pub struct ReplicationReport {
    /// Classes proven replicable (immutable after construction), name-sorted.
    pub replicable: Vec<String>,
    /// Classes that are mutable *and* reachable from multiple holders —
    /// never replicable, name-sorted.
    pub mutable_shared: Vec<String>,
    /// Class name → name-sorted holder labels (declaring classes or
    /// `clients of X` pseudo-holders).
    pub holders: BTreeMap<String, BTreeSet<String>>,
}

impl ReplicationReport {
    /// True when the class may legally be duplicated onto several machines.
    pub fn is_replicable(&self, class: &str) -> bool {
        self.replicable.iter().any(|c| c == class)
    }

    /// True when at least two distinct holders can reach the class.
    pub fn is_shared(&self, class: &str) -> bool {
        self.holders.get(class).is_some_and(|h| h.len() >= 2)
    }
}

/// Union-find over interface-IID indices (smallest index wins as root, so
/// group identity is deterministic).
struct AliasForest {
    parent: Vec<usize>,
}

impl AliasForest {
    fn new(n: usize) -> Self {
        AliasForest {
            parent: (0..n).collect(),
        }
    }

    fn find(&mut self, mut x: usize) -> usize {
        while self.parent[x] != x {
            self.parent[x] = self.parent[self.parent[x]];
            x = self.parent[x];
        }
        x
    }

    fn union(&mut self, a: usize, b: usize) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra != rb {
            let (lo, hi) = (ra.min(rb), ra.max(rb));
            self.parent[hi] = lo;
        }
    }
}

/// Runs the instance-sharing stage and folds it with the stage 4 verdicts
/// into the final [`ReplicationReport`].
pub fn check_sharing(
    registry: &ClassRegistry,
    effects: &EffectAnalysis,
    sink: &mut DiagnosticSink,
) -> ReplicationReport {
    let mut classes = registry.all();
    classes.sort_by(|a, b| a.name.cmp(&b.name));

    // Deterministic index space over every declared IID.
    let mut iids: Vec<Iid> = classes
        .iter()
        .flat_map(|c| c.interfaces.iter().map(|i| i.iid))
        .collect();
    iids.sort();
    iids.dedup();
    let index_of: BTreeMap<Iid, usize> = iids.iter().enumerate().map(|(i, d)| (*d, i)).collect();

    // Facets of one class alias each other.
    let mut forest = AliasForest::new(iids.len());
    for class in &classes {
        let declared: Vec<usize> = class
            .interfaces
            .iter()
            .filter_map(|i| index_of.get(&i.iid).copied())
            .collect();
        for pair in declared.windows(2) {
            forest.union(pair[0], pair[1]);
        }
    }

    // Alias-group root → classes declaring any IID in the group.
    let mut group_classes: BTreeMap<usize, BTreeSet<String>> = BTreeMap::new();
    for class in &classes {
        for iface in &class.interfaces {
            if let Some(&idx) = index_of.get(&iface.iid) {
                let root = forest.find(idx);
                group_classes
                    .entry(root)
                    .or_default()
                    .insert(class.name.clone());
            }
        }
    }

    // Aliasing events: class A ──param──> target classes, tagged with
    // whether A emits the reference (an `[out]`/`[in,out]` parameter).
    let mut links: BTreeMap<String, BTreeSet<(String, bool)>> = BTreeMap::new();
    for class in &classes {
        for iface in &class.interfaces {
            for method in &iface.methods {
                for param in &method.params {
                    let mut referenced = Vec::new();
                    param.ty.collect_interface_iids(&mut referenced);
                    referenced.sort();
                    referenced.dedup();
                    for iid in referenced {
                        let Some(&idx) = index_of.get(&iid) else {
                            continue; // undeclared target: stage 1's COIGN011
                        };
                        let root = forest.find(idx);
                        for target in &group_classes[&root] {
                            if target == &class.name {
                                continue; // self-references add no new holder
                            }
                            links
                                .entry(target.clone())
                                .or_default()
                                .insert((class.name.clone(), param.dir.in_reply()));
                        }
                    }
                }
            }
        }
    }

    // Holder fixpoint: both sides of every aliasing event hold the target;
    // whoever holds an emitter can extract what it emits.
    let mut holders: BTreeMap<String, BTreeSet<String>> = classes
        .iter()
        .map(|c| (c.name.clone(), BTreeSet::new()))
        .collect();
    loop {
        let mut changed = false;
        for (target, events) in &links {
            let mut add: BTreeSet<String> = BTreeSet::new();
            for (via, emits) in events {
                add.insert(via.clone());
                add.insert(format!("clients of {via}"));
                if *emits {
                    // Transitive escape: holders of the emitter reach us.
                    if let Some(upstream) = holders.get(via) {
                        add.extend(upstream.iter().cloned());
                    }
                }
            }
            let set = holders.entry(target.clone()).or_default();
            let before = set.len();
            set.extend(add);
            changed |= set.len() != before;
        }
        if !changed {
            break;
        }
    }

    let mut report = ReplicationReport {
        holders,
        ..ReplicationReport::default()
    };
    for class in &classes {
        let name = &class.name;
        let shared = report.holders.get(name).is_some_and(|h| h.len() >= 2);
        if !effects.is_mutable(name) {
            report.replicable.push(name.clone());
            let sharing = if shared {
                let list: Vec<&str> = report.holders[name].iter().map(String::as_str).collect();
                format!("shared by {} holders ({})", list.len(), list.join(", "))
            } else {
                "reached from a single holder".to_string()
            };
            sink.report(
                "COIGN044",
                Severity::Info,
                name.clone(),
                format!(
                    "class `{name}` is replicable: every method is pure or reads-state, \
                     so copies can never diverge ({sharing})"
                ),
                None,
            );
        } else if shared {
            report.mutable_shared.push(name.clone());
            if effects.is_annotated(name) {
                let list: Vec<&str> = report.holders[name].iter().map(String::as_str).collect();
                sink.report(
                    "COIGN043",
                    Severity::Warn,
                    name.clone(),
                    format!(
                        "class `{name}` may mutate state and is reachable from multiple \
                         holders ({}): replicating it would fork state observable \
                         through the aliases",
                        list.join(", ")
                    ),
                    Some(
                        "annotate the remaining mutating methods (if they are honest \
                         reads) or keep the class single-copy"
                            .to_string(),
                    ),
                );
            }
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lint::effects::check_effects;
    use coign_com::idl::InterfaceBuilder;
    use coign_com::registry::ApiImports;
    use coign_com::PType;
    use std::sync::Arc;

    struct Nop;
    impl coign_com::ComObject for Nop {
        fn invoke(
            &self,
            _ctx: &coign_com::CallCtx<'_>,
            _iid: Iid,
            _method: u32,
            _msg: &mut coign_com::Message,
        ) -> coign_com::ComResult<()> {
            Ok(())
        }
    }

    fn run(reg: &ClassRegistry) -> (ReplicationReport, DiagnosticSink) {
        let mut sink = DiagnosticSink::new();
        let effects = check_effects(reg, &mut sink);
        let report = check_sharing(reg, &effects, &mut sink);
        (report, sink)
    }

    /// A mutable store whose interface is handed to two consumers, plus an
    /// immutable lookup table also handed around.
    fn shared_registry() -> ClassRegistry {
        let reg = ClassRegistry::new();
        let istore = InterfaceBuilder::new("IStore")
            .method("Put", |m| m.input("v", PType::I4).mutates_state())
            .method("Get", |m| m.output("v", PType::I4).reads_state())
            .build();
        let itable = InterfaceBuilder::new("ITable")
            .method("Lookup", |m| {
                m.input("k", PType::Str)
                    .output("v", PType::I4)
                    .reads_state()
            })
            .build();
        let store_iid = istore.iid;
        let table_iid = itable.iid;
        reg.register("Store", vec![istore], ApiImports::NONE, |_, _| {
            Arc::new(Nop)
        });
        reg.register("Table", vec![itable], ApiImports::NONE, |_, _| {
            Arc::new(Nop)
        });
        let iworker = InterfaceBuilder::new("IWorker")
            .method("Bind", |m| {
                m.input("store", PType::Interface(store_iid))
                    .input("table", PType::Interface(table_iid))
                    .mutates_state()
            })
            .build();
        let ireport = InterfaceBuilder::new("IReport")
            .method("Render", |m| {
                m.input("store", PType::Interface(store_iid)).reads_state()
            })
            .build();
        reg.register("Worker", vec![iworker], ApiImports::NONE, |_, _| {
            Arc::new(Nop)
        });
        reg.register("Report", vec![ireport], ApiImports::NONE, |_, _| {
            Arc::new(Nop)
        });
        reg
    }

    #[test]
    fn shared_mutable_class_is_flagged_non_replicable() {
        let (report, sink) = run(&shared_registry());
        assert!(report.is_shared("Store"));
        assert!(!report.is_replicable("Store"));
        assert_eq!(report.mutable_shared, vec!["Store".to_string()]);
        let d = sink
            .diagnostics()
            .iter()
            .find(|d| d.code == "COIGN043")
            .expect("COIGN043 fired");
        assert_eq!(d.subject, "Store");
        assert!(d.message.contains("Report"));
        assert!(d.message.contains("Worker"));
    }

    #[test]
    fn immutable_class_is_replicable_even_when_shared() {
        let (report, sink) = run(&shared_registry());
        assert!(report.is_shared("Table"));
        assert!(report.is_replicable("Table"));
        assert!(sink
            .diagnostics()
            .iter()
            .any(|d| d.code == "COIGN044" && d.subject == "Table"));
    }

    #[test]
    fn unshared_classes_have_few_holders() {
        let (report, _) = run(&shared_registry());
        // Nobody passes IWorker or IReport around.
        assert!(!report.is_shared("Worker"));
        assert!(!report.is_shared("Report"));
    }

    #[test]
    fn unannotated_registry_reports_nothing() {
        let reg = ClassRegistry::new();
        let iface = InterfaceBuilder::new("IPlain")
            .method("Do", |m| m.input("x", PType::I4))
            .build();
        let target_iid = iface.iid;
        reg.register("Plain", vec![iface], ApiImports::NONE, |_, _| Arc::new(Nop));
        let user = InterfaceBuilder::new("IUser")
            .method("Use", |m| m.input("p", PType::Interface(target_iid)))
            .build();
        reg.register("UserA", vec![user.clone()], ApiImports::NONE, |_, _| {
            Arc::new(Nop)
        });
        reg.register("UserB", vec![user], ApiImports::NONE, |_, _| Arc::new(Nop));
        let (report, sink) = run(&reg);
        // Shared and mutable, but nothing is annotated: conservative
        // defaults speak, diagnostics stay silent.
        assert!(report.is_shared("Plain"));
        assert!(report.replicable.is_empty());
        assert!(sink.is_empty(), "{:?}", sink.diagnostics());
    }

    #[test]
    fn out_parameters_propagate_holders_transitively() {
        // Root-facing Manager emits ICache; caches therefore leak to
        // everything that holds the manager.
        let reg = ClassRegistry::new();
        let icache = InterfaceBuilder::new("ICache")
            .method("Fill", |m| m.input("rows", PType::Blob).mutates_state())
            .method("Get", |m| m.output("row", PType::Blob).reads_state())
            .build();
        let cache_iid = icache.iid;
        reg.register("Cache", vec![icache], ApiImports::NONE, |_, _| {
            Arc::new(Nop)
        });
        let imanager = InterfaceBuilder::new("IManager")
            .method("Load", |m| {
                m.output(
                    "caches",
                    PType::Array(Box::new(PType::Interface(cache_iid))),
                )
                .mutates_state()
            })
            .build();
        reg.register("Manager", vec![imanager], ApiImports::NONE, |_, _| {
            Arc::new(Nop)
        });
        let (report, sink) = run(&reg);
        let holders = &report.holders["Cache"];
        assert!(holders.contains("Manager"));
        assert!(holders.contains("clients of Manager"));
        assert!(report.is_shared("Cache"));
        assert!(sink
            .diagnostics()
            .iter()
            .any(|d| d.code == "COIGN043" && d.subject == "Cache"));
    }

    #[test]
    fn facets_of_one_class_alias_each_other() {
        // Passing IAlpha around also shares the object's IBeta facet.
        let reg = ClassRegistry::new();
        let ia = InterfaceBuilder::new("IAlpha")
            .method("A", |m| m.reads_state())
            .build();
        let ib = InterfaceBuilder::new("IBeta")
            .method("B", |m| m.input("x", PType::I4).mutates_state())
            .build();
        let alpha_iid = ia.iid;
        reg.register("Dual", vec![ia, ib], ApiImports::NONE, |_, _| Arc::new(Nop));
        let iuser = InterfaceBuilder::new("IUser")
            .method("Use", |m| m.input("p", PType::Interface(alpha_iid)))
            .build();
        reg.register("User", vec![iuser], ApiImports::NONE, |_, _| Arc::new(Nop));
        let (report, _) = run(&reg);
        assert!(report.is_shared("Dual"));
        assert!(!report.is_replicable("Dual"));
    }
}
