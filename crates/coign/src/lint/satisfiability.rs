//! Stage 2 — constraint satisfiability over the colocation closure.
//!
//! The analysis engine encodes constraints as infinite-capacity edges and
//! lets the min-cut solver discover contradictions as an infinite cut —
//! after paying for a full max-flow run. This stage answers the same
//! question directly: union all colocation constraints (explicit pair-wise
//! constraints plus non-remotable interface pairs) into groups, then check
//! that no group is pinned to both the client and the server.
//!
//! * **COIGN020** (error): a colocated group contains both a client-pinned
//!   and a server-pinned classification — no distribution can satisfy it.
//! * **COIGN021** (error): a programmer constraint names a class the
//!   registry does not know; the constraint can never bind anything.

use crate::classifier::ClassificationId;
use crate::constraints::{Constraint, NamedConstraint};
use crate::lint::diag::{DiagnosticSink, Severity};
use coign_com::{ClassRegistry, Clsid};
use std::collections::{BTreeMap, BTreeSet};

/// Union-find over classification ids (path-halving, union by attaching the
/// larger root under the smaller so group representatives are stable).
struct ColocationForest {
    parent: BTreeMap<u32, u32>,
}

impl ColocationForest {
    fn new() -> Self {
        ColocationForest {
            parent: BTreeMap::new(),
        }
    }

    fn add(&mut self, id: u32) {
        self.parent.entry(id).or_insert(id);
    }

    fn find(&mut self, id: u32) -> u32 {
        self.add(id);
        let mut root = id;
        while self.parent[&root] != root {
            root = self.parent[&root];
        }
        // Path compression.
        let mut walk = id;
        while self.parent[&walk] != root {
            let next = self.parent[&walk];
            self.parent.insert(walk, root);
            walk = next;
        }
        root
    }

    fn union(&mut self, a: u32, b: u32) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra != rb {
            let (lo, hi) = if ra < rb { (ra, rb) } else { (rb, ra) };
            self.parent.insert(hi, lo);
        }
    }

    /// Groups of mutually colocated ids, keyed by their smallest member.
    fn groups(&mut self) -> BTreeMap<u32, Vec<u32>> {
        let ids: Vec<u32> = self.parent.keys().copied().collect();
        let mut groups: BTreeMap<u32, Vec<u32>> = BTreeMap::new();
        for id in ids {
            let root = self.find(id);
            groups.entry(root).or_default().push(id);
        }
        groups
    }
}

/// Checks that the full constraint set (plus non-remotable colocation
/// pairs) admits at least one client/server assignment. Reports a
/// COIGN020 error per unsatisfiable group; returns `true` when satisfiable.
pub fn check_constraints(
    constraints: &[Constraint],
    non_remotable: &[(ClassificationId, ClassificationId)],
    label: &dyn Fn(ClassificationId) -> String,
    sink: &mut DiagnosticSink,
) -> bool {
    let mut forest = ColocationForest::new();
    let mut pinned_client: BTreeSet<u32> = BTreeSet::new();
    let mut pinned_server: BTreeSet<u32> = BTreeSet::new();
    for constraint in constraints {
        match constraint {
            Constraint::PinClient(c) => {
                forest.add(c.0);
                pinned_client.insert(c.0);
            }
            Constraint::PinServer(c) => {
                forest.add(c.0);
                pinned_server.insert(c.0);
            }
            Constraint::Colocate(a, b) => forest.union(a.0, b.0),
        }
    }
    for (a, b) in non_remotable {
        forest.union(a.0, b.0);
    }

    let mut satisfiable = true;
    for (_, members) in forest.groups() {
        let client: Vec<u32> = members
            .iter()
            .copied()
            .filter(|id| pinned_client.contains(id))
            .collect();
        let server: Vec<u32> = members
            .iter()
            .copied()
            .filter(|id| pinned_server.contains(id))
            .collect();
        if client.is_empty() || server.is_empty() {
            continue;
        }
        satisfiable = false;
        let describe = |ids: &[u32]| -> String {
            ids.iter()
                .map(|id| label(ClassificationId(*id)))
                .collect::<Vec<_>>()
                .join(", ")
        };
        let subject = if members.len() == 1 {
            label(ClassificationId(members[0]))
        } else {
            format!("colocated group {{{}}}", describe(&members))
        };
        sink.report(
            "COIGN020",
            Severity::Error,
            subject,
            format!(
                "pinned to both machines: {} must run on the client, but {} must run \
                 on the server",
                describe(&client),
                describe(&server)
            ),
            Some(
                "drop one of the conflicting pins, or remove the colocation binding the \
                 group together"
                    .to_string(),
            ),
        );
    }
    satisfiable
}

/// Checks programmer constraints against the class registry: every name
/// must resolve to a registered class. Reports a COIGN021 error per
/// unknown name.
pub fn check_named(named: &[NamedConstraint], registry: &ClassRegistry, sink: &mut DiagnosticSink) {
    let mut unknown: BTreeSet<&str> = BTreeSet::new();
    for constraint in named {
        let names: Vec<&str> = match constraint {
            NamedConstraint::Absolute(name, _) => vec![name],
            NamedConstraint::Pairwise(a, b) => vec![a, b],
        };
        for name in names {
            if registry.get(Clsid::from_name(name)).is_err() {
                unknown.insert(name);
            }
        }
    }
    for name in unknown {
        sink.report(
            "COIGN021",
            Severity::Error,
            name.to_string(),
            format!(
                "constraint references class `{name}`, which is not registered; the \
                 constraint can never bind an instance"
            ),
            Some("fix the class name, or register the class it refers to".to_string()),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use coign_com::registry::ApiImports;
    use coign_com::{ComRuntime, MachineId};
    use std::sync::Arc;

    fn c(n: u32) -> ClassificationId {
        ClassificationId(n)
    }

    fn plain_label(id: ClassificationId) -> String {
        id.to_string()
    }

    #[test]
    fn disjoint_pins_are_satisfiable() {
        let constraints = [
            Constraint::PinClient(c(0)),
            Constraint::PinServer(c(3)),
            Constraint::Colocate(c(1), c(2)),
        ];
        let mut sink = DiagnosticSink::new();
        assert!(check_constraints(
            &constraints,
            &[],
            &plain_label,
            &mut sink
        ));
        assert!(sink.is_empty());
    }

    #[test]
    fn directly_conflicting_pins_are_reported() {
        let constraints = [Constraint::PinClient(c(1)), Constraint::PinServer(c(1))];
        let mut sink = DiagnosticSink::new();
        assert!(!check_constraints(
            &constraints,
            &[],
            &plain_label,
            &mut sink
        ));
        assert_eq!(sink.diagnostics().len(), 1);
        assert_eq!(sink.diagnostics()[0].code, "COIGN020");
    }

    #[test]
    fn conflicts_surface_through_the_transitive_closure() {
        // 1 pinned client, 4 pinned server, and a colocation chain
        // 1–2, 2–3, 3–4 ties them into one group: unsatisfiable.
        let constraints = [
            Constraint::PinClient(c(1)),
            Constraint::PinServer(c(4)),
            Constraint::Colocate(c(1), c(2)),
            Constraint::Colocate(c(3), c(4)),
            Constraint::Colocate(c(2), c(3)),
        ];
        let mut sink = DiagnosticSink::new();
        assert!(!check_constraints(
            &constraints,
            &[],
            &plain_label,
            &mut sink
        ));
        let d = &sink.diagnostics()[0];
        assert!(d.subject.contains("colocated group"));
        for id in 1..=4 {
            assert!(d.subject.contains(&c(id).to_string()), "missing {id}");
        }
    }

    #[test]
    fn non_remotable_pairs_join_the_closure() {
        let constraints = [Constraint::PinClient(c(1)), Constraint::PinServer(c(2))];
        let mut sink = DiagnosticSink::new();
        // Satisfiable until the non-remotable pair glues 1 and 2 together.
        assert!(check_constraints(
            &constraints,
            &[],
            &plain_label,
            &mut sink
        ));
        assert!(!check_constraints(
            &constraints,
            &[(c(1), c(2))],
            &plain_label,
            &mut sink
        ));
    }

    #[test]
    fn breaking_the_chain_restores_satisfiability() {
        let constraints = [
            Constraint::PinClient(c(1)),
            Constraint::PinServer(c(4)),
            Constraint::Colocate(c(1), c(2)),
            Constraint::Colocate(c(3), c(4)),
        ];
        let mut sink = DiagnosticSink::new();
        assert!(check_constraints(
            &constraints,
            &[],
            &plain_label,
            &mut sink
        ));
    }

    struct Nop;
    impl coign_com::ComObject for Nop {
        fn invoke(
            &self,
            _ctx: &coign_com::CallCtx<'_>,
            _iid: coign_com::Iid,
            _method: u32,
            _msg: &mut coign_com::Message,
        ) -> coign_com::ComResult<()> {
            Ok(())
        }
    }

    #[test]
    fn unknown_constraint_names_are_reported_once() {
        let rt = ComRuntime::single_machine();
        rt.registry()
            .register("Known", vec![], ApiImports::NONE, |_, _| Arc::new(Nop));
        let named = vec![
            NamedConstraint::Absolute("Ghost".into(), MachineId::SERVER),
            NamedConstraint::Pairwise("Known".into(), "Ghost".into()),
            NamedConstraint::Absolute("Known".into(), MachineId::CLIENT),
        ];
        let mut sink = DiagnosticSink::new();
        check_named(&named, rt.registry(), &mut sink);
        assert_eq!(sink.diagnostics().len(), 1);
        let d = &sink.diagnostics()[0];
        assert_eq!(d.code, "COIGN021");
        assert_eq!(d.subject, "Ghost");
    }
}
