//! Typed diagnostics and the shared sink all analysis stages report into.
//!
//! Every finding of `coign check` is a [`Diagnostic`] with a stable
//! `COIGN0xx` code, a severity, the subject it is about, a human message,
//! and (usually) a suggestion. Stages push diagnostics into one
//! [`DiagnosticSink`], which renders the collected report either for humans
//! or as JSON, and decides the process exit status (nonzero iff at least one
//! [`Severity::Error`] fired).

use std::fmt;

/// How serious a diagnostic is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// A derived fact worth knowing; nothing is wrong.
    Info,
    /// Suspicious but not fatal: the pipeline still runs, with consequences.
    Warn,
    /// The pipeline cannot produce a valid distribution from this input.
    Error,
}

impl Severity {
    /// Stable lowercase name, shared by both renderers.
    pub fn as_str(self) -> &'static str {
        match self {
            Severity::Info => "info",
            Severity::Warn => "warn",
            Severity::Error => "error",
        }
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One finding of the static analysis pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Stable diagnostic code, e.g. `"COIGN020"`.
    pub code: &'static str,
    /// Severity of the finding.
    pub severity: Severity,
    /// What the finding is about: a class, an interface method, an import
    /// slot, or a constraint group.
    pub subject: String,
    /// Human-readable description of the finding.
    pub message: String,
    /// How to fix or silence the finding, when there is a known remedy.
    pub suggestion: Option<String>,
}

impl Diagnostic {
    /// Renders the diagnostic as the one- or two-line human form used by
    /// every reporting path (so `coign check` and a failing `coign analyze`
    /// print byte-identical diagnostics).
    pub fn render(&self) -> String {
        let mut line = format!(
            "{} {:<5} {}: {}",
            self.code,
            self.severity.as_str(),
            self.subject,
            self.message
        );
        if let Some(suggestion) = &self.suggestion {
            line.push_str("\n    help: ");
            line.push_str(suggestion);
        }
        line
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

/// Collects diagnostics from all analysis stages.
#[derive(Debug, Default)]
pub struct DiagnosticSink {
    diagnostics: Vec<Diagnostic>,
}

impl DiagnosticSink {
    /// Creates an empty sink.
    pub fn new() -> Self {
        DiagnosticSink::default()
    }

    /// Reports a finding.
    pub fn report(
        &mut self,
        code: &'static str,
        severity: Severity,
        subject: impl Into<String>,
        message: impl Into<String>,
        suggestion: Option<String>,
    ) {
        self.diagnostics.push(Diagnostic {
            code,
            severity,
            subject: subject.into(),
            message: message.into(),
            suggestion,
        });
    }

    /// All collected diagnostics, in reporting order.
    pub fn diagnostics(&self) -> &[Diagnostic] {
        &self.diagnostics
    }

    /// Number of diagnostics at the given severity.
    pub fn count(&self, severity: Severity) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == severity)
            .count()
    }

    /// True if at least one [`Severity::Error`] diagnostic fired.
    pub fn has_errors(&self) -> bool {
        self.diagnostics
            .iter()
            .any(|d| d.severity == Severity::Error)
    }

    /// True if nothing was reported.
    pub fn is_empty(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// One-line totals, e.g. `"1 error(s), 3 warning(s), 2 note(s)"`.
    pub fn summary(&self) -> String {
        format!(
            "{} error(s), {} warning(s), {} note(s)",
            self.count(Severity::Error),
            self.count(Severity::Warn),
            self.count(Severity::Info),
        )
    }

    /// Renders the full report for a terminal: one entry per diagnostic
    /// followed by the summary line.
    pub fn render_human(&self) -> String {
        let mut out = String::new();
        for diag in &self.diagnostics {
            out.push_str(&diag.render());
            out.push('\n');
        }
        out.push_str("check: ");
        out.push_str(&self.summary());
        out.push('\n');
        out
    }

    /// Renders the report as a JSON object with counts and the full
    /// diagnostic list (machine-readable `--json` mode).
    pub fn render_json(&self) -> String {
        let mut out = String::from("{");
        out.push_str(&format!(
            "\"errors\":{},\"warnings\":{},\"notes\":{},\"diagnostics\":[",
            self.count(Severity::Error),
            self.count(Severity::Warn),
            self.count(Severity::Info),
        ));
        for (i, d) in self.diagnostics.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"code\":\"{}\",\"severity\":\"{}\",\"subject\":{},\"message\":{},\"suggestion\":{}}}",
                d.code,
                d.severity,
                json_string(&d.subject),
                json_string(&d.message),
                match &d.suggestion {
                    Some(s) => json_string(s),
                    None => "null".to_string(),
                },
            ));
        }
        out.push_str("]}");
        out
    }
}

/// Quotes and escapes a string for JSON output.
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sink_with_samples() -> DiagnosticSink {
        let mut sink = DiagnosticSink::new();
        sink.report(
            "COIGN010",
            Severity::Warn,
            "IShared::Map(handle)",
            "opaque pointer parameter",
            Some("use a marshalable type".to_string()),
        );
        sink.report(
            "COIGN020",
            Severity::Error,
            "group {A, B}",
            "pinned to both machines",
            None,
        );
        sink.report(
            "COIGN012",
            Severity::Info,
            "IShared",
            "colocation fact",
            None,
        );
        sink
    }

    #[test]
    fn counts_and_error_detection() {
        let sink = sink_with_samples();
        assert_eq!(sink.count(Severity::Error), 1);
        assert_eq!(sink.count(Severity::Warn), 1);
        assert_eq!(sink.count(Severity::Info), 1);
        assert!(sink.has_errors());
        assert!(!sink.is_empty());
        assert!(!DiagnosticSink::new().has_errors());
    }

    #[test]
    fn human_report_lists_all_and_summarizes() {
        let report = sink_with_samples().render_human();
        assert!(report.contains("COIGN010 warn  IShared::Map(handle): opaque pointer parameter"));
        assert!(report.contains("help: use a marshalable type"));
        assert!(report.contains("COIGN020 error group {A, B}: pinned to both machines"));
        assert!(report.contains("check: 1 error(s), 1 warning(s), 1 note(s)"));
    }

    #[test]
    fn json_report_escapes_and_counts() {
        let mut sink = DiagnosticSink::new();
        sink.report(
            "COIGN035",
            Severity::Error,
            "section \".coign\"",
            "line1\nline2",
            None,
        );
        let json = sink.render_json();
        assert!(json.starts_with("{\"errors\":1,\"warnings\":0,\"notes\":0,"));
        assert!(json.contains("\"subject\":\"section \\\".coign\\\"\""));
        assert!(json.contains("\"message\":\"line1\\nline2\""));
        assert!(json.contains("\"suggestion\":null"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }

    #[test]
    fn render_is_stable_between_paths() {
        // `Display` and `render` agree — callers embedding a diagnostic in
        // an error string produce exactly what `coign check` prints.
        let sink = sink_with_samples();
        for d in sink.diagnostics() {
            assert_eq!(d.to_string(), d.render());
        }
    }
}
