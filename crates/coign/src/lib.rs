//! The Coign Automatic Distributed Partitioning System.
//!
//! A reproduction of Hunt & Scott, *"The Coign Automatic Distributed
//! Partitioning System"* (OSDI '99), over the simCOM/dcom-sim substrates in
//! this workspace. Given an application built from simCOM components — in
//! modeled binary form, no source required — Coign:
//!
//! 1. **Instruments** the application binary ([`rewriter`]): the Coign
//!    runtime is inserted into the first import slot and a configuration
//!    record is appended.
//! 2. **Profiles** inter-component communication while the application runs
//!    through usage scenarios ([`runtime::profile_scenario`]): every
//!    interface call is intercepted, its DCOM deep-copy size measured
//!    ([`informer`]), and summarized online into exponential size-range
//!    buckets ([`logger`], [`profile`]).
//! 3. **Classifies** component instances so that instances observed during
//!    profiling can be recognized again in later executions
//!    ([`classifier`] — seven classifiers, the internal-function called-by
//!    classifier by default).
//! 4. **Analyzes** the profiles against a measured network cost model
//!    ([`icc`], [`analysis`]): location constraints are derived from static
//!    API imports and non-remotable interfaces, the concrete communication
//!    graph is built, and the lift-to-front minimum-cut algorithm chooses
//!    the client/server split with minimal communication time.
//! 5. **Realizes** the distribution ([`factory`], [`runtime::run_distributed`]):
//!    a lightweight runtime relocates component instantiations to their
//!    assigned machines and DCOM-style proxies carry cross-machine calls.
//!
//! Orthogonally to the profiling pipeline, [`lint`] implements `coign
//! check`: a static analysis pass over interface metadata, the constraint
//! set, and the binary image that reports remotability hazards,
//! unsatisfiable constraints, and malformed images as `COIGN0xx`
//! diagnostics — before any scenario is ever profiled.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
pub mod application;
pub mod classifier;
pub mod config;
pub mod constraints;
pub mod drift;
pub mod factory;
pub mod icc;
pub mod informer;
pub mod lint;
pub mod logger;
pub mod metrics;
pub mod multiway;
pub mod predict;
pub mod profile;
pub mod recovery;
pub mod replay;
pub mod report;
pub mod rewriter;
pub mod rte;
pub mod runtime;
pub mod serve;
pub mod sweep;

pub use analysis::{analyze, Distribution};
pub use application::Application;
pub use classifier::{ClassificationId, ClassifierKind, Descriptor, InstanceClassifier};
pub use profile::IccProfile;
pub use recovery::{RecoveryConfig, RecoveryCoordinator, RecoveryEvent, RecoveryTrigger};
pub use rte::{CoignRte, FallbackEvent};
pub use runtime::{
    run_default, run_distributed, run_distributed_faulty, run_distributed_recovering,
    run_distributed_recovering_observed, run_raw, FaultReport, RecoveryRun, RunReport,
};
pub use serve::{serve, ServeOptions, ServeReport};
