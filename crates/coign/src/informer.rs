//! Interface informers (§3.2 of the paper).
//!
//! The interface informer manages static interface metadata and walks the
//! parameters of interface calls. Two informers exist:
//!
//! * The **profiling informer** analyzes all function-call parameters and
//!   precisely measures inter-component communication using the MIDL-style
//!   metadata and DCOM deep-copy marshaling. It is expensive: the paper
//!   reports up to 85 % execution-time overhead (typically ~45 %), most of
//!   it attributable to the informer. We model that cost by charging a
//!   fixed per-call overhead plus a per-byte walking cost to the simulated
//!   clock (kept separate from application compute so predictions stay
//!   clean).
//! * The **distribution informer** stays in the application after profiling.
//!   It only examines parameters enough to identify interface pointers, and
//!   relocates calls that cross machines through the DCOM transport. Its
//!   overhead is under 3 %.
//!
//! Both are implemented as [`Invoker`] wrappers installed by the RTE's
//! interface wrapping.

use crate::classifier::{ClassificationId, InstanceClassifier};
use crate::drift::DriftMonitor;
use crate::logger::{CallRecord, InfoLogger};
use crate::profile::icc_size_bounds;
use crate::recovery::RecoveryCoordinator;
use coign_com::interface::CallInfo;
use coign_com::{ComError, ComResult, ComRuntime, InterfacePtr, Invoker, Message, StateEffect};
use coign_dcom::marshal::{message_reply_size, message_request_size, SizeCache};
use coign_dcom::Transport;
use coign_obs::{Histogram, Obs, TraceArg};
use parking_lot::Mutex;
use std::collections::BTreeSet;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Name of the registry histogram recording ICC message sizes (the
/// paper's exponential size buckets).
pub const ICC_SIZE_HISTOGRAM: &str = "coign_icc_message_bytes";

/// Fetches the ICC-size histogram handle from an optional obs bundle.
fn icc_histogram(obs: Option<&Obs>) -> Option<Histogram> {
    obs.map(|obs| {
        obs.registry
            .histogram(ICC_SIZE_HISTOGRAM, &icc_size_bounds())
    })
}

/// Fixed profiling-informer cost per intercepted call, microseconds.
pub const PROFILING_CALL_OVERHEAD_US: u64 = 12;

/// Profiling-informer cost per kilobyte of parameters walked, microseconds.
pub const PROFILING_PER_KB_OVERHEAD_US: u64 = 2;

/// Distribution-informer cost per intercepted call, microseconds.
pub const DISTRIBUTION_CALL_OVERHEAD_US: u64 = 1;

/// Shared instrumentation-overhead accounting, kept separate from
/// application compute time so the prediction model is not polluted by
/// profiling cost.
#[derive(Debug, Default)]
pub struct OverheadMeter {
    us: AtomicU64,
}

impl OverheadMeter {
    /// Creates a zeroed meter.
    pub fn new() -> Self {
        OverheadMeter::default()
    }

    /// Total instrumentation overhead charged, microseconds.
    pub fn total_us(&self) -> u64 {
        self.us.load(Ordering::Relaxed)
    }

    /// Resets the meter.
    pub fn reset(&self) {
        self.us.store(0, Ordering::Relaxed);
    }

    fn charge(&self, rt: &ComRuntime, us: u64) {
        self.us.fetch_add(us, Ordering::Relaxed);
        // Advances wall-clock time without counting as application compute.
        rt.clock().advance_us(us);
    }
}

fn classify_caller(
    rt: &ComRuntime,
    classifier: &InstanceClassifier,
) -> (Option<coign_com::InstanceId>, ClassificationId) {
    match rt.call_stack().last() {
        Some(frame) => (
            Some(frame.instance),
            classifier
                .classification_of(frame.instance)
                .unwrap_or(ClassificationId::ROOT),
        ),
        None => (None, ClassificationId::ROOT),
    }
}

/// One runtime refutation of a declared state effect: a method declared
/// `Pure`/`ReadsState` whose instance fingerprint changed across the call.
/// The static stage-4 verdicts rest on these annotations, so every
/// violation is surfaced as diagnostic COIGN045.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct EffectViolation {
    /// Component class whose instance mutated.
    pub class: String,
    /// Interface declaring the lying method.
    pub interface: String,
    /// The lying method.
    pub method: String,
    /// What the annotation claimed.
    pub declared: StateEffect,
}

/// Dynamic cross-check sink for state-effect annotations (COIGN045).
///
/// The profiling informer fingerprints the callee instance before and after
/// every call whose method is declared read-only
/// ([`StateEffect::is_read_only`]); a changed fingerprint records a
/// deduplicated [`EffectViolation`] here. Components without a
/// [`coign_com::ComObject::state_fingerprint`] opt out silently.
#[derive(Debug, Default)]
pub struct EffectCrossCheck {
    violations: Mutex<BTreeSet<EffectViolation>>,
}

impl EffectCrossCheck {
    /// Creates an empty sink.
    pub fn new() -> Self {
        EffectCrossCheck::default()
    }

    /// Records one observed violation (idempotent per class/method pair).
    pub fn record(&self, violation: EffectViolation) {
        self.violations.lock().insert(violation);
    }

    /// All violations observed so far, in deterministic order.
    pub fn violations(&self) -> Vec<EffectViolation> {
        self.violations.lock().iter().cloned().collect()
    }

    /// Number of distinct violations observed.
    pub fn count(&self) -> usize {
        self.violations.lock().len()
    }
}

/// The profiling informer: measures every call's deep-copy size and logs it.
pub struct ProfilingInvoker {
    inner: InterfacePtr,
    classifier: Arc<InstanceClassifier>,
    logger: Arc<dyn InfoLogger>,
    overhead: Arc<OverheadMeter>,
    /// Memoized deep-copy sizes, shared across every wrapped interface of
    /// one profiling runtime. Structurally identical argument trees skip
    /// the recursive walk (and its per-KB overhead charge) on a hit;
    /// measured sizes are identical either way.
    cache: Arc<SizeCache>,
    /// Optional observability: marshal-cache miss instants. Per-call trace
    /// detail stays out of this hot path — the `EventLogger` carries it.
    obs: Option<Obs>,
    /// Optional COIGN045 sink: read-only-declared calls fingerprint the
    /// callee before and after, and a changed fingerprint lands here.
    crosscheck: Option<Arc<EffectCrossCheck>>,
}

impl ProfilingInvoker {
    /// Wraps a pointer with profiling instrumentation.
    pub fn wrap(
        ptr: InterfacePtr,
        classifier: Arc<InstanceClassifier>,
        logger: Arc<dyn InfoLogger>,
        overhead: Arc<OverheadMeter>,
        cache: Arc<SizeCache>,
    ) -> InterfacePtr {
        Self::wrap_observed(ptr, classifier, logger, overhead, cache, None)
    }

    /// Wraps a pointer with profiling instrumentation that additionally
    /// reports to an observability bundle.
    pub fn wrap_observed(
        ptr: InterfacePtr,
        classifier: Arc<InstanceClassifier>,
        logger: Arc<dyn InfoLogger>,
        overhead: Arc<OverheadMeter>,
        cache: Arc<SizeCache>,
        obs: Option<Obs>,
    ) -> InterfacePtr {
        Self::wrap_crosschecked(ptr, classifier, logger, overhead, cache, obs, None)
    }

    /// Wraps a pointer with the full profiling informer: observability plus
    /// the COIGN045 state-effect cross-check sink.
    #[allow(clippy::too_many_arguments)]
    pub fn wrap_crosschecked(
        ptr: InterfacePtr,
        classifier: Arc<InstanceClassifier>,
        logger: Arc<dyn InfoLogger>,
        overhead: Arc<OverheadMeter>,
        cache: Arc<SizeCache>,
        obs: Option<Obs>,
        crosscheck: Option<Arc<EffectCrossCheck>>,
    ) -> InterfacePtr {
        let invoker = ProfilingInvoker {
            inner: ptr.clone(),
            classifier,
            logger,
            overhead,
            cache,
            obs,
            crosscheck,
        };
        ptr.wrap(Arc::new(invoker))
    }
}

impl Invoker for ProfilingInvoker {
    fn invoke(&self, rt: &ComRuntime, call: CallInfo<'_>, msg: &mut Message) -> ComResult<()> {
        let method_desc = call.desc.method(call.method).ok_or(ComError::BadMethod {
            iid: call.desc.iid,
            method: call.method,
        })?;
        let (caller, caller_class) = classify_caller(rt, &self.classifier);

        // Measure the request by invoking the DCOM marshaling machinery
        // in-process; a non-remotable parameter is a constraint, not an
        // error, during profiling. The reply is sized after the call (a
        // stateful component may answer the same request differently), so
        // the two directions hit the memo cache independently.
        let (req, req_hit) = self
            .cache
            .request_size(call.desc.iid, call.method, method_desc, msg);

        // COIGN045 cross-check: a read-only-declared method must not change
        // the callee's observable state. Fingerprint before and after; a
        // component without a fingerprint opts out (`None` is never
        // evidence).
        let fingerprint_before = match &self.crosscheck {
            Some(_) if method_desc.effect.is_read_only() => rt
                .instance(call.owner)
                .and_then(|inst| inst.object.state_fingerprint()),
            _ => None,
        };

        let result = self.inner.call(rt, call.method, msg);

        if let (Some(check), Some(before)) = (&self.crosscheck, fingerprint_before) {
            if let Some(inst) = rt.instance(call.owner) {
                if inst.object.state_fingerprint() != Some(before) {
                    let class = rt
                        .registry()
                        .get(inst.clsid)
                        .map(|desc| desc.name.clone())
                        .unwrap_or_else(|_| inst.clsid.to_string());
                    check.record(EffectViolation {
                        class,
                        interface: call.desc.name.clone(),
                        method: method_desc.name.clone(),
                        declared: method_desc.effect,
                    });
                }
            }
        }

        let (reply, reply_hit) =
            self.cache
                .reply_size(call.desc.iid, call.method, method_desc, msg);
        let remotable = call.desc.remotable && req.is_ok() && reply.is_ok();
        let req_bytes = req.unwrap_or(0);
        let reply_bytes = reply.unwrap_or(0);

        // Charge the informer's measurement cost. A memo hit skips the
        // deep-copy walk, so only bytes actually walked carry the per-KB
        // charge; the fixed per-call cost applies regardless.
        let mut walked_bytes = 0;
        if !req_hit {
            walked_bytes += req_bytes;
        }
        if !reply_hit {
            walked_bytes += reply_bytes;
        }
        let walked_kb = walked_bytes / 1024;
        self.overhead.charge(
            rt,
            PROFILING_CALL_OVERHEAD_US + walked_kb * PROFILING_PER_KB_OVERHEAD_US,
        );

        let callee_class = self
            .classifier
            .classification_of(call.owner)
            .unwrap_or(ClassificationId::ROOT);
        let record = CallRecord {
            caller,
            caller_class,
            callee: call.owner,
            callee_class,
            iid: call.desc.iid,
            method: call.method,
            req_bytes,
            reply_bytes,
            remotable,
        };
        self.logger.log_call(&record);
        if let Some(obs) = &self.obs {
            // Tracing must stay cheap enough to leave on while tens of
            // thousands of calls replay (perfsuite asserts < 10% overhead),
            // so the per-call record is the `EventLogger`'s job and only
            // marshal-cache misses — the rare first deep-copy walk of a new
            // argument shape — become instants. Hits aggregate into
            // `coign_marshal_cache_hits_total` after the run.
            if !req_hit || !reply_hit {
                let at = rt.clock().now_us();
                if !req_hit {
                    obs.tracer.instant_at(
                        "marshal_cache_miss",
                        at,
                        vec![
                            ("dir", TraceArg::Static("request")),
                            ("iid", TraceArg::Guid((call.desc.iid.0).0)),
                            ("method", TraceArg::U64(u64::from(call.method))),
                            ("bytes", TraceArg::U64(req_bytes)),
                        ],
                    );
                }
                if !reply_hit {
                    obs.tracer.instant_at(
                        "marshal_cache_miss",
                        at,
                        vec![
                            ("dir", TraceArg::Static("reply")),
                            ("iid", TraceArg::Guid((call.desc.iid.0).0)),
                            ("method", TraceArg::U64(u64::from(call.method))),
                            ("bytes", TraceArg::U64(reply_bytes)),
                        ],
                    );
                }
            }
        }
        result
    }
}

/// The distribution informer: routes cross-machine calls through the DCOM
/// transport with minimal inspection.
pub struct DistributionInvoker {
    inner: InterfacePtr,
    transport: Arc<Transport>,
    overhead: Arc<OverheadMeter>,
    /// Optional message counting for usage-drift detection (§6): counts
    /// only — no parameter walking — so the runtime stays lightweight.
    drift: Option<(Arc<InstanceClassifier>, Arc<DriftMonitor>)>,
    /// Optional self-healing: transport failures consult the coordinator
    /// (recover + retry) before failing the call, under the exactly-once
    /// protocol — the side effect of a call never runs twice.
    recovery: Option<Arc<RecoveryCoordinator>>,
    /// Optional observability: cut-crossing instants, flight-recorder
    /// entries, the size histogram, and dump-on-error.
    obs: Option<Obs>,
    icc_hist: Option<Histogram>,
}

impl DistributionInvoker {
    /// Wraps a pointer with the lightweight distributed-execution proxy.
    pub fn wrap(
        ptr: InterfacePtr,
        transport: Arc<Transport>,
        overhead: Arc<OverheadMeter>,
    ) -> InterfacePtr {
        Self::wrap_with_drift(ptr, transport, overhead, None)
    }

    /// Wraps a pointer, additionally counting messages for drift detection.
    pub fn wrap_with_drift(
        ptr: InterfacePtr,
        transport: Arc<Transport>,
        overhead: Arc<OverheadMeter>,
        drift: Option<(Arc<InstanceClassifier>, Arc<DriftMonitor>)>,
    ) -> InterfacePtr {
        Self::wrap_observed(ptr, transport, overhead, drift, None)
    }

    /// Wraps a pointer with drift counting and an observability bundle:
    /// every cut-crossing call becomes an `icc_call` tracer instant and a
    /// flight-recorder entry, and a dying call dumps the recorder.
    pub fn wrap_observed(
        ptr: InterfacePtr,
        transport: Arc<Transport>,
        overhead: Arc<OverheadMeter>,
        drift: Option<(Arc<InstanceClassifier>, Arc<DriftMonitor>)>,
        obs: Option<Obs>,
    ) -> InterfacePtr {
        Self::wrap_recovering(ptr, transport, overhead, drift, None, obs)
    }

    /// Wraps a pointer with the full self-healing proxy: drift counting,
    /// observability, and a recovery coordinator consulted on transport
    /// failures. With `recovery: None` this is exactly [`DistributionInvoker::wrap_observed`].
    pub fn wrap_recovering(
        ptr: InterfacePtr,
        transport: Arc<Transport>,
        overhead: Arc<OverheadMeter>,
        drift: Option<(Arc<InstanceClassifier>, Arc<DriftMonitor>)>,
        recovery: Option<Arc<RecoveryCoordinator>>,
        obs: Option<Obs>,
    ) -> InterfacePtr {
        let invoker = DistributionInvoker {
            inner: ptr.clone(),
            transport,
            overhead,
            drift,
            recovery,
            icc_hist: icc_histogram(obs.as_ref()),
            obs,
        };
        ptr.wrap(Arc::new(invoker))
    }

    /// Dumps the flight recorder when a remote call dies of a transport
    /// failure (post-mortem for Timeout / Partitioned / MachineDown).
    fn dump_on_error(&self, error: ComError) -> ComError {
        if let Some(obs) = &self.obs {
            let reason = match &error {
                ComError::Timeout { .. } => Some("Timeout"),
                ComError::Partitioned { .. } => Some("Partitioned"),
                ComError::MachineDown(_) => Some("MachineDown"),
                _ => None,
            };
            if let Some(reason) = reason {
                obs.recorder.dump(reason);
            }
        }
        error
    }

    /// Whether a failed delivery attempt should be retried: only with a
    /// coordinator installed, within the attempt budget, and when (a) the
    /// coordinator just recovered, (b) the placement epoch advanced under
    /// this call (another call's recovery migrated the callee — retry on
    /// the new placement), or (c) the failure is still feeding the machine
    /// breaker toward a trip.
    fn try_recover(
        &self,
        rt: &ComRuntime,
        error: &ComError,
        attempt: u32,
        max_attempts: u32,
        seen_epoch: &mut u64,
    ) -> bool {
        let Some(recovery) = &self.recovery else {
            return false;
        };
        if attempt >= max_attempts {
            return false;
        }
        if recovery.on_call_failure(rt, error) {
            *seen_epoch = recovery.epoch();
            return true;
        }
        let epoch = recovery.epoch();
        if epoch != *seen_epoch {
            *seen_epoch = epoch;
            return true;
        }
        false
    }
}

impl Invoker for DistributionInvoker {
    fn invoke(&self, rt: &ComRuntime, call: CallInfo<'_>, msg: &mut Message) -> ComResult<()> {
        self.overhead.charge(rt, DISTRIBUTION_CALL_OVERHEAD_US);

        if let Some((classifier, monitor)) = &self.drift {
            let (_, caller_class) = classify_caller(rt, classifier);
            let callee_class = classifier
                .classification_of(call.owner)
                .unwrap_or(ClassificationId::ROOT);
            monitor.record_call(caller_class, callee_class);
        }

        let caller_machine = rt.current_machine();
        let callee_machine = rt
            .instance(call.owner)
            .ok_or(ComError::DeadInstance(call.owner.0))?
            .machine();

        if caller_machine == callee_machine {
            let result = self.inner.call(rt, call.method, msg);
            if result.is_ok() {
                if let Some(recovery) = &self.recovery {
                    recovery.poll_drift(rt);
                }
            }
            return result;
        }

        // Cross-machine: marshal request, dispatch, marshal reply. A
        // non-remotable interface crossing machines is a hard error — it
        // means the distribution violated a co-location constraint.
        let method_desc = call.desc.method(call.method).ok_or(ComError::BadMethod {
            iid: call.desc.iid,
            method: call.method,
        })?;
        if !call.desc.remotable {
            return Err(ComError::NotRemotable {
                iid: call.desc.iid,
                detail: format!(
                    "interface {} crossed {caller_machine}→{callee_machine}",
                    call.desc.name
                ),
            });
        }
        // Fault layer: a dead target or an unhealed partition fails the
        // call before it ever reaches the stub (retries and timeouts are
        // charged inside the transport). Drift counting above already
        // happened exactly once — transport retries are re-sends of the
        // same logical message, not new calls in the distribution.
        //
        // With a recovery coordinator installed, a failed delivery may
        // recover (re-solve the cut, migrate the callee) and retry under
        // the exactly-once protocol: the side effect runs on the first
        // successful dispatch and never again — a later failure only
        // re-delivers (or, once the callee is local, replays) the reply
        // the call already produced.
        let max_attempts = self.recovery.as_ref().map_or(1, |r| r.max_call_attempts());
        let mut seen_epoch = self.recovery.as_ref().map_or(0, |r| r.epoch());
        let mut executed = false;
        let mut result: ComResult<()> = Ok(());
        let mut req_bytes = 0u64;
        let mut attempt = 0u32;
        let (caller_machine, callee_machine, reply_bytes, attempts) = loop {
            attempt += 1;
            // Re-read both ends: a recovery on an earlier attempt may have
            // migrated the callee — or the calling instance itself, when
            // its own machine died mid-call.
            let caller_machine = rt.current_machine();
            let callee_machine = rt
                .instance(call.owner)
                .ok_or(ComError::DeadInstance(call.owner.0))?
                .machine();
            if callee_machine == caller_machine {
                // The callee migrated next to the caller mid-call.
                if executed {
                    // The remote execution already happened; only the
                    // reply delivery failed. Complete with the reply we
                    // hold — the side effect must not run twice.
                    if let Some(recovery) = &self.recovery {
                        recovery.note_replayed_completion();
                        if result.is_ok() {
                            recovery.poll_drift(rt);
                        }
                    }
                    return result;
                }
                let result = self.inner.call(rt, call.method, msg);
                if result.is_ok() {
                    if let Some(recovery) = &self.recovery {
                        recovery.poll_drift(rt);
                    }
                }
                return result;
            }
            match self.transport.preflight(rt, caller_machine, callee_machine) {
                Ok(()) => {}
                Err(error) => {
                    if self.try_recover(rt, &error, attempt, max_attempts, &mut seen_epoch) {
                        continue;
                    }
                    return Err(self.dump_on_error(error));
                }
            }
            if executed {
                // Deliver the existing reply again; never re-dispatch.
                if let Some(recovery) = &self.recovery {
                    recovery.note_redelivered();
                }
            } else {
                req_bytes = message_request_size(method_desc, msg)?;
                result = self.inner.call(rt, call.method, msg);
                executed = true;
            }
            let reply_bytes = message_reply_size(method_desc, msg)?;
            match self.transport.charge_sized_call_checked(
                rt,
                caller_machine,
                callee_machine,
                req_bytes,
                reply_bytes,
            ) {
                Ok(attempts) => break (caller_machine, callee_machine, reply_bytes, attempts),
                Err(error) => {
                    if self.try_recover(rt, &error, attempt, max_attempts, &mut seen_epoch) {
                        continue;
                    }
                    return Err(self.dump_on_error(error));
                }
            }
        };
        if let Some(obs) = &self.obs {
            let at = rt.clock().now_us();
            obs.tracer.instant_at(
                "icc_call",
                at,
                vec![
                    ("iid", TraceArg::Guid((call.desc.iid.0).0)),
                    ("method", TraceArg::U64(u64::from(call.method))),
                    ("from", TraceArg::U64(u64::from(caller_machine.0))),
                    ("to", TraceArg::U64(u64::from(callee_machine.0))),
                    ("req_bytes", TraceArg::U64(req_bytes)),
                    ("reply_bytes", TraceArg::U64(reply_bytes)),
                    ("attempts", TraceArg::U64(u64::from(attempts))),
                ],
            );
            obs.recorder.record(
                at,
                "icc_call",
                format!(
                    "{}[{}] m{}->m{} req={req_bytes} reply={reply_bytes} attempts={attempts}",
                    call.desc.name, call.method, caller_machine.0, callee_machine.0
                ),
            );
            if let Some(hist) = &self.icc_hist {
                hist.observe(req_bytes);
                hist.observe(reply_bytes);
            }
        }
        if result.is_ok() {
            if let Some(recovery) = &self.recovery {
                recovery.poll_drift(rt);
            }
        }
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classifier::ClassifierKind;
    use crate::logger::{EventLogger, LogEvent, ProfilingLogger};
    use coign_com::idl::InterfaceBuilder;
    use coign_com::registry::ApiImports;
    use coign_com::{CallCtx, Clsid, ComObject, Iid, MachineId, PType, Value};
    use coign_dcom::NetworkModel;

    /// Echo component: method 0 takes a blob in and returns a blob twice
    /// the size.
    struct Echo;
    impl ComObject for Echo {
        fn invoke(
            &self,
            _ctx: &CallCtx<'_>,
            _iid: Iid,
            _method: u32,
            msg: &mut Message,
        ) -> ComResult<()> {
            let n = msg.arg(0).and_then(Value::as_blob).unwrap_or(0);
            msg.set(1, Value::Blob(n * 2));
            Ok(())
        }
    }

    fn echo_setup(rt: &ComRuntime) -> (Clsid, Iid) {
        let iface = InterfaceBuilder::new("IEcho")
            .method("Echo", |m| {
                m.input("data", PType::Blob).output("out", PType::Blob)
            })
            .build();
        let iid = iface.iid;
        let clsid = rt
            .registry()
            .register("Echo", vec![iface], ApiImports::NONE, |_, _| Arc::new(Echo));
        (clsid, iid)
    }

    #[test]
    fn profiling_invoker_measures_and_logs() {
        let rt = ComRuntime::single_machine();
        let (clsid, iid) = echo_setup(&rt);
        let classifier = Arc::new(InstanceClassifier::new(ClassifierKind::Ifcb));
        let logger = Arc::new(ProfilingLogger::new());
        let overhead = Arc::new(OverheadMeter::new());

        let raw = rt.create_instance(clsid, iid).unwrap();
        classifier.classify_instance(&rt, raw.owner(), clsid);
        let cache = Arc::new(SizeCache::new());
        let ptr = ProfilingInvoker::wrap(raw, classifier, logger.clone(), overhead.clone(), cache);

        let mut msg = Message::new(vec![Value::Blob(1000), Value::Null]);
        ptr.call(&rt, 0, &mut msg).unwrap();

        assert_eq!(msg.arg(1).unwrap().as_blob(), Some(2000));
        let profile = logger.snapshot_profile();
        assert_eq!(profile.total_messages(), 2);
        // Request ≈ header + blob(1008); reply ≈ header + 4 + blob(2008).
        assert!(profile.total_bytes() > 3000);
        assert!(overhead.total_us() >= PROFILING_CALL_OVERHEAD_US);
        // Overhead advanced the clock but not application compute.
        assert_eq!(rt.stats().compute_us, 0);
        assert!(rt.clock().now_us() > 0);
    }

    #[test]
    fn profiling_cache_skips_walk_charges_on_repeated_shapes() {
        let rt = ComRuntime::single_machine();
        let (clsid, iid) = echo_setup(&rt);
        let classifier = Arc::new(InstanceClassifier::new(ClassifierKind::Ifcb));
        let logger = Arc::new(ProfilingLogger::new());
        let overhead = Arc::new(OverheadMeter::new());
        let cache = Arc::new(SizeCache::new());
        let raw = rt.create_instance(clsid, iid).unwrap();
        classifier.classify_instance(&rt, raw.owner(), clsid);
        let ptr = ProfilingInvoker::wrap(
            raw,
            classifier,
            logger.clone(),
            overhead.clone(),
            cache.clone(),
        );

        // First call walks both directions (10 KB in, 20 KB echoed back).
        let mut msg = Message::new(vec![Value::Blob(10_240), Value::Null]);
        ptr.call(&rt, 0, &mut msg).unwrap();
        let first = overhead.total_us();
        assert_eq!(cache.hits(), 0);
        assert!(first > PROFILING_CALL_OVERHEAD_US);

        // An identically shaped call hits both direction keys, so only the
        // fixed per-call cost is charged — the per-KB walk is skipped.
        let mut msg = Message::new(vec![Value::Blob(10_240), Value::Null]);
        ptr.call(&rt, 0, &mut msg).unwrap();
        assert_eq!(cache.hits(), 2);
        assert_eq!(overhead.total_us(), first + PROFILING_CALL_OVERHEAD_US);

        // The profile records full sizes for the cached call regardless.
        let profile = logger.snapshot_profile();
        assert_eq!(profile.total_messages(), 4);
        assert!(profile.total_bytes() > 60_000);
    }

    #[test]
    fn profiling_invoker_flags_non_remotable_interfaces() {
        let rt = ComRuntime::single_machine();
        let iface = InterfaceBuilder::new("ISharedMem")
            .method("Map", |m| m.input("h", PType::Opaque))
            .build();
        let iid = iface.iid;
        let clsid = rt
            .registry()
            .register("Shared", vec![iface], ApiImports::NONE, |_, _| {
                Arc::new(Echo)
            });
        let classifier = Arc::new(InstanceClassifier::new(ClassifierKind::St));
        let logger = Arc::new(EventLogger::new());
        let overhead = Arc::new(OverheadMeter::new());
        let raw = rt.create_instance(clsid, iid).unwrap();
        classifier.classify_instance(&rt, raw.owner(), clsid);
        let ptr = ProfilingInvoker::wrap(
            raw,
            classifier,
            logger.clone(),
            overhead,
            Arc::new(SizeCache::new()),
        );

        let mut msg = Message::new(vec![Value::Opaque(0xbeef)]);
        ptr.call(&rt, 0, &mut msg).unwrap(); // the call itself succeeds

        let events = logger.take_events();
        match &events[0] {
            LogEvent::Call(record) => assert!(!record.remotable),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn distribution_invoker_is_free_for_local_calls() {
        let rt = ComRuntime::client_server();
        let (clsid, iid) = echo_setup(&rt);
        let transport = Arc::new(Transport::new(NetworkModel::ethernet_10baset(), 1));
        let overhead = Arc::new(OverheadMeter::new());
        let raw = rt.create_instance(clsid, iid).unwrap(); // client, as is the root caller
        let ptr = DistributionInvoker::wrap(raw, transport, overhead.clone());
        let mut msg = Message::new(vec![Value::Blob(100), Value::Null]);
        ptr.call(&rt, 0, &mut msg).unwrap();
        assert_eq!(rt.stats().messages, 0);
        assert_eq!(rt.stats().comm_us, 0);
        assert_eq!(overhead.total_us(), DISTRIBUTION_CALL_OVERHEAD_US);
    }

    #[test]
    fn distribution_invoker_charges_cross_machine_calls() {
        let rt = ComRuntime::client_server();
        let (clsid, iid) = echo_setup(&rt);
        let transport = Arc::new(Transport::new(NetworkModel::ethernet_10baset(), 1));
        let overhead = Arc::new(OverheadMeter::new());
        let raw = rt
            .create_direct(clsid, iid, Some(MachineId::SERVER))
            .unwrap();
        let ptr = DistributionInvoker::wrap(raw, transport, overhead);
        let mut msg = Message::new(vec![Value::Blob(10_000), Value::Null]);
        ptr.call(&rt, 0, &mut msg).unwrap();
        let stats = rt.stats();
        assert_eq!(stats.messages, 2);
        assert!(stats.bytes > 30_000); // request + doubled reply
        assert!(stats.comm_us > 0);
        assert_eq!(stats.cross_machine_calls, 1);
    }

    #[test]
    fn distribution_invoker_rejects_non_remotable_crossing() {
        let rt = ComRuntime::client_server();
        let iface = InterfaceBuilder::new("ISharedMem2")
            .method("Map", |m| m.input("h", PType::Opaque))
            .build();
        let iid = iface.iid;
        let clsid = rt
            .registry()
            .register("Shared2", vec![iface], ApiImports::NONE, |_, _| {
                Arc::new(Echo)
            });
        let transport = Arc::new(Transport::new(NetworkModel::ethernet_10baset(), 1));
        let raw = rt
            .create_direct(clsid, iid, Some(MachineId::SERVER))
            .unwrap();
        let ptr = DistributionInvoker::wrap(raw, transport, Arc::new(OverheadMeter::new()));
        let mut msg = Message::new(vec![Value::Opaque(1)]);
        let err = ptr.call(&rt, 0, &mut msg).unwrap_err();
        assert!(matches!(err, ComError::NotRemotable { .. }));
    }

    #[test]
    fn fault_retries_do_not_inflate_drift_counts() {
        use crate::drift::DriftMonitor;
        use crate::profile::IccProfile;
        use coign_dcom::{CallPolicy, FaultPlan, TimeWindow};

        let rt = ComRuntime::client_server();
        let (clsid, iid) = echo_setup(&rt);
        // Partition heals at 30 ms: with a 10 ms timeout and 10 ms backoff
        // the call takes 2 retries before the wire delivers it.
        let plan = FaultPlan::none().with_partition(
            MachineId::CLIENT,
            MachineId::SERVER,
            TimeWindow::new(0, 30_000),
        );
        let policy = CallPolicy {
            timeout_us: 10_000,
            max_retries: 3,
            backoff_base_us: 10_000,
            backoff_multiplier: 2.0,
            backoff_jitter: 0.0,
        };
        let transport = Arc::new(coign_dcom::Transport::with_faults(
            NetworkModel::ethernet_10baset(),
            1,
            plan,
            policy,
            42,
        ));
        let classifier = Arc::new(InstanceClassifier::new(ClassifierKind::Ifcb));
        let monitor = Arc::new(DriftMonitor::from_profile(&IccProfile::new()));
        let raw = rt
            .create_direct(clsid, iid, Some(MachineId::SERVER))
            .unwrap();
        classifier.classify_instance(&rt, raw.owner(), clsid);
        let ptr = DistributionInvoker::wrap_with_drift(
            raw,
            transport.clone(),
            Arc::new(OverheadMeter::new()),
            Some((classifier, monitor.clone())),
        );

        let mut msg = Message::new(vec![Value::Blob(1_000), Value::Null]);
        ptr.call(&rt, 0, &mut msg).unwrap();

        // The wire needed retries...
        assert_eq!(transport.fault_stats().retries, 2);
        // ...but the drift distribution saw exactly one logical call
        // (two messages): retries are re-sends, not new messages.
        assert_eq!(monitor.observed_messages(), 2);
    }

    /// A counter whose `Peek` method is *declared* read-only but secretly
    /// increments — the lying annotation COIGN045 exists to catch. Method 1
    /// (`Bump`) mutates honestly.
    struct LyingCounter {
        count: Mutex<u64>,
    }
    impl ComObject for LyingCounter {
        fn invoke(
            &self,
            _ctx: &CallCtx<'_>,
            _iid: Iid,
            method: u32,
            msg: &mut Message,
        ) -> ComResult<()> {
            let mut count = self.count.lock();
            if method == 0 {
                // Declared ReadsState, but mutates anyway: the lie.
                *count += 1;
            } else {
                *count += 10;
            }
            msg.set(0, Value::I8(*count as i64));
            Ok(())
        }
        fn state_fingerprint(&self) -> Option<u64> {
            Some(*self.count.lock())
        }
    }

    fn lying_counter_setup(rt: &ComRuntime) -> (Clsid, Iid) {
        let iface = InterfaceBuilder::new("ICounter")
            .method("Peek", |m| m.output("n", PType::I8).reads_state())
            .method("Bump", |m| m.output("n", PType::I8).mutates_state())
            .build();
        let iid = iface.iid;
        let clsid = rt
            .registry()
            .register("Counter", vec![iface], ApiImports::NONE, |_, _| {
                Arc::new(LyingCounter {
                    count: Mutex::new(0),
                })
            });
        (clsid, iid)
    }

    #[test]
    fn crosscheck_catches_a_lying_read_only_annotation() {
        let rt = ComRuntime::single_machine();
        let (clsid, iid) = lying_counter_setup(&rt);
        let classifier = Arc::new(InstanceClassifier::new(ClassifierKind::Ifcb));
        let check = Arc::new(EffectCrossCheck::new());
        let raw = rt.create_instance(clsid, iid).unwrap();
        classifier.classify_instance(&rt, raw.owner(), clsid);
        let ptr = ProfilingInvoker::wrap_crosschecked(
            raw,
            classifier,
            Arc::new(ProfilingLogger::new()),
            Arc::new(OverheadMeter::new()),
            Arc::new(SizeCache::new()),
            None,
            Some(check.clone()),
        );

        // The honest mutator is declared MutatesState: never fingerprinted.
        let mut msg = Message::outputs(1);
        ptr.call(&rt, 1, &mut msg).unwrap();
        assert_eq!(check.count(), 0);

        // The liar: declared ReadsState, fingerprint changes.
        let mut msg = Message::outputs(1);
        ptr.call(&rt, 0, &mut msg).unwrap();
        assert_eq!(check.count(), 1);
        let violation = &check.violations()[0];
        assert_eq!(violation.class, "Counter");
        assert_eq!(violation.interface, "ICounter");
        assert_eq!(violation.method, "Peek");
        assert_eq!(violation.declared, StateEffect::ReadsState);

        // Repeats dedupe: still one distinct violation.
        let mut msg = Message::outputs(1);
        ptr.call(&rt, 0, &mut msg).unwrap();
        assert_eq!(check.count(), 1);
    }

    #[test]
    fn crosscheck_is_silent_for_honest_annotations() {
        struct HonestStore {
            data: Mutex<u64>,
        }
        impl ComObject for HonestStore {
            fn invoke(
                &self,
                _ctx: &CallCtx<'_>,
                _iid: Iid,
                _method: u32,
                msg: &mut Message,
            ) -> ComResult<()> {
                msg.set(0, Value::I8(*self.data.lock() as i64));
                Ok(())
            }
            fn state_fingerprint(&self) -> Option<u64> {
                Some(*self.data.lock())
            }
        }
        let rt = ComRuntime::single_machine();
        let iface = InterfaceBuilder::new("IStoreRo")
            .method("Get", |m| m.output("v", PType::I8).reads_state())
            .build();
        let iid = iface.iid;
        let clsid = rt
            .registry()
            .register("StoreRo", vec![iface], ApiImports::NONE, |_, _| {
                Arc::new(HonestStore {
                    data: Mutex::new(7),
                })
            });
        let classifier = Arc::new(InstanceClassifier::new(ClassifierKind::Ifcb));
        let check = Arc::new(EffectCrossCheck::new());
        let raw = rt.create_instance(clsid, iid).unwrap();
        classifier.classify_instance(&rt, raw.owner(), clsid);
        let ptr = ProfilingInvoker::wrap_crosschecked(
            raw,
            classifier,
            Arc::new(ProfilingLogger::new()),
            Arc::new(OverheadMeter::new()),
            Arc::new(SizeCache::new()),
            None,
            Some(check.clone()),
        );
        let mut msg = Message::outputs(1);
        ptr.call(&rt, 0, &mut msg).unwrap();
        assert_eq!(check.count(), 0);
    }

    #[test]
    fn overhead_meter_resets() {
        let rt = ComRuntime::single_machine();
        let meter = OverheadMeter::new();
        meter.charge(&rt, 50);
        assert_eq!(meter.total_us(), 50);
        meter.reset();
        assert_eq!(meter.total_us(), 0);
    }
}
