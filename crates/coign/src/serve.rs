//! The fleet-scale serving harness.
//!
//! One RTE runs one scenario on one stepped clock; production Coign would
//! face millions of concurrent users whose sessions all exercise the same
//! chosen distribution. This module multiplexes that load as a parallel
//! discrete-event simulation in the style of D'Angelo's adaptive
//! self-clustering work (arXiv:1610.01295): the simulated cluster is
//! partitioned into **shards** — independently-clocked slices of the fleet,
//! each with its own server replicas, event agenda
//! ([`coign_com::EventQueue`]) and RNG stream — and events only couple at
//! cut-crossing boundaries, where per-link batching
//! ([`coign_dcom::LinkBatcher`]) coalesces messages into pipelined batches.
//!
//! Three mechanisms carry the throughput:
//!
//! 1. **Discrete-event scheduling** — sessions overlap arbitrarily, so the
//!    clock jumps between scheduled happenings instead of stepping through
//!    every call serially. Shards share nothing and merge in index order,
//!    so the summary is byte-identical for a seed across `--jobs`.
//! 2. **Per-link batching** — cut-crossing calls issued on the same link
//!    within a scheduling window travel as one batch: one latency (and one
//!    jitter draw) for the whole batch plus pipelined serialization, and —
//!    the PDES point — *one* network-arrival event per batch instead of
//!    one per message. `batching: false` models every message as an
//!    independent datagram so the win stays measurable.
//! 3. **Session pooling** — a LIFO slab of session slots: a departing
//!    session's instantiated component state is reattached to the next
//!    arrival for a small attach cost instead of paying full
//!    instantiation, and the slot's buffers are reused allocation-free.
//!
//! The workload is derived from the image's own measured [`IccProfile`]:
//! each session replays the profile's heaviest edges (in deterministic
//! order) against the chosen [`Distribution`], so the load is exactly the
//! traffic shape profiling observed, multiplied by the session count.

use crate::analysis::Distribution;
use crate::profile::IccProfile;
use coign_com::{ComError, ComResult, EventQueue, MachineId};
use coign_dcom::batch::{LinkBatcher, LinkKey};
use coign_dcom::NetworkModel;
use coign_obs::metrics::{exponential_bounds, Histogram};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Base of the latency-histogram buckets (µs).
const LATENCY_BUCKET_BASE: u64 = 16;
/// Number of finite latency buckets (16 µs · 2^29 ≈ 143 minutes).
const LATENCY_BUCKET_COUNT: u32 = 30;
/// Simulated cost of instantiating a session's component working set.
const INSTANTIATE_US: u64 = 200;
/// Simulated cost of reattaching pooled component state to a new session.
const ATTACH_US: u64 = 5;
/// Simulated cost of a co-located (non-crossing) call.
const LOCAL_CALL_US: u64 = 2;
/// Modeled size of a reply/ack message, bytes.
const REPLY_BYTES: u64 = 64;

/// Options for [`serve`].
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// Total simulated sessions across all shards.
    pub sessions: u64,
    /// Number of independently-clocked shards. The summary depends on it
    /// (each shard is its own slice of the fleet), unlike `jobs`.
    pub shards: usize,
    /// Worker threads executing shards (the summary does not depend on it).
    pub jobs: usize,
    /// Master seed; shard `i` derives its RNG stream from `seed` and `i`.
    pub seed: u64,
    /// Batch cut-crossing messages per link (`false` = `--no-batch`).
    pub batching: bool,
    /// Coalescing window for an open batch, simulated µs.
    pub window_us: u64,
    /// Mean spacing between session arrivals within a shard, µs.
    pub arrival_spacing_us: u64,
    /// Cap on the per-session call script (heaviest profile edges win).
    pub script_cap: usize,
}

impl Default for ServeOptions {
    fn default() -> Self {
        ServeOptions {
            sessions: 10_000,
            shards: 4,
            jobs: 1,
            seed: 0,
            batching: true,
            window_us: 150,
            arrival_spacing_us: 100,
            script_cap: 48,
        }
    }
}

/// One call in the per-session script.
#[derive(Debug, Clone, Copy)]
struct CallSpec {
    /// `Some(link)` when the call crosses the cut; `None` when co-located.
    link: Option<LinkKey>,
    /// Marshaled request size, bytes.
    request_bytes: u64,
    /// Simulated server compute charged per call, µs.
    compute_us: u64,
}

/// Builds the session script: the profile's heaviest `script_cap` edges in
/// deterministic (traffic-desc, key-asc) order, each realized against the
/// distribution as a crossing or co-located call.
fn build_script(
    profile: &IccProfile,
    distribution: &Distribution,
    script_cap: usize,
) -> Vec<CallSpec> {
    let mut edges: Vec<_> = profile.edges.iter().collect();
    edges.sort_by(|(ka, sa), (kb, sb)| sb.messages.cmp(&sa.messages).then(ka.cmp(kb)));
    edges.truncate(script_cap.max(1));
    // Replay in key order so the script walks the app's call structure, not
    // the traffic ranking.
    edges.sort_by_key(|(ka, _)| *ka);
    edges
        .into_iter()
        .map(|(key, stats)| {
            let from = distribution.machine_of(key.from);
            let to = distribution.machine_of(key.to);
            let avg_bytes = stats.bytes / stats.messages.max(1);
            CallSpec {
                link: (from != to).then_some((from, to)),
                request_bytes: avg_bytes,
                compute_us: 5 + avg_bytes / 2048,
            }
        })
        .collect()
}

/// Per-session live state, pooled in the shard's slab.
#[derive(Debug, Clone, Copy, Default)]
struct SessionState {
    /// Arrival instant (for the end-to-end latency observation).
    arrival_us: u64,
    /// Next index into the shared call script.
    next_call: u32,
    /// Slot in the shard's session pool.
    slot: u32,
}

/// Shard event payloads. `u32` session ids are shard-local.
#[derive(Debug, Clone, Copy)]
enum Event {
    /// A session arrives and acquires a pool slot.
    Arrive(u32),
    /// A session issues its next scripted call.
    Issue(u32),
    /// An open batch on a link flushes (batching mode only).
    Flush(LinkKey),
    /// An unbatched request datagram reaches the server (unbatched mode).
    Deliver {
        session: u32,
        compute_us: u64,
        server: MachineId,
    },
}

/// Deterministic aggregate of one shard's simulation.
struct ShardReport {
    sessions: u64,
    calls: u64,
    local_calls: u64,
    remote_messages: u64,
    batches: u64,
    batched_bytes: u64,
    pool_hits: u64,
    pool_misses: u64,
    horizon_us: u64,
    latency: Histogram,
}

/// The merged, deterministic result of a serving run.
#[derive(Debug, Clone)]
pub struct ServeReport {
    /// Sessions completed (all of them — the harness runs to drain).
    pub sessions: u64,
    /// Shards simulated.
    pub shards: usize,
    /// Scripted calls executed across all sessions.
    pub calls: u64,
    /// Calls that stayed co-located under the distribution.
    pub local_calls: u64,
    /// Cut-crossing request messages sent.
    pub remote_messages: u64,
    /// Batches flushed (equals `remote_messages` when batching is off).
    pub batches: u64,
    /// Total marshaled bytes across batched requests.
    pub batched_bytes: u64,
    /// Sessions that reused pooled component state.
    pub pool_hits: u64,
    /// Sessions that paid full instantiation (= peak pool size summed
    /// over shards).
    pub pool_misses: u64,
    /// Simulated horizon: the latest shard-local instant, µs.
    pub horizon_us: u64,
    /// End-to-end session latency distribution (simulated µs), merged
    /// across shards.
    pub latency: Histogram,
    /// Whether batching was enabled.
    pub batching: bool,
    /// Session count the caller asked for (sanity echo).
    pub requested_sessions: u64,
}

impl ServeReport {
    /// Mean messages per flushed batch.
    pub fn mean_batch_size(&self) -> f64 {
        if self.batches == 0 {
            0.0
        } else {
            self.remote_messages as f64 / self.batches as f64
        }
    }

    /// Simulated session throughput: sessions per simulated second.
    pub fn sessions_per_sim_sec(&self) -> f64 {
        self.sessions as f64 / (self.horizon_us.max(1) as f64 / 1e6)
    }

    /// Simulated call throughput: calls per simulated second.
    pub fn calls_per_sim_sec(&self) -> f64 {
        self.calls as f64 / (self.horizon_us.max(1) as f64 / 1e6)
    }

    /// Latency quantile in simulated µs (interpolated; see
    /// [`Histogram::quantile`]).
    pub fn latency_quantile_us(&self, q: f64) -> f64 {
        self.latency.quantile(q)
    }

    /// Renders the deterministic summary (the bytes golden tests and the
    /// ci smoke diff pin). Wall-clock numbers never appear here — they
    /// belong to perfsuite.
    pub fn summary(&self, json: bool) -> String {
        let (p50, p95, p99) = (
            self.latency_quantile_us(0.50),
            self.latency_quantile_us(0.95),
            self.latency_quantile_us(0.99),
        );
        if json {
            format!(
                "{{\"sessions\":{},\"shards\":{},\"calls\":{},\"local_calls\":{},\
                 \"remote_messages\":{},\"batches\":{},\"batched_bytes\":{},\
                 \"mean_batch_size\":{:.2},\"pool_hits\":{},\"pool_misses\":{},\
                 \"horizon_ms\":{:.3},\"sim_sessions_per_sec\":{:.1},\
                 \"sim_calls_per_sec\":{:.1},\"latency_us\":{{\"p50\":{:.1},\
                 \"p95\":{:.1},\"p99\":{:.1}}},\"batching\":{}}}\n",
                self.sessions,
                self.shards,
                self.calls,
                self.local_calls,
                self.remote_messages,
                self.batches,
                self.batched_bytes,
                self.mean_batch_size(),
                self.pool_hits,
                self.pool_misses,
                self.horizon_us as f64 / 1000.0,
                self.sessions_per_sim_sec(),
                self.calls_per_sim_sec(),
                p50,
                p95,
                p99,
                self.batching,
            )
        } else {
            format!(
                "served {} session(s) over {} shard(s): {} calls ({} local, {} crossing)\n\
                 batching={} batches={} mean_batch={:.2} batched_bytes={}\n\
                 pool: {} hit(s), {} miss(es)\n\
                 horizon {:.3} ms simulated; {:.1} sessions/s, {:.1} calls/s (simulated)\n\
                 latency p50={:.1}us p95={:.1}us p99={:.1}us\n",
                self.sessions,
                self.shards,
                self.calls,
                self.local_calls,
                self.remote_messages,
                if self.batching { "on" } else { "off" },
                self.batches,
                self.mean_batch_size(),
                self.batched_bytes,
                self.pool_hits,
                self.pool_misses,
                self.horizon_us as f64 / 1000.0,
                self.sessions_per_sim_sec(),
                self.calls_per_sim_sec(),
                p50,
                p95,
                p99,
            )
        }
    }
}

/// Serialization-only component of a one-way send (keeps MTU overhead).
fn ser_us(net: &NetworkModel, bytes: u64) -> f64 {
    (net.mean_time_us(bytes) - net.latency_us).max(0.0)
}

/// Payload-only serialization time: what a message adds to a batch it
/// joins, beyond the per-datagram overhead the batch already paid.
fn payload_us(net: &NetworkModel, bytes: u64) -> f64 {
    (ser_us(net, bytes) - ser_us(net, 0)).max(0.0)
}

/// Index of a link's transmit-clock slot, growing the table on first sight.
fn link_slot(link_free: &mut Vec<(LinkKey, u64)>, link: LinkKey) -> usize {
    match link_free.iter().position(|(k, _)| *k == link) {
        Some(i) => i,
        None => {
            link_free.push((link, 0));
            link_free.len() - 1
        }
    }
}

/// Runs one shard to completion. Everything here is single-threaded and
/// seeded, so a shard's report depends only on (profile, distribution,
/// network, options, shard index).
#[allow(clippy::too_many_lines)]
fn run_shard(
    script: &[CallSpec],
    net: &NetworkModel,
    opts: &ServeOptions,
    shard: usize,
    shard_sessions: u64,
) -> ShardReport {
    let shard_seed = opts.seed ^ (shard as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    let mut rng = StdRng::seed_from_u64(shard_seed);
    // Think times are drawn tens of millions of times per run — they get a
    // dedicated splitmix64 stream instead of the (much slower) shard
    // StdRng, which stays reserved for network-jitter draws.
    let mut think_state = shard_seed ^ 0xA076_1D64_78BD_642F;
    let mut queue: EventQueue<Event> = EventQueue::with_capacity(shard_sessions as usize + 64);
    let mut batcher: LinkBatcher<u32> = LinkBatcher::new(opts.window_us);
    let latency = Histogram::with_bounds(exponential_bounds(
        LATENCY_BUCKET_BASE,
        LATENCY_BUCKET_COUNT,
    ));

    let mut sessions: Vec<SessionState> = vec![SessionState::default(); shard_sessions as usize];
    // The session pool: a LIFO free list of instantiated slots. `slots`
    // only ever grows on a miss, so its final length is the peak number of
    // concurrently-live sessions — exactly the state a serving process
    // would keep resident.
    let mut free_slots: Vec<u32> = Vec::new();
    let mut slots_created: u32 = 0;
    // Per-machine server clocks: requests queue FIFO at their target
    // machine, so a loaded replica pushes its backlog's completion out —
    // the source of the tail in p95/p99.
    let mut machine_now: Vec<u64> = Vec::new();
    // Per-link transmit clocks: a link is a serial resource, and both the
    // batched and the unbatched path queue their serialization time on it.
    // A handful of links at most, so a scanned vec beats a hash map.
    let mut link_free: Vec<(LinkKey, u64)> = Vec::new();
    // Latest simulated instant seen, including inline local-call runs that
    // never re-enter the event heap.
    let mut horizon: u64 = 0;

    let mut calls = 0u64;
    let mut local_calls = 0u64;
    let mut remote_messages = 0u64;
    let mut unbatched_batches = 0u64;
    let mut unbatched_bytes = 0u64;
    let mut pool_hits = 0u64;
    let mut completed = 0u64;

    let spacing = opts.arrival_spacing_us.max(1);
    let mut arrival = 0u64;
    for s in 0..shard_sessions {
        queue.schedule(arrival, Event::Arrive(s as u32));
        arrival += rng.gen_range(1..=spacing * 2);
    }

    // One closure-free event loop: each arm mutates only shard state.
    while let Some((now, event)) = queue.pop() {
        match event {
            Event::Arrive(s) => {
                let (slot, cost) = match free_slots.pop() {
                    Some(slot) => {
                        pool_hits += 1;
                        (slot, ATTACH_US)
                    }
                    None => {
                        let slot = slots_created;
                        slots_created += 1;
                        (slot, INSTANTIATE_US)
                    }
                };
                sessions[s as usize] = SessionState {
                    arrival_us: now,
                    next_call: 0,
                    slot,
                };
                queue.schedule(now + cost, Event::Issue(s));
            }
            Event::Issue(s) => {
                // Lookahead: a run of co-located calls never touches the
                // network or another session's state, so it is executed
                // inline on a local time cursor instead of round-tripping
                // every call through the event heap. The heap only sees the
                // next cut-crossing call (or the session's completion).
                let mut t = now;
                loop {
                    let idx = sessions[s as usize].next_call as usize;
                    if idx >= script.len() {
                        // Session done: observe end-to-end latency, recycle
                        // the slot.
                        latency.observe(t - sessions[s as usize].arrival_us);
                        free_slots.push(sessions[s as usize].slot);
                        completed += 1;
                        horizon = horizon.max(t);
                        break;
                    }
                    let call = script[idx];
                    calls += 1;
                    match call.link {
                        None => {
                            local_calls += 1;
                            sessions[s as usize].next_call += 1;
                            t += LOCAL_CALL_US + think_us(&mut think_state);
                        }
                        Some(link) => {
                            remote_messages += 1;
                            if opts.batching {
                                if let Some(flush_at) =
                                    batcher.enqueue(link, call.request_bytes, s, t)
                                {
                                    // Nagle-style coalescing: while the link
                                    // is still transmitting, keep the batch
                                    // open — it flushes when the window
                                    // closes or the link frees up, whichever
                                    // is later. Under load batches grow to
                                    // match the link's drain rate.
                                    let li = link_slot(&mut link_free, link);
                                    queue.schedule(
                                        flush_at.max(link_free[li].1),
                                        Event::Flush(link),
                                    );
                                }
                            } else {
                                // Independent datagram: it occupies the link
                                // for its payload plus a full per-datagram
                                // overhead, and pays its own latency draw.
                                unbatched_batches += 1;
                                unbatched_bytes += call.request_bytes;
                                let li = link_slot(&mut link_free, link);
                                let depart = t.max(link_free[li].1);
                                let xfer = ser_us(net, call.request_bytes);
                                link_free[li].1 = depart + xfer as u64;
                                let lat = net.sample_time_us(0, &mut rng) - ser_us(net, 0);
                                queue.schedule(
                                    depart + (xfer + lat) as u64,
                                    Event::Deliver {
                                        session: s,
                                        compute_us: call.compute_us,
                                        server: link.1,
                                    },
                                );
                            }
                            break;
                        }
                    }
                }
            }
            Event::Flush(link) => {
                let batch = batcher.drain(link);
                debug_assert!(!batch.is_empty(), "flush fired on an idle link");
                // A batch is one datagram: the link is occupied for a single
                // per-datagram overhead plus every member's payload, and the
                // batch pays one latency draw each way. Amortizing the
                // overhead and the draws across members is exactly what
                // batching buys over `--no-batch`.
                let lat = net.sample_time_us(0, &mut rng) - ser_us(net, 0);
                let reply_lat = net.sample_time_us(0, &mut rng) - ser_us(net, 0);
                let server = machine_slot(&mut machine_now, link.1);
                let li = link_slot(&mut link_free, link);
                let depart = now.max(link_free[li].1);
                let mut cursor = depart as f64 + ser_us(net, 0);
                for msg in &batch {
                    // Members arrive pipelined: each becomes visible to the
                    // server as soon as its own payload bytes land.
                    cursor += payload_us(net, msg.bytes);
                    let arrival = (cursor + lat) as u64;
                    let start = machine_now[server].max(arrival);
                    let spec = script[sessions[msg.payload as usize].next_call as usize];
                    machine_now[server] = start + spec.compute_us;
                    // Each reply departs as soon as its own call completes;
                    // replies share the batch's return-path latency draw.
                    let reply_at =
                        machine_now[server] as f64 + reply_lat + ser_us(net, REPLY_BYTES);
                    let s = msg.payload;
                    finish_call(
                        &mut sessions[s as usize],
                        &mut queue,
                        s,
                        reply_at as u64,
                        &mut think_state,
                    );
                }
                link_free[li].1 = cursor as u64;
            }
            Event::Deliver {
                session,
                compute_us,
                server,
            } => {
                // The datagram queues FIFO at its target replica, then the
                // reply travels back as its own send (own latency draw).
                let slot = machine_slot(&mut machine_now, server);
                let start = machine_now[slot].max(now);
                machine_now[slot] = start + compute_us;
                let back = net.sample_time_us(REPLY_BYTES, &mut rng);
                finish_call(
                    &mut sessions[session as usize],
                    &mut queue,
                    session,
                    machine_now[slot] + back as u64,
                    &mut think_state,
                );
            }
        }
    }

    debug_assert_eq!(completed, shard_sessions);
    let stats = batcher.stats();
    ShardReport {
        sessions: shard_sessions,
        calls,
        local_calls,
        remote_messages,
        batches: stats.batches + unbatched_batches,
        batched_bytes: stats.bytes + unbatched_bytes,
        pool_hits,
        pool_misses: u64::from(slots_created),
        horizon_us: horizon.max(queue.now_us()),
        latency,
    }
}

/// Advances a finished call: bump the script cursor and schedule the next
/// issue after a seeded think pause.
fn finish_call(
    state: &mut SessionState,
    queue: &mut EventQueue<Event>,
    session: u32,
    done_us: u64,
    think_state: &mut u64,
) {
    state.next_call += 1;
    queue.schedule(done_us + think_us(think_state), Event::Issue(session));
}

/// A think pause in 50..=400 µs from the shard's splitmix64 stream.
fn think_us(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    50 + z % 351
}

/// Index of a machine's clock slot, growing the table on first sight.
fn machine_slot(machine_now: &mut Vec<u64>, machine: MachineId) -> usize {
    let idx = machine.0 as usize;
    if machine_now.len() <= idx {
        machine_now.resize(idx + 1, 0);
    }
    idx
}

/// Runs the serving harness: `opts.sessions` simulated sessions over the
/// distribution, sharded into `opts.shards` independently-clocked event
/// queues executed by `opts.jobs` worker threads. The report is
/// byte-identical for a given seed across `jobs`.
pub fn serve(
    profile: &IccProfile,
    distribution: &Distribution,
    network: &NetworkModel,
    opts: &ServeOptions,
) -> ComResult<ServeReport> {
    if profile.edges.is_empty() {
        return Err(ComError::App(
            "profile carries no traffic — run `coign profile` first".to_string(),
        ));
    }
    if opts.sessions == 0 {
        return Err(ComError::App("nothing to serve: --sessions 0".to_string()));
    }
    let shards = opts.shards.max(1);
    let script = build_script(profile, distribution, opts.script_cap);

    // Sessions split round-robin across shards; shard i simulates its slice
    // in isolation and the reports merge in shard order.
    let per_shard: Vec<u64> = (0..shards)
        .map(|i| {
            opts.sessions / shards as u64 + u64::from((i as u64) < opts.sessions % shards as u64)
        })
        .collect();
    let slots: Vec<Mutex<Option<ShardReport>>> = (0..shards).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    let jobs = opts.jobs.max(1).min(shards);
    std::thread::scope(|scope| {
        for _ in 0..jobs {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= shards {
                    break;
                }
                let report = run_shard(&script, network, opts, i, per_shard[i]);
                *slots[i].lock().expect("serve shard slot") = Some(report);
            });
        }
    });

    let latency = Histogram::with_bounds(exponential_bounds(
        LATENCY_BUCKET_BASE,
        LATENCY_BUCKET_COUNT,
    ));
    let mut merged = ServeReport {
        sessions: 0,
        shards,
        calls: 0,
        local_calls: 0,
        remote_messages: 0,
        batches: 0,
        batched_bytes: 0,
        pool_hits: 0,
        pool_misses: 0,
        horizon_us: 0,
        latency,
        batching: opts.batching,
        requested_sessions: opts.sessions,
    };
    for slot in slots {
        let shard = slot
            .into_inner()
            .expect("serve shard lock")
            .expect("serve worker exited without reporting");
        merged.sessions += shard.sessions;
        merged.calls += shard.calls;
        merged.local_calls += shard.local_calls;
        merged.remote_messages += shard.remote_messages;
        merged.batches += shard.batches;
        merged.batched_bytes += shard.batched_bytes;
        merged.pool_hits += shard.pool_hits;
        merged.pool_misses += shard.pool_misses;
        merged.horizon_us = merged.horizon_us.max(shard.horizon_us);
        merged.latency.merge_from(&shard.latency);
    }
    Ok(merged)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classifier::ClassificationId;
    use crate::profile::size_bucket;
    use coign_com::Iid;
    use std::collections::HashMap;

    /// A small synthetic profile: a client-side viewer chatting with a
    /// server-side store over two methods, plus a purely local edge.
    fn fixture() -> (IccProfile, Distribution) {
        let mut profile = IccProfile::new();
        let (viewer, store, cache) = (
            ClassificationId(1),
            ClassificationId(2),
            ClassificationId(3),
        );
        let iid = Iid::from_name("IServeTest");
        for (from, to, method, messages, bytes) in [
            (viewer, store, 0u32, 900u64, 180_000u64),
            (viewer, store, 1, 300, 30_000),
            (viewer, cache, 2, 500, 10_000),
        ] {
            let key = crate::profile::EdgeKey {
                from,
                to,
                iid,
                method,
                bucket: size_bucket(bytes / messages),
            };
            profile
                .edges
                .insert(key, crate::profile::EdgeStats { messages, bytes });
        }
        let mut placement = HashMap::new();
        placement.insert(viewer, MachineId::CLIENT);
        placement.insert(store, MachineId::SERVER);
        placement.insert(cache, MachineId::CLIENT);
        let distribution = Distribution {
            placement,
            predicted_comm_us: 0.0,
            network_name: "test".to_string(),
        };
        (profile, distribution)
    }

    fn opts(sessions: u64, jobs: usize, batching: bool) -> ServeOptions {
        ServeOptions {
            sessions,
            shards: 4,
            jobs,
            seed: 7,
            batching,
            ..ServeOptions::default()
        }
    }

    #[test]
    fn serve_completes_every_session_and_call() {
        let (profile, dist) = fixture();
        let net = NetworkModel::ethernet_10baset();
        let report = serve(&profile, &dist, &net, &opts(500, 1, true)).unwrap();
        assert_eq!(report.sessions, 500);
        // 3 script entries per session: 2 crossing + 1 local.
        assert_eq!(report.calls, 1500);
        assert_eq!(report.local_calls, 500);
        assert_eq!(report.remote_messages, 1000);
        assert_eq!(report.latency.count(), 500);
        assert!(report.horizon_us > 0);
        assert!(report.batches <= report.remote_messages);
        assert!(report.mean_batch_size() >= 1.0);
    }

    #[test]
    fn summary_is_byte_identical_across_jobs() {
        let (profile, dist) = fixture();
        let net = NetworkModel::ethernet_10baset();
        let summaries: Vec<String> = [1usize, 2, 4, 8]
            .iter()
            .map(|&jobs| {
                let report = serve(&profile, &dist, &net, &opts(2_000, jobs, true)).unwrap();
                report.summary(false) + &report.summary(true)
            })
            .collect();
        for s in &summaries[1..] {
            assert_eq!(&summaries[0], s, "summary must not depend on --jobs");
        }
    }

    #[test]
    fn shard_count_changes_the_schedule_but_not_the_totals() {
        let (profile, dist) = fixture();
        let net = NetworkModel::ethernet_10baset();
        let two = serve(
            &profile,
            &dist,
            &net,
            &ServeOptions {
                shards: 2,
                ..opts(1_000, 1, true)
            },
        )
        .unwrap();
        let eight = serve(
            &profile,
            &dist,
            &net,
            &ServeOptions {
                shards: 8,
                ..opts(1_000, 1, true)
            },
        )
        .unwrap();
        assert_eq!(two.calls, eight.calls);
        assert_eq!(two.sessions, eight.sessions);
    }

    #[test]
    fn batching_coalesces_and_unbatched_does_not() {
        let (profile, dist) = fixture();
        let net = NetworkModel::ethernet_10baset();
        let batched = serve(&profile, &dist, &net, &opts(2_000, 2, true)).unwrap();
        let unbatched = serve(&profile, &dist, &net, &opts(2_000, 2, false)).unwrap();
        assert_eq!(
            unbatched.batches, unbatched.remote_messages,
            "unbatched mode sends each message alone"
        );
        assert!(
            batched.batches < batched.remote_messages / 2,
            "concurrent sessions must share batches (batches={} messages={})",
            batched.batches,
            batched.remote_messages
        );
        assert!(batched.mean_batch_size() > 2.0);
        // Same workload either way.
        assert_eq!(batched.calls, unbatched.calls);
        assert_eq!(batched.batched_bytes, unbatched.batched_bytes);
    }

    #[test]
    fn session_pool_reuses_slots() {
        let (profile, dist) = fixture();
        let net = NetworkModel::ethernet_10baset();
        // Arrivals slow enough for the fleet to keep up: the pool only
        // demonstrates reuse when sessions actually drain between arrivals.
        let report = serve(
            &profile,
            &dist,
            &net,
            &ServeOptions {
                arrival_spacing_us: 20_000,
                ..opts(5_000, 2, true)
            },
        )
        .unwrap();
        assert_eq!(report.pool_hits + report.pool_misses, report.sessions);
        assert!(
            report.pool_hits > report.pool_misses,
            "most sessions must reuse pooled state (hits={} misses={})",
            report.pool_hits,
            report.pool_misses
        );
    }

    #[test]
    fn latency_percentiles_are_ordered_and_positive() {
        let (profile, dist) = fixture();
        let net = NetworkModel::ethernet_10baset();
        let report = serve(&profile, &dist, &net, &opts(2_000, 2, true)).unwrap();
        let (p50, p95, p99) = (
            report.latency_quantile_us(0.50),
            report.latency_quantile_us(0.95),
            report.latency_quantile_us(0.99),
        );
        assert!(p50 > 0.0);
        assert!(p50 <= p95 && p95 <= p99, "p50={p50} p95={p95} p99={p99}");
    }

    #[test]
    fn empty_profile_and_zero_sessions_are_rejected() {
        let (profile, dist) = fixture();
        let net = NetworkModel::ethernet_10baset();
        assert!(serve(&IccProfile::new(), &dist, &net, &opts(10, 1, true)).is_err());
        assert!(serve(&profile, &dist, &net, &opts(0, 1, true)).is_err());
    }
}
