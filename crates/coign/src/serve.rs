//! The fleet-scale serving harness.
//!
//! One RTE runs one scenario on one stepped clock; production Coign would
//! face millions of concurrent users whose sessions all exercise the same
//! chosen distribution. This module multiplexes that load as a parallel
//! discrete-event simulation in the style of D'Angelo's adaptive
//! self-clustering work (arXiv:1610.01295): the simulated cluster is
//! partitioned into **shards** — independently-clocked slices of the fleet,
//! each with its own server replicas, event agenda
//! ([`coign_com::EventQueue`]) and RNG stream — and events only couple at
//! cut-crossing boundaries, where per-link batching
//! ([`coign_dcom::LinkBatcher`]) coalesces messages into pipelined batches.
//!
//! Three mechanisms carry the throughput:
//!
//! 1. **Discrete-event scheduling** — sessions overlap arbitrarily, so the
//!    clock jumps between scheduled happenings instead of stepping through
//!    every call serially. Shards share nothing and merge in index order,
//!    so the summary is byte-identical for a seed across `--jobs`.
//! 2. **Per-link batching** — cut-crossing calls issued on the same link
//!    within a scheduling window travel as one batch: one latency (and one
//!    jitter draw) for the whole batch plus pipelined serialization, and —
//!    the PDES point — *one* network-arrival event per batch instead of
//!    one per message. `batching: false` models every message as an
//!    independent datagram so the win stays measurable.
//! 3. **Session pooling** — a LIFO slab of session slots: a departing
//!    session's instantiated component state is reattached to the next
//!    arrival for a small attach cost instead of paying full
//!    instantiation, and the slot's buffers are reused allocation-free.
//!
//! The workload is derived from the image's own measured [`IccProfile`]:
//! each session replays the profile's heaviest edges (in deterministic
//! order) against the chosen [`Distribution`], so the load is exactly the
//! traffic shape profiling observed, multiplied by the session count.

use crate::analysis::Distribution;
use crate::classifier::ClassificationId;
use crate::multiway::ReplicaRouter;
use crate::profile::IccProfile;
use coign_com::{ComError, ComResult, EventQueue, MachineId};
use coign_dcom::batch::{FlushReason, LinkBatcher, LinkKey};
use coign_dcom::{
    BreakerDecision, BreakerPolicy, CallPolicy, FaultPlan, FaultStats, HealthMonitor, NetworkModel,
};
use coign_obs::metrics::{exponential_bounds, Histogram};
use coign_obs::timeseries::{TimeSeries, WindowCounts};
use coign_obs::trace::{TraceArg, Tracer};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeSet;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Base of the latency-histogram buckets (µs).
const LATENCY_BUCKET_BASE: u64 = 16;
/// Number of finite latency buckets (16 µs · 2^29 ≈ 143 minutes).
const LATENCY_BUCKET_COUNT: u32 = 30;
/// Simulated cost of instantiating a session's component working set.
const INSTANTIATE_US: u64 = 200;
/// Simulated cost of reattaching pooled component state to a new session.
const ATTACH_US: u64 = 5;
/// Simulated cost of a co-located (non-crossing) call.
const LOCAL_CALL_US: u64 = 2;
/// Modeled size of a reply/ack message, bytes.
const REPLY_BYTES: u64 = 64;

/// Options for [`serve`].
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// Total simulated sessions across all shards.
    pub sessions: u64,
    /// Number of independently-clocked shards. The summary depends on it
    /// (each shard is its own slice of the fleet), unlike `jobs`.
    pub shards: usize,
    /// Worker threads executing shards (the summary does not depend on it).
    pub jobs: usize,
    /// Master seed; shard `i` derives its RNG stream from `seed` and `i`.
    pub seed: u64,
    /// Batch cut-crossing messages per link (`false` = `--no-batch`).
    pub batching: bool,
    /// Coalescing window for an open batch, simulated µs.
    pub window_us: u64,
    /// Mean spacing between session arrivals within a shard, µs.
    pub arrival_spacing_us: u64,
    /// Cap on the per-session call script (heaviest profile edges win).
    pub script_cap: usize,
    /// Timeline telemetry window width, simulated µs (`0` = no timeline —
    /// the default, which keeps the hot path free of recording entirely).
    pub timeline_window_us: u64,
    /// Causal-tracing sample rate: every Nth session (by fleet-global id)
    /// emits `session`/`call`/`batch_wait`/`link_transit` spans when a
    /// tracer is supplied to [`serve_traced`] (`0` = no session tracing).
    pub trace_sample: u64,
    /// Scheduled faults injected on the simulated clock. An empty plan
    /// constructs no fault state at all, so the run is byte-identical to
    /// a build without the fault layer.
    pub faults: FaultPlan,
    /// Timeout/retry/backoff policy crossing calls follow when `faults`
    /// is non-empty.
    pub policy: CallPolicy,
    /// Replica routing table for failover: when a machine is declared
    /// dead, calls targeting it re-resolve to a surviving copy in O(1)
    /// instead of failing. `None` = no replicas (degraded mode only).
    pub replicas: Option<ReplicaRouter>,
}

impl Default for ServeOptions {
    fn default() -> Self {
        ServeOptions {
            sessions: 10_000,
            shards: 4,
            jobs: 1,
            seed: 0,
            batching: true,
            window_us: 150,
            arrival_spacing_us: 100,
            script_cap: 48,
            timeline_window_us: 0,
            trace_sample: 0,
            faults: FaultPlan::none(),
            policy: CallPolicy::default(),
            replicas: None,
        }
    }
}

/// One call in the per-session script.
#[derive(Debug, Clone, Copy)]
struct CallSpec {
    /// `Some(link)` when the call crosses the cut; `None` when co-located.
    link: Option<LinkKey>,
    /// Marshaled request size, bytes.
    request_bytes: u64,
    /// Simulated server compute charged per call, µs.
    compute_us: u64,
    /// Callee classification (raw id), for timeline compute attribution.
    to_class: u32,
}

/// Builds the session script: the profile's heaviest `script_cap` edges in
/// deterministic (traffic-desc, key-asc) order, each realized against the
/// distribution as a crossing or co-located call.
fn build_script(
    profile: &IccProfile,
    distribution: &Distribution,
    script_cap: usize,
) -> Vec<CallSpec> {
    let mut edges: Vec<_> = profile.edges.iter().collect();
    edges.sort_by(|(ka, sa), (kb, sb)| sb.messages.cmp(&sa.messages).then(ka.cmp(kb)));
    edges.truncate(script_cap.max(1));
    // Replay in key order so the script walks the app's call structure, not
    // the traffic ranking.
    edges.sort_by_key(|(ka, _)| *ka);
    edges
        .into_iter()
        .map(|(key, stats)| {
            let from = distribution.machine_of(key.from);
            let to = distribution.machine_of(key.to);
            let avg_bytes = stats.bytes / stats.messages.max(1);
            CallSpec {
                link: (from != to).then_some((from, to)),
                request_bytes: avg_bytes,
                compute_us: 5 + avg_bytes / 2048,
                to_class: key.to.0,
            }
        })
        .collect()
}

/// Per-session live state, pooled in the shard's slab.
#[derive(Debug, Clone, Copy, Default)]
struct SessionState {
    /// Arrival instant (for the end-to-end latency observation).
    arrival_us: u64,
    /// Instant the session's in-flight remote call was issued (trace
    /// context: lets the flush/deliver event reconstruct the call span).
    issued_us: u64,
    /// Next index into the shared call script.
    next_call: u32,
    /// Slot in the shard's session pool.
    slot: u32,
    /// Failed attempts on the current scripted call (fault runs only;
    /// always 0 when the plan is empty).
    attempts: u32,
}

/// Shard event payloads. `u32` session ids are shard-local.
#[derive(Debug, Clone, Copy)]
enum Event {
    /// A session arrives and acquires a pool slot.
    Arrive(u32),
    /// A session issues its next scripted call.
    Issue(u32),
    /// An open batch on a link flushes (batching mode only). `gated` is
    /// true when the flush was held past its window for the link to free.
    Flush { link: LinkKey, gated: bool },
    /// An unbatched request datagram reaches the server (unbatched mode).
    Deliver {
        session: u32,
        compute_us: u64,
        server: MachineId,
        to_class: u32,
    },
}

/// Per-shard fault-layer runtime, constructed only when the run carries a
/// non-empty [`FaultPlan`]. Each shard owns its own copy (share-nothing):
/// a dedicated fault RNG stream (never the jitter stream — transparency),
/// a circuit-breaker monitor that declares machines dead deterministically,
/// the shard's view of the dead set, and a replica router for O(1)
/// failover.
struct FaultRt {
    plan: FaultPlan,
    policy: CallPolicy,
    /// Dedicated fault stream: loss draws and backoff jitter only. The
    /// shard's jitter RNG is untouched by the fault layer.
    rng: StdRng,
    health: HealthMonitor,
    router: Option<ReplicaRouter>,
    /// Machines this shard's breakers have declared dead.
    dead: BTreeSet<MachineId>,
    stats: FaultStats,
    /// Classifications re-pointed at surviving replicas at death instants.
    failovers: u64,
    /// Calls served by a replica instead of their (dead) home.
    replica_served: u64,
    /// Instants at which a machine was declared dead and routing was
    /// re-pointed — one recovery epoch each.
    recovery_epochs: Vec<u64>,
}

impl FaultRt {
    /// The typed error severing `link` at `now_us`, if any: machine death
    /// (plan-scheduled or breaker-declared) wins over a partition.
    fn severed_error(&self, link: LinkKey, now_us: u64) -> Option<ComError> {
        let (from, to) = link;
        if self.dead.contains(&to) || self.plan.machine_down(to, now_us) {
            return Some(ComError::MachineDown(to));
        }
        if self.dead.contains(&from) || self.plan.machine_down(from, now_us) {
            return Some(ComError::MachineDown(from));
        }
        if self.plan.link_severed(from, to, now_us) {
            return Some(ComError::Partitioned { from, to });
        }
        None
    }

    /// Routes a call whose home machine is dead: `Some(machine)` names the
    /// surviving copy (possibly the caller's own machine), `None` means no
    /// copy survives and the call is refused.
    fn route(&self, to_class: u32, caller: MachineId) -> Option<MachineId> {
        self.router
            .as_ref()?
            .route(ClassificationId(to_class), caller, &self.dead)
    }
}

/// Declares `machine` dead at `now_us`: one new recovery epoch, replica
/// failover re-pointing every classification homed there to a surviving
/// copy, and a `failover` trace instant. Returns false when the machine
/// was already dead.
fn declare_dead(f: &mut FaultRt, machine: MachineId, now_us: u64, trace: Option<&Tracer>) -> bool {
    if !f.dead.insert(machine) {
        return false;
    }
    f.recovery_epochs.push(now_us);
    let mut rehomed = 0u64;
    if let Some(router) = f.router.as_mut() {
        let failover = router.drop_machine(machine);
        rehomed = failover.rehomed.len() as u64;
    }
    f.failovers += rehomed;
    if let Some(tr) = trace {
        tr.instant_at(
            "failover",
            now_us,
            vec![
                ("machine", TraceArg::U64(u64::from(machine.0))),
                ("rehomed", TraceArg::U64(rehomed)),
                ("epoch", TraceArg::U64(f.recovery_epochs.len() as u64)),
            ],
        );
    }
    true
}

/// One failed attempt under the call policy: charges `wait_us` (the
/// timeout that exposed the failure; 0 for a breaker fast-fail), then
/// either schedules a retry after a jittered backoff or — attempts
/// exhausted — skips the call so the session still drains. Returns true
/// on give-up (the call is now counted failed).
fn retry_or_skip(
    f: &mut FaultRt,
    state: &mut SessionState,
    queue: &mut EventQueue<Event>,
    session: u32,
    now_us: u64,
    wait_us: u64,
) -> bool {
    state.attempts += 1;
    if state.attempts > f.policy.max_retries {
        f.stats.failed_calls += 1;
        f.stats.wasted_us += wait_us;
        state.attempts = 0;
        state.next_call += 1;
        queue.schedule(now_us + wait_us, Event::Issue(session));
        true
    } else {
        f.stats.retries += 1;
        let jitter = 1.0 + f.policy.backoff_jitter * f.rng.gen_range(-1.0f64..=1.0);
        let backoff = (f.policy.backoff_us(state.attempts) as f64 * jitter) as u64;
        f.stats.wasted_us += wait_us + backoff;
        queue.schedule(now_us + wait_us + backoff, Event::Issue(session));
        false
    }
}

/// One shard's fault-layer outcome, merged into [`ServeFaultReport`].
struct ShardFault {
    stats: FaultStats,
    failovers: u64,
    replica_served: u64,
    recovery_epochs: Vec<u64>,
    dead: Vec<u16>,
}

/// Deterministic aggregate of one shard's simulation.
struct ShardReport {
    sessions: u64,
    calls: u64,
    local_calls: u64,
    remote_messages: u64,
    batches: u64,
    batched_bytes: u64,
    window_flushes: u64,
    link_free_flushes: u64,
    pool_hits: u64,
    pool_misses: u64,
    horizon_us: u64,
    latency: Histogram,
    /// The shard's timeline slice, when telemetry is on.
    series: Option<TimeSeries>,
    /// The shard's buffered trace events, when session tracing is on.
    trace: Option<Tracer>,
    /// The shard's fault-layer outcome, when the plan was non-empty.
    fault: Option<ShardFault>,
}

/// The merged fault-layer outcome of a faulted serving run. `None` on
/// [`ServeReport`] when the plan was empty — the summary then renders the
/// exact pre-fault bytes.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ServeFaultReport {
    /// Transport-level fault counters summed across shards.
    pub stats: FaultStats,
    /// Classifications re-pointed at surviving replicas at death instants.
    pub failovers: u64,
    /// Calls served by a surviving replica instead of their dead home.
    pub replica_served: u64,
    /// Recovery-epoch instants (machine-death declarations), sorted
    /// across shards.
    pub recovery_epochs: Vec<u64>,
    /// Machines declared dead by at least one shard, sorted unique.
    pub dead_machines: Vec<u16>,
}

impl ServeFaultReport {
    /// Fraction of scripted calls that completed (did not fail or get
    /// refused), given the report's total call count.
    pub fn availability(&self, calls: u64) -> f64 {
        if calls == 0 {
            return 1.0;
        }
        (calls - self.stats.failed_calls.min(calls)) as f64 / calls as f64
    }
}

/// The merged, deterministic result of a serving run.
#[derive(Debug, Clone)]
pub struct ServeReport {
    /// Sessions completed (all of them — the harness runs to drain).
    pub sessions: u64,
    /// Shards simulated.
    pub shards: usize,
    /// Scripted calls executed across all sessions.
    pub calls: u64,
    /// Calls that stayed co-located under the distribution.
    pub local_calls: u64,
    /// Cut-crossing request messages sent.
    pub remote_messages: u64,
    /// Batches flushed (equals `remote_messages` when batching is off).
    pub batches: u64,
    /// Total marshaled bytes across batched requests.
    pub batched_bytes: u64,
    /// Batches whose coalescing window expired before the link freed.
    /// Diagnostic only — never rendered in [`ServeReport::summary`], whose
    /// bytes are pinned by golden tests.
    pub window_flushes: u64,
    /// Batches held open past their window until the link freed up.
    /// Diagnostic only, like `window_flushes`.
    pub link_free_flushes: u64,
    /// Sessions that reused pooled component state.
    pub pool_hits: u64,
    /// Sessions that paid full instantiation (= peak pool size summed
    /// over shards).
    pub pool_misses: u64,
    /// Simulated horizon: the latest shard-local instant, µs.
    pub horizon_us: u64,
    /// End-to-end session latency distribution (simulated µs), merged
    /// across shards.
    pub latency: Histogram,
    /// Whether batching was enabled.
    pub batching: bool,
    /// Session count the caller asked for (sanity echo).
    pub requested_sessions: u64,
    /// Fault-layer outcome; `None` when the run carried no fault plan.
    pub faults: Option<ServeFaultReport>,
}

impl ServeReport {
    /// Mean messages per flushed batch.
    pub fn mean_batch_size(&self) -> f64 {
        if self.batches == 0 {
            0.0
        } else {
            self.remote_messages as f64 / self.batches as f64
        }
    }

    /// Simulated session throughput: sessions per simulated second.
    pub fn sessions_per_sim_sec(&self) -> f64 {
        self.sessions as f64 / (self.horizon_us.max(1) as f64 / 1e6)
    }

    /// Simulated call throughput: calls per simulated second.
    pub fn calls_per_sim_sec(&self) -> f64 {
        self.calls as f64 / (self.horizon_us.max(1) as f64 / 1e6)
    }

    /// Latency quantile in simulated µs (interpolated; see
    /// [`Histogram::quantile`]).
    pub fn latency_quantile_us(&self, q: f64) -> f64 {
        self.latency.quantile(q)
    }

    /// Renders the deterministic summary (the bytes golden tests and the
    /// ci smoke diff pin). Wall-clock numbers never appear here — they
    /// belong to perfsuite.
    pub fn summary(&self, json: bool) -> String {
        let (p50, p95, p99) = (
            self.latency_quantile_us(0.50),
            self.latency_quantile_us(0.95),
            self.latency_quantile_us(0.99),
        );
        let mut out = if json {
            format!(
                "{{\"sessions\":{},\"shards\":{},\"calls\":{},\"local_calls\":{},\
                 \"remote_messages\":{},\"batches\":{},\"batched_bytes\":{},\
                 \"mean_batch_size\":{:.2},\"pool_hits\":{},\"pool_misses\":{},\
                 \"horizon_ms\":{:.3},\"sim_sessions_per_sec\":{:.1},\
                 \"sim_calls_per_sec\":{:.1},\"latency_us\":{{\"p50\":{:.1},\
                 \"p95\":{:.1},\"p99\":{:.1}}},\"batching\":{}}}\n",
                self.sessions,
                self.shards,
                self.calls,
                self.local_calls,
                self.remote_messages,
                self.batches,
                self.batched_bytes,
                self.mean_batch_size(),
                self.pool_hits,
                self.pool_misses,
                self.horizon_us as f64 / 1000.0,
                self.sessions_per_sim_sec(),
                self.calls_per_sim_sec(),
                p50,
                p95,
                p99,
                self.batching,
            )
        } else {
            format!(
                "served {} session(s) over {} shard(s): {} calls ({} local, {} crossing)\n\
                 batching={} batches={} mean_batch={:.2} batched_bytes={}\n\
                 pool: {} hit(s), {} miss(es)\n\
                 horizon {:.3} ms simulated; {:.1} sessions/s, {:.1} calls/s (simulated)\n\
                 latency p50={:.1}us p95={:.1}us p99={:.1}us\n",
                self.sessions,
                self.shards,
                self.calls,
                self.local_calls,
                self.remote_messages,
                if self.batching { "on" } else { "off" },
                self.batches,
                self.mean_batch_size(),
                self.batched_bytes,
                self.pool_hits,
                self.pool_misses,
                self.horizon_us as f64 / 1000.0,
                self.sessions_per_sim_sec(),
                self.calls_per_sim_sec(),
                p50,
                p95,
                p99,
            )
        };
        // Fault lines are appended only for faulted runs, so the bytes
        // above stay pinned to the pre-fault golden output.
        if let Some(f) = &self.faults {
            let dead = f
                .dead_machines
                .iter()
                .map(u16::to_string)
                .collect::<Vec<_>>()
                .join(",");
            if json {
                out.truncate(out.len() - 2); // re-open the object: drop "}\n"
                out.push_str(&format!(
                    ",\"faults\":{{\"timeouts\":{},\"retries\":{},\"drops\":{},\
                     \"failed_calls\":{},\"refused\":{},\"wasted_us\":{},\
                     \"availability\":{:.6},\"failovers\":{},\"replica_served\":{},\
                     \"recovery_epochs\":{},\"dead\":[{}]}}}}\n",
                    f.stats.timeouts,
                    f.stats.retries,
                    f.stats.drops,
                    f.stats.failed_calls,
                    f.stats.machine_down_errors,
                    f.stats.wasted_us,
                    f.availability(self.calls),
                    f.failovers,
                    f.replica_served,
                    f.recovery_epochs.len(),
                    dead,
                ));
            } else {
                out.push_str(&format!(
                    "faults: {} timeout(s), {} retry(ies), {} drop(s), {} failed call(s), {} refused; availability {:.4}\n\
                     failover: {} replica-served call(s), {} rehomed classification(s), dead=[{}]\n",
                    f.stats.timeouts,
                    f.stats.retries,
                    f.stats.drops,
                    f.stats.failed_calls,
                    f.stats.machine_down_errors,
                    f.availability(self.calls),
                    f.replica_served,
                    f.failovers,
                    dead,
                ));
                match f.recovery_epochs.first() {
                    Some(first) => out.push_str(&format!(
                        "recovery: {} epoch(s), first at {}us\n",
                        f.recovery_epochs.len(),
                        first,
                    )),
                    None => out.push_str("recovery: 0 epoch(s)\n"),
                }
            }
        }
        out
    }
}

/// Serialization-only component of a one-way send (keeps MTU overhead).
fn ser_us(net: &NetworkModel, bytes: u64) -> f64 {
    (net.mean_time_us(bytes) - net.latency_us).max(0.0)
}

/// Payload-only serialization time: what a message adds to a batch it
/// joins, beyond the per-datagram overhead the batch already paid.
fn payload_us(net: &NetworkModel, bytes: u64) -> f64 {
    (ser_us(net, bytes) - ser_us(net, 0)).max(0.0)
}

/// Index of a link's transmit-clock slot, growing the table on first sight.
fn link_slot(link_free: &mut Vec<(LinkKey, u64)>, link: LinkKey) -> usize {
    match link_free.iter().position(|(k, _)| *k == link) {
        Some(i) => i,
        None => {
            link_free.push((link, 0));
            link_free.len() - 1
        }
    }
}

/// Runs one shard to completion. Everything here is single-threaded and
/// seeded, so a shard's report depends only on (profile, distribution,
/// network, options, shard index).
#[allow(clippy::too_many_lines)]
fn run_shard(
    script: &[CallSpec],
    net: &NetworkModel,
    opts: &ServeOptions,
    shard: usize,
    shard_sessions: u64,
    base_session: u64,
    tracer: Option<&Tracer>,
) -> ShardReport {
    let shard_seed = opts.seed ^ (shard as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    let mut rng = StdRng::seed_from_u64(shard_seed);
    // Telemetry is observation-only: the hooks below never touch the RNG
    // streams or the schedule, so a telemetry-on run replays the exact
    // event sequence of a telemetry-off run.
    let mut series = (opts.timeline_window_us > 0).then(|| {
        TimeSeries::new(
            opts.timeline_window_us,
            exponential_bounds(LATENCY_BUCKET_BASE, LATENCY_BUCKET_COUNT),
        )
    });
    // Sampled sessions are chosen by fleet-global id so the sampled set is
    // independent of the shard split; each shard buffers its spans in a
    // child tracer, merged back in shard order for byte identity.
    let trace = match tracer {
        Some(t) if t.is_enabled() && opts.trace_sample > 0 => Some(t.child()),
        _ => None,
    };
    let sample = opts.trace_sample.max(1);
    // Sampling is keyed on the *global* session id so the sampled set is
    // independent of how sessions land on shards. Precomputed per shard:
    // the check runs once per batch member, and a table lookup beats a
    // 64-bit modulo on that path.
    let sampled_table: Vec<bool> = if trace.is_some() {
        (0..shard_sessions)
            .map(|s| (base_session + s).is_multiple_of(sample))
            .collect()
    } else {
        Vec::new()
    };
    let sampled = |s: u32| sampled_table[s as usize];
    // Shard-local batch sequence; flow ids stay globally unique because the
    // shard index occupies the high bits.
    let mut batch_seq: u64 = 0;
    // Think times are drawn tens of millions of times per run — they get a
    // dedicated splitmix64 stream instead of the (much slower) shard
    // StdRng, which stays reserved for network-jitter draws.
    let mut think_state = shard_seed ^ 0xA076_1D64_78BD_642F;
    let mut queue: EventQueue<Event> = EventQueue::with_capacity(shard_sessions as usize + 64);
    let mut batcher: LinkBatcher<u32> = LinkBatcher::new(opts.window_us);
    let latency = Histogram::with_bounds(exponential_bounds(
        LATENCY_BUCKET_BASE,
        LATENCY_BUCKET_COUNT,
    ));
    // The fault layer exists only when the plan schedules something: a
    // zero-fault run constructs none of this state, touches no extra RNG
    // stream, and replays the exact pre-fault event sequence.
    let mut fault: Option<FaultRt> = (!opts.faults.is_empty()).then(|| FaultRt {
        plan: opts.faults.clone(),
        policy: opts.policy,
        rng: StdRng::seed_from_u64(shard_seed ^ 0x5DEE_CE66_D154_21A5),
        health: HealthMonitor::new(BreakerPolicy::default()),
        router: opts.replicas.clone(),
        dead: BTreeSet::new(),
        stats: FaultStats::default(),
        failovers: 0,
        replica_served: 0,
        recovery_epochs: Vec::new(),
    });
    if fault.is_some() {
        if let Some(ts) = series.as_mut() {
            ts.mark_faulted();
        }
    }

    let mut sessions: Vec<SessionState> = vec![SessionState::default(); shard_sessions as usize];
    // The session pool: a LIFO free list of instantiated slots. `slots`
    // only ever grows on a miss, so its final length is the peak number of
    // concurrently-live sessions — exactly the state a serving process
    // would keep resident.
    let mut free_slots: Vec<u32> = Vec::new();
    let mut slots_created: u32 = 0;
    // Per-machine server clocks: requests queue FIFO at their target
    // machine, so a loaded replica pushes its backlog's completion out —
    // the source of the tail in p95/p99.
    let mut machine_now: Vec<u64> = Vec::new();
    // Per-link transmit clocks: a link is a serial resource, and both the
    // batched and the unbatched path queue their serialization time on it.
    // A handful of links at most, so a scanned vec beats a hash map.
    let mut link_free: Vec<(LinkKey, u64)> = Vec::new();
    // Latest simulated instant seen, including inline local-call runs that
    // never re-enter the event heap.
    let mut horizon: u64 = 0;

    let mut calls = 0u64;
    let mut local_calls = 0u64;
    let mut remote_messages = 0u64;
    let mut unbatched_batches = 0u64;
    let mut unbatched_bytes = 0u64;
    let mut pool_hits = 0u64;
    let mut completed = 0u64;

    let spacing = opts.arrival_spacing_us.max(1);
    let mut arrival = 0u64;
    for s in 0..shard_sessions {
        queue.schedule(arrival, Event::Arrive(s as u32));
        arrival += rng.gen_range(1..=spacing * 2);
    }

    // Scratch reused across Flush events: per-batch compute charged to the
    // recorder in one hook call per distinct class instead of one per member.
    // Class ids are dense (classification indices), so a direct-indexed
    // accumulator plus a touched list keeps the per-member cost at two adds.
    let max_class = script.iter().map(|c| c.to_class).max().unwrap_or(0) as usize;
    let mut class_us: Vec<u64> = vec![0; max_class + 1];
    let mut class_touched: Vec<u32> = Vec::new();
    // Counters for the current event-time window, staged in shard-local
    // state and folded into the recorder once per window crossing. Event
    // pop time is monotone, so the stage flushes exactly once per window.
    let telem = series.is_some();
    let mut acc = WindowCounts::default();
    let mut acc_at: u64 = 0;
    let mut acc_end: u64 = 0;
    let mut pops = 0u64;

    // One closure-free event loop: each arm mutates only shard state.
    while let Some((now, event)) = queue.pop() {
        if telem {
            if now >= acc_end {
                if acc_end > 0 {
                    if let Some(ts) = series.as_mut() {
                        ts.add_counts(acc_at, &acc);
                    }
                    acc = WindowCounts::default();
                }
                acc_at = now;
                acc_end = (now / opts.timeline_window_us + 1) * opts.timeline_window_us;
            }
            // Sampled every 64 pops: the depth series is a per-window peak
            // estimate, and a fixed stride keeps it deterministic while
            // staying off the hot path.
            pops = pops.wrapping_add(1);
            if pops & 63 == 0 {
                acc.queue_depth_peak = acc.queue_depth_peak.max(queue.len() as u64);
            }
        }
        match event {
            Event::Arrive(s) => {
                let (slot, cost, miss) = match free_slots.pop() {
                    Some(slot) => {
                        pool_hits += 1;
                        (slot, ATTACH_US, false)
                    }
                    None => {
                        let slot = slots_created;
                        slots_created += 1;
                        (slot, INSTANTIATE_US, true)
                    }
                };
                sessions[s as usize] = SessionState {
                    arrival_us: now,
                    issued_us: 0,
                    next_call: 0,
                    slot,
                    attempts: 0,
                };
                if telem {
                    // Live sessions = every slot ever created minus the ones
                    // sitting on the free list (the slot just popped/created
                    // is live by now).
                    acc.arrivals += 1;
                    acc.pool_misses += u64::from(miss);
                    acc.pool_live_peak = acc
                        .pool_live_peak
                        .max(u64::from(slots_created) - free_slots.len() as u64);
                }
                queue.schedule(now + cost, Event::Issue(s));
            }
            Event::Issue(s) => {
                // Lookahead: a run of co-located calls never touches the
                // network or another session's state, so it is executed
                // inline on a local time cursor instead of round-tripping
                // every call through the event heap. The heap only sees the
                // next cut-crossing call (or the session's completion).
                let mut t = now;
                let mut run_calls = 0u64;
                let mut run_locals = 0u64;
                loop {
                    let idx = sessions[s as usize].next_call as usize;
                    if idx >= script.len() {
                        // Session done: observe end-to-end latency, recycle
                        // the slot.
                        let arrival_us = sessions[s as usize].arrival_us;
                        let lat_us = t - arrival_us;
                        latency.observe(lat_us);
                        if telem {
                            acc.calls += run_calls;
                            acc.local_calls += run_locals;
                            acc.remote_messages += run_calls - run_locals;
                            if let Some(ts) = series.as_mut() {
                                ts.on_completion(t, lat_us);
                            }
                        }
                        if let Some(tr) = trace.as_ref() {
                            if sampled(s) {
                                let gid = base_session + u64::from(s);
                                tr.complete_at(
                                    format!("session:{gid}"),
                                    arrival_us,
                                    lat_us,
                                    vec![
                                        ("session", TraceArg::U64(gid)),
                                        ("calls", TraceArg::U64(script.len() as u64)),
                                    ],
                                );
                            }
                        }
                        free_slots.push(sessions[s as usize].slot);
                        completed += 1;
                        horizon = horizon.max(t);
                        break;
                    }
                    let call = script[idx];
                    // Retries re-enter this arm for the same script slot;
                    // only the first attempt counts as a scripted call.
                    let first_attempt = sessions[s as usize].attempts == 0;
                    if first_attempt {
                        calls += 1;
                    }
                    match call.link {
                        None => {
                            local_calls += 1;
                            run_calls += 1;
                            run_locals += 1;
                            sessions[s as usize].next_call += 1;
                            t += LOCAL_CALL_US + think_us(&mut think_state);
                        }
                        Some(spec_link) => {
                            // Fault-aware resolution: a call homed on a dead
                            // machine re-resolves to a surviving replica in
                            // O(1) (possibly the caller's own machine), or
                            // is refused when no copy survives.
                            let mut link = spec_link;
                            if let Some(f) = fault.as_mut() {
                                if f.dead.contains(&link.1) {
                                    match f.route(call.to_class, link.0) {
                                        Some(target) if target == link.0 => {
                                            // A surviving copy lives on the
                                            // caller's machine: the crossing
                                            // call degrades to a local one,
                                            // compute running in-process.
                                            f.replica_served += 1;
                                            if telem {
                                                acc.replica_served += 1;
                                            }
                                            local_calls += 1;
                                            run_calls += 1;
                                            run_locals += 1;
                                            let st = &mut sessions[s as usize];
                                            st.attempts = 0;
                                            st.next_call += 1;
                                            t += LOCAL_CALL_US
                                                + call.compute_us
                                                + think_us(&mut think_state);
                                            continue;
                                        }
                                        Some(target) => {
                                            f.replica_served += 1;
                                            if telem {
                                                acc.replica_served += 1;
                                            }
                                            link = (link.0, target);
                                        }
                                        None => {
                                            // No surviving copy anywhere: the
                                            // call is refused and the session
                                            // moves on degraded.
                                            f.stats.machine_down_errors += 1;
                                            f.stats.failed_calls += 1;
                                            if telem {
                                                acc.degraded += 1;
                                            }
                                            let st = &mut sessions[s as usize];
                                            st.attempts = 0;
                                            st.next_call += 1;
                                            t += think_us(&mut think_state);
                                            continue;
                                        }
                                    }
                                }
                            }
                            remote_messages += 1;
                            if first_attempt {
                                run_calls += 1;
                            }
                            sessions[s as usize].issued_us = t;
                            if telem {
                                // The whole inline run — its local calls plus
                                // this crossing call — staged for the run's
                                // start window.
                                acc.calls += run_calls;
                                acc.local_calls += run_locals;
                                acc.remote_messages += run_calls - run_locals;
                                // A retry is a physical re-send of a call
                                // already counted.
                                if !first_attempt {
                                    acc.remote_messages += 1;
                                }
                            }
                            // Breaker fast path: an open link refuses the
                            // attempt immediately, replaying the error that
                            // tripped it (no timeout charged).
                            if let Some(f) = fault.as_mut() {
                                if let BreakerDecision::FastFail(err) =
                                    f.health.check(link.0, link.1, t)
                                {
                                    if matches!(err, ComError::MachineDown(_)) {
                                        f.stats.machine_down_errors += 1;
                                    } else {
                                        f.stats.timeouts += 1;
                                    }
                                    let gave_up = retry_or_skip(
                                        f,
                                        &mut sessions[s as usize],
                                        &mut queue,
                                        s,
                                        t,
                                        0,
                                    );
                                    if telem && gave_up {
                                        acc.degraded += 1;
                                    }
                                    break;
                                }
                            }
                            if opts.batching {
                                if let Some(flush_at) =
                                    batcher.enqueue(link, call.request_bytes, s, t)
                                {
                                    // Nagle-style coalescing: while the link
                                    // is still transmitting, keep the batch
                                    // open — it flushes when the window
                                    // closes or the link frees up, whichever
                                    // is later. Under load batches grow to
                                    // match the link's drain rate.
                                    let li = link_slot(&mut link_free, link);
                                    let gated = link_free[li].1 > flush_at;
                                    queue.schedule(
                                        flush_at.max(link_free[li].1),
                                        Event::Flush { link, gated },
                                    );
                                }
                            } else {
                                // Unbatched datagrams meet the wire at send
                                // time: a severed link or a loss draw fails
                                // the attempt into the retry policy.
                                if let Some(f) = fault.as_mut() {
                                    let mut failure = f.severed_error(link, t);
                                    if failure.is_none() {
                                        let p = f.plan.loss_probability(link.0, link.1, t);
                                        if p > 0.0 && f.rng.gen_bool(p) {
                                            f.stats.drops += 1;
                                            failure = Some(ComError::Timeout {
                                                detail: format!(
                                                    "{}→{} datagram lost",
                                                    link.0 .0, link.1 .0
                                                ),
                                            });
                                        }
                                    }
                                    if let Some(err) = failure {
                                        f.stats.timeouts += 1;
                                        let _ = f.health.on_failure(link.0, link.1, &err, t);
                                        for machine in f.health.drain_opened_machines() {
                                            if declare_dead(f, machine, t, trace.as_ref()) && telem
                                            {
                                                acc.recoveries += 1;
                                            }
                                        }
                                        let wait = f.policy.timeout_us;
                                        let gave_up = retry_or_skip(
                                            f,
                                            &mut sessions[s as usize],
                                            &mut queue,
                                            s,
                                            t,
                                            wait,
                                        );
                                        if telem && gave_up {
                                            acc.degraded += 1;
                                        }
                                        break;
                                    }
                                }
                                // Independent datagram: it occupies the link
                                // for its payload plus a full per-datagram
                                // overhead, and pays its own latency draw.
                                unbatched_batches += 1;
                                unbatched_bytes += call.request_bytes;
                                let li = link_slot(&mut link_free, link);
                                let depart = t.max(link_free[li].1);
                                let xfer = ser_us(net, call.request_bytes);
                                link_free[li].1 = depart + xfer as u64;
                                let mut lat = net.sample_time_us(0, &mut rng) - ser_us(net, 0);
                                if let Some(f) = fault.as_mut() {
                                    lat *= f.plan.latency_factor(link.0, link.1, depart);
                                    let _ = f.health.on_success(link.0, link.1);
                                }
                                if let Some(ts) = series.as_mut() {
                                    ts.on_batch_flush(depart, 1);
                                    ts.on_link_busy(depart, (link.0 .0, link.1 .0), xfer as u64);
                                }
                                if let Some(tr) = trace.as_ref() {
                                    if sampled(s) {
                                        tr.complete_at(
                                            "link_transit",
                                            depart,
                                            (xfer + lat) as u64,
                                            vec![(
                                                "session",
                                                TraceArg::U64(base_session + u64::from(s)),
                                            )],
                                        );
                                    }
                                }
                                queue.schedule(
                                    depart + (xfer + lat) as u64,
                                    Event::Deliver {
                                        session: s,
                                        compute_us: call.compute_us,
                                        server: link.1,
                                        to_class: call.to_class,
                                    },
                                );
                            }
                            break;
                        }
                    }
                }
            }
            Event::Flush { link, gated } => {
                // Faulted wire first: a severed link fails the open batch as
                // a unit — every member gets the typed error and re-resolves
                // through the retry policy — and a loss draw loses the whole
                // batch, since a batch is one datagram.
                if let Some(f) = fault.as_mut() {
                    let mut failure = f.severed_error(link, now);
                    if failure.is_none() {
                        let p = f.plan.loss_probability(link.0, link.1, now);
                        if p > 0.0 && f.rng.gen_bool(p) {
                            f.stats.drops += 1;
                            failure = Some(ComError::Timeout {
                                detail: format!("{}→{} batch lost", link.0 .0, link.1 .0),
                            });
                        }
                    }
                    if let Some(err) = failure {
                        let wait = f.policy.timeout_us;
                        // One wire event, one breaker observation: the batch
                        // is a single datagram, however many members it
                        // carries.
                        let _ = f.health.on_failure(link.0, link.1, &err, now);
                        let members = batcher.fail_open(link, &err);
                        for (msg, _err) in &members {
                            f.stats.timeouts += 1;
                            let gave_up = retry_or_skip(
                                f,
                                &mut sessions[msg.payload as usize],
                                &mut queue,
                                msg.payload,
                                now,
                                wait,
                            );
                            if telem && gave_up {
                                acc.degraded += 1;
                            }
                        }
                        for machine in f.health.drain_opened_machines() {
                            if declare_dead(f, machine, now, trace.as_ref()) && telem {
                                acc.recoveries += 1;
                            }
                        }
                        continue;
                    }
                }
                let batch = batcher.drain(link);
                debug_assert!(!batch.is_empty(), "flush fired on an idle link");
                batcher.note_flush(if gated {
                    FlushReason::LinkFreed
                } else {
                    FlushReason::WindowExpired
                });
                // A batch is one datagram: the link is occupied for a single
                // per-datagram overhead plus every member's payload, and the
                // batch pays one latency draw each way. Amortizing the
                // overhead and the draws across members is exactly what
                // batching buys over `--no-batch`.
                let mut lat = net.sample_time_us(0, &mut rng) - ser_us(net, 0);
                let mut reply_lat = net.sample_time_us(0, &mut rng) - ser_us(net, 0);
                if let Some(f) = fault.as_mut() {
                    let factor = f.plan.latency_factor(link.0, link.1, now);
                    lat *= factor;
                    reply_lat *= factor;
                    let _ = f.health.on_success(link.0, link.1);
                }
                let server = machine_slot(&mut machine_now, link.1);
                let li = link_slot(&mut link_free, link);
                let depart = now.max(link_free[li].1);
                let mut cursor = depart as f64 + ser_us(net, 0);
                // Flow id tying a batch's members to the batch span: shard
                // in the high bits, shard-local sequence below.
                let flow = ((shard as u64) << 40) | batch_seq;
                batch_seq += 1;
                let mut traced_members = 0u64;
                // Server compute begins at the first member's service start;
                // the batch's whole compute bill is charged there per class.
                let mut compute_at = u64::MAX;
                for msg in &batch {
                    // Members arrive pipelined: each becomes visible to the
                    // server as soon as its own payload bytes land.
                    cursor += payload_us(net, msg.bytes);
                    let arrival = (cursor + lat) as u64;
                    let start = machine_now[server].max(arrival);
                    let spec = script[sessions[msg.payload as usize].next_call as usize];
                    machine_now[server] = start + spec.compute_us;
                    // Each reply departs as soon as its own call completes;
                    // replies share the batch's return-path latency draw.
                    let reply_at =
                        machine_now[server] as f64 + reply_lat + ser_us(net, REPLY_BYTES);
                    let s = msg.payload;
                    if telem {
                        compute_at = compute_at.min(start);
                        if spec.compute_us > 0 {
                            let slot = &mut class_us[spec.to_class as usize];
                            if *slot == 0 {
                                class_touched.push(spec.to_class);
                            }
                            *slot += spec.compute_us;
                        }
                    }
                    if let Some(tr) = trace.as_ref() {
                        if sampled(s) {
                            traced_members += 1;
                            let gid = base_session + u64::from(s);
                            let issued = sessions[s as usize].issued_us;
                            tr.complete_at(
                                "call",
                                issued,
                                (reply_at as u64).saturating_sub(issued),
                                vec![
                                    ("session", TraceArg::U64(gid)),
                                    ("flow", TraceArg::U64(flow)),
                                ],
                            );
                            tr.complete_at(
                                "batch_wait",
                                issued,
                                depart.saturating_sub(issued),
                                vec![
                                    ("session", TraceArg::U64(gid)),
                                    ("flow", TraceArg::U64(flow)),
                                ],
                            );
                            tr.complete_at(
                                "link_transit",
                                depart,
                                arrival.saturating_sub(depart),
                                vec![
                                    ("session", TraceArg::U64(gid)),
                                    ("flow", TraceArg::U64(flow)),
                                ],
                            );
                        }
                    }
                    finish_call(
                        &mut sessions[s as usize],
                        &mut queue,
                        s,
                        reply_at as u64,
                        &mut think_state,
                    );
                }
                if let Some(ts) = series.as_mut() {
                    for &class in &class_touched {
                        ts.on_class_busy(compute_at, class, class_us[class as usize]);
                        class_us[class as usize] = 0;
                    }
                    class_touched.clear();
                    acc.batches += 1;
                    acc.batch_members += batch.len() as u64;
                    ts.on_link_busy(
                        depart,
                        (link.0 .0, link.1 .0),
                        (cursor as u64).saturating_sub(depart),
                    );
                }
                if traced_members > 0 {
                    if let Some(tr) = trace.as_ref() {
                        tr.complete_at(
                            "batch",
                            depart,
                            (cursor as u64).saturating_sub(depart),
                            vec![
                                (
                                    "link",
                                    TraceArg::Str(format!("{}->{}", link.0 .0, link.1 .0)),
                                ),
                                ("members", TraceArg::U64(batch.len() as u64)),
                                ("flow", TraceArg::U64(flow)),
                            ],
                        );
                    }
                }
                link_free[li].1 = cursor as u64;
            }
            Event::Deliver {
                session,
                compute_us,
                server,
                to_class,
            } => {
                // The datagram queues FIFO at its target replica, then the
                // reply travels back as its own send (own latency draw).
                let slot = machine_slot(&mut machine_now, server);
                let start = machine_now[slot].max(now);
                machine_now[slot] = start + compute_us;
                let back = net.sample_time_us(REPLY_BYTES, &mut rng);
                let done = machine_now[slot] + back as u64;
                if let Some(ts) = series.as_mut() {
                    ts.on_class_busy(start, to_class, compute_us);
                }
                if let Some(tr) = trace.as_ref() {
                    if sampled(session) {
                        let issued = sessions[session as usize].issued_us;
                        tr.complete_at(
                            "call",
                            issued,
                            done.saturating_sub(issued),
                            vec![("session", TraceArg::U64(base_session + u64::from(session)))],
                        );
                    }
                }
                finish_call(
                    &mut sessions[session as usize],
                    &mut queue,
                    session,
                    done,
                    &mut think_state,
                );
            }
        }
    }

    // Fold the last staged window (the loop only flushes on a crossing).
    if acc_end > 0 {
        if let Some(ts) = series.as_mut() {
            ts.add_counts(acc_at, &acc);
        }
    }

    debug_assert_eq!(completed, shard_sessions);
    let stats = batcher.stats();
    ShardReport {
        sessions: shard_sessions,
        calls,
        local_calls,
        remote_messages,
        batches: stats.batches + unbatched_batches,
        batched_bytes: stats.bytes + unbatched_bytes,
        window_flushes: stats.window_flushes,
        link_free_flushes: stats.link_free_flushes,
        pool_hits,
        pool_misses: u64::from(slots_created),
        horizon_us: horizon.max(queue.now_us()),
        latency,
        series,
        trace,
        fault: fault.map(|f| ShardFault {
            stats: f.stats,
            failovers: f.failovers,
            replica_served: f.replica_served,
            recovery_epochs: f.recovery_epochs,
            dead: f.dead.iter().map(|m| m.0).collect(),
        }),
    }
}

/// Advances a finished call: bump the script cursor and schedule the next
/// issue after a seeded think pause.
fn finish_call(
    state: &mut SessionState,
    queue: &mut EventQueue<Event>,
    session: u32,
    done_us: u64,
    think_state: &mut u64,
) {
    state.next_call += 1;
    state.attempts = 0;
    queue.schedule(done_us + think_us(think_state), Event::Issue(session));
}

/// A think pause in 50..=400 µs from the shard's splitmix64 stream.
fn think_us(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    50 + z % 351
}

/// Index of a machine's clock slot, growing the table on first sight.
fn machine_slot(machine_now: &mut Vec<u64>, machine: MachineId) -> usize {
    let idx = machine.0 as usize;
    if machine_now.len() <= idx {
        machine_now.resize(idx + 1, 0);
    }
    idx
}

/// Runs the serving harness: `opts.sessions` simulated sessions over the
/// distribution, sharded into `opts.shards` independently-clocked event
/// queues executed by `opts.jobs` worker threads. The report is
/// byte-identical for a given seed across `jobs`.
pub fn serve(
    profile: &IccProfile,
    distribution: &Distribution,
    network: &NetworkModel,
    opts: &ServeOptions,
) -> ComResult<ServeReport> {
    serve_traced(profile, distribution, network, opts, None).map(|(report, _)| report)
}

/// [`serve`] with telemetry: when `opts.timeline_window_us > 0` the second
/// return value carries the fleet timeline (per-shard series merged in
/// shard order), and when `opts.trace_sample > 0` and `tracer` is an
/// enabled [`Tracer`], sampled sessions emit causal spans into it (each
/// shard buffers into a child tracer, merged back in shard order). Both
/// outputs — and the report itself — stay byte-identical across `jobs`.
pub fn serve_traced(
    profile: &IccProfile,
    distribution: &Distribution,
    network: &NetworkModel,
    opts: &ServeOptions,
    tracer: Option<&Tracer>,
) -> ComResult<(ServeReport, Option<TimeSeries>)> {
    if profile.edges.is_empty() {
        return Err(ComError::App(
            "profile carries no traffic — run `coign profile` first".to_string(),
        ));
    }
    if opts.sessions == 0 {
        return Err(ComError::App("nothing to serve: --sessions 0".to_string()));
    }
    let shards = opts.shards.max(1);
    let script = build_script(profile, distribution, opts.script_cap);

    // Sessions split round-robin across shards; shard i simulates its slice
    // in isolation and the reports merge in shard order.
    let per_shard: Vec<u64> = (0..shards)
        .map(|i| {
            opts.sessions / shards as u64 + u64::from((i as u64) < opts.sessions % shards as u64)
        })
        .collect();
    // Fleet-global id of each shard's first session (trace sampling is
    // keyed on global ids so the sampled set survives re-sharding).
    let bases: Vec<u64> = per_shard
        .iter()
        .scan(0u64, |acc, &n| {
            let base = *acc;
            *acc += n;
            Some(base)
        })
        .collect();
    let slots: Vec<Mutex<Option<ShardReport>>> = (0..shards).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    let jobs = opts.jobs.max(1).min(shards);
    std::thread::scope(|scope| {
        for _ in 0..jobs {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= shards {
                    break;
                }
                let report = run_shard(&script, network, opts, i, per_shard[i], bases[i], tracer);
                *slots[i].lock().expect("serve shard slot") = Some(report);
            });
        }
    });

    let latency = Histogram::with_bounds(exponential_bounds(
        LATENCY_BUCKET_BASE,
        LATENCY_BUCKET_COUNT,
    ));
    let mut merged = ServeReport {
        sessions: 0,
        shards,
        calls: 0,
        local_calls: 0,
        remote_messages: 0,
        batches: 0,
        batched_bytes: 0,
        window_flushes: 0,
        link_free_flushes: 0,
        pool_hits: 0,
        pool_misses: 0,
        horizon_us: 0,
        latency,
        batching: opts.batching,
        requested_sessions: opts.sessions,
        faults: None,
    };
    let mut timeline: Option<TimeSeries> = None;
    for slot in slots {
        let shard = slot
            .into_inner()
            .expect("serve shard lock")
            .expect("serve worker exited without reporting");
        merged.sessions += shard.sessions;
        merged.calls += shard.calls;
        merged.local_calls += shard.local_calls;
        merged.remote_messages += shard.remote_messages;
        merged.batches += shard.batches;
        merged.batched_bytes += shard.batched_bytes;
        merged.window_flushes += shard.window_flushes;
        merged.link_free_flushes += shard.link_free_flushes;
        merged.pool_hits += shard.pool_hits;
        merged.pool_misses += shard.pool_misses;
        merged.horizon_us = merged.horizon_us.max(shard.horizon_us);
        merged.latency.merge_from(&shard.latency);
        // Shard order, not completion order: both merges below are what
        // keep timeline and trace bytes independent of --jobs.
        if let Some(shard_series) = shard.series {
            match timeline.as_mut() {
                Some(t) => t.merge_from(&shard_series),
                None => timeline = Some(shard_series),
            }
        }
        if let (Some(parent), Some(child)) = (tracer, shard.trace.as_ref()) {
            parent.merge_from(child);
        }
        if let Some(sf) = shard.fault {
            let agg = merged.faults.get_or_insert_with(ServeFaultReport::default);
            agg.stats.absorb(&sf.stats);
            agg.failovers += sf.failovers;
            agg.replica_served += sf.replica_served;
            agg.recovery_epochs.extend(sf.recovery_epochs);
            agg.dead_machines.extend(sf.dead);
        }
    }
    if let Some(f) = merged.faults.as_mut() {
        // Shards declare deaths on independent clocks; a sorted union keeps
        // the merged view deterministic and independent of merge order.
        f.recovery_epochs.sort_unstable();
        f.dead_machines.sort_unstable();
        f.dead_machines.dedup();
    }
    Ok((merged, timeline))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classifier::ClassificationId;
    use crate::profile::size_bucket;
    use coign_com::Iid;
    use coign_obs::timeseries::Window;
    use std::collections::HashMap;

    /// A small synthetic profile: a client-side viewer chatting with a
    /// server-side store over two methods, plus a purely local edge.
    fn fixture() -> (IccProfile, Distribution) {
        let mut profile = IccProfile::new();
        let (viewer, store, cache) = (
            ClassificationId(1),
            ClassificationId(2),
            ClassificationId(3),
        );
        let iid = Iid::from_name("IServeTest");
        for (from, to, method, messages, bytes) in [
            (viewer, store, 0u32, 900u64, 180_000u64),
            (viewer, store, 1, 300, 30_000),
            (viewer, cache, 2, 500, 10_000),
        ] {
            let key = crate::profile::EdgeKey {
                from,
                to,
                iid,
                method,
                bucket: size_bucket(bytes / messages),
            };
            profile
                .edges
                .insert(key, crate::profile::EdgeStats { messages, bytes });
        }
        let mut placement = HashMap::new();
        placement.insert(viewer, MachineId::CLIENT);
        placement.insert(store, MachineId::SERVER);
        placement.insert(cache, MachineId::CLIENT);
        let distribution = Distribution {
            placement,
            predicted_comm_us: 0.0,
            network_name: "test".to_string(),
        };
        (profile, distribution)
    }

    fn opts(sessions: u64, jobs: usize, batching: bool) -> ServeOptions {
        ServeOptions {
            sessions,
            shards: 4,
            jobs,
            seed: 7,
            batching,
            ..ServeOptions::default()
        }
    }

    #[test]
    fn serve_completes_every_session_and_call() {
        let (profile, dist) = fixture();
        let net = NetworkModel::ethernet_10baset();
        let report = serve(&profile, &dist, &net, &opts(500, 1, true)).unwrap();
        assert_eq!(report.sessions, 500);
        // 3 script entries per session: 2 crossing + 1 local.
        assert_eq!(report.calls, 1500);
        assert_eq!(report.local_calls, 500);
        assert_eq!(report.remote_messages, 1000);
        assert_eq!(report.latency.count(), 500);
        assert!(report.horizon_us > 0);
        assert!(report.batches <= report.remote_messages);
        assert!(report.mean_batch_size() >= 1.0);
    }

    #[test]
    fn summary_is_byte_identical_across_jobs() {
        let (profile, dist) = fixture();
        let net = NetworkModel::ethernet_10baset();
        let summaries: Vec<String> = [1usize, 2, 4, 8]
            .iter()
            .map(|&jobs| {
                let report = serve(&profile, &dist, &net, &opts(2_000, jobs, true)).unwrap();
                report.summary(false) + &report.summary(true)
            })
            .collect();
        for s in &summaries[1..] {
            assert_eq!(&summaries[0], s, "summary must not depend on --jobs");
        }
    }

    #[test]
    fn shard_count_changes_the_schedule_but_not_the_totals() {
        let (profile, dist) = fixture();
        let net = NetworkModel::ethernet_10baset();
        let two = serve(
            &profile,
            &dist,
            &net,
            &ServeOptions {
                shards: 2,
                ..opts(1_000, 1, true)
            },
        )
        .unwrap();
        let eight = serve(
            &profile,
            &dist,
            &net,
            &ServeOptions {
                shards: 8,
                ..opts(1_000, 1, true)
            },
        )
        .unwrap();
        assert_eq!(two.calls, eight.calls);
        assert_eq!(two.sessions, eight.sessions);
    }

    #[test]
    fn batching_coalesces_and_unbatched_does_not() {
        let (profile, dist) = fixture();
        let net = NetworkModel::ethernet_10baset();
        let batched = serve(&profile, &dist, &net, &opts(2_000, 2, true)).unwrap();
        let unbatched = serve(&profile, &dist, &net, &opts(2_000, 2, false)).unwrap();
        assert_eq!(
            unbatched.batches, unbatched.remote_messages,
            "unbatched mode sends each message alone"
        );
        assert!(
            batched.batches < batched.remote_messages / 2,
            "concurrent sessions must share batches (batches={} messages={})",
            batched.batches,
            batched.remote_messages
        );
        assert!(batched.mean_batch_size() > 2.0);
        // Same workload either way.
        assert_eq!(batched.calls, unbatched.calls);
        assert_eq!(batched.batched_bytes, unbatched.batched_bytes);
    }

    #[test]
    fn session_pool_reuses_slots() {
        let (profile, dist) = fixture();
        let net = NetworkModel::ethernet_10baset();
        // Arrivals slow enough for the fleet to keep up: the pool only
        // demonstrates reuse when sessions actually drain between arrivals.
        let report = serve(
            &profile,
            &dist,
            &net,
            &ServeOptions {
                arrival_spacing_us: 20_000,
                ..opts(5_000, 2, true)
            },
        )
        .unwrap();
        assert_eq!(report.pool_hits + report.pool_misses, report.sessions);
        assert!(
            report.pool_hits > report.pool_misses,
            "most sessions must reuse pooled state (hits={} misses={})",
            report.pool_hits,
            report.pool_misses
        );
    }

    #[test]
    fn latency_percentiles_are_ordered_and_positive() {
        let (profile, dist) = fixture();
        let net = NetworkModel::ethernet_10baset();
        let report = serve(&profile, &dist, &net, &opts(2_000, 2, true)).unwrap();
        let (p50, p95, p99) = (
            report.latency_quantile_us(0.50),
            report.latency_quantile_us(0.95),
            report.latency_quantile_us(0.99),
        );
        assert!(p50 > 0.0);
        assert!(p50 <= p95 && p95 <= p99, "p50={p50} p95={p95} p99={p99}");
    }

    #[test]
    fn flush_reasons_partition_batches_and_no_batch_never_opens_one() {
        let (profile, dist) = fixture();
        let net = NetworkModel::ethernet_10baset();
        let batched = serve(&profile, &dist, &net, &opts(2_000, 2, true)).unwrap();
        assert_eq!(
            batched.window_flushes + batched.link_free_flushes,
            batched.batches,
            "every flushed batch has exactly one reason"
        );
        assert!(batched.window_flushes > 0, "idle links flush on the window");
        let unbatched = serve(&profile, &dist, &net, &opts(2_000, 2, false)).unwrap();
        assert_eq!(
            unbatched.window_flushes + unbatched.link_free_flushes,
            0,
            "--no-batch must never open a batch"
        );
    }

    #[test]
    fn telemetry_does_not_perturb_the_simulation() {
        let (profile, dist) = fixture();
        let net = NetworkModel::ethernet_10baset();
        let off = serve(&profile, &dist, &net, &opts(2_000, 2, true)).unwrap();
        let tracer = Tracer::enabled();
        let (on, timeline) = serve_traced(
            &profile,
            &dist,
            &net,
            &ServeOptions {
                timeline_window_us: 10_000,
                trace_sample: 100,
                ..opts(2_000, 2, true)
            },
            Some(&tracer),
        )
        .unwrap();
        assert_eq!(
            off.summary(false) + &off.summary(true),
            on.summary(false) + &on.summary(true),
            "telemetry must be observation-only"
        );
        let timeline = timeline.expect("timeline requested");
        assert!(!tracer.is_empty(), "sampled sessions must emit spans");
        // Timeline totals agree with the merged report.
        let windows = timeline.windows();
        assert_eq!(windows.iter().map(|w| w.arrivals).sum::<u64>(), on.sessions);
        assert_eq!(
            windows.iter().map(|w| w.completions).sum::<u64>(),
            on.sessions
        );
        assert_eq!(windows.iter().map(|w| w.calls).sum::<u64>(), on.calls);
        assert_eq!(
            windows.iter().map(|w| w.remote_messages).sum::<u64>(),
            on.remote_messages
        );
        assert_eq!(windows.iter().map(|w| w.batches).sum::<u64>(), on.batches);
        assert_eq!(
            windows.iter().map(|w| w.pool_misses).sum::<u64>(),
            on.pool_misses
        );
        assert_eq!(
            windows.iter().map(Window::latency_count).sum::<u64>(),
            on.sessions
        );
    }

    #[test]
    fn timeline_and_trace_are_byte_identical_across_jobs() {
        let (profile, dist) = fixture();
        let net = NetworkModel::ethernet_10baset();
        let render = |jobs: usize| {
            let tracer = Tracer::enabled();
            let (report, timeline) = serve_traced(
                &profile,
                &dist,
                &net,
                &ServeOptions {
                    timeline_window_us: 10_000,
                    trace_sample: 50,
                    ..opts(2_000, jobs, true)
                },
                Some(&tracer),
            )
            .unwrap();
            let timeline = timeline.expect("timeline requested");
            report.summary(true)
                + &timeline.to_json()
                + &timeline.to_csv()
                + &timeline.dashboard()
                + &timeline.slo(5_000).render_human()
                + &tracer.export_chrome_json()
        };
        let one = render(1);
        for jobs in [2usize, 4, 8] {
            assert_eq!(one, render(jobs), "telemetry must not depend on --jobs");
        }
        let trace_doc = &one[one.find("{\"traceEvents\"").expect("trace doc")..];
        let summary = coign_obs::trace::validate_chrome_trace(trace_doc)
            .expect("sampled serve trace validates");
        assert!(summary.has_span("call"));
        assert!(summary.has_span("batch_wait"));
        assert!(summary.has_span("link_transit"));
        assert!(summary.has_span("batch"));
        assert!(summary.span_names.iter().any(|n| n.starts_with("session:")));
    }

    #[test]
    fn empty_profile_and_zero_sessions_are_rejected() {
        let (profile, dist) = fixture();
        let net = NetworkModel::ethernet_10baset();
        assert!(serve(&IccProfile::new(), &dist, &net, &opts(10, 1, true)).is_err());
        assert!(serve(&profile, &dist, &net, &opts(0, 1, true)).is_err());
    }

    /// A router giving the server-side store (class 2) a replica on the
    /// client machine.
    fn store_replica_router(dist: &Distribution) -> ReplicaRouter {
        ReplicaRouter::new(
            dist,
            &[crate::multiway::Replica {
                class: ClassificationId(2),
                machine: MachineId::CLIENT,
                gain_us: 0.0,
            }],
        )
    }

    /// Renders every deterministic byte a serve run produces.
    fn render_all(
        profile: &IccProfile,
        dist: &Distribution,
        net: &NetworkModel,
        opts: &ServeOptions,
    ) -> String {
        let tracer = Tracer::enabled();
        let (report, timeline) = serve_traced(profile, dist, net, opts, Some(&tracer)).unwrap();
        let timeline = timeline.expect("timeline requested");
        report.summary(false)
            + &report.summary(true)
            + &timeline.to_json()
            + &timeline.to_csv()
            + &timeline.dashboard()
            + &tracer.export_chrome_json()
    }

    #[test]
    fn zero_fault_plan_is_byte_transparent() {
        let (profile, dist) = fixture();
        let net = NetworkModel::ethernet_10baset();
        let telem = |jobs: usize| ServeOptions {
            timeline_window_us: 10_000,
            trace_sample: 100,
            ..opts(2_000, jobs, true)
        };
        let baseline = render_all(&profile, &dist, &net, &telem(1));
        // Installing the whole fault apparatus — an explicit empty plan, a
        // policy, a replica router — must not move a single byte, whether
        // sequential or parallel.
        for jobs in [1usize, 4] {
            let armed = ServeOptions {
                faults: FaultPlan::none(),
                policy: CallPolicy::default(),
                replicas: Some(store_replica_router(&dist)),
                ..telem(jobs)
            };
            assert_eq!(
                baseline,
                render_all(&profile, &dist, &net, &armed),
                "zero-fault serving must be byte-identical (jobs={jobs})"
            );
        }
        // The seeded shorthand's zero seed is the empty plan by contract.
        assert!(FaultPlan::seeded(0, 1_000_000, &[MachineId::SERVER]).is_empty());
    }

    #[test]
    fn machine_death_fails_over_to_replicas_and_drains_every_session() {
        let (profile, dist) = fixture();
        let net = NetworkModel::ethernet_10baset();
        let faulted = |jobs: usize| ServeOptions {
            faults: FaultPlan::none()
                .with_machine_down(MachineId::SERVER, coign_dcom::TimeWindow::from(50_000)),
            replicas: Some(store_replica_router(&dist)),
            timeline_window_us: 10_000,
            trace_sample: 100,
            ..opts(2_000, jobs, true)
        };
        let tracer = Tracer::enabled();
        let (report, timeline) =
            serve_traced(&profile, &dist, &net, &faulted(1), Some(&tracer)).unwrap();
        assert_eq!(report.sessions, 2_000, "every session drains");
        assert_eq!(report.latency.count(), 2_000);
        let f = report.faults.as_ref().expect("fault report present");
        assert_eq!(f.dead_machines, vec![1], "the server is declared dead");
        assert!(
            !f.recovery_epochs.is_empty(),
            "death opens a recovery epoch"
        );
        assert!(f.stats.timeouts > 0, "in-flight batches fail on the wire");
        assert!(
            f.replica_served > 0,
            "read traffic fails over to the client replica"
        );
        assert!(f.failovers > 0, "the store is rehomed");
        assert!(
            f.availability(report.calls) > 0.5,
            "replica failover keeps most calls alive (availability={})",
            f.availability(report.calls)
        );
        // The summary surfaces the grep-able fault lines.
        let human = report.summary(false);
        assert!(human.contains("failover: "), "{human}");
        assert!(human.contains("recovery: "), "{human}");
        // Telemetry carries the fault columns and at least one recovery.
        let timeline = timeline.expect("timeline requested");
        assert!(timeline.faulted());
        let windows = timeline.windows();
        assert!(windows.iter().map(|w| w.recoveries).sum::<u64>() >= 1);
        assert!(windows.iter().map(|w| w.replica_served).sum::<u64>() > 0);
        // The causal trace records the failover instant.
        let doc = tracer.export_chrome_json();
        assert!(doc.contains("\"failover\""), "trace carries the instant");
        // Byte-identical across --jobs, faults and all.
        let one = render_all(&profile, &dist, &net, &faulted(1));
        for jobs in [2usize, 4] {
            assert_eq!(
                one,
                render_all(&profile, &dist, &net, &faulted(jobs)),
                "faulted serving must not depend on --jobs (jobs={jobs})"
            );
        }
    }

    #[test]
    fn machine_death_without_replicas_degrades_but_still_drains() {
        let (profile, dist) = fixture();
        let net = NetworkModel::ethernet_10baset();
        let report = serve(
            &profile,
            &dist,
            &net,
            &ServeOptions {
                faults: FaultPlan::none()
                    .with_machine_down(MachineId::SERVER, coign_dcom::TimeWindow::from(50_000)),
                ..opts(1_000, 2, true)
            },
        )
        .unwrap();
        assert_eq!(report.sessions, 1_000, "sessions drain degraded");
        let f = report.faults.as_ref().expect("fault report present");
        assert_eq!(f.dead_machines, vec![1]);
        assert_eq!(f.replica_served, 0, "no replicas to serve from");
        assert!(f.stats.failed_calls > 0, "calls to the dead store fail");
        assert!(
            f.stats.machine_down_errors > 0,
            "post-death calls are refused without a timeout"
        );
        assert!(f.availability(report.calls) < 1.0);
    }

    #[test]
    fn message_loss_retries_under_the_policy_and_recovers() {
        let (profile, dist) = fixture();
        let net = NetworkModel::ethernet_10baset();
        let report = serve(
            &profile,
            &dist,
            &net,
            &ServeOptions {
                faults: FaultPlan::none().with_loss(0.1),
                ..opts(1_000, 2, true)
            },
        )
        .unwrap();
        assert_eq!(report.sessions, 1_000);
        let f = report.faults.as_ref().expect("fault report present");
        assert!(f.stats.drops > 0, "a 10% loss plan drops batches");
        assert!(f.stats.retries > 0, "lost batches re-send under the policy");
        // Retries absorb most loss; the residue is the breaker shedding
        // load when consecutive batches vanish.
        assert!(
            f.availability(report.calls) > 0.97,
            "retries absorb transient loss (availability={})",
            f.availability(report.calls)
        );
        assert!(f.recovery_epochs.is_empty(), "loss alone kills no machine");
        assert_eq!(f.failovers, 0);
    }
}
