//! The Coign Runtime Executive (§3.1 of the paper).
//!
//! The RTE provides low-level services to the other Coign runtime
//! components: it traps component instantiation requests, wraps every COM
//! interface pointer with instrumentation, tracks binaries loaded into the
//! address space, and provides access to the configuration record. It is the
//! single [`RuntimeHook`] Coign installs into the component runtime.
//!
//! The RTE runs in one of two modes:
//!
//! * **Profiling** — instantiations proceed locally; every interface is
//!   wrapped with the (expensive, precise) profiling informer; all events go
//!   to the information logger.
//! * **Distributed** — the instance classifier identifies each
//!   about-to-be-instantiated component, the component factory relocates the
//!   request to its assigned machine, and interfaces are wrapped with the
//!   lightweight distribution informer that routes cross-machine calls
//!   through the DCOM transport.

use crate::classifier::InstanceClassifier;
use crate::drift::DriftMonitor;
use crate::factory::ComponentFactory;
use crate::informer::{
    DistributionInvoker, EffectCrossCheck, EffectViolation, OverheadMeter, ProfilingInvoker,
};
use crate::logger::InfoLogger;
use coign_com::{
    Clsid, ComResult, ComRuntime, CreateRequest, InstanceId, InterfacePtr, RuntimeHook,
};
use coign_dcom::marshal::SizeCache;
use coign_dcom::Transport;
use coign_obs::{Obs, TraceArg};
use parking_lot::Mutex;
use std::sync::Arc;

/// Which runtime configuration the RTE realizes.
enum RteMode {
    Profiling,
    Distributed {
        /// Shared with the recovery coordinator, which swaps the placement
        /// table mid-run when the cut is re-solved online.
        factory: Arc<ComponentFactory>,
        transport: Arc<Transport>,
        drift: Option<Arc<DriftMonitor>>,
    },
}

/// One graceful-degradation event: a remote instantiation whose target
/// machine was down, re-routed to the requesting machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FallbackEvent {
    /// The component class that was being instantiated.
    pub clsid: Clsid,
    /// Where the placement wanted the instance.
    pub intended: coign_com::MachineId,
    /// Where the instance actually went (the requesting machine).
    pub actual: coign_com::MachineId,
    /// Simulated time of the decision, microseconds.
    pub at_us: u64,
}

/// The Coign Runtime Executive.
pub struct CoignRte {
    mode: RteMode,
    classifier: Arc<InstanceClassifier>,
    logger: Arc<dyn InfoLogger>,
    overhead: Arc<OverheadMeter>,
    /// Memoized marshal sizes shared by every profiling informer this RTE
    /// installs (idle in distributed mode — the lightweight informer never
    /// walks parameters it doesn't have to).
    marshal_cache: Arc<SizeCache>,
    /// Binaries observed in the address space (RTE address-space tracking).
    images: Mutex<Vec<String>>,
    /// Instantiations re-routed because the target machine was down.
    fallbacks: Mutex<Vec<FallbackEvent>>,
    /// COIGN045 sink: declared-read-only calls whose instance fingerprint
    /// changed during profiling (idle in distributed mode).
    effect_check: Arc<EffectCrossCheck>,
    /// Observability bundle (tracer + registry + flight recorder) threaded
    /// into every informer this RTE installs.
    obs: Option<Obs>,
    /// Self-healing coordinator, installed after construction (it needs the
    /// RTE's factory); every distribution informer wrapped from then on
    /// routes failures through it.
    recovery: Mutex<Option<Arc<crate::recovery::RecoveryCoordinator>>>,
}

impl CoignRte {
    /// Creates a profiling-mode RTE.
    pub fn profiling(classifier: Arc<InstanceClassifier>, logger: Arc<dyn InfoLogger>) -> Self {
        CoignRte {
            mode: RteMode::Profiling,
            classifier,
            logger,
            overhead: Arc::new(OverheadMeter::new()),
            marshal_cache: Arc::new(SizeCache::new()),
            images: Mutex::new(Vec::new()),
            fallbacks: Mutex::new(Vec::new()),
            effect_check: Arc::new(EffectCrossCheck::new()),
            obs: None,
            recovery: Mutex::new(None),
        }
    }

    /// Creates a distributed-mode RTE realizing the given placement.
    pub fn distributed(
        classifier: Arc<InstanceClassifier>,
        logger: Arc<dyn InfoLogger>,
        factory: ComponentFactory,
        transport: Arc<Transport>,
    ) -> Self {
        Self::distributed_with_monitor(classifier, logger, factory, transport, None)
    }

    /// Creates a distributed-mode RTE that additionally counts messages for
    /// usage-drift detection.
    pub fn distributed_with_monitor(
        classifier: Arc<InstanceClassifier>,
        logger: Arc<dyn InfoLogger>,
        factory: ComponentFactory,
        transport: Arc<Transport>,
        drift: Option<Arc<DriftMonitor>>,
    ) -> Self {
        CoignRte {
            mode: RteMode::Distributed {
                factory: Arc::new(factory),
                transport,
                drift,
            },
            classifier,
            logger,
            overhead: Arc::new(OverheadMeter::new()),
            marshal_cache: Arc::new(SizeCache::new()),
            images: Mutex::new(Vec::new()),
            fallbacks: Mutex::new(Vec::new()),
            effect_check: Arc::new(EffectCrossCheck::new()),
            obs: None,
            recovery: Mutex::new(None),
        }
    }

    /// The component factory, in distributed mode. Shared so the recovery
    /// coordinator can swap its placement table while the run is live.
    pub fn factory(&self) -> Option<Arc<ComponentFactory>> {
        match &self.mode {
            RteMode::Profiling => None,
            RteMode::Distributed { factory, .. } => Some(factory.clone()),
        }
    }

    /// Installs the self-healing coordinator. Interfaces wrapped after this
    /// point route transport failures through it (recover + retry) instead
    /// of failing the call outright.
    pub fn set_recovery(&self, coordinator: Arc<crate::recovery::RecoveryCoordinator>) {
        *self.recovery.lock() = Some(coordinator);
    }

    /// The installed recovery coordinator, if any.
    pub fn recovery(&self) -> Option<Arc<crate::recovery::RecoveryCoordinator>> {
        self.recovery.lock().clone()
    }

    /// Attaches an observability bundle. Every informer installed from now
    /// on reports through it, and in distributed mode the transport's
    /// fault layer is hooked up too (fault events become tracer instants
    /// and flight-recorder entries).
    pub fn with_obs(mut self, obs: Obs) -> Self {
        if let RteMode::Distributed { transport, .. } = &self.mode {
            transport.set_obs(obs.tracer.clone(), obs.recorder.clone());
        }
        self.obs = Some(obs);
        self
    }

    /// The attached observability bundle, if any.
    pub fn obs(&self) -> Option<&Obs> {
        self.obs.as_ref()
    }

    /// The classifier in use.
    pub fn classifier(&self) -> &Arc<InstanceClassifier> {
        &self.classifier
    }

    /// The information logger in use.
    pub fn logger(&self) -> &Arc<dyn InfoLogger> {
        &self.logger
    }

    /// Total instrumentation overhead charged so far, microseconds.
    pub fn overhead_us(&self) -> u64 {
        self.overhead.total_us()
    }

    /// The marshal-size memo cache shared by this RTE's profiling
    /// informers (its counters stay zero in distributed mode).
    pub fn marshal_cache(&self) -> &Arc<SizeCache> {
        &self.marshal_cache
    }

    /// Records a binary loaded into the application's address space.
    pub fn track_image(&self, name: &str) {
        self.images.lock().push(name.to_string());
    }

    /// Binaries observed so far.
    pub fn images(&self) -> Vec<String> {
        self.images.lock().clone()
    }

    /// True when running in distributed (lightweight) mode.
    pub fn is_distributed(&self) -> bool {
        matches!(self.mode, RteMode::Distributed { .. })
    }

    /// Instantiations re-routed to the requesting machine because their
    /// placement target was down.
    pub fn fallbacks(&self) -> Vec<FallbackEvent> {
        self.fallbacks.lock().clone()
    }

    /// Number of placement fallbacks taken so far.
    pub fn fallback_count(&self) -> u64 {
        self.fallbacks.lock().len() as u64
    }

    /// COIGN045 violations observed so far: declared-read-only methods whose
    /// instance fingerprint changed under profiling, in deterministic order.
    pub fn effect_violations(&self) -> Vec<EffectViolation> {
        self.effect_check.violations()
    }
}

impl RuntimeHook for CoignRte {
    fn fulfill_create(
        &self,
        rt: &ComRuntime,
        req: &CreateRequest,
    ) -> Option<ComResult<InterfacePtr>> {
        match &self.mode {
            RteMode::Profiling => None,
            RteMode::Distributed {
                factory, transport, ..
            } => {
                // Classify the about-to-be-instantiated component from the
                // current call stack, then let the factory route it.
                let class = self.classifier.classify_pending(rt, req.clsid);
                let mut machine = factory.place(class, req.clsid, rt.current_machine());
                // Graceful degradation: a placement targeting a dead
                // machine falls back to local instantiation rather than
                // failing the application.
                let here = rt.current_machine();
                let now = rt.clock().now_us();
                if machine != here && transport.fault_plan().machine_down(machine, now) {
                    self.fallbacks.lock().push(FallbackEvent {
                        clsid: req.clsid,
                        intended: machine,
                        actual: here,
                        at_us: now,
                    });
                    if let Some(obs) = &self.obs {
                        obs.tracer.instant_at(
                            "fallback",
                            now,
                            vec![
                                ("clsid", TraceArg::Guid((req.clsid.0).0)),
                                ("intended", TraceArg::U64(u64::from(machine.0))),
                                ("actual", TraceArg::U64(u64::from(here.0))),
                            ],
                        );
                        obs.recorder.record(
                            now,
                            "fallback",
                            format!("{} intended m{} -> local m{}", req.clsid, machine.0, here.0),
                        );
                        // A placement fallback is a degradation worth a
                        // post-mortem, same as a dying call.
                        obs.recorder.dump("Fallback");
                    }
                    machine = here;
                }
                Some(rt.create_direct(req.clsid, req.iid, Some(machine)))
            }
        }
    }

    fn instance_created(&self, rt: &ComRuntime, id: InstanceId, clsid: Clsid) {
        let class = self.classifier.classify_instance(rt, id, clsid);
        self.logger.log_instance_created(id, clsid, class);
    }

    fn instance_released(&self, _rt: &ComRuntime, id: InstanceId) {
        self.logger.log_instance_released(id);
    }

    fn wrap_interface(&self, _rt: &ComRuntime, ptr: InterfacePtr) -> InterfacePtr {
        if !self.is_distributed() {
            self.logger.log_interface_created(ptr.owner(), ptr.iid());
        }
        match &self.mode {
            RteMode::Profiling => ProfilingInvoker::wrap_crosschecked(
                ptr,
                self.classifier.clone(),
                self.logger.clone(),
                self.overhead.clone(),
                self.marshal_cache.clone(),
                self.obs.clone(),
                Some(self.effect_check.clone()),
            ),
            RteMode::Distributed {
                transport, drift, ..
            } => DistributionInvoker::wrap_recovering(
                ptr,
                transport.clone(),
                self.overhead.clone(),
                drift.as_ref().map(|m| (self.classifier.clone(), m.clone())),
                self.recovery.lock().clone(),
                self.obs.clone(),
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classifier::{ClassificationId, ClassifierKind};
    use crate::logger::ProfilingLogger;
    use coign_com::idl::InterfaceBuilder;
    use coign_com::registry::ApiImports;
    use coign_com::{CallCtx, ComObject, Iid, MachineId, Message, PType, Value};
    use coign_dcom::NetworkModel;
    use std::collections::HashMap;

    /// A document reader: `Read()` returns a 100 KB blob.
    struct Reader;
    impl ComObject for Reader {
        fn invoke(
            &self,
            _ctx: &CallCtx<'_>,
            _iid: Iid,
            _method: u32,
            msg: &mut Message,
        ) -> ComResult<()> {
            msg.set(0, Value::Blob(100_000));
            Ok(())
        }
    }

    /// A viewer that creates a reader and pulls data from it.
    struct Viewer {
        reader_clsid: Clsid,
        reader_iid: Iid,
    }
    impl ComObject for Viewer {
        fn invoke(
            &self,
            ctx: &CallCtx<'_>,
            _iid: Iid,
            _method: u32,
            msg: &mut Message,
        ) -> ComResult<()> {
            let reader = ctx.create(self.reader_clsid, self.reader_iid)?;
            let mut inner = Message::outputs(1);
            reader.call(ctx.rt(), 0, &mut inner)?;
            msg.set(0, inner.args[0].clone());
            Ok(())
        }
    }

    fn register_app(rt: &ComRuntime) -> (Clsid, Iid) {
        let ireader = InterfaceBuilder::new("IReader")
            .method("Read", |m| m.output("data", PType::Blob))
            .build();
        let reader_iid = ireader.iid;
        let reader_clsid =
            rt.registry()
                .register("Reader", vec![ireader], ApiImports::STORAGE, |_, _| {
                    Arc::new(Reader)
                });
        let iviewer = InterfaceBuilder::new("IViewer")
            .method("Show", |m| m.output("data", PType::Blob))
            .build();
        let viewer_iid = iviewer.iid;
        let viewer_clsid =
            rt.registry()
                .register("Viewer", vec![iviewer], ApiImports::GUI, move |_, _| {
                    Arc::new(Viewer {
                        reader_clsid,
                        reader_iid,
                    })
                });
        (viewer_clsid, viewer_iid)
    }

    #[test]
    fn profiling_mode_observes_nested_communication() {
        let rt = ComRuntime::single_machine();
        let (viewer_clsid, viewer_iid) = register_app(&rt);
        let classifier = Arc::new(InstanceClassifier::new(ClassifierKind::Ifcb));
        let logger = Arc::new(ProfilingLogger::new());
        let rte = Arc::new(CoignRte::profiling(classifier.clone(), logger.clone()));
        rt.add_hook(rte.clone());

        let viewer = rt.create_instance(viewer_clsid, viewer_iid).unwrap();
        let mut msg = Message::outputs(1);
        viewer.call(&rt, 0, &mut msg).unwrap();

        // Both instances classified.
        assert_eq!(classifier.stats().instances, 2);
        // Root→viewer and viewer→reader calls were logged.
        let profile = logger.snapshot_profile();
        assert_eq!(profile.total_messages(), 4);
        // The 100 KB payload is visible in the summarized bytes, twice
        // (reader→viewer reply and viewer→root reply).
        assert!(profile.total_bytes() > 200_000);
        assert!(rte.overhead_us() > 0);
        assert!(!rte.is_distributed());
    }

    #[test]
    fn distributed_mode_relocates_and_charges() {
        // Profile first to learn classifications.
        let rt = ComRuntime::client_server();
        let (viewer_clsid, viewer_iid) = register_app(&rt);
        let classifier = Arc::new(InstanceClassifier::new(ClassifierKind::Ifcb));
        let logger = Arc::new(ProfilingLogger::new());
        let rte = Arc::new(CoignRte::profiling(classifier.clone(), logger.clone()));
        rt.add_hook(rte);
        let viewer = rt.create_instance(viewer_clsid, viewer_iid).unwrap();
        let mut msg = Message::outputs(1);
        viewer.call(&rt, 0, &mut msg).unwrap();

        let viewer_class = classifier.classification_of(viewer.owner()).unwrap();
        // Find the reader's classification: the other one.
        let bindings = classifier.bindings();
        let reader_class = *bindings
            .values()
            .find(|&&c| c != viewer_class)
            .expect("reader classified");

        // Distributed run: reader on the server, viewer on the client.
        let rt2 = ComRuntime::client_server();
        register_app(&rt2);
        let mut placement = HashMap::new();
        placement.insert(viewer_class, MachineId::CLIENT);
        placement.insert(reader_class, MachineId::SERVER);
        classifier.begin_execution();
        let factory = ComponentFactory::new(placement, MachineId::CLIENT, 2);
        let transport = Arc::new(Transport::new(NetworkModel::ethernet_10baset(), 7));
        let rte2 = Arc::new(CoignRte::distributed(
            classifier.clone(),
            Arc::new(crate::logger::NullLogger),
            factory,
            transport,
        ));
        rt2.add_hook(rte2.clone());

        let viewer2 = rt2.create_instance(viewer_clsid, viewer_iid).unwrap();
        assert_eq!(
            rt2.instance(viewer2.owner()).unwrap().machine(),
            MachineId::CLIENT
        );
        let mut msg2 = Message::outputs(1);
        viewer2.call(&rt2, 0, &mut msg2).unwrap();

        // The reader was created on the server...
        let reader_inst = rt2
            .instances_snapshot()
            .into_iter()
            .find(|i| i.clsid == Clsid::from_name("Reader"))
            .unwrap();
        assert_eq!(reader_inst.machine(), MachineId::SERVER);
        // ...and its 100 KB reply crossed the network.
        let stats = rt2.stats();
        assert!(stats.bytes > 100_000);
        assert!(stats.comm_us > 0);
        assert_eq!(stats.cross_machine_calls, 1);
        assert!(rte2.is_distributed());
    }

    #[test]
    fn dead_target_machine_falls_back_to_local_instantiation() {
        use coign_dcom::{CallPolicy, FaultPlan, TimeWindow};

        // Learn classifications with a profiling pass.
        let rt = ComRuntime::client_server();
        let (viewer_clsid, viewer_iid) = register_app(&rt);
        let classifier = Arc::new(InstanceClassifier::new(ClassifierKind::Ifcb));
        let logger = Arc::new(ProfilingLogger::new());
        rt.add_hook(Arc::new(CoignRte::profiling(classifier.clone(), logger)));
        let viewer = rt.create_instance(viewer_clsid, viewer_iid).unwrap();
        viewer.call(&rt, 0, &mut Message::outputs(1)).unwrap();
        let viewer_class = classifier.classification_of(viewer.owner()).unwrap();
        let reader_class = *classifier
            .bindings()
            .values()
            .find(|&&c| c != viewer_class)
            .expect("reader classified");

        // Distributed run wanting the reader on a server that is dead.
        let rt2 = ComRuntime::client_server();
        register_app(&rt2);
        let mut placement = HashMap::new();
        placement.insert(viewer_class, MachineId::CLIENT);
        placement.insert(reader_class, MachineId::SERVER);
        classifier.begin_execution();
        let factory = ComponentFactory::new(placement, MachineId::CLIENT, 2);
        let plan = FaultPlan::none().with_machine_down(MachineId::SERVER, TimeWindow::ALWAYS);
        let transport = Arc::new(Transport::with_faults(
            NetworkModel::ethernet_10baset(),
            7,
            plan,
            CallPolicy::default(),
            1,
        ));
        let rte2 = Arc::new(CoignRte::distributed(
            classifier.clone(),
            Arc::new(crate::logger::NullLogger),
            factory,
            transport,
        ));
        rt2.add_hook(rte2.clone());

        let viewer2 = rt2.create_instance(viewer_clsid, viewer_iid).unwrap();
        let mut msg = Message::outputs(1);
        // The run completes despite the dead server...
        viewer2.call(&rt2, 0, &mut msg).unwrap();
        // ...because the reader was placed locally instead.
        let reader_inst = rt2
            .instances_snapshot()
            .into_iter()
            .find(|i| i.clsid == Clsid::from_name("Reader"))
            .unwrap();
        assert_eq!(reader_inst.machine(), MachineId::CLIENT);
        assert_eq!(rte2.fallback_count(), 1);
        let event = rte2.fallbacks()[0];
        assert_eq!(event.intended, MachineId::SERVER);
        assert_eq!(event.actual, MachineId::CLIENT);
        // Nothing crossed the wire.
        assert_eq!(rt2.stats().cross_machine_calls, 0);
    }

    #[test]
    fn rte_tracks_loaded_images() {
        let classifier = Arc::new(InstanceClassifier::new(ClassifierKind::St));
        let rte = CoignRte::profiling(classifier, Arc::new(crate::logger::NullLogger));
        rte.track_image("octarine.exe");
        rte.track_image("mso97.dll");
        assert_eq!(rte.images(), vec!["octarine.exe", "mso97.dll"]);
    }

    #[test]
    fn root_calls_classify_as_root() {
        let rt = ComRuntime::single_machine();
        let (viewer_clsid, viewer_iid) = register_app(&rt);
        let classifier = Arc::new(InstanceClassifier::new(ClassifierKind::Ifcb));
        let logger = Arc::new(ProfilingLogger::new());
        rt.add_hook(Arc::new(CoignRte::profiling(classifier, logger.clone())));
        let viewer = rt.create_instance(viewer_clsid, viewer_iid).unwrap();
        viewer.call(&rt, 0, &mut Message::outputs(1)).unwrap();
        let profile = logger.snapshot_profile();
        assert!(profile
            .edges
            .keys()
            .any(|k| k.from == ClassificationId::ROOT));
    }
}
