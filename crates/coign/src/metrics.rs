//! Classifier-accuracy metrics (§4.2 of the paper).
//!
//! To quantify communication behavior the paper introduces **instance
//! communication vectors**: an ordered tuple of real numbers, one per
//! communication peer, each quantifying the communication time with that
//! peer if it were located remotely. Two vectors are compared with the
//! normalized dot product: 1.0 means equivalent communication behavior,
//! 0.0 means none shared.
//!
//! [`evaluate_classifier`] reproduces the Table 2 / Table 3 procedure: run a
//! classifier through all profiling scenarios to build per-classification
//! profiles, then run the synthesized `bigone` scenario and measure how well
//! each instance's actual behavior correlates with its classification's
//! profile.

use crate::application::Application;
use crate::classifier::{ClassificationId, ClassifierKind, InstanceClassifier};
use crate::logger::{PairTraffic, ROOT_INSTANCE};
use crate::runtime::profile_scenario;
use coign_com::{ComResult, InstanceId};
use coign_dcom::NetworkProfile;
use std::collections::HashMap;
use std::sync::Arc;

/// A communication vector: predicted communication time (µs) with each
/// peer classification.
pub type CommVector = HashMap<ClassificationId, f64>;

/// Normalized dot-product correlation between two communication vectors.
///
/// Returns 1.0 for two empty vectors (trivially equivalent behavior), 0.0
/// when exactly one is empty, and the cosine similarity otherwise.
pub fn correlation(a: &CommVector, b: &CommVector) -> f64 {
    let norm = |v: &CommVector| v.values().map(|x| x * x).sum::<f64>().sqrt();
    let (na, nb) = (norm(a), norm(b));
    if na == 0.0 && nb == 0.0 {
        return 1.0;
    }
    if na == 0.0 || nb == 0.0 {
        return 0.0;
    }
    let dot: f64 = a
        .iter()
        .filter_map(|(k, va)| b.get(k).map(|vb| va * vb))
        .sum();
    (dot / (na * nb)).clamp(0.0, 1.0)
}

/// Builds per-instance communication vectors from one execution's pair
/// traffic, expressing peers by their classification.
pub fn instance_vectors(
    pairs: &HashMap<(InstanceId, InstanceId), PairTraffic>,
    instance_classes: &HashMap<InstanceId, ClassificationId>,
    network: &NetworkProfile,
) -> HashMap<InstanceId, CommVector> {
    let class_of = |id: InstanceId| -> ClassificationId {
        if id == ROOT_INSTANCE {
            ClassificationId::ROOT
        } else {
            instance_classes
                .get(&id)
                .copied()
                .unwrap_or(ClassificationId::ROOT)
        }
    };
    let mut vectors: HashMap<InstanceId, CommVector> = HashMap::new();
    for ((a, b), traffic) in pairs {
        let time = network.predict_traffic_us(traffic.messages, traffic.bytes);
        if *a != ROOT_INSTANCE {
            *vectors
                .entry(*a)
                .or_default()
                .entry(class_of(*b))
                .or_insert(0.0) += time;
        }
        if *b != ROOT_INSTANCE {
            *vectors
                .entry(*b)
                .or_default()
                .entry(class_of(*a))
                .or_insert(0.0) += time;
        }
    }
    vectors
}

/// One row of the paper's Table 2 (or Table 3 for depth sweeps).
#[derive(Debug, Clone, PartialEq)]
pub struct ClassifierEvaluation {
    /// Classifier under evaluation.
    pub kind: ClassifierKind,
    /// Stack-walk depth (`None` = complete).
    pub depth: Option<usize>,
    /// Classifications identified across the profiling scenarios.
    pub profiled_classifications: u32,
    /// New classifications first seen in the `bigone` scenario.
    pub new_classifications: u32,
    /// Average instances per classification in the `bigone` scenario.
    pub avg_instances_per_classification: f64,
    /// Average correlation between each `bigone` instance's communication
    /// vector and its classification's profiled vector.
    pub avg_correlation: f64,
}

/// Evaluates one classifier over an application's scenario suite.
///
/// `profiling_scenarios` are run first (accumulating classification
/// profiles); `bigone` is then run and each of its instances is correlated
/// against the profile of the classification it was assigned to.
pub fn evaluate_classifier(
    app: &dyn Application,
    kind: ClassifierKind,
    depth: Option<usize>,
    profiling_scenarios: &[&str],
    bigone: &str,
    network: &NetworkProfile,
) -> ComResult<ClassifierEvaluation> {
    let classifier = Arc::new(InstanceClassifier::with_depth(kind, depth));

    // Phase 1: profile — accumulate average communication vectors per
    // classification.
    let mut class_vectors: HashMap<ClassificationId, CommVector> = HashMap::new();
    let mut class_counts: HashMap<ClassificationId, u64> = HashMap::new();
    for scenario in profiling_scenarios {
        let run = profile_scenario(app, scenario, &classifier)?;
        let vectors = instance_vectors(&run.instance_pairs, &run.instance_classes, network);
        for (instance, vector) in vectors {
            let Some(&class) = run.instance_classes.get(&instance) else {
                continue;
            };
            let slot = class_vectors.entry(class).or_default();
            for (peer, time) in vector {
                *slot.entry(peer).or_insert(0.0) += time;
            }
            *class_counts.entry(class).or_insert(0) += 1;
        }
        // Instances that never communicated still count toward the profile.
        for (instance, class) in &run.instance_classes {
            if !run
                .instance_pairs
                .keys()
                .any(|(a, b)| a == instance || b == instance)
            {
                class_counts.entry(*class).or_insert(0);
            }
        }
    }
    // Average the accumulated vectors.
    for (class, vector) in class_vectors.iter_mut() {
        let n = class_counts.get(class).copied().unwrap_or(1).max(1) as f64;
        for time in vector.values_mut() {
            *time /= n;
        }
    }
    let profiled_classifications = classifier.classification_count();

    // Phase 2: bigone.
    let run = profile_scenario(app, bigone, &classifier)?;
    let new_classifications = classifier.classification_count() - profiled_classifications;
    let vectors = instance_vectors(&run.instance_pairs, &run.instance_classes, network);

    let bigone_instances = run.instance_classes.len() as f64;
    let mut distinct: std::collections::HashSet<ClassificationId> =
        std::collections::HashSet::new();
    for class in run.instance_classes.values() {
        distinct.insert(*class);
    }
    let avg_instances = if distinct.is_empty() {
        0.0
    } else {
        bigone_instances / distinct.len() as f64
    };

    let empty = CommVector::new();
    let mut total_corr = 0.0;
    let mut measured = 0u64;
    for (instance, class) in &run.instance_classes {
        let actual = vectors.get(instance).unwrap_or(&empty);
        let profiled = class_vectors.get(class).unwrap_or(&empty);
        total_corr += correlation(actual, profiled);
        measured += 1;
    }
    let avg_correlation = if measured == 0 {
        0.0
    } else {
        total_corr / measured as f64
    };

    Ok(ClassifierEvaluation {
        kind,
        depth,
        profiled_classifications,
        new_classifications,
        avg_instances_per_classification: avg_instances,
        avg_correlation,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vec_of(entries: &[(u32, f64)]) -> CommVector {
        entries
            .iter()
            .map(|(c, t)| (ClassificationId(*c), *t))
            .collect()
    }

    #[test]
    fn identical_vectors_correlate_to_one() {
        let v = vec_of(&[(1, 3.0), (2, 4.0)]);
        assert!((correlation(&v, &v) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn disjoint_vectors_correlate_to_zero() {
        let a = vec_of(&[(1, 5.0)]);
        let b = vec_of(&[(2, 5.0)]);
        assert_eq!(correlation(&a, &b), 0.0);
    }

    #[test]
    fn scaling_does_not_change_correlation() {
        let a = vec_of(&[(1, 1.0), (2, 2.0)]);
        let b = vec_of(&[(1, 10.0), (2, 20.0)]);
        assert!((correlation(&a, &b) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn partial_overlap_is_between_zero_and_one() {
        let a = vec_of(&[(1, 1.0), (2, 1.0)]);
        let b = vec_of(&[(1, 1.0), (3, 1.0)]);
        let c = correlation(&a, &b);
        assert!(c > 0.0 && c < 1.0);
    }

    #[test]
    fn empty_vector_conventions() {
        let empty = CommVector::new();
        let v = vec_of(&[(1, 1.0)]);
        assert_eq!(correlation(&empty, &empty), 1.0);
        assert_eq!(correlation(&empty, &v), 0.0);
        assert_eq!(correlation(&v, &empty), 0.0);
    }

    #[test]
    fn vectors_attribute_traffic_to_peer_classifications() {
        use coign_dcom::NetworkModel;
        let mut pairs = HashMap::new();
        pairs.insert(
            (InstanceId(1), InstanceId(2)),
            PairTraffic {
                messages: 2,
                bytes: 1000,
            },
        );
        pairs.insert(
            (ROOT_INSTANCE, InstanceId(1)),
            PairTraffic {
                messages: 2,
                bytes: 100,
            },
        );
        let mut classes = HashMap::new();
        classes.insert(InstanceId(1), ClassificationId(10));
        classes.insert(InstanceId(2), ClassificationId(20));
        let network = NetworkProfile::exact(&NetworkModel::ethernet_10baset());
        let vectors = instance_vectors(&pairs, &classes, &network);
        // Instance 1 talks to classification 20 and ROOT.
        let v1 = &vectors[&InstanceId(1)];
        assert!(v1.contains_key(&ClassificationId(20)));
        assert!(v1.contains_key(&ClassificationId::ROOT));
        // Instance 2 talks to classification 10 only.
        let v2 = &vectors[&InstanceId(2)];
        assert_eq!(v2.len(), 1);
        assert!(v2.contains_key(&ClassificationId(10)));
        // The root itself gets no vector.
        assert!(!vectors.contains_key(&ROOT_INSTANCE));
    }
}
