//! Component location constraints.
//!
//! The analysis engine combines communication profiles with location
//! constraints acquired from three sources (§2, §4.3):
//!
//! 1. **Static binary analysis** — components that call known GUI APIs are
//!    placed on the client; components that access storage or database APIs
//!    are placed on the server. The simulation reads the equivalent
//!    information from each class's [`coign_com::ApiImports`].
//! 2. **Communication records** — non-remotable interfaces observed during
//!    profiling force co-location (these arrive via
//!    [`crate::profile::IccProfile::non_remotable`], handled in analysis).
//! 3. **The programmer** — explicit *absolute* constraints (force an
//!    instance to a machine) and *pair-wise* constraints (force two
//!    instances together), expressed by class name.

use crate::classifier::ClassificationId;
use crate::profile::IccProfile;
use coign_com::{ClassRegistry, Clsid, MachineId};

/// A placement constraint on classifications.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Constraint {
    /// The classification must run on the client.
    PinClient(ClassificationId),
    /// The classification must run on the server.
    PinServer(ClassificationId),
    /// The two classifications must share a machine.
    Colocate(ClassificationId, ClassificationId),
}

/// A programmer-supplied constraint, expressed by component class name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NamedConstraint {
    /// Absolute constraint: every instance of the class goes to the machine.
    Absolute(String, MachineId),
    /// Pair-wise constraint: instances of the two classes are co-located.
    Pairwise(String, String),
}

/// Derives constraints from static API analysis of the profiled classes.
///
/// Every classification whose component class imports GUI APIs is pinned to
/// the client; storage/database importers are pinned to the server. The
/// application root is always pinned to the client (the user sits there).
pub fn derive_static_constraints(
    profile: &IccProfile,
    registry: &ClassRegistry,
) -> Vec<Constraint> {
    let mut constraints = vec![Constraint::PinClient(ClassificationId::ROOT)];
    let mut classes: Vec<(&ClassificationId, &Clsid)> = profile.class_of.iter().collect();
    classes.sort();
    for (class, clsid) in classes {
        let Ok(desc) = registry.get(*clsid) else {
            continue;
        };
        if desc.imports.uses_gui() {
            constraints.push(Constraint::PinClient(*class));
        }
        if desc.imports.uses_storage() {
            constraints.push(Constraint::PinServer(*class));
        }
    }
    constraints
}

/// Resolves programmer-supplied named constraints against the profile.
///
/// A named class maps to *every* classification whose instances belong to
/// that class (class names are deterministic CLSIDs, so resolution needs no
/// registry).
pub fn resolve_named_constraints(
    profile: &IccProfile,
    named: &[NamedConstraint],
) -> Vec<Constraint> {
    let classifications_of = |name: &str| -> Vec<ClassificationId> {
        let clsid = Clsid::from_name(name);
        let mut out: Vec<ClassificationId> = profile
            .class_of
            .iter()
            .filter(|(_, c)| **c == clsid)
            .map(|(id, _)| *id)
            .collect();
        out.sort();
        out
    };
    let mut constraints = Vec::new();
    for c in named {
        match c {
            NamedConstraint::Absolute(name, machine) => {
                for class in classifications_of(name) {
                    constraints.push(match *machine {
                        MachineId::CLIENT => Constraint::PinClient(class),
                        _ => Constraint::PinServer(class),
                    });
                }
            }
            NamedConstraint::Pairwise(a, b) => {
                let left = classifications_of(a);
                let right = classifications_of(b);
                for &la in &left {
                    for &rb in &right {
                        if la != rb {
                            constraints.push(Constraint::Colocate(la, rb));
                        }
                    }
                }
            }
        }
    }
    constraints
}

#[cfg(test)]
mod tests {
    use super::*;
    use coign_com::registry::ApiImports;
    use coign_com::ComRuntime;
    use std::sync::Arc;

    struct Nop;
    impl coign_com::ComObject for Nop {
        fn invoke(
            &self,
            _ctx: &coign_com::CallCtx<'_>,
            _iid: coign_com::Iid,
            _method: u32,
            _msg: &mut coign_com::Message,
        ) -> coign_com::ComResult<()> {
            Ok(())
        }
    }

    fn profile_with(classes: &[(u32, &str)]) -> IccProfile {
        let mut p = IccProfile::new();
        for (id, name) in classes {
            p.record_instance(ClassificationId(*id), Clsid::from_name(name));
        }
        p
    }

    #[test]
    fn static_analysis_pins_gui_and_storage() {
        let rt = ComRuntime::single_machine();
        rt.registry()
            .register("Window", vec![], ApiImports::GUI, |_, _| Arc::new(Nop));
        rt.registry()
            .register("FileReader", vec![], ApiImports::STORAGE, |_, _| {
                Arc::new(Nop)
            });
        rt.registry()
            .register("Logic", vec![], ApiImports::NONE, |_, _| Arc::new(Nop));
        let profile = profile_with(&[(1, "Window"), (2, "FileReader"), (3, "Logic")]);
        let constraints = derive_static_constraints(&profile, rt.registry());
        assert!(constraints.contains(&Constraint::PinClient(ClassificationId::ROOT)));
        assert!(constraints.contains(&Constraint::PinClient(ClassificationId(1))));
        assert!(constraints.contains(&Constraint::PinServer(ClassificationId(2))));
        // Logic is unconstrained.
        assert!(!constraints.iter().any(|c| matches!(
            c,
            Constraint::PinClient(ClassificationId(3)) | Constraint::PinServer(ClassificationId(3))
        )));
    }

    #[test]
    fn database_classes_pin_to_server() {
        let rt = ComRuntime::single_machine();
        rt.registry()
            .register("Odbc", vec![], ApiImports::DATABASE, |_, _| Arc::new(Nop));
        let profile = profile_with(&[(1, "Odbc")]);
        let constraints = derive_static_constraints(&profile, rt.registry());
        assert!(constraints.contains(&Constraint::PinServer(ClassificationId(1))));
    }

    #[test]
    fn unknown_classes_are_skipped() {
        let rt = ComRuntime::single_machine();
        let profile = profile_with(&[(1, "NeverRegistered")]);
        let constraints = derive_static_constraints(&profile, rt.registry());
        assert_eq!(constraints.len(), 1); // just the ROOT pin
    }

    #[test]
    fn named_absolute_resolves_all_classifications_of_class() {
        // Two classifications of the same class (different call chains).
        let profile = profile_with(&[(1, "Cache"), (2, "Cache"), (3, "Other")]);
        let named = vec![NamedConstraint::Absolute("Cache".into(), MachineId::SERVER)];
        let constraints = resolve_named_constraints(&profile, &named);
        assert_eq!(
            constraints,
            vec![
                Constraint::PinServer(ClassificationId(1)),
                Constraint::PinServer(ClassificationId(2)),
            ]
        );
    }

    #[test]
    fn named_pairwise_crosses_classifications() {
        let profile = profile_with(&[(1, "A"), (2, "B"), (3, "B")]);
        let named = vec![NamedConstraint::Pairwise("A".into(), "B".into())];
        let constraints = resolve_named_constraints(&profile, &named);
        assert_eq!(constraints.len(), 2);
        assert!(constraints.contains(&Constraint::Colocate(
            ClassificationId(1),
            ClassificationId(2)
        )));
    }

    #[test]
    fn named_constraint_on_absent_class_is_empty() {
        let profile = profile_with(&[(1, "A")]);
        let named = vec![NamedConstraint::Absolute("Ghost".into(), MachineId::CLIENT)];
        assert!(resolve_named_constraints(&profile, &named).is_empty());
    }

    #[test]
    fn pairwise_constraints_close_transitively() {
        // A–B and B–C pairwise constraints chain A, B, and C into one
        // colocation group: pinning A client and C server is unsatisfiable
        // even though no constraint mentions A and C together.
        let profile = profile_with(&[(1, "A"), (2, "B"), (3, "C")]);
        let named = vec![
            NamedConstraint::Pairwise("A".into(), "B".into()),
            NamedConstraint::Pairwise("B".into(), "C".into()),
        ];
        let mut constraints = resolve_named_constraints(&profile, &named);
        constraints.push(Constraint::PinClient(ClassificationId(1)));
        constraints.push(Constraint::PinServer(ClassificationId(3)));
        let mut sink = crate::lint::DiagnosticSink::new();
        let label = |id: ClassificationId| id.to_string();
        assert!(!crate::lint::satisfiability::check_constraints(
            &constraints,
            &[],
            &label,
            &mut sink
        ));
        let d = &sink.diagnostics()[0];
        assert_eq!(d.code, "COIGN020");
        assert!(d.subject.contains("c:2"), "chain member missing: {d:?}");
    }

    #[test]
    fn conflicting_absolute_constraints_are_unsatisfiable() {
        // The programmer pins the same class to both machines: every
        // classification of the class becomes a one-member group pinned
        // both ways.
        let profile = profile_with(&[(1, "Cache")]);
        let named = vec![
            NamedConstraint::Absolute("Cache".into(), MachineId::CLIENT),
            NamedConstraint::Absolute("Cache".into(), MachineId::SERVER),
        ];
        let constraints = resolve_named_constraints(&profile, &named);
        let mut sink = crate::lint::DiagnosticSink::new();
        let label = |id: ClassificationId| id.to_string();
        assert!(!crate::lint::satisfiability::check_constraints(
            &constraints,
            &[],
            &label,
            &mut sink
        ));
        assert_eq!(sink.diagnostics()[0].code, "COIGN020");
        assert_eq!(sink.diagnostics()[0].subject, "c:1");
    }

    #[test]
    fn unknown_class_names_in_constraints_are_diagnosed() {
        let rt = ComRuntime::single_machine();
        rt.registry()
            .register("Known", vec![], ApiImports::NONE, |_, _| Arc::new(Nop));
        let named = vec![
            NamedConstraint::Absolute("Mispelled".into(), MachineId::SERVER),
            NamedConstraint::Pairwise("Known".into(), "AlsoGhost".into()),
        ];
        let mut sink = crate::lint::DiagnosticSink::new();
        crate::lint::satisfiability::check_named(&named, rt.registry(), &mut sink);
        let codes: Vec<_> = sink.diagnostics().iter().map(|d| d.code).collect();
        assert_eq!(codes, vec!["COIGN021", "COIGN021"]);
        let subjects: Vec<_> = sink
            .diagnostics()
            .iter()
            .map(|d| d.subject.as_str())
            .collect();
        assert_eq!(subjects, vec!["AlsoGhost", "Mispelled"]);
    }
}
