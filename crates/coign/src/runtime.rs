//! End-to-end Coign runs: profiling, default, and distributed executions.
//!
//! This module assembles the pieces into the workflows of the paper's
//! Figure 1:
//!
//! * [`profile_scenario`] — run one scenario under the profiling runtime,
//!   returning the summarized profile and per-instance data.
//! * [`profile_scenarios`] — run a scenario suite and merge the logs.
//! * [`choose_distribution`] — the analysis step: constraints + profile +
//!   network profile → minimum-cut distribution.
//! * [`run_distributed`] — execute a scenario with the lightweight runtime
//!   realizing a chosen distribution, measuring real (simulated)
//!   communication time.
//! * [`run_default`] — execute a scenario in the application's as-shipped
//!   distribution (for the paper's Table 4 baseline).
//! * [`run_raw`] — execute without any instrumentation (overhead baseline).

use crate::analysis::{analyze, Distribution};
use crate::application::Application;
use crate::classifier::{ClassificationId, InstanceClassifier};
use crate::constraints::{derive_static_constraints, resolve_named_constraints, Constraint};
use crate::drift::DriftMonitor;
use crate::factory::ComponentFactory;
use crate::icc::IccGraph;
use crate::informer::{DistributionInvoker, EffectViolation, OverheadMeter};
use crate::logger::{PairTraffic, ProfilingLogger};
use crate::profile::IccProfile;
use crate::recovery::{RecoveryConfig, RecoveryCoordinator};
use crate::rte::CoignRte;
use coign_com::{
    ClassRegistry, Clsid, ComError, ComResult, ComRuntime, CreateRequest, InstanceId, InterfacePtr,
    MachineId, RtStats, RuntimeHook,
};
use coign_dcom::{
    CallPolicy, FaultPlan, FaultStats, HealthMonitor, NetworkModel, NetworkProfile, Transport,
};
use coign_flow::MaxFlowAlgorithm;
use coign_obs::{Obs, Registry, TraceArg};
use std::collections::HashMap;
use std::sync::Arc;

/// What the fault layer did during one execution: the transport's counters
/// plus the runtime's graceful-degradation events.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultReport {
    /// Messages lost in flight.
    pub drops: u64,
    /// Attempts that timed out.
    pub timeouts: u64,
    /// Re-send attempts made after a timeout.
    pub retries: u64,
    /// Calls that failed after exhausting the retry policy.
    pub failed_calls: u64,
    /// Calls refused because the target machine was down.
    pub machine_down_errors: u64,
    /// Clock time burned on timeouts and backoff waits, microseconds.
    pub wasted_us: u64,
    /// Instantiations re-routed to the requesting machine because their
    /// placement target was down.
    pub fallbacks: u64,
}

impl FaultReport {
    fn from_parts(stats: FaultStats, fallbacks: u64) -> Self {
        FaultReport {
            drops: stats.drops,
            timeouts: stats.timeouts,
            retries: stats.retries,
            failed_calls: stats.failed_calls,
            machine_down_errors: stats.machine_down_errors,
            wasted_us: stats.wasted_us,
            fallbacks,
        }
    }

    /// True when the fault layer never perturbed the run.
    pub fn is_clean(&self) -> bool {
        *self == FaultReport::default()
    }

    /// Adds this report's counters to a metrics registry, under the same
    /// names the transport's own [`FaultStats::record_metrics`] uses, plus
    /// the runtime-level `coign_fault_fallbacks_total`.
    pub fn record_metrics(&self, registry: &Registry) {
        registry.counter("coign_fault_drops_total").add(self.drops);
        registry
            .counter("coign_fault_timeouts_total")
            .add(self.timeouts);
        registry
            .counter("coign_fault_retries_total")
            .add(self.retries);
        registry
            .counter("coign_fault_failed_calls_total")
            .add(self.failed_calls);
        registry
            .counter("coign_fault_machine_down_errors_total")
            .add(self.machine_down_errors);
        registry
            .counter("coign_fault_wasted_us")
            .add(self.wasted_us);
        registry
            .counter("coign_fault_fallbacks_total")
            .add(self.fallbacks);
    }
}

/// Measurements from one scenario execution.
#[derive(Debug, Clone, PartialEq)]
pub struct RunReport {
    /// Runtime statistics (compute, communication, messages, bytes).
    pub stats: RtStats,
    /// Total simulated wall-clock time, microseconds.
    pub clock_us: u64,
    /// Instrumentation overhead included in `clock_us`, microseconds.
    pub overhead_us: u64,
    /// Live instances per machine at scenario end.
    pub instances_per_machine: Vec<usize>,
    /// Per-instance `(class, machine)` placement at scenario end.
    pub instance_placements: Vec<(Clsid, MachineId)>,
    /// Fault-injection counters (all zero when no fault layer was active).
    pub faults: FaultReport,
    /// Marshal-size memo cache hits (profiling runs only; a hit skips the
    /// deep-copy walk and its per-KB overhead charge).
    pub marshal_cache_hits: u64,
    /// Marshal-size memo cache misses (full deep-copy walks performed).
    pub marshal_cache_misses: u64,
}

impl RunReport {
    /// Total live instances at scenario end.
    pub fn total_instances(&self) -> usize {
        self.instances_per_machine.iter().sum()
    }

    /// Instances on the server (machine 1) at scenario end.
    pub fn server_instances(&self) -> usize {
        self.instances_per_machine
            .get(MachineId::SERVER.0 as usize)
            .copied()
            .unwrap_or(0)
    }

    /// Communication time in seconds (Table 4's unit).
    pub fn comm_secs(&self) -> f64 {
        self.stats.comm_us as f64 / 1e6
    }

    /// Execution time in seconds (Table 5's unit).
    pub fn exec_secs(&self) -> f64 {
        self.clock_us as f64 / 1e6
    }

    /// Adds every scalar measurement of this report to a metrics registry.
    /// The names are the superset a `--metrics` snapshot exposes; they are
    /// also the single source [`RunReport::summary`] renders from.
    pub fn record_metrics(&self, registry: &Registry) {
        registry
            .counter("coign_compute_us")
            .add(self.stats.compute_us);
        registry.counter("coign_comm_us").add(self.stats.comm_us);
        registry
            .counter("coign_messages_total")
            .add(self.stats.messages);
        registry.counter("coign_bytes_total").add(self.stats.bytes);
        registry.counter("coign_calls_total").add(self.stats.calls);
        registry
            .counter("coign_cross_machine_calls_total")
            .add(self.stats.cross_machine_calls);
        registry.counter("coign_clock_us").add(self.clock_us);
        registry.counter("coign_overhead_us").add(self.overhead_us);
        self.faults.record_metrics(registry);
        registry
            .counter("coign_marshal_cache_hits_total")
            .add(self.marshal_cache_hits);
        registry
            .counter("coign_marshal_cache_misses_total")
            .add(self.marshal_cache_misses);
    }

    /// Renders the report as a deterministic key=value block, one field
    /// per line — the format CI diffs against committed expectations, so
    /// two runs with the same seeds must produce byte-identical text.
    ///
    /// Every numeric line is read back from a throwaway metrics registry
    /// populated by [`RunReport::record_metrics`], so this report and a
    /// `--metrics` snapshot can never disagree about a counter.
    pub fn summary(&self) -> String {
        let registry = Registry::new();
        self.record_metrics(&registry);
        let c = |name: &str| registry.counter_value(name).unwrap_or(0);
        let mut placements: Vec<String> = self
            .instance_placements
            .iter()
            .map(|(clsid, machine)| format!("{clsid}@{machine}"))
            .collect();
        placements.sort();
        format!(
            "compute_us={}\n\
             comm_us={}\n\
             messages={}\n\
             bytes={}\n\
             calls={}\n\
             cross_machine_calls={}\n\
             clock_us={}\n\
             overhead_us={}\n\
             instances_per_machine={:?}\n\
             placements=[{}]\n\
             fault_drops={}\n\
             fault_timeouts={}\n\
             fault_retries={}\n\
             fault_failed_calls={}\n\
             fault_machine_down_errors={}\n\
             fault_wasted_us={}\n\
             fault_fallbacks={}\n\
             marshal_cache_hits={}\n\
             marshal_cache_misses={}\n",
            c("coign_compute_us"),
            c("coign_comm_us"),
            c("coign_messages_total"),
            c("coign_bytes_total"),
            c("coign_calls_total"),
            c("coign_cross_machine_calls_total"),
            c("coign_clock_us"),
            c("coign_overhead_us"),
            self.instances_per_machine,
            placements.join(", "),
            c("coign_fault_drops_total"),
            c("coign_fault_timeouts_total"),
            c("coign_fault_retries_total"),
            c("coign_fault_failed_calls_total"),
            c("coign_fault_machine_down_errors_total"),
            c("coign_fault_wasted_us"),
            c("coign_fault_fallbacks_total"),
            c("coign_marshal_cache_hits_total"),
            c("coign_marshal_cache_misses_total"),
        )
    }
}

fn count_per_machine(rt: &ComRuntime) -> Vec<usize> {
    let mut counts = vec![0usize; rt.machines().len()];
    for instance in rt.instances_snapshot() {
        let m = instance.machine().0 as usize;
        if m < counts.len() {
            counts[m] += 1;
        }
    }
    counts
}

/// Static fallback pins: storage/database classes live on the data machine
/// (the topology's last machine) even when a classification was never
/// profiled — the data file does not move just because the profile is
/// stale.
fn storage_class_pins(rt: &ComRuntime) -> HashMap<Clsid, MachineId> {
    let data_machine = MachineId((rt.machines().len() - 1) as u16);
    rt.registry()
        .all()
        .into_iter()
        .filter(|desc| desc.imports.uses_storage())
        .map(|desc| (desc.clsid, data_machine))
        .collect()
}

fn placements(rt: &ComRuntime) -> Vec<(Clsid, MachineId)> {
    rt.instances_snapshot()
        .iter()
        .map(|i| (i.clsid, i.machine()))
        .collect()
}

/// Result of one profiling execution.
#[derive(Debug, Clone)]
pub struct ProfileRun {
    /// The summarized communication profile of this run.
    pub profile: IccProfile,
    /// Per-instance-pair traffic (for communication vectors).
    pub instance_pairs: HashMap<(InstanceId, InstanceId), PairTraffic>,
    /// Instance → classification binding of this run.
    pub instance_classes: HashMap<InstanceId, ClassificationId>,
    /// Execution measurements.
    pub report: RunReport,
    /// COIGN045: declared-read-only methods whose instance state changed
    /// during this run (deterministically ordered, deduplicated).
    pub effect_violations: Vec<EffectViolation>,
}

/// Runs one scenario under the profiling runtime.
///
/// The classifier is shared across calls so that classifications accumulate
/// over the whole scenario suite (its per-execution state is reset here).
pub fn profile_scenario(
    app: &dyn Application,
    scenario: &str,
    classifier: &Arc<InstanceClassifier>,
) -> ComResult<ProfileRun> {
    profile_scenario_observed(app, scenario, classifier, None)
}

/// [`profile_scenario`] with an optional observability bundle: the run is
/// wrapped in a `scenario:<name>` span, every intercepted call emits an
/// `icc_call` instant, and the marshal-size cache's counters are added to
/// the bundle's registry when the scenario finishes.
pub fn profile_scenario_observed(
    app: &dyn Application,
    scenario: &str,
    classifier: &Arc<InstanceClassifier>,
    obs: Option<&Obs>,
) -> ComResult<ProfileRun> {
    let _span = obs.map(|o| {
        o.tracer.phase_span_with(
            format!("scenario:{scenario}"),
            vec![("scenario", TraceArg::Str(scenario.to_string()))],
        )
    });
    let rt = ComRuntime::single_machine();
    app.register(&rt);
    classifier.begin_execution();
    let logger = Arc::new(ProfilingLogger::new());
    logger.set_scenario(scenario);
    let mut rte = CoignRte::profiling(classifier.clone(), logger.clone());
    if let Some(o) = obs {
        rte = rte.with_obs(o.clone());
    }
    let rte = Arc::new(rte);
    rt.add_hook(rte.clone());

    app.run_scenario(&rt, scenario)?;

    if let Some(o) = obs {
        rte.marshal_cache().record_metrics(&o.registry);
    }
    let instance_pairs = logger.instance_pairs();
    let instance_classes = logger.instance_classes();
    let profile = logger.take_profile();
    Ok(ProfileRun {
        profile,
        instance_pairs,
        instance_classes,
        report: RunReport {
            stats: rt.stats(),
            clock_us: rt.clock().now_us(),
            overhead_us: rte.overhead_us(),
            instances_per_machine: count_per_machine(&rt),
            instance_placements: placements(&rt),
            faults: FaultReport::default(),
            marshal_cache_hits: rte.marshal_cache().hits(),
            marshal_cache_misses: rte.marshal_cache().misses(),
        },
        effect_violations: rte.effect_violations(),
    })
}

/// Profiles a suite of scenarios and merges their logs.
pub fn profile_scenarios(
    app: &dyn Application,
    scenarios: &[&str],
    classifier: &Arc<InstanceClassifier>,
) -> ComResult<IccProfile> {
    profile_scenarios_observed(app, scenarios, classifier, None)
}

/// [`profile_scenarios`] with an optional observability bundle threaded
/// through each scenario run.
pub fn profile_scenarios_observed(
    app: &dyn Application,
    scenarios: &[&str],
    classifier: &Arc<InstanceClassifier>,
    obs: Option<&Obs>,
) -> ComResult<IccProfile> {
    profile_scenarios_sequential(app, scenarios, classifier, obs).map(|(profile, _)| profile)
}

/// Sequential suite run returning the merged profile plus the deduplicated
/// COIGN045 violations observed across every scenario.
fn profile_scenarios_sequential(
    app: &dyn Application,
    scenarios: &[&str],
    classifier: &Arc<InstanceClassifier>,
    obs: Option<&Obs>,
) -> ComResult<(IccProfile, Vec<EffectViolation>)> {
    let mut merged = IccProfile::new();
    let mut violations = std::collections::BTreeSet::new();
    for scenario in scenarios {
        let run = profile_scenario_observed(app, scenario, classifier, obs)?;
        merged.merge(&run.profile);
        violations.extend(run.effect_violations);
    }
    Ok((merged, violations.into_iter().collect()))
}

/// Profiles a suite of scenarios on up to `jobs` worker threads and merges
/// their logs in scenario order.
///
/// Each scenario runs against a private classifier forked from the shared
/// one ([`InstanceClassifier::fork`]); afterwards the forks are absorbed
/// back — in scenario order — and each run's profile is rewritten through
/// the resulting id translation before merging. Scenarios are therefore
/// profiled in isolation and combined deterministically: the merged
/// profile and the shared classifier's table come out byte-identical to a
/// sequential [`profile_scenarios`] pass, regardless of `jobs` or thread
/// scheduling.
pub fn profile_scenarios_parallel(
    app: &dyn Application,
    scenarios: &[&str],
    classifier: &Arc<InstanceClassifier>,
    jobs: usize,
) -> ComResult<IccProfile> {
    profile_scenarios_parallel_observed(app, scenarios, classifier, jobs, None)
}

/// [`profile_scenarios_parallel`] with an optional observability bundle.
///
/// Each worker records into a private child tracer; the children are
/// merged back — in scenario order — together with a `classifier_fork`
/// instant per fork (emitted up front) and a `classifier_absorb` instant
/// per merge, so the exported trace is byte-identical across runs
/// regardless of worker interleaving. Registry counters are shared
/// directly: counters commute, so worker order cannot perturb them.
pub fn profile_scenarios_parallel_observed(
    app: &dyn Application,
    scenarios: &[&str],
    classifier: &Arc<InstanceClassifier>,
    jobs: usize,
    obs: Option<&Obs>,
) -> ComResult<IccProfile> {
    profile_scenarios_crosschecked(app, scenarios, classifier, jobs, obs)
        .map(|(profile, _)| profile)
}

/// [`profile_scenarios_parallel_observed`] that also returns the COIGN045
/// state-effect violations the profiling informer's dynamic cross-check
/// observed: declared `Pure`/`ReadsState` methods whose instance
/// fingerprint changed across a call. Violations are deduplicated and
/// deterministically ordered regardless of worker interleaving.
pub fn profile_scenarios_crosschecked(
    app: &dyn Application,
    scenarios: &[&str],
    classifier: &Arc<InstanceClassifier>,
    jobs: usize,
    obs: Option<&Obs>,
) -> ComResult<(IccProfile, Vec<EffectViolation>)> {
    if jobs <= 1 || scenarios.len() <= 1 {
        return profile_scenarios_sequential(app, scenarios, classifier, obs);
    }
    let forks: Vec<Arc<InstanceClassifier>> = scenarios
        .iter()
        .map(|_| Arc::new(classifier.fork()))
        .collect();
    if let Some(o) = obs {
        for scenario in scenarios {
            o.tracer.instant(
                "classifier_fork",
                vec![("scenario", TraceArg::Str((*scenario).to_string()))],
            );
        }
    }
    let children: Vec<Option<Obs>> = scenarios
        .iter()
        .map(|_| {
            obs.map(|o| Obs {
                tracer: Arc::new(o.tracer.child()),
                registry: o.registry.clone(),
                recorder: o.recorder.clone(),
            })
        })
        .collect();
    let next = std::sync::atomic::AtomicUsize::new(0);
    let results: Vec<parking_lot::Mutex<Option<ComResult<ProfileRun>>>> = scenarios
        .iter()
        .map(|_| parking_lot::Mutex::new(None))
        .collect();
    std::thread::scope(|scope| {
        for _ in 0..jobs.min(scenarios.len()) {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                if i >= scenarios.len() {
                    break;
                }
                let run =
                    profile_scenario_observed(app, scenarios[i], &forks[i], children[i].as_ref());
                *results[i].lock() = Some(run);
            });
        }
    });
    let mut merged = IccProfile::new();
    let mut violations = std::collections::BTreeSet::new();
    for (i, slot) in results.into_iter().enumerate() {
        let run = slot
            .into_inner()
            .expect("profiling worker exited without reporting a result")?;
        let map = classifier.absorb(&forks[i]);
        if let Some(o) = obs {
            if let Some(child) = &children[i] {
                o.tracer.merge_from(&child.tracer);
            }
            o.tracer.instant(
                "classifier_absorb",
                vec![
                    ("scenario", TraceArg::Str(scenarios[i].to_string())),
                    ("translated", TraceArg::U64(map.len() as u64)),
                ],
            );
        }
        merged.merge(&run.profile.remap_classifications(&map));
        violations.extend(run.effect_violations);
    }
    Ok((merged, violations.into_iter().collect()))
}

/// Derives the full constraint set for an application: static API analysis,
/// colocations implied by non-remotable interface metadata, plus the
/// programmer's explicit constraints.
pub fn derive_constraints(app: &dyn Application, profile: &IccProfile) -> Vec<Constraint> {
    let rt = ComRuntime::single_machine();
    app.register(&rt);
    let mut constraints = derive_static_constraints(profile, rt.registry());
    constraints.extend(static_non_remotable_colocations(profile, rt.registry()));
    constraints.extend(resolve_named_constraints(
        profile,
        &app.explicit_constraints(),
    ));
    constraints
}

/// Colocations derived *statically* from interface metadata: any profiled
/// edge carried by a non-remotable interface binds its endpoints to one
/// machine — the same fact the profiling informer records dynamically in
/// [`IccProfile::non_remotable`], recovered here from the registry alone so
/// that analysis does not depend on the informer having observed the call.
fn static_non_remotable_colocations(
    profile: &IccProfile,
    registry: &ClassRegistry,
) -> Vec<Constraint> {
    let mut pairs: Vec<(ClassificationId, ClassificationId)> = profile
        .edges
        .keys()
        .filter(|key| key.from != key.to)
        .filter(|key| {
            registry
                .interface_by_iid(key.iid)
                .is_some_and(|desc| !desc.remotable)
        })
        .map(|key| {
            if key.from <= key.to {
                (key.from, key.to)
            } else {
                (key.to, key.from)
            }
        })
        .collect();
    pairs.sort();
    pairs.dedup();
    pairs
        .into_iter()
        .map(|(a, b)| Constraint::Colocate(a, b))
        .collect()
}

/// Fast-fail guard shared by `coign check` and the pipeline: resolves the
/// application's full constraint set and proves it satisfiable before any
/// analysis runs. On failure the [`ComError::App`] detail carries the same
/// rendered `COIGN0xx` diagnostics `coign check` prints.
pub fn check_constraints(app: &dyn Application, profile: &IccProfile) -> ComResult<()> {
    let rt = ComRuntime::single_machine();
    app.register(&rt);
    let named = app.explicit_constraints();
    let constraints = derive_constraints(app, profile);
    let mut sink = crate::lint::DiagnosticSink::new();
    crate::lint::check_constraint_stage(profile, rt.registry(), &named, &constraints, &mut sink);
    if sink.has_errors() {
        return Err(ComError::App(format!(
            "location constraints rejected by static analysis\n{}",
            sink.render_human()
        )));
    }
    Ok(())
}

/// The analysis step: chooses the minimum-communication-time distribution
/// for the given network using the lift-to-front algorithm.
///
/// The constraint set is vetted by [`check_constraints`] first, so an
/// unsatisfiable or unresolvable set fails fast with a diagnostic report —
/// the min-cut solver is never invoked on a contradiction.
pub fn choose_distribution(
    app: &dyn Application,
    profile: &IccProfile,
    network: &NetworkProfile,
) -> ComResult<Distribution> {
    check_constraints(app, profile)?;
    let constraints = derive_constraints(app, profile);
    analyze(
        profile,
        network,
        &constraints,
        MaxFlowAlgorithm::LiftToFront,
    )
}

/// Executes a scenario with the lightweight runtime realizing
/// `distribution`. The classifier must be the one used during profiling
/// (its descriptor table maps new instantiations onto profiled
/// classifications).
pub fn run_distributed(
    app: &dyn Application,
    scenario: &str,
    classifier: &Arc<InstanceClassifier>,
    distribution: &Distribution,
    network: NetworkModel,
    seed: u64,
) -> ComResult<RunReport> {
    run_distributed_on(
        app,
        scenario,
        classifier,
        distribution,
        ComRuntime::client_server(),
        network,
        seed,
    )
}

/// Executes a scenario under `distribution` with usage-drift monitoring:
/// the distribution informer counts messages (cheaply) and the returned
/// monitor reports how far observed usage drifted from `baseline` — the
/// trigger for the paper's "silently enable profiling to re-optimize"
/// loop (§6).
pub fn run_distributed_monitored(
    app: &dyn Application,
    scenario: &str,
    classifier: &Arc<InstanceClassifier>,
    distribution: &Distribution,
    baseline: &IccProfile,
    network: NetworkModel,
    seed: u64,
) -> ComResult<(RunReport, Arc<crate::drift::DriftMonitor>)> {
    let rt = ComRuntime::client_server();
    app.register(&rt);
    classifier.begin_execution();
    let factory = ComponentFactory::with_class_pins(
        distribution.placement.clone(),
        storage_class_pins(&rt),
        MachineId::CLIENT,
        rt.machines().len(),
    );
    let transport = Arc::new(Transport::new(network, seed));
    let monitor = Arc::new(crate::drift::DriftMonitor::from_profile(baseline));
    let rte = Arc::new(CoignRte::distributed_with_monitor(
        classifier.clone(),
        Arc::new(crate::logger::NullLogger),
        factory,
        transport.clone(),
        Some(monitor.clone()),
    ));
    rt.add_hook(rte.clone());

    app.run_scenario(&rt, scenario)?;

    let report = RunReport {
        stats: rt.stats(),
        clock_us: rt.clock().now_us(),
        overhead_us: rte.overhead_us(),
        instances_per_machine: count_per_machine(&rt),
        instance_placements: placements(&rt),
        faults: FaultReport::from_parts(transport.fault_stats(), rte.fallback_count()),
        marshal_cache_hits: rte.marshal_cache().hits(),
        marshal_cache_misses: rte.marshal_cache().misses(),
    };
    Ok((report, monitor))
}

/// Executes a scenario under `distribution` on an arbitrary topology —
/// used for the ≥3-machine distributions of [`crate::multiway`].
pub fn run_distributed_on(
    app: &dyn Application,
    scenario: &str,
    classifier: &Arc<InstanceClassifier>,
    distribution: &Distribution,
    rt: ComRuntime,
    network: NetworkModel,
    seed: u64,
) -> ComResult<RunReport> {
    run_distributed_with_transport(
        app,
        scenario,
        classifier,
        distribution,
        rt,
        Arc::new(Transport::new(network, seed)),
    )
}

/// Executes a scenario under `distribution` on a client–server topology
/// whose wire misbehaves per `plan`, retrying per `policy`. Fault decisions
/// are seeded by `fault_seed` independently of the jitter `seed`, so:
///
/// * the same `(seed, fault_seed, plan)` triple reproduces the report
///   byte-for-byte, and
/// * an empty plan produces a report identical to [`run_distributed`].
#[allow(clippy::too_many_arguments)]
pub fn run_distributed_faulty(
    app: &dyn Application,
    scenario: &str,
    classifier: &Arc<InstanceClassifier>,
    distribution: &Distribution,
    network: NetworkModel,
    seed: u64,
    plan: FaultPlan,
    policy: CallPolicy,
    fault_seed: u64,
) -> ComResult<RunReport> {
    run_distributed_faulty_observed(
        app,
        scenario,
        classifier,
        distribution,
        network,
        seed,
        plan,
        policy,
        fault_seed,
        None,
    )
}

/// [`run_distributed_faulty`] with an optional observability bundle: every
/// cut-crossing call emits an `icc_call` instant and lands in the flight
/// recorder, fault-layer events (`fault_drop`, `fault_timeout`,
/// `fault_retry`, …) are traced at their simulated-clock time, and the
/// report's counters are added to the bundle's registry.
#[allow(clippy::too_many_arguments)]
pub fn run_distributed_faulty_observed(
    app: &dyn Application,
    scenario: &str,
    classifier: &Arc<InstanceClassifier>,
    distribution: &Distribution,
    network: NetworkModel,
    seed: u64,
    plan: FaultPlan,
    policy: CallPolicy,
    fault_seed: u64,
    obs: Option<&Obs>,
) -> ComResult<RunReport> {
    run_distributed_with_transport_observed(
        app,
        scenario,
        classifier,
        distribution,
        ComRuntime::client_server(),
        Arc::new(Transport::with_faults(
            network, seed, plan, policy, fault_seed,
        )),
        obs,
    )
}

/// Outcome of a self-healing distributed execution.
///
/// Unlike the plain runners, the report is produced even when the scenario
/// itself failed: under fault injection a typed transport failure is trial
/// data (the chaos harness classifies it), not an abort.
pub struct RecoveryRun {
    /// Execution measurements (always present).
    pub report: RunReport,
    /// The coordinator: recovery events, placement epoch, solver and
    /// exactly-once counters, and the health monitor it drained.
    pub coordinator: Arc<RecoveryCoordinator>,
    /// The scenario's own result.
    pub outcome: ComResult<()>,
}

/// Executes a scenario under `distribution` with the full self-healing
/// runtime: circuit breakers on the transport, online re-partitioning when
/// a machine dies (warm-started from the base solve's flow snapshot),
/// instance migration, and the exactly-once retry protocol at the proxy.
///
/// With an empty plan this is bit-identical to [`run_distributed`]: the
/// health monitor is only fed on faulty paths, drift polling is clock-free
/// until a latched fire, and no recovery ever triggers.
#[allow(clippy::too_many_arguments)]
pub fn run_distributed_recovering(
    app: &dyn Application,
    scenario: &str,
    classifier: &Arc<InstanceClassifier>,
    distribution: &Distribution,
    profile: &IccProfile,
    network: NetworkModel,
    seed: u64,
    plan: FaultPlan,
    policy: CallPolicy,
    fault_seed: u64,
    config: RecoveryConfig,
) -> ComResult<RecoveryRun> {
    run_distributed_recovering_observed(
        app,
        scenario,
        classifier,
        distribution,
        profile,
        network,
        seed,
        plan,
        policy,
        fault_seed,
        config,
        None,
    )
}

/// [`run_distributed_recovering`] with an optional observability bundle:
/// breaker transitions, recovery events, and migrations become tracer
/// instants and flight-recorder entries (a recovery also dumps the
/// recorder), and the coordinator's and health monitor's counters are
/// added to the registry after the run.
#[allow(clippy::too_many_arguments)]
pub fn run_distributed_recovering_observed(
    app: &dyn Application,
    scenario: &str,
    classifier: &Arc<InstanceClassifier>,
    distribution: &Distribution,
    profile: &IccProfile,
    network: NetworkModel,
    seed: u64,
    plan: FaultPlan,
    policy: CallPolicy,
    fault_seed: u64,
    config: RecoveryConfig,
    obs: Option<&Obs>,
) -> ComResult<RecoveryRun> {
    let rt = ComRuntime::client_server();
    app.register(&rt);
    classifier.begin_execution();
    let net_profile = NetworkProfile::exact(&network);
    let transport = Arc::new(Transport::with_faults(
        network, seed, plan, policy, fault_seed,
    ));
    let health = Arc::new(HealthMonitor::new(config.breaker));
    transport.set_health(health.clone());
    let drift = config
        .drift_threshold
        .map(|threshold| (Arc::new(DriftMonitor::from_profile(profile)), threshold));
    let factory = ComponentFactory::with_class_pins(
        distribution.placement.clone(),
        storage_class_pins(&rt),
        MachineId::CLIENT,
        rt.machines().len(),
    );
    let mut rte = CoignRte::distributed_with_monitor(
        classifier.clone(),
        Arc::new(crate::logger::NullLogger),
        factory,
        transport.clone(),
        drift.as_ref().map(|(monitor, _)| monitor.clone()),
    );
    if let Some(o) = obs {
        rte = rte.with_obs(o.clone());
    }
    let rte = Arc::new(rte);
    let factory = rte.factory().expect("distributed-mode RTE has a factory");
    let constraints = derive_constraints(app, profile);
    let graph = IccGraph::build(profile, &net_profile);
    let coordinator = RecoveryCoordinator::new(
        &graph,
        &constraints,
        factory,
        classifier.clone(),
        health,
        drift,
        obs.cloned(),
    )?;
    if let Some(router) = config.replicas {
        coordinator.install_replicas(router);
    }
    rte.set_recovery(coordinator.clone());
    rt.add_hook(rte.clone());

    let outcome = app.run_scenario(&rt, scenario);

    let report = RunReport {
        stats: rt.stats(),
        clock_us: rt.clock().now_us(),
        overhead_us: rte.overhead_us(),
        instances_per_machine: count_per_machine(&rt),
        instance_placements: placements(&rt),
        faults: FaultReport::from_parts(transport.fault_stats(), rte.fallback_count()),
        marshal_cache_hits: rte.marshal_cache().hits(),
        marshal_cache_misses: rte.marshal_cache().misses(),
    };
    if let Some(o) = obs {
        report.record_metrics(&o.registry);
        coordinator.record_metrics(&o.registry);
        coordinator.health().record_metrics(&o.registry);
    }
    Ok(RecoveryRun {
        report,
        coordinator,
        outcome,
    })
}

fn run_distributed_with_transport(
    app: &dyn Application,
    scenario: &str,
    classifier: &Arc<InstanceClassifier>,
    distribution: &Distribution,
    rt: ComRuntime,
    transport: Arc<Transport>,
) -> ComResult<RunReport> {
    run_distributed_with_transport_observed(
        app,
        scenario,
        classifier,
        distribution,
        rt,
        transport,
        None,
    )
}

fn run_distributed_with_transport_observed(
    app: &dyn Application,
    scenario: &str,
    classifier: &Arc<InstanceClassifier>,
    distribution: &Distribution,
    rt: ComRuntime,
    transport: Arc<Transport>,
    obs: Option<&Obs>,
) -> ComResult<RunReport> {
    app.register(&rt);
    classifier.begin_execution();
    let factory = ComponentFactory::with_class_pins(
        distribution.placement.clone(),
        storage_class_pins(&rt),
        MachineId::CLIENT,
        rt.machines().len(),
    );
    let mut rte = CoignRte::distributed(
        classifier.clone(),
        Arc::new(crate::logger::NullLogger),
        factory,
        transport.clone(),
    );
    if let Some(o) = obs {
        rte = rte.with_obs(o.clone());
    }
    let rte = Arc::new(rte);
    rt.add_hook(rte.clone());

    app.run_scenario(&rt, scenario)?;

    let report = RunReport {
        stats: rt.stats(),
        clock_us: rt.clock().now_us(),
        overhead_us: rte.overhead_us(),
        instances_per_machine: count_per_machine(&rt),
        instance_placements: placements(&rt),
        faults: FaultReport::from_parts(transport.fault_stats(), rte.fallback_count()),
        marshal_cache_hits: rte.marshal_cache().hits(),
        marshal_cache_misses: rte.marshal_cache().misses(),
    };
    if let Some(o) = obs {
        report.record_metrics(&o.registry);
    }
    Ok(report)
}

/// Places instances by *class* according to a fixed table — how an
/// application ships: the developer assigned classes (not instances) to
/// tiers. Interfaces are wrapped with the distribution informer so
/// cross-machine calls cost real time.
struct StaticPlacementRte {
    placement: HashMap<Clsid, MachineId>,
    transport: Arc<Transport>,
    overhead: Arc<OverheadMeter>,
}

impl RuntimeHook for StaticPlacementRte {
    fn fulfill_create(
        &self,
        rt: &ComRuntime,
        req: &CreateRequest,
    ) -> Option<ComResult<InterfacePtr>> {
        let machine = self
            .placement
            .get(&req.clsid)
            .copied()
            .unwrap_or(MachineId::CLIENT);
        Some(rt.create_direct(req.clsid, req.iid, Some(machine)))
    }

    fn wrap_interface(&self, _rt: &ComRuntime, ptr: InterfacePtr) -> InterfacePtr {
        DistributionInvoker::wrap(ptr, self.transport.clone(), self.overhead.clone())
    }
}

/// Executes a scenario in the application's default (as-shipped)
/// distribution: every class placed per [`Application::default_placement`].
pub fn run_default(
    app: &dyn Application,
    scenario: &str,
    network: NetworkModel,
    seed: u64,
) -> ComResult<RunReport> {
    let rt = ComRuntime::client_server();
    app.register(&rt);
    // Data files are placed on the server for both the default and the
    // Coign-chosen distributions (§4.5): storage/database classes override
    // the application's own placement.
    let placement: HashMap<Clsid, MachineId> = rt
        .registry()
        .all()
        .into_iter()
        .map(|desc| {
            let machine = if desc.imports.uses_storage() {
                MachineId::SERVER
            } else {
                app.default_placement(&desc.name)
            };
            (desc.clsid, machine)
        })
        .collect();
    let transport = Arc::new(Transport::new(network, seed));
    let overhead = Arc::new(OverheadMeter::new());
    rt.add_hook(Arc::new(StaticPlacementRte {
        placement,
        transport,
        overhead: overhead.clone(),
    }));

    app.run_scenario(&rt, scenario)?;

    Ok(RunReport {
        stats: rt.stats(),
        clock_us: rt.clock().now_us(),
        overhead_us: overhead.total_us(),
        instances_per_machine: count_per_machine(&rt),
        instance_placements: placements(&rt),
        faults: FaultReport::default(),
        marshal_cache_hits: 0,
        marshal_cache_misses: 0,
    })
}

/// Executes a scenario with no instrumentation at all (overhead baseline:
/// the original application on one machine).
pub fn run_raw(app: &dyn Application, scenario: &str) -> ComResult<RunReport> {
    let rt = ComRuntime::single_machine();
    app.register(&rt);
    app.run_scenario(&rt, scenario)?;
    Ok(RunReport {
        stats: rt.stats(),
        clock_us: rt.clock().now_us(),
        overhead_us: 0,
        instances_per_machine: count_per_machine(&rt),
        instance_placements: placements(&rt),
        faults: FaultReport::default(),
        marshal_cache_hits: 0,
        marshal_cache_misses: 0,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classifier::ClassifierKind;
    use coign_com::idl::InterfaceBuilder;
    use coign_com::registry::ApiImports;
    use coign_com::{AppImage, CallCtx, ComObject, Iid, Message, PType, Value};

    /// A minimal two-component application: a GUI shell that repeatedly
    /// pulls a large document from a storage-backed reader.
    struct MiniApp;

    struct Shell {
        reader_clsid: Clsid,
        reader_iid: Iid,
    }
    impl ComObject for Shell {
        fn invoke(
            &self,
            ctx: &CallCtx<'_>,
            _iid: Iid,
            _method: u32,
            msg: &mut Message,
        ) -> ComResult<()> {
            ctx.compute(200);
            let reader = ctx.create(self.reader_clsid, self.reader_iid)?;
            let mut total = 0u64;
            for _ in 0..20 {
                let mut inner = Message::outputs(1);
                reader.call(ctx.rt(), 0, &mut inner)?;
                total += inner.arg(0).and_then(Value::as_blob).unwrap_or(0);
            }
            msg.set(0, Value::I8(total as i64));
            Ok(())
        }
    }

    struct DocReader;
    impl ComObject for DocReader {
        fn invoke(
            &self,
            ctx: &CallCtx<'_>,
            _iid: Iid,
            _method: u32,
            msg: &mut Message,
        ) -> ComResult<()> {
            ctx.compute(50);
            msg.set(0, Value::Blob(50_000));
            Ok(())
        }
    }

    impl Application for MiniApp {
        fn name(&self) -> &str {
            "miniapp"
        }
        fn register(&self, rt: &ComRuntime) {
            let ireader = InterfaceBuilder::new("IMiniReader")
                .method("Read", |m| m.output("data", PType::Blob))
                .build();
            let reader_iid = ireader.iid;
            let reader_clsid =
                rt.registry()
                    .register("MiniReader", vec![ireader], ApiImports::STORAGE, |_, _| {
                        Arc::new(DocReader)
                    });
            let ishell = InterfaceBuilder::new("IMiniShell")
                .method("Run", |m| m.output("total", PType::I8))
                .build();
            rt.registry()
                .register("MiniShell", vec![ishell], ApiImports::GUI, move |_, _| {
                    Arc::new(Shell {
                        reader_clsid,
                        reader_iid,
                    })
                });
        }
        fn scenarios(&self) -> Vec<&'static str> {
            vec!["m_run", "m_twice", "m_direct"]
        }
        fn run_scenario(&self, rt: &ComRuntime, scenario: &str) -> ComResult<()> {
            let ishell = Iid::from_name("IMiniShell");
            let shell = rt.create_instance(Clsid::from_name("MiniShell"), ishell)?;
            shell.call(rt, 0, &mut Message::outputs(1))?;
            if scenario == "m_twice" {
                // A second session: same classifications, more traffic.
                let again = rt.create_instance(Clsid::from_name("MiniShell"), ishell)?;
                again.call(rt, 0, &mut Message::outputs(1))?;
            }
            if scenario == "m_direct" {
                // The root reads the document directly: a reader
                // instantiated outside any shell gets a classification of
                // its own, so this scenario grows the descriptor table.
                let reader = rt.create_instance(
                    Clsid::from_name("MiniReader"),
                    Iid::from_name("IMiniReader"),
                )?;
                reader.call(rt, 0, &mut Message::outputs(1))?;
            }
            Ok(())
        }
        fn image(&self) -> AppImage {
            AppImage::new("miniapp.exe", vec![Clsid::from_name("MiniShell")])
        }
        fn default_placement(&self, _class: &str) -> MachineId {
            // Desktop app: everything on the client (data served remotely is
            // modeled inside the reader in this miniature).
            MachineId::CLIENT
        }
    }

    #[test]
    fn end_to_end_pipeline_reduces_communication() {
        let app = MiniApp;
        let classifier = Arc::new(InstanceClassifier::new(ClassifierKind::Ifcb));
        let profile = profile_scenarios(&app, &["m_run"], &classifier).unwrap();
        assert!(profile.total_messages() > 0);

        let network = NetworkProfile::exact(&NetworkModel::ethernet_10baset());
        let dist = choose_distribution(&app, &profile, &network).unwrap();
        // The storage-pinned reader lands on the server; the GUI shell
        // stays on the client; the heavy link is *inside* the call pattern,
        // so the cut severs the shell↔reader edge — the cheapest place.
        let report = run_distributed(
            &app,
            "m_run",
            &classifier,
            &dist,
            NetworkModel::ethernet_10baset(),
            42,
        )
        .unwrap();
        assert_eq!(report.total_instances(), 2);
        assert_eq!(report.server_instances(), 1);
        assert!(report.stats.comm_us > 0);
        assert!(report.stats.cross_machine_calls >= 20);
    }

    #[test]
    fn parallel_profiling_matches_sequential_byte_for_byte() {
        let app = MiniApp;
        let scenarios = app.scenarios();
        let seq_classifier = Arc::new(InstanceClassifier::new(ClassifierKind::Ifcb));
        let seq = profile_scenarios(&app, &scenarios, &seq_classifier).unwrap();
        assert!(seq.total_messages() > 0);
        for jobs in [1, 2, 4, 8] {
            let par_classifier = Arc::new(InstanceClassifier::new(ClassifierKind::Ifcb));
            let par = profile_scenarios_parallel(&app, &scenarios, &par_classifier, jobs).unwrap();
            assert_eq!(par.encode(), seq.encode(), "profile differs at jobs={jobs}");
            assert_eq!(
                par_classifier.encode(),
                seq_classifier.encode(),
                "classifier table differs at jobs={jobs}"
            );
        }
    }

    #[test]
    fn parallel_profiling_grows_the_shared_classifier() {
        // The root-instantiated reader of m_direct exists in no other
        // scenario, so the shared table must have absorbed a descriptor
        // interned by a worker's fork.
        let app = MiniApp;
        let classifier = Arc::new(InstanceClassifier::new(ClassifierKind::Ifcb));
        profile_scenarios_parallel(&app, &["m_run"], &classifier, 4).unwrap();
        let before = classifier.classification_count();
        profile_scenarios_parallel(&app, &["m_run", "m_direct"], &classifier, 4).unwrap();
        assert!(classifier.classification_count() > before);
    }

    #[test]
    fn profiling_reports_overhead_and_instances() {
        let app = MiniApp;
        let classifier = Arc::new(InstanceClassifier::new(ClassifierKind::Ifcb));
        let run = profile_scenario(&app, "m_run", &classifier).unwrap();
        assert!(run.report.overhead_us > 0);
        assert_eq!(run.report.total_instances(), 2);
        assert_eq!(run.instance_classes.len(), 2);
        assert!(!run.instance_pairs.is_empty());
        // Profile captured the 20 × 50 KB replies.
        assert!(run.profile.total_bytes() > 1_000_000);
    }

    #[test]
    fn raw_run_has_zero_overhead() {
        let app = MiniApp;
        let report = run_raw(&app, "m_run").unwrap();
        assert_eq!(report.overhead_us, 0);
        assert_eq!(report.stats.comm_us, 0);
        assert!(report.stats.compute_us > 0);
    }

    #[test]
    fn profiling_overhead_is_bounded() {
        // The paper: profiling adds up to 85 % (typically ~45 %). Our model
        // charges per call + per KB; verify it lands in a sane band
        // relative to the raw run rather than dwarfing it.
        let app = MiniApp;
        let raw = run_raw(&app, "m_run").unwrap();
        let classifier = Arc::new(InstanceClassifier::new(ClassifierKind::Ifcb));
        let prof = profile_scenario(&app, "m_run", &classifier).unwrap();
        assert!(prof.report.clock_us > raw.clock_us);
        let overhead_frac = (prof.report.clock_us - raw.clock_us) as f64 / raw.clock_us as f64;
        assert!(overhead_frac < 2.0, "overhead {overhead_frac} too large");
    }

    #[test]
    fn default_run_places_data_files_on_server() {
        let app = MiniApp;
        let report = run_default(&app, "m_run", NetworkModel::ethernet_10baset(), 3).unwrap();
        // The shell stays on the client, but the storage-importing reader
        // (the "data file") is pinned to the server, so the 20 × 50 KB
        // document pulls cross the network.
        assert_eq!(report.server_instances(), 1);
        assert!(report.stats.comm_us > 0);
        assert!(report.stats.bytes > 1_000_000);
    }

    #[test]
    fn distributed_runs_are_deterministic_per_seed() {
        let app = MiniApp;
        let classifier = Arc::new(InstanceClassifier::new(ClassifierKind::Ifcb));
        let profile = profile_scenarios(&app, &["m_run"], &classifier).unwrap();
        let network = NetworkProfile::exact(&NetworkModel::ethernet_10baset());
        let dist = choose_distribution(&app, &profile, &network).unwrap();
        let a = run_distributed(
            &app,
            "m_run",
            &classifier,
            &dist,
            NetworkModel::ethernet_10baset(),
            9,
        )
        .unwrap();
        let b = run_distributed(
            &app,
            "m_run",
            &classifier,
            &dist,
            NetworkModel::ethernet_10baset(),
            9,
        )
        .unwrap();
        assert_eq!(a.clock_us, b.clock_us);
        assert_eq!(a.stats, b.stats);
    }

    #[test]
    fn zero_fault_recovery_run_is_bit_identical_to_plain_distributed() {
        use coign_dcom::CallPolicy;
        let app = MiniApp;
        let classifier = Arc::new(InstanceClassifier::new(ClassifierKind::Ifcb));
        let profile = profile_scenarios(&app, &["m_run"], &classifier).unwrap();
        let network = NetworkProfile::exact(&NetworkModel::ethernet_10baset());
        let dist = choose_distribution(&app, &profile, &network).unwrap();
        let plain = run_distributed(
            &app,
            "m_run",
            &classifier,
            &dist,
            NetworkModel::ethernet_10baset(),
            9,
        )
        .unwrap();
        let recovering = run_distributed_recovering(
            &app,
            "m_run",
            &classifier,
            &dist,
            &profile,
            NetworkModel::ethernet_10baset(),
            9,
            FaultPlan::none(),
            CallPolicy::default(),
            9,
            crate::recovery::RecoveryConfig::default(),
        )
        .unwrap();
        recovering.outcome.unwrap();
        // The self-healing machinery must be inert on a clean wire: same
        // clock, same stats, same placements as the plain runner.
        assert_eq!(recovering.report.clock_us, plain.clock_us);
        assert_eq!(recovering.report.stats, plain.stats);
        assert_eq!(
            recovering.report.instance_placements,
            plain.instance_placements
        );
        let coord = &recovering.coordinator;
        assert_eq!(coord.recovery_count(), 0);
        assert_eq!(coord.epoch(), 0);
        assert_eq!(coord.migration_count(), 0);
        assert_eq!(coord.cold_solves(), 1, "only the base solve ran");
        assert!(coord.dead_machines().is_empty());
    }

    #[test]
    fn machine_death_mid_run_recovers_with_a_warm_resolve() {
        use coign_dcom::{CallPolicy, TimeWindow};
        let app = MiniApp;
        let classifier = Arc::new(InstanceClassifier::new(ClassifierKind::Ifcb));
        let profile = profile_scenarios(&app, &["m_run"], &classifier).unwrap();
        let network = NetworkProfile::exact(&NetworkModel::ethernet_10baset());
        let dist = choose_distribution(&app, &profile, &network).unwrap();
        let plain = run_distributed(
            &app,
            "m_run",
            &classifier,
            &dist,
            NetworkModel::ethernet_10baset(),
            9,
        )
        .unwrap();
        // Kill the server a third of the way through the run and never
        // bring it back.
        let plan = FaultPlan::none().with_machine_down(
            MachineId::SERVER,
            TimeWindow::new(plain.clock_us / 3, u64::MAX),
        );
        let run = run_distributed_recovering(
            &app,
            "m_run",
            &classifier,
            &dist,
            &profile,
            NetworkModel::ethernet_10baset(),
            9,
            plan,
            CallPolicy::default(),
            9,
            crate::recovery::RecoveryConfig::default(),
        )
        .unwrap();
        // The scenario survives: the breaker trips, the cut is re-solved
        // with the server pinned dead, and the reader migrates client-side.
        run.outcome.unwrap();
        let coord = &run.coordinator;
        assert_eq!(coord.recovery_count(), 1, "exactly one recovery");
        assert!(coord.dead_machines().contains(&MachineId::SERVER));
        assert_eq!(coord.epoch(), 1);
        assert!(
            coord.warm_solves() >= 1,
            "recovery re-solve is warm-started"
        );
        assert_eq!(coord.cold_solves(), 1, "only the base solve is cold");
        assert!(coord.migration_count() >= 1, "the reader moved");
        assert!(coord.migrated_state_bytes() > 0);
        assert_eq!(coord.double_executions(), 0);
        // The post-recovery placement satisfies every constraint with the
        // dead machine excluded.
        coord.validate().unwrap();
        // Everything now lives on the client.
        for (_, machine) in &run.report.instance_placements {
            assert_eq!(*machine, MachineId::CLIENT);
        }
        let event = &coord.events()[0];
        assert_eq!(
            event.trigger,
            crate::recovery::RecoveryTrigger::MachineDeath
        );
        assert_eq!(event.dead_machine, Some(MachineId::SERVER));
    }

    /// A shell driving a storage-pinned counter component: each logical
    /// call increments a shared ledger exactly once, so any re-execution
    /// under the recovery retry protocol is directly observable.
    struct CountingApp {
        executions: Arc<std::sync::atomic::AtomicU64>,
    }

    struct CountShell {
        counter_clsid: Clsid,
        counter_iid: Iid,
    }
    impl ComObject for CountShell {
        fn invoke(
            &self,
            ctx: &CallCtx<'_>,
            _iid: Iid,
            _method: u32,
            msg: &mut Message,
        ) -> ComResult<()> {
            ctx.compute(100);
            let counter = ctx.create(self.counter_clsid, self.counter_iid)?;
            for _ in 0..12 {
                let mut inner = Message::outputs(1);
                counter.call(ctx.rt(), 0, &mut inner)?;
            }
            msg.set(0, Value::I8(12));
            Ok(())
        }
    }

    struct CountServer {
        executions: Arc<std::sync::atomic::AtomicU64>,
    }
    impl ComObject for CountServer {
        fn invoke(
            &self,
            ctx: &CallCtx<'_>,
            _iid: Iid,
            _method: u32,
            msg: &mut Message,
        ) -> ComResult<()> {
            ctx.compute(50);
            self.executions
                .fetch_add(1, std::sync::atomic::Ordering::SeqCst);
            msg.set(0, Value::Blob(20_000));
            Ok(())
        }
    }

    impl Application for CountingApp {
        fn name(&self) -> &str {
            "countapp"
        }
        fn register(&self, rt: &ComRuntime) {
            let icounter = InterfaceBuilder::new("ICounter")
                .method("Bump", |m| m.output("data", PType::Blob))
                .build();
            let counter_iid = icounter.iid;
            let executions = self.executions.clone();
            let counter_clsid = rt.registry().register(
                "CountServer",
                vec![icounter],
                ApiImports::STORAGE,
                move |_, _| {
                    Arc::new(CountServer {
                        executions: executions.clone(),
                    })
                },
            );
            let ishell = InterfaceBuilder::new("ICountShell")
                .method("Run", |m| m.output("total", PType::I8))
                .build();
            rt.registry()
                .register("CountShell", vec![ishell], ApiImports::GUI, move |_, _| {
                    Arc::new(CountShell {
                        counter_clsid,
                        counter_iid,
                    })
                });
        }
        fn scenarios(&self) -> Vec<&'static str> {
            vec!["count"]
        }
        fn run_scenario(&self, rt: &ComRuntime, _scenario: &str) -> ComResult<()> {
            let ishell = Iid::from_name("ICountShell");
            let shell = rt.create_instance(Clsid::from_name("CountShell"), ishell)?;
            shell.call(rt, 0, &mut Message::outputs(1))?;
            Ok(())
        }
        fn image(&self) -> AppImage {
            AppImage::new("countapp.exe", vec![Clsid::from_name("CountShell")])
        }
        fn default_placement(&self, _class: &str) -> MachineId {
            MachineId::CLIENT
        }
    }

    #[test]
    fn recovered_calls_execute_exactly_once() {
        use coign_dcom::{CallPolicy, TimeWindow};
        let executions = Arc::new(std::sync::atomic::AtomicU64::new(0));
        let app = CountingApp {
            executions: executions.clone(),
        };
        let classifier = Arc::new(InstanceClassifier::new(ClassifierKind::Ifcb));
        let profile = profile_scenarios(&app, &["count"], &classifier).unwrap();
        let network = NetworkProfile::exact(&NetworkModel::ethernet_10baset());
        let dist = choose_distribution(&app, &profile, &network).unwrap();
        let plain = run_distributed(
            &app,
            "count",
            &classifier,
            &dist,
            NetworkModel::ethernet_10baset(),
            9,
        )
        .unwrap();
        let profiling_and_plain = executions.load(std::sync::atomic::Ordering::SeqCst);
        assert!(
            profiling_and_plain >= 24,
            "profiling + plain run both count"
        );
        // Kill the server mid-run at several different instants: whichever
        // side of the execute/charge boundary the death lands on, every
        // logical call must execute exactly once.
        for fraction in [4u64, 3, 2] {
            executions.store(0, std::sync::atomic::Ordering::SeqCst);
            let plan = FaultPlan::none().with_machine_down(
                MachineId::SERVER,
                TimeWindow::new(plain.clock_us / fraction, u64::MAX),
            );
            let run = run_distributed_recovering(
                &app,
                "count",
                &classifier,
                &dist,
                &profile,
                NetworkModel::ethernet_10baset(),
                9,
                plan,
                CallPolicy::default(),
                9,
                crate::recovery::RecoveryConfig::default(),
            )
            .unwrap();
            run.outcome.unwrap();
            assert_eq!(
                executions.load(std::sync::atomic::Ordering::SeqCst),
                12,
                "every logical call executes exactly once (death at 1/{fraction})"
            );
            assert_eq!(run.coordinator.double_executions(), 0);
            run.coordinator.validate().unwrap();
        }
    }
}
