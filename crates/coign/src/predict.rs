//! Execution-time prediction (§4.6, Table 5 of the paper).
//!
//! Coign's graph-cutting is only as good as its model of communication and
//! execution time. The prediction for a distributed scenario is:
//!
//! ```text
//! predicted = application compute time            (from the profiling run)
//!           + Σ over cross-machine traffic of α·messages + β·bytes
//!                                                 (from the network profile)
//!           + per-call distribution-informer overhead
//! ```
//!
//! The *measured* time comes from actually executing the distributed
//! scenario on the simulated network, whose per-message jitter the analytic
//! model cannot see — which is why predictions are close but not exact,
//! just as in the paper (errors ≤ 8 %).

use crate::analysis::Distribution;
use crate::informer::DISTRIBUTION_CALL_OVERHEAD_US;
use crate::profile::IccProfile;
use coign_dcom::NetworkProfile;

/// Predicted communication time for a profile split by `distribution`, in
/// microseconds: the α/β model applied to every classification pair whose
/// endpoints land on different machines.
pub fn predict_comm_us(
    profile: &IccProfile,
    distribution: &Distribution,
    network: &NetworkProfile,
) -> f64 {
    // Sum in a deterministic order so the floating-point result is
    // bit-stable run to run.
    let mut traffic: Vec<_> = profile.pair_traffic().into_iter().collect();
    traffic.sort_by_key(|(pair, _)| *pair);
    traffic
        .iter()
        .filter(|((a, b), _)| distribution.machine_of(*a) != distribution.machine_of(*b))
        .map(|(_, stats)| network.predict_traffic_us(stats.messages, stats.bytes))
        .sum()
}

/// Predicted end-to-end execution time of a distributed scenario, in
/// microseconds.
///
/// * `profiled_compute_us` — application compute measured during profiling
///   (instrumentation overhead excluded).
/// * `profiled_calls` — interface dispatches observed during profiling
///   (each costs the distribution informer [`DISTRIBUTION_CALL_OVERHEAD_US`]).
pub fn predict_execution_us(
    profiled_compute_us: u64,
    profiled_calls: u64,
    profile: &IccProfile,
    distribution: &Distribution,
    network: &NetworkProfile,
) -> f64 {
    profiled_compute_us as f64
        + profiled_calls as f64 * DISTRIBUTION_CALL_OVERHEAD_US as f64
        + predict_comm_us(profile, distribution, network)
}

/// A prediction-versus-measurement comparison row (Table 5).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PredictionRow {
    /// Predicted execution time, microseconds.
    pub predicted_us: f64,
    /// Measured execution time, microseconds.
    pub measured_us: f64,
}

impl PredictionRow {
    /// Signed relative error `(measured − predicted) / measured`.
    pub fn error(&self) -> f64 {
        if self.measured_us == 0.0 {
            return 0.0;
        }
        (self.measured_us - self.predicted_us) / self.measured_us
    }

    /// Error as a rounded percentage (the paper's formatting).
    pub fn error_pct(&self) -> i64 {
        (self.error() * 100.0).round() as i64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classifier::ClassificationId;
    use coign_com::{Clsid, Iid, MachineId};
    use coign_dcom::NetworkModel;
    use std::collections::HashMap;

    fn c(n: u32) -> ClassificationId {
        ClassificationId(n)
    }

    fn make(placement: &[(u32, MachineId)]) -> Distribution {
        Distribution {
            placement: placement
                .iter()
                .map(|(id, m)| (c(*id), *m))
                .collect::<HashMap<_, _>>(),
            predicted_comm_us: 0.0,
            network_name: "test".into(),
        }
    }

    fn profile() -> IccProfile {
        let iid = Iid::from_name("IX");
        let mut p = IccProfile::new();
        p.record_instance(c(1), Clsid::from_name("A"));
        p.record_instance(c(2), Clsid::from_name("B"));
        for _ in 0..10 {
            p.record_message(c(1), c(2), iid, 0, 1_000);
        }
        p.record_message(ClassificationId::ROOT, c(1), iid, 0, 100);
        p
    }

    #[test]
    fn colocated_pairs_cost_nothing() {
        let network = NetworkProfile::exact(&NetworkModel::ethernet_10baset());
        let dist = make(&[(1, MachineId::CLIENT), (2, MachineId::CLIENT)]);
        assert_eq!(predict_comm_us(&profile(), &dist, &network), 0.0);
    }

    #[test]
    fn split_pairs_cost_their_traffic() {
        let network = NetworkProfile::exact(&NetworkModel::ethernet_10baset());
        let dist = make(&[(1, MachineId::CLIENT), (2, MachineId::SERVER)]);
        let cost = predict_comm_us(&profile(), &dist, &network);
        let expected = network.predict_traffic_us(10, 10_000);
        assert!((cost - expected).abs() < 1e-9);
    }

    #[test]
    fn execution_prediction_adds_compute_and_overhead() {
        let network = NetworkProfile::exact(&NetworkModel::ethernet_10baset());
        let dist = make(&[(1, MachineId::CLIENT), (2, MachineId::CLIENT)]);
        let total = predict_execution_us(1_000, 11, &profile(), &dist, &network);
        assert!((total - 1_000.0 - 11.0 * DISTRIBUTION_CALL_OVERHEAD_US as f64).abs() < 1e-9);
    }

    #[test]
    fn error_is_signed_and_percent_rounded() {
        let row = PredictionRow {
            predicted_us: 95.0,
            measured_us: 100.0,
        };
        assert!((row.error() - 0.05).abs() < 1e-12);
        assert_eq!(row.error_pct(), 5);
        let over = PredictionRow {
            predicted_us: 103.0,
            measured_us: 100.0,
        };
        assert_eq!(over.error_pct(), -3);
        let zero = PredictionRow {
            predicted_us: 5.0,
            measured_us: 0.0,
        };
        assert_eq!(zero.error_pct(), 0);
    }

    #[test]
    fn unknown_classifications_default_to_client() {
        let network = NetworkProfile::exact(&NetworkModel::ethernet_10baset());
        // Only classification 2 placed; 1 defaults to client.
        let dist = make(&[(2, MachineId::SERVER)]);
        let cost = predict_comm_us(&profile(), &dist, &network);
        assert!(cost > 0.0);
    }
}
