//! The inter-component communication graph.
//!
//! The profile analysis engine combines component communication profiles and
//! location constraints into an **abstract ICC graph** of the application,
//! then combines that with a network profile to create a **concrete graph of
//! potential communication time** on the target network. The concrete graph
//! is what the min-cut algorithm partitions.

use crate::classifier::ClassificationId;
use crate::profile::IccProfile;
use coign_dcom::NetworkProfile;
use std::collections::{BTreeMap, HashMap, HashSet};

/// Fixed-point scale converting fractional microseconds to integer edge
/// capacities (the flow algorithms operate on `u64`).
pub const TIME_SCALE: f64 = 256.0;

/// The concrete (time-weighted) inter-component communication graph.
#[derive(Debug, Clone)]
pub struct IccGraph {
    /// Node order: `nodes[i]` is the classification of graph node `i`.
    pub nodes: Vec<ClassificationId>,
    /// Reverse index of `nodes`.
    pub index: HashMap<ClassificationId, usize>,
    /// Undirected communication-time weights between node pairs, in
    /// microseconds (keys are normalized with `a < b`). Ordered so that
    /// floating-point summations over the graph are deterministic.
    pub weights_us: BTreeMap<(usize, usize), f64>,
    /// Node pairs connected by non-remotable interfaces (must co-locate).
    pub non_remotable: HashSet<(usize, usize)>,
    /// The network profile the graph was concretized against.
    pub network_name: String,
}

impl IccGraph {
    /// Builds the concrete graph from a profile and a network profile.
    ///
    /// Edge weight = `α · messages + β · bytes` summed over all summarized
    /// entries between the pair — the predicted communication time if the
    /// pair were split across the network.
    pub fn build(profile: &IccProfile, network: &NetworkProfile) -> Self {
        let mut nodes: Vec<ClassificationId> = profile.classifications().into_iter().collect();
        if !nodes.contains(&ClassificationId::ROOT) {
            nodes.push(ClassificationId::ROOT);
        }
        nodes.sort();
        let index: HashMap<ClassificationId, usize> =
            nodes.iter().enumerate().map(|(i, c)| (*c, i)).collect();

        let mut weights_us: BTreeMap<(usize, usize), f64> = BTreeMap::new();
        let mut traffic: Vec<_> = profile.pair_traffic().into_iter().collect();
        traffic.sort_by_key(|(pair, _)| *pair);
        for (pair, stats) in traffic {
            let (a, b) = (index[&pair.0], index[&pair.1]);
            if a == b {
                continue; // self-communication never crosses the network
            }
            let key = if a < b { (a, b) } else { (b, a) };
            let cost = network.predict_traffic_us(stats.messages, stats.bytes);
            *weights_us.entry(key).or_insert(0.0) += cost;
        }

        let mut non_remotable = HashSet::new();
        for (ca, cb) in &profile.non_remotable {
            let (a, b) = (index[ca], index[cb]);
            if a == b {
                continue;
            }
            non_remotable.insert(if a < b { (a, b) } else { (b, a) });
        }

        IccGraph {
            nodes,
            index,
            weights_us,
            non_remotable,
            network_name: network.network_name.clone(),
        }
    }

    /// Number of classification nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Total predicted communication time if *every* edge crossed the
    /// network (an upper bound used in reports).
    pub fn total_time_us(&self) -> f64 {
        self.weights_us.values().sum()
    }

    /// Predicted communication time across a placement: the sum of edge
    /// weights whose endpoints land on different machines.
    ///
    /// `side[i]` is true if node `i` is on the client.
    pub fn crossing_time_us(&self, side: &[bool]) -> f64 {
        self.weights_us
            .iter()
            .filter(|((a, b), _)| side[*a] != side[*b])
            .map(|(_, w)| w)
            .sum()
    }

    /// Converts a weight in microseconds to an integer edge capacity.
    pub fn capacity_of(weight_us: f64) -> u64 {
        (weight_us * TIME_SCALE).round().max(1.0) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use coign_com::{Clsid, Iid};
    use coign_dcom::NetworkModel;

    fn c(n: u32) -> ClassificationId {
        ClassificationId(n)
    }

    fn profile() -> IccProfile {
        let iid = Iid::from_name("IX");
        let mut p = IccProfile::new();
        p.record_instance(c(1), Clsid::from_name("A"));
        p.record_instance(c(2), Clsid::from_name("B"));
        p.record_message(c(1), c(2), iid, 0, 1000);
        p.record_message(c(2), c(1), iid, 0, 50);
        p.record_message(ClassificationId::ROOT, c(1), iid, 1, 100);
        p.record_non_remotable(c(1), c(2));
        p
    }

    fn network() -> NetworkProfile {
        NetworkProfile::exact(&NetworkModel::ethernet_10baset())
    }

    #[test]
    fn build_indexes_all_classifications_including_root() {
        let g = IccGraph::build(&profile(), &network());
        assert_eq!(g.node_count(), 3);
        assert_eq!(g.nodes[0], ClassificationId::ROOT);
        assert!(g.index.contains_key(&c(1)));
        assert!(g.index.contains_key(&c(2)));
    }

    #[test]
    fn weights_merge_directions() {
        let g = IccGraph::build(&profile(), &network());
        let net = network();
        let a = g.index[&c(1)];
        let b = g.index[&c(2)];
        let key = if a < b { (a, b) } else { (b, a) };
        let expected = net.predict_traffic_us(2, 1050);
        assert!((g.weights_us[&key] - expected).abs() < 1e-9);
    }

    #[test]
    fn non_remotable_pairs_are_carried() {
        let g = IccGraph::build(&profile(), &network());
        assert_eq!(g.non_remotable.len(), 1);
    }

    #[test]
    fn crossing_time_counts_only_split_pairs() {
        let g = IccGraph::build(&profile(), &network());
        let all_client = vec![true; g.node_count()];
        assert_eq!(g.crossing_time_us(&all_client), 0.0);
        // Split c(2) from the rest: both its edges cross? only edge 1-2 and
        // root-1 stays local.
        let mut side = vec![true; g.node_count()];
        side[g.index[&c(2)]] = false;
        let crossing = g.crossing_time_us(&side);
        assert!(crossing > 0.0);
        assert!(crossing < g.total_time_us());
    }

    #[test]
    fn faster_networks_yield_lighter_graphs() {
        let slow = IccGraph::build(&profile(), &NetworkProfile::exact(&NetworkModel::isdn()));
        let fast = IccGraph::build(&profile(), &NetworkProfile::exact(&NetworkModel::san()));
        assert!(slow.total_time_us() > fast.total_time_us());
    }

    #[test]
    fn capacity_is_positive_and_monotone() {
        assert!(IccGraph::capacity_of(0.0001) >= 1);
        assert!(IccGraph::capacity_of(100.0) > IccGraph::capacity_of(1.0));
    }

    #[test]
    fn empty_profile_yields_root_only_graph() {
        let g = IccGraph::build(&IccProfile::new(), &network());
        assert_eq!(g.node_count(), 1);
        assert_eq!(g.total_time_us(), 0.0);
    }
}
