//! The component factory (§3.5 of the paper).
//!
//! The component factory produces a distributed application by manipulating
//! instance placement: using the instance classifier's output and the
//! analysis engine's classification→machine map, it moves each component
//! instantiation request to the appropriate computer.
//!
//! During distributed execution the paper replicates a factory onto each
//! machine; the factories act as peers, each trapping local instantiation
//! requests and forwarding remote ones. In the simulation all machines share
//! one process, so the peer pair is modeled as a table of per-machine
//! [`FactoryPeer`]s fronted by a single [`ComponentFactory`] — the routing
//! decision (which peer fulfills the request) is identical.

use crate::classifier::ClassificationId;
use coign_com::{Clsid, MachineId};
use parking_lot::Mutex;
use std::collections::HashMap;

/// Per-machine factory half: counts the instantiations it fulfilled.
#[derive(Debug, Default, Clone, Copy)]
pub struct FactoryPeer {
    /// Number of instantiation requests fulfilled on this machine.
    pub fulfilled: u64,
    /// Number of requests that arrived from a *different* machine (i.e.
    /// relocated instantiations).
    pub relocated_in: u64,
}

/// Routes component instantiation requests to machines according to the
/// chosen distribution.
#[derive(Debug)]
pub struct ComponentFactory {
    /// The live routing table. Behind a lock so the self-healing runtime
    /// can swap in a re-solved placement mid-run ([`ComponentFactory::swap_placement`]).
    placement: Mutex<HashMap<ClassificationId, MachineId>>,
    /// Static per-class pins consulted when a classification was never
    /// profiled — data files and databases live where they live no matter
    /// what the profile saw. Behind a lock so recovery can retarget pins
    /// off a dead machine ([`ComponentFactory::retarget_pins`]).
    class_pins: Mutex<HashMap<Clsid, MachineId>>,
    default_machine: MachineId,
    peers: Mutex<Vec<FactoryPeer>>,
}

impl ComponentFactory {
    /// Creates a factory for a `machine_count`-machine topology.
    ///
    /// Classifications absent from `placement` (e.g. new classifications
    /// never seen during profiling) fall back to the class pin if one
    /// exists, then to `default_machine`.
    pub fn new(
        placement: HashMap<ClassificationId, MachineId>,
        default_machine: MachineId,
        machine_count: usize,
    ) -> Self {
        Self::with_class_pins(placement, HashMap::new(), default_machine, machine_count)
    }

    /// Creates a factory with static per-class fallback pins.
    pub fn with_class_pins(
        placement: HashMap<ClassificationId, MachineId>,
        class_pins: HashMap<Clsid, MachineId>,
        default_machine: MachineId,
        machine_count: usize,
    ) -> Self {
        ComponentFactory {
            placement: Mutex::new(placement),
            class_pins: Mutex::new(class_pins),
            default_machine,
            peers: Mutex::new(vec![FactoryPeer::default(); machine_count]),
        }
    }

    /// Decides where an instantiation of `class` (an instance of `clsid`)
    /// should be fulfilled and records the routing in the per-machine peer
    /// statistics.
    ///
    /// `requesting_machine` is where the instantiation request originated
    /// (the creator's machine).
    pub fn place(
        &self,
        class: ClassificationId,
        clsid: Clsid,
        requesting_machine: MachineId,
    ) -> MachineId {
        let target = self.placement_for(class, clsid);
        let mut peers = self.peers.lock();
        if let Some(peer) = peers.get_mut(target.0 as usize) {
            peer.fulfilled += 1;
            if target != requesting_machine {
                peer.relocated_in += 1;
            }
        }
        target
    }

    /// The placement decision without statistics side effects.
    pub fn placement_for(&self, class: ClassificationId, clsid: Clsid) -> MachineId {
        if let Some(&machine) = self.placement.lock().get(&class) {
            return machine;
        }
        self.class_pins
            .lock()
            .get(&clsid)
            .copied()
            .unwrap_or(self.default_machine)
    }

    /// Snapshot of the per-machine peer statistics.
    pub fn peers(&self) -> Vec<FactoryPeer> {
        self.peers.lock().clone()
    }

    /// Number of classifications with an explicit placement.
    pub fn placement_len(&self) -> usize {
        self.placement.lock().len()
    }

    /// Copy of the current routing table.
    pub fn placement_snapshot(&self) -> HashMap<ClassificationId, MachineId> {
        self.placement.lock().clone()
    }

    /// Replaces the routing table with a re-solved placement (online
    /// re-partitioning). Returns how many classifications changed machine.
    pub fn swap_placement(&self, new: HashMap<ClassificationId, MachineId>) -> usize {
        let mut placement = self.placement.lock();
        let changed = new
            .iter()
            .filter(|(class, machine)| placement.get(class) != Some(machine))
            .count()
            + placement
                .keys()
                .filter(|class| !new.contains_key(class))
                .count();
        *placement = new;
        changed
    }

    /// Redirects every class pin targeting `from` (e.g. a machine just
    /// declared dead) to `to`. Returns how many pins moved.
    pub fn retarget_pins(&self, from: MachineId, to: MachineId) -> usize {
        let mut pins = self.class_pins.lock();
        let mut moved = 0;
        for machine in pins.values_mut() {
            if *machine == from {
                *machine = to;
                moved += 1;
            }
        }
        moved
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn any_class() -> Clsid {
        Clsid::from_name("AnyClass")
    }

    fn factory() -> ComponentFactory {
        let mut placement = HashMap::new();
        placement.insert(ClassificationId(1), MachineId::CLIENT);
        placement.insert(ClassificationId(2), MachineId::SERVER);
        ComponentFactory::new(placement, MachineId::CLIENT, 2)
    }

    #[test]
    fn routes_by_classification() {
        let f = factory();
        assert_eq!(
            f.place(ClassificationId(1), any_class(), MachineId::CLIENT),
            MachineId::CLIENT
        );
        assert_eq!(
            f.place(ClassificationId(2), any_class(), MachineId::CLIENT),
            MachineId::SERVER
        );
    }

    #[test]
    fn unknown_classifications_default() {
        let f = factory();
        assert_eq!(
            f.place(ClassificationId(99), any_class(), MachineId::SERVER),
            MachineId::CLIENT
        );
        assert_eq!(
            f.placement_for(ClassificationId(99), any_class()),
            MachineId::CLIENT
        );
    }

    #[test]
    fn class_pins_catch_unprofiled_storage() {
        let store = Clsid::from_name("DocStore");
        let mut pins = HashMap::new();
        pins.insert(store, MachineId::SERVER);
        let f = ComponentFactory::with_class_pins(HashMap::new(), pins, MachineId::CLIENT, 2);
        // Unprofiled classification of a pinned class → the pin wins.
        assert_eq!(
            f.place(ClassificationId(42), store, MachineId::CLIENT),
            MachineId::SERVER
        );
        // Unprofiled classification of an ordinary class → default.
        assert_eq!(
            f.place(ClassificationId(42), any_class(), MachineId::CLIENT),
            MachineId::CLIENT
        );
        // An explicit placement overrides the pin.
        let mut placement = HashMap::new();
        placement.insert(ClassificationId(7), MachineId::CLIENT);
        let mut pins = HashMap::new();
        pins.insert(store, MachineId::SERVER);
        let f = ComponentFactory::with_class_pins(placement, pins, MachineId::CLIENT, 2);
        assert_eq!(
            f.place(ClassificationId(7), store, MachineId::CLIENT),
            MachineId::CLIENT
        );
    }

    #[test]
    fn peer_statistics_track_relocation() {
        let f = factory();
        f.place(ClassificationId(2), any_class(), MachineId::CLIENT); // client → server: relocated
        f.place(ClassificationId(2), any_class(), MachineId::SERVER); // server-local
        f.place(ClassificationId(1), any_class(), MachineId::CLIENT); // client-local
        let peers = f.peers();
        assert_eq!(peers[MachineId::SERVER.0 as usize].fulfilled, 2);
        assert_eq!(peers[MachineId::SERVER.0 as usize].relocated_in, 1);
        assert_eq!(peers[MachineId::CLIENT.0 as usize].fulfilled, 1);
        assert_eq!(peers[MachineId::CLIENT.0 as usize].relocated_in, 0);
    }

    #[test]
    fn placement_len_reports_table_size() {
        assert_eq!(factory().placement_len(), 2);
    }

    #[test]
    fn swap_placement_reroutes_future_instantiations() {
        let f = factory();
        assert_eq!(
            f.placement_for(ClassificationId(2), any_class()),
            MachineId::SERVER
        );
        let mut new = f.placement_snapshot();
        new.insert(ClassificationId(2), MachineId::CLIENT);
        assert_eq!(f.swap_placement(new), 1);
        assert_eq!(
            f.placement_for(ClassificationId(2), any_class()),
            MachineId::CLIENT
        );
        // Swapping the identical table changes nothing.
        let same = f.placement_snapshot();
        assert_eq!(f.swap_placement(same), 0);
    }

    #[test]
    fn retarget_pins_moves_dead_machine_pins() {
        let store = Clsid::from_name("DocStore");
        let mut pins = HashMap::new();
        pins.insert(store, MachineId::SERVER);
        let f = ComponentFactory::with_class_pins(HashMap::new(), pins, MachineId::CLIENT, 2);
        assert_eq!(f.retarget_pins(MachineId::SERVER, MachineId::CLIENT), 1);
        assert_eq!(
            f.placement_for(ClassificationId(42), store),
            MachineId::CLIENT
        );
        assert_eq!(f.retarget_pins(MachineId::SERVER, MachineId::CLIENT), 0);
    }
}
