//! Usage-drift detection — the paper's "fully automatic" vision (§6).
//!
//! "The lightweight version of the runtime, which relocates component
//! instantiation requests to produce the chosen distribution, could count
//! messages between components with only slight additional overhead. Run
//! time message counts could be compared with related message counts from
//! the profiling scenarios to recognize changes in application usage."
//!
//! [`DriftMonitor`] implements exactly that: it snapshots the profiled
//! message distribution over classification pairs, counts messages during
//! distributed execution (counts only — no parameter walking, preserving
//! the lightweight runtime's low overhead), and reports how far the
//! observed distribution has drifted. When drift exceeds a threshold, Coign
//! "could automatically decide when usage differs significantly from
//! profiled scenarios and silently enable profiling to re-optimize the
//! distribution".

use crate::classifier::ClassificationId;
use crate::profile::IccProfile;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

/// Message-count distribution over classification pairs (order-normalized).
type PairCounts = HashMap<(ClassificationId, ClassificationId), u64>;

fn normalize_pair(
    a: ClassificationId,
    b: ClassificationId,
) -> (ClassificationId, ClassificationId) {
    if a <= b {
        (a, b)
    } else {
        (b, a)
    }
}

/// Counts runtime messages and compares them with the profiled baseline.
///
/// # Examples
///
/// ```
/// use coign::classifier::ClassificationId;
/// use coign::drift::DriftMonitor;
/// use coign::profile::IccProfile;
/// use coign_com::{Clsid, Iid};
///
/// let mut baseline = IccProfile::new();
/// let (a, b) = (ClassificationId(1), ClassificationId(2));
/// baseline.record_message(a, b, Iid::from_name("IX"), 0, 100);
///
/// let monitor = DriftMonitor::from_profile(&baseline);
/// monitor.record_call(a, b); // same usage as profiled
/// assert!(monitor.drift() < 1e-9);
/// monitor.reset();
/// monitor.record_call(ClassificationId(7), ClassificationId(8)); // brand new pair
/// assert!(monitor.should_reprofile(0.5));
/// ```
#[derive(Debug)]
pub struct DriftMonitor {
    baseline: PairCounts,
    baseline_total: u64,
    observed: Mutex<PairCounts>,
    /// Latch for [`DriftMonitor::poll_reprofile`]: a threshold crossing
    /// fires the re-profiling signal once, not on every subsequent call.
    tripped: AtomicBool,
    /// Lifetime count of latched fires ([`DriftMonitor::reset`] re-arms the
    /// latch but does not clear this).
    fires: AtomicU64,
}

impl DriftMonitor {
    /// Creates a monitor whose baseline is the profiled distribution.
    pub fn from_profile(profile: &IccProfile) -> Self {
        let mut baseline: PairCounts = HashMap::new();
        for (pair, stats) in profile.pair_traffic() {
            *baseline.entry(pair).or_insert(0) += stats.messages;
        }
        let baseline_total = baseline.values().sum();
        DriftMonitor {
            baseline,
            baseline_total,
            observed: Mutex::new(HashMap::new()),
            tripped: AtomicBool::new(false),
            fires: AtomicU64::new(0),
        }
    }

    /// Records one interface call (two messages) between classifications —
    /// invoked by the distribution informer; counts only, no inspection.
    pub fn record_call(&self, caller: ClassificationId, callee: ClassificationId) {
        let mut observed = self.observed.lock();
        *observed.entry(normalize_pair(caller, callee)).or_insert(0) += 2;
    }

    /// Messages observed so far.
    pub fn observed_messages(&self) -> u64 {
        self.observed.lock().values().sum()
    }

    /// Resets the observation window (e.g. per execution) and re-arms the
    /// [`DriftMonitor::poll_reprofile`] latch.
    pub fn reset(&self) {
        self.observed.lock().clear();
        self.tripped.store(false, Ordering::SeqCst);
    }

    /// Drift between the observed and profiled message distributions:
    /// half the L1 distance between the two normalized distributions
    /// (total-variation distance), in `[0, 1]`.
    ///
    /// 0.0 = the application communicates exactly as profiled;
    /// 1.0 = completely disjoint communication.
    pub fn drift(&self) -> f64 {
        let observed = self.observed.lock();
        let observed_total: u64 = observed.values().sum();
        if observed_total == 0 || self.baseline_total == 0 {
            // An empty observation window is "no evidence yet", not "fully
            // drifted" — returning 1.0 there would re-fire the re-profiling
            // latch the moment a recovery resets the window, double-counting
            // a single workload shift. Observed traffic against an empty
            // baseline is still full drift.
            return if observed_total == 0 { 0.0 } else { 1.0 };
        }
        let mut l1 = 0.0;
        let mut keys: std::collections::HashSet<_> = self.baseline.keys().collect();
        keys.extend(observed.keys());
        for key in keys {
            let p = *self.baseline.get(key).unwrap_or(&0) as f64 / self.baseline_total as f64;
            let q = *observed.get(key).unwrap_or(&0) as f64 / observed_total as f64;
            l1 += (p - q).abs();
        }
        l1 / 2.0
    }

    /// True when the observed usage has drifted beyond `threshold` —
    /// the signal to silently re-enable profiling.
    pub fn should_reprofile(&self, threshold: f64) -> bool {
        self.drift() > threshold
    }

    /// Latched threshold check: returns `true` exactly once when drift
    /// first exceeds `threshold`, then `false` until [`DriftMonitor::reset`]
    /// re-arms the latch — so the "silently enable profiling" transition
    /// fires a single re-profiling pass, not one per subsequent call.
    pub fn poll_reprofile(&self, threshold: f64) -> bool {
        if !self.should_reprofile(threshold) {
            return false;
        }
        let fired = !self.tripped.swap(true, Ordering::SeqCst);
        if fired {
            self.fires.fetch_add(1, Ordering::SeqCst);
        }
        fired
    }

    /// Lifetime number of latched re-profiling fires.
    pub fn fire_count(&self) -> u64 {
        self.fires.load(Ordering::SeqCst)
    }

    /// Adds this monitor's fire count to a metrics registry.
    pub fn record_metrics(&self, registry: &coign_obs::Registry) {
        registry
            .counter("coign_drift_fires_total")
            .add(self.fire_count());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use coign_com::{Clsid, Iid};

    fn c(n: u32) -> ClassificationId {
        ClassificationId(n)
    }

    fn baseline_profile() -> IccProfile {
        let iid = Iid::from_name("IX");
        let mut p = IccProfile::new();
        p.record_instance(c(1), Clsid::from_name("A"));
        for _ in 0..30 {
            p.record_message(c(1), c(2), iid, 0, 100);
        }
        for _ in 0..10 {
            p.record_message(c(2), c(3), iid, 0, 100);
        }
        p
    }

    #[test]
    fn matching_usage_has_zero_drift() {
        let monitor = DriftMonitor::from_profile(&baseline_profile());
        // Replay the same proportions: 30 pair(1,2) messages → 15 calls.
        for _ in 0..15 {
            monitor.record_call(c(1), c(2));
        }
        for _ in 0..5 {
            monitor.record_call(c(3), c(2)); // direction is normalized away
        }
        assert!(monitor.drift() < 1e-9, "drift {}", monitor.drift());
        assert!(!monitor.should_reprofile(0.1));
    }

    #[test]
    fn shifted_usage_is_detected() {
        let monitor = DriftMonitor::from_profile(&baseline_profile());
        // Usage flipped: all traffic now flows on a pair never profiled.
        for _ in 0..20 {
            monitor.record_call(c(7), c(8));
        }
        assert!(monitor.drift() > 0.9, "drift {}", monitor.drift());
        assert!(monitor.should_reprofile(0.25));
    }

    #[test]
    fn partial_shift_is_proportional() {
        let monitor = DriftMonitor::from_profile(&baseline_profile());
        // Half the observed traffic matches the profile's dominant pair,
        // half is new.
        for _ in 0..10 {
            monitor.record_call(c(1), c(2));
        }
        for _ in 0..10 {
            monitor.record_call(c(7), c(8));
        }
        let drift = monitor.drift();
        assert!((0.3..0.8).contains(&drift), "drift {drift}");
    }

    #[test]
    fn empty_observation_means_no_drift_yet() {
        let monitor = DriftMonitor::from_profile(&baseline_profile());
        // Nothing observed yet — don't trigger re-profiling on startup.
        assert!(monitor.drift() <= 1.0);
        assert_eq!(monitor.observed_messages(), 0);
    }

    #[test]
    fn reset_clears_the_window() {
        let monitor = DriftMonitor::from_profile(&baseline_profile());
        monitor.record_call(c(9), c(9));
        assert!(monitor.observed_messages() > 0);
        monitor.reset();
        assert_eq!(monitor.observed_messages(), 0);
    }

    #[test]
    fn workload_shift_trips_detection_exactly_once() {
        let monitor = DriftMonitor::from_profile(&baseline_profile());
        // Usage matching the profile: the latch never fires.
        for _ in 0..15 {
            monitor.record_call(c(1), c(2));
        }
        for _ in 0..5 {
            monitor.record_call(c(2), c(3));
        }
        assert!(!monitor.poll_reprofile(0.25));
        // A synthetic workload shift: traffic floods an unprofiled pair.
        for _ in 0..200 {
            monitor.record_call(c(7), c(8));
        }
        let fired: Vec<bool> = (0..10).map(|_| monitor.poll_reprofile(0.25)).collect();
        assert!(fired[0], "first poll after the shift must fire");
        assert_eq!(
            fired.iter().filter(|&&b| b).count(),
            1,
            "the latch must fire exactly once"
        );
        // The un-latched query still reports the drifted state.
        assert!(monitor.should_reprofile(0.25));
        // Reset re-arms the latch for the next observation window.
        monitor.reset();
        for _ in 0..20 {
            monitor.record_call(c(7), c(8));
        }
        assert!(monitor.poll_reprofile(0.25));
    }

    #[test]
    fn recovery_reset_does_not_double_count_one_shift() {
        let monitor = DriftMonitor::from_profile(&baseline_profile());
        // A workload shift fires the latch once.
        for _ in 0..200 {
            monitor.record_call(c(7), c(8));
        }
        assert!(monitor.poll_reprofile(0.25));
        assert_eq!(monitor.fire_count(), 1);
        // Recovery resets the window, re-arming the latch. The window is
        // empty now: polling here must NOT fire — that would count the
        // same shift twice.
        monitor.reset();
        assert!(!monitor.poll_reprofile(0.25));
        assert_eq!(monitor.fire_count(), 1);
        // Post-recovery traffic matching the baseline keeps it quiet...
        for _ in 0..15 {
            monitor.record_call(c(1), c(2));
        }
        for _ in 0..5 {
            monitor.record_call(c(2), c(3));
        }
        assert!(!monitor.poll_reprofile(0.25));
        assert_eq!(monitor.fire_count(), 1);
        // ...and only a genuine second shift fires again.
        for _ in 0..500 {
            monitor.record_call(c(7), c(8));
        }
        assert!(monitor.poll_reprofile(0.25));
        assert_eq!(monitor.fire_count(), 2);
    }

    #[test]
    fn drift_is_bounded() {
        let monitor = DriftMonitor::from_profile(&IccProfile::new());
        monitor.record_call(c(1), c(2));
        let d = monitor.drift();
        assert!((0.0..=1.0).contains(&d));
    }
}
