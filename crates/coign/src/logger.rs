//! Information loggers (§3.3 of the paper).
//!
//! Coign components pass application events — instantiations, destructions,
//! and interface calls — to the information logger, which is free to process
//! them as needed. Three loggers are provided, mirroring the paper:
//!
//! * [`ProfilingLogger`] summarizes ICC data into in-memory structures with
//!   exponential size buckets (written out for post-profiling analysis).
//! * [`EventLogger`] records a detailed trace of all component-related
//!   events (the paper notes a colleague used these to drive simulations).
//! * [`NullLogger`] ignores everything (used during distributed execution).

use crate::classifier::ClassificationId;
use crate::profile::IccProfile;
use coign_com::{Clsid, Guid, Iid, InstanceId};
use coign_obs::json::Json;
use coign_obs::TraceArg;
use parking_lot::Mutex;
use std::collections::HashMap;

/// One interface call as seen by the instrumentation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CallRecord {
    /// Calling instance (`None` when the call came from the application
    /// root / scenario driver).
    pub caller: Option<InstanceId>,
    /// Classification of the caller ([`ClassificationId::ROOT`] at top
    /// level).
    pub caller_class: ClassificationId,
    /// Callee instance.
    pub callee: InstanceId,
    /// Classification of the callee.
    pub callee_class: ClassificationId,
    /// Interface called.
    pub iid: Iid,
    /// Method index.
    pub method: u32,
    /// Deep-copy size of the request message, bytes.
    pub req_bytes: u64,
    /// Deep-copy size of the reply message, bytes.
    pub reply_bytes: u64,
    /// False if the interface (or this particular message) cannot cross a
    /// machine boundary.
    pub remotable: bool,
}

impl CallRecord {
    /// This record as typed tracer arguments. The tracer's `icc_call`
    /// instant events and [`LogEvent::to_json`] both render from this one
    /// list, so the two serializations cannot drift apart.
    pub fn trace_args(&self) -> Vec<(&'static str, TraceArg)> {
        vec![
            (
                "caller",
                match self.caller {
                    Some(id) => TraceArg::U64(id.0),
                    None => TraceArg::Null,
                },
            ),
            (
                "caller_class",
                TraceArg::U64(u64::from(self.caller_class.0)),
            ),
            ("callee", TraceArg::U64(self.callee.0)),
            (
                "callee_class",
                TraceArg::U64(u64::from(self.callee_class.0)),
            ),
            ("iid", TraceArg::Guid((self.iid.0).0)),
            ("method", TraceArg::U64(u64::from(self.method))),
            ("req_bytes", TraceArg::U64(self.req_bytes)),
            ("reply_bytes", TraceArg::U64(self.reply_bytes)),
            ("remotable", TraceArg::Bool(self.remotable)),
        ]
    }
}

/// Receives application events from the Coign runtime.
///
/// The event vocabulary is the paper's §3.3 list: "component
/// instantiations, component destructions, interface instantiations,
/// interface destructions, and interface calls". (Interface destructions
/// coincide with their owner's release in the simulation, so the owner's
/// `log_instance_released` stands for both.)
pub trait InfoLogger: Send + Sync {
    /// An instance was created and classified.
    fn log_instance_created(&self, _id: InstanceId, _clsid: Clsid, _class: ClassificationId) {}
    /// An instance was released.
    fn log_instance_released(&self, _id: InstanceId) {}
    /// An interface was instantiated (a pointer minted and wrapped).
    fn log_interface_created(&self, _owner: InstanceId, _iid: Iid) {}
    /// An interface call completed.
    fn log_call(&self, _record: &CallRecord) {}
}

/// Ignores all events — the logger used during distributed execution.
#[derive(Debug, Default)]
pub struct NullLogger;

impl InfoLogger for NullLogger {}

/// A fully detailed event trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LogEvent {
    /// Component instantiation.
    InstanceCreated {
        /// New instance.
        id: InstanceId,
        /// Its class.
        clsid: Clsid,
        /// Its classification.
        class: ClassificationId,
    },
    /// Component destruction.
    InstanceReleased {
        /// Released instance.
        id: InstanceId,
    },
    /// Interface instantiation.
    InterfaceCreated {
        /// Owning instance.
        owner: InstanceId,
        /// Interface type.
        iid: Iid,
    },
    /// Interface call.
    Call(CallRecord),
}

/// Renders a GUID as a quoted registry-format JSON string.
fn guid_json(guid: Guid) -> String {
    let mut out = String::new();
    TraceArg::Guid(guid.0).render_json(&mut out);
    out
}

/// Parses a registry-format GUID (`{XXXXXXXX-XXXX-...}`) back to a value.
fn parse_guid(text: &str) -> Result<Guid, String> {
    let hex: String = text.chars().filter(char::is_ascii_hexdigit).collect();
    if hex.len() != 32 {
        return Err(format!("'{text}' is not a 128-bit GUID"));
    }
    u128::from_str_radix(&hex, 16)
        .map(Guid)
        .map_err(|e| format!("bad GUID '{text}': {e}"))
}

fn field_u64(doc: &Json, key: &str) -> Result<u64, String> {
    doc.get(key)
        .and_then(Json::as_u64)
        .ok_or_else(|| format!("missing numeric field '{key}'"))
}

fn field_guid(doc: &Json, key: &str) -> Result<Guid, String> {
    parse_guid(
        doc.get(key)
            .and_then(Json::as_str)
            .ok_or_else(|| format!("missing GUID field '{key}'"))?,
    )
}

impl LogEvent {
    /// Renders this event as one line of JSON. [`LogEvent::Call`] lines
    /// reuse [`CallRecord::trace_args`], the same list the tracer attaches
    /// to its `icc_call` instant events.
    pub fn to_json(&self) -> String {
        match self {
            LogEvent::InstanceCreated { id, clsid, class } => format!(
                "{{\"event\":\"instance_created\",\"id\":{},\"clsid\":{},\"class\":{}}}",
                id.0,
                guid_json(clsid.0),
                class.0
            ),
            LogEvent::InstanceReleased { id } => {
                format!("{{\"event\":\"instance_released\",\"id\":{}}}", id.0)
            }
            LogEvent::InterfaceCreated { owner, iid } => format!(
                "{{\"event\":\"interface_created\",\"owner\":{},\"iid\":{}}}",
                owner.0,
                guid_json(iid.0)
            ),
            LogEvent::Call(record) => {
                let mut out = String::from("{\"event\":\"call\"");
                for (key, arg) in record.trace_args() {
                    out.push_str(",\"");
                    out.push_str(key);
                    out.push_str("\":");
                    arg.render_json(&mut out);
                }
                out.push('}');
                out
            }
        }
    }

    /// Parses one line produced by [`LogEvent::to_json`].
    pub fn parse_json(line: &str) -> Result<LogEvent, String> {
        let doc = Json::parse(line)?;
        match doc.get("event").and_then(Json::as_str) {
            Some("instance_created") => Ok(LogEvent::InstanceCreated {
                id: InstanceId(field_u64(&doc, "id")?),
                clsid: Clsid(field_guid(&doc, "clsid")?),
                class: ClassificationId(field_u64(&doc, "class")? as u32),
            }),
            Some("instance_released") => Ok(LogEvent::InstanceReleased {
                id: InstanceId(field_u64(&doc, "id")?),
            }),
            Some("interface_created") => Ok(LogEvent::InterfaceCreated {
                owner: InstanceId(field_u64(&doc, "owner")?),
                iid: Iid(field_guid(&doc, "iid")?),
            }),
            Some("call") => Ok(LogEvent::Call(CallRecord {
                caller: match doc.get("caller") {
                    Some(Json::Null) => None,
                    Some(value) => Some(InstanceId(
                        value.as_u64().ok_or("caller is neither null nor u64")?,
                    )),
                    None => return Err("missing field 'caller'".to_string()),
                },
                caller_class: ClassificationId(field_u64(&doc, "caller_class")? as u32),
                callee: InstanceId(field_u64(&doc, "callee")?),
                callee_class: ClassificationId(field_u64(&doc, "callee_class")? as u32),
                iid: Iid(field_guid(&doc, "iid")?),
                method: field_u64(&doc, "method")? as u32,
                req_bytes: field_u64(&doc, "req_bytes")?,
                reply_bytes: field_u64(&doc, "reply_bytes")?,
                remotable: doc
                    .get("remotable")
                    .and_then(Json::as_bool)
                    .ok_or("missing boolean field 'remotable'")?,
            })),
            other => Err(format!("unknown event kind {other:?}")),
        }
    }
}

/// Records every event in order (detailed traces for offline simulation).
#[derive(Debug, Default)]
pub struct EventLogger {
    events: Mutex<Vec<LogEvent>>,
}

impl EventLogger {
    /// Creates an empty event logger.
    pub fn new() -> Self {
        EventLogger::default()
    }

    /// Takes the recorded events, leaving the log empty.
    pub fn take_events(&self) -> Vec<LogEvent> {
        std::mem::take(&mut self.events.lock())
    }

    /// Number of events recorded so far.
    pub fn len(&self) -> usize {
        self.events.lock().len()
    }

    /// True if no events have been recorded.
    pub fn is_empty(&self) -> bool {
        self.events.lock().is_empty()
    }

    /// Exports the recorded events as line-delimited JSON (one
    /// [`LogEvent::to_json`] line per event) without clearing the log.
    pub fn export_jsonl(&self) -> String {
        let events = self.events.lock();
        let mut out = String::new();
        for event in events.iter() {
            out.push_str(&event.to_json());
            out.push('\n');
        }
        out
    }

    /// Parses a line-delimited JSON export back into events. Blank lines
    /// are ignored; any malformed line fails the whole import.
    pub fn import_jsonl(text: &str) -> Result<Vec<LogEvent>, String> {
        text.lines()
            .enumerate()
            .filter(|(_, line)| !line.trim().is_empty())
            .map(|(number, line)| {
                LogEvent::parse_json(line).map_err(|e| format!("line {}: {e}", number + 1))
            })
            .collect()
    }
}

impl InfoLogger for EventLogger {
    fn log_instance_created(&self, id: InstanceId, clsid: Clsid, class: ClassificationId) {
        self.events
            .lock()
            .push(LogEvent::InstanceCreated { id, clsid, class });
    }

    fn log_instance_released(&self, id: InstanceId) {
        self.events.lock().push(LogEvent::InstanceReleased { id });
    }

    fn log_interface_created(&self, owner: InstanceId, iid: Iid) {
        self.events
            .lock()
            .push(LogEvent::InterfaceCreated { owner, iid });
    }

    fn log_call(&self, record: &CallRecord) {
        self.events.lock().push(LogEvent::Call(*record));
    }
}

/// Instance-pair traffic kept for classifier evaluation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PairTraffic {
    /// Messages exchanged between the pair (both directions).
    pub messages: u64,
    /// Bytes exchanged between the pair (both directions).
    pub bytes: u64,
}

/// Summarizes ICC data online — the profiling logger.
///
/// Two views are maintained: the durable, summarized [`IccProfile`]
/// (classification-level, written to the configuration record) and a
/// per-execution instance-pair table used to build the *instance
/// communication vectors* of §4.2.
#[derive(Debug, Default)]
pub struct ProfilingLogger {
    profile: Mutex<IccProfile>,
    pairs: Mutex<HashMap<(InstanceId, InstanceId), PairTraffic>>,
    instance_class: Mutex<HashMap<InstanceId, ClassificationId>>,
}

/// Sentinel instance id representing the application root in pair keys
/// (instance ids allocated by the runtime start at 1).
pub const ROOT_INSTANCE: InstanceId = InstanceId(0);

impl ProfilingLogger {
    /// Creates an empty profiling logger.
    pub fn new() -> Self {
        ProfilingLogger::default()
    }

    /// Snapshot of the summarized profile.
    pub fn snapshot_profile(&self) -> IccProfile {
        self.profile.lock().clone()
    }

    /// Takes the summarized profile, resetting the logger.
    pub fn take_profile(&self) -> IccProfile {
        let mut profile = self.profile.lock();
        let out = profile.clone();
        *profile = IccProfile::new();
        self.pairs.lock().clear();
        self.instance_class.lock().clear();
        out
    }

    /// Labels the profile with the scenario that produced it.
    pub fn set_scenario(&self, name: &str) {
        self.profile.lock().scenarios = vec![name.to_string()];
    }

    /// Per-execution instance-pair traffic (order-normalized keys).
    pub fn instance_pairs(&self) -> HashMap<(InstanceId, InstanceId), PairTraffic> {
        self.pairs.lock().clone()
    }

    /// The classification observed for each instance this execution.
    pub fn instance_classes(&self) -> HashMap<InstanceId, ClassificationId> {
        self.instance_class.lock().clone()
    }

    /// Clears per-execution state (pairs, bindings) while keeping the
    /// accumulated profile.
    pub fn begin_execution(&self) {
        self.pairs.lock().clear();
        self.instance_class.lock().clear();
    }
}

impl InfoLogger for ProfilingLogger {
    fn log_instance_created(&self, id: InstanceId, clsid: Clsid, class: ClassificationId) {
        self.profile.lock().record_instance(class, clsid);
        self.instance_class.lock().insert(id, class);
    }

    fn log_call(&self, r: &CallRecord) {
        let mut profile = self.profile.lock();
        if r.remotable {
            // Request message travels caller → callee, reply travels back.
            profile.record_message(r.caller_class, r.callee_class, r.iid, r.method, r.req_bytes);
            profile.record_message(
                r.callee_class,
                r.caller_class,
                r.iid,
                r.method,
                r.reply_bytes,
            );
        } else {
            profile.record_non_remotable(r.caller_class, r.callee_class);
        }
        drop(profile);

        let caller = r.caller.unwrap_or(ROOT_INSTANCE);
        let key = if caller <= r.callee {
            (caller, r.callee)
        } else {
            (r.callee, caller)
        };
        let mut pairs = self.pairs.lock();
        let entry = pairs.entry(key).or_default();
        entry.messages += 2;
        entry.bytes += r.req_bytes + r.reply_bytes;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(caller: u64, callee: u64, req: u64, reply: u64, remotable: bool) -> CallRecord {
        CallRecord {
            caller: if caller == 0 {
                None
            } else {
                Some(InstanceId(caller))
            },
            caller_class: ClassificationId(caller as u32),
            callee: InstanceId(callee),
            callee_class: ClassificationId(callee as u32),
            iid: Iid::from_name("IX"),
            method: 0,
            req_bytes: req,
            reply_bytes: reply,
            remotable,
        }
    }

    #[test]
    fn null_logger_ignores_everything() {
        let logger = NullLogger;
        logger.log_call(&record(1, 2, 10, 20, true));
        logger.log_instance_created(InstanceId(1), Clsid::from_name("A"), ClassificationId(1));
        // Nothing observable — the point is that it does not panic or store.
    }

    #[test]
    fn event_logger_keeps_order() {
        let logger = EventLogger::new();
        logger.log_instance_created(InstanceId(1), Clsid::from_name("A"), ClassificationId(1));
        logger.log_call(&record(0, 1, 5, 7, true));
        logger.log_instance_released(InstanceId(1));
        assert_eq!(logger.len(), 3);
        let events = logger.take_events();
        assert!(matches!(events[0], LogEvent::InstanceCreated { .. }));
        assert!(matches!(events[1], LogEvent::Call(_)));
        assert!(matches!(events[2], LogEvent::InstanceReleased { .. }));
        assert!(logger.is_empty());
    }

    #[test]
    fn profiling_logger_summarizes_both_directions() {
        let logger = ProfilingLogger::new();
        logger.log_call(&record(1, 2, 100, 300, true));
        let profile = logger.snapshot_profile();
        assert_eq!(profile.total_messages(), 2);
        assert_eq!(profile.total_bytes(), 400);
    }

    #[test]
    fn non_remotable_calls_record_constraint_not_traffic() {
        let logger = ProfilingLogger::new();
        logger.log_call(&record(1, 2, 0, 0, false));
        let profile = logger.snapshot_profile();
        assert_eq!(profile.total_messages(), 0);
        assert_eq!(profile.non_remotable.len(), 1);
    }

    #[test]
    fn root_calls_use_root_classification() {
        let logger = ProfilingLogger::new();
        let mut r = record(0, 2, 10, 10, true);
        r.caller_class = ClassificationId::ROOT;
        logger.log_call(&r);
        let profile = logger.snapshot_profile();
        assert!(profile
            .edges
            .keys()
            .any(|k| k.from == ClassificationId::ROOT));
        let pairs = logger.instance_pairs();
        assert!(pairs.contains_key(&(ROOT_INSTANCE, InstanceId(2))));
    }

    #[test]
    fn instance_pairs_normalize_direction() {
        let logger = ProfilingLogger::new();
        logger.log_call(&record(1, 2, 10, 0, true));
        logger.log_call(&record(2, 1, 30, 0, true));
        let pairs = logger.instance_pairs();
        assert_eq!(pairs.len(), 1);
        let traffic = pairs[&(InstanceId(1), InstanceId(2))];
        assert_eq!(traffic.messages, 4);
        assert_eq!(traffic.bytes, 40);
    }

    #[test]
    fn take_profile_resets() {
        let logger = ProfilingLogger::new();
        logger.set_scenario("test");
        logger.log_call(&record(1, 2, 10, 10, true));
        let p = logger.take_profile();
        assert_eq!(p.scenarios, vec!["test".to_string()]);
        assert_eq!(p.total_messages(), 2);
        assert_eq!(logger.snapshot_profile().total_messages(), 0);
        assert!(logger.instance_pairs().is_empty());
    }

    #[test]
    fn begin_execution_keeps_profile_but_clears_pairs() {
        let logger = ProfilingLogger::new();
        logger.log_call(&record(1, 2, 10, 10, true));
        logger.begin_execution();
        assert_eq!(logger.snapshot_profile().total_messages(), 2);
        assert!(logger.instance_pairs().is_empty());
    }

    #[test]
    fn jsonl_export_round_trips() {
        let logger = EventLogger::new();
        logger.log_instance_created(InstanceId(1), Clsid::from_name("A"), ClassificationId(3));
        logger.log_interface_created(InstanceId(1), Iid::from_name("IX"));
        logger.log_call(&record(0, 1, 5, 7, true)); // root caller → JSON null
        logger.log_call(&record(1, 2, 10, 20, false));
        logger.log_instance_released(InstanceId(1));

        let text = logger.export_jsonl();
        assert_eq!(text.lines().count(), 5);
        assert!(text.contains("\"caller\":null"));

        let parsed = EventLogger::import_jsonl(&text).expect("import succeeds");
        assert_eq!(parsed, logger.take_events());
    }

    #[test]
    fn jsonl_import_rejects_malformed_lines() {
        let err = EventLogger::import_jsonl("{\"event\":\"call\"}\n").unwrap_err();
        assert!(err.starts_with("line 1:"), "unexpected error: {err}");
        assert!(EventLogger::import_jsonl("{\"event\":\"martian\"}").is_err());
        assert!(EventLogger::import_jsonl("not json at all").is_err());
        // Blank lines are fine.
        assert_eq!(EventLogger::import_jsonl("\n\n").unwrap(), vec![]);
    }

    #[test]
    fn call_json_reuses_tracer_argument_vocabulary() {
        // The Call line must contain exactly the trace_args keys, so the
        // tracer's icc_call instants and the JSONL export stay one format.
        let record = record(1, 2, 10, 20, true);
        let line = LogEvent::Call(record).to_json();
        for (key, _) in record.trace_args() {
            assert!(
                line.contains(&format!("\"{key}\":")),
                "missing {key} in {line}"
            );
        }
    }

    #[test]
    fn instance_classes_are_tracked() {
        let logger = ProfilingLogger::new();
        logger.log_instance_created(InstanceId(4), Clsid::from_name("A"), ClassificationId(9));
        assert_eq!(
            logger.instance_classes()[&InstanceId(4)],
            ClassificationId(9)
        );
        let profile = logger.snapshot_profile();
        assert_eq!(profile.instances[&ClassificationId(9)], 1);
    }
}
