//! Instance classifiers (§3.4 of the paper).
//!
//! Automatic distributed partitioning depends on predicting the
//! communication behavior of a component instance *before it is created* —
//! the factory must decide where to instantiate it. The instance classifier
//! groups instances with similar instantiation histories, on the theory that
//! two instances created under similar circumstances will communicate
//! similarly.
//!
//! Seven classifiers are implemented, exactly as catalogued in the paper's
//! Figure 3:
//!
//! | Classifier | Descriptor |
//! |---|---|
//! | Incremental | order of instantiation within the execution (straw man) |
//! | Procedure called-by (PCB) | class + stack of `Class::method` procedures |
//! | Static type (ST) | class only |
//! | Static-type called-by (STCB) | class + stack of classes |
//! | Internal-function called-by (IFCB) | class + stack of (instance-classification, method) pairs |
//! | Entry-point called-by (EPCB) | class + (classification, method) pairs used to *enter* each instance |
//! | Instantiated-by (IB) | class + parent classification (≡ IFCB at depth 1) |
//!
//! The call-chain classifiers take a tunable stack-walk depth (the paper's
//! Table 3 sweeps it). Descriptors for IFCB/EPCB/IB are *recursive*: stack
//! frames are identified by the classification previously assigned to the
//! executing instance, not by its volatile instance id — this is what makes
//! classifications stable across executions.

use coign_com::codec::{Decoder, Encoder};
use coign_com::{Clsid, ComError, ComResult, ComRuntime, Frame, Iid, InstanceId};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::fmt;

/// Identifies a group of component instances with equivalent instantiation
/// context.
///
/// Id `0` is reserved for the application root (the scenario driver / user
/// shell), which is not a component instance but appears as a communication
/// peer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ClassificationId(pub u32);

impl ClassificationId {
    /// The application root: calls arriving from outside any component.
    pub const ROOT: ClassificationId = ClassificationId(0);
}

impl fmt::Display for ClassificationId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if *self == ClassificationId::ROOT {
            write!(f, "c:root")
        } else {
            write!(f, "c:{}", self.0)
        }
    }
}

/// Which of the seven classification policies to apply.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ClassifierKind {
    /// Order of instantiation — the paper's straw man.
    Incremental,
    /// Procedure called-by.
    Pcb,
    /// Static type.
    St,
    /// Static-type called-by.
    Stcb,
    /// Internal-function called-by — Coign's default.
    Ifcb,
    /// Entry-point called-by.
    Epcb,
    /// Instantiated-by.
    Ib,
}

impl ClassifierKind {
    /// All classifiers, in the paper's Table 2 order.
    pub const ALL: [ClassifierKind; 7] = [
        ClassifierKind::Incremental,
        ClassifierKind::Pcb,
        ClassifierKind::St,
        ClassifierKind::Stcb,
        ClassifierKind::Ifcb,
        ClassifierKind::Epcb,
        ClassifierKind::Ib,
    ];

    /// Display name matching the paper's tables.
    pub fn name(self) -> &'static str {
        match self {
            ClassifierKind::Incremental => "Incremental",
            ClassifierKind::Pcb => "Procedure Called-By",
            ClassifierKind::St => "Static-Type",
            ClassifierKind::Stcb => "Static-Type Called-By",
            ClassifierKind::Ifcb => "Internal-Func. Called-By",
            ClassifierKind::Epcb => "Entry-Point Called-By",
            ClassifierKind::Ib => "Instantiated-By",
        }
    }

    fn tag(self) -> u8 {
        match self {
            ClassifierKind::Incremental => 0,
            ClassifierKind::Pcb => 1,
            ClassifierKind::St => 2,
            ClassifierKind::Stcb => 3,
            ClassifierKind::Ifcb => 4,
            ClassifierKind::Epcb => 5,
            ClassifierKind::Ib => 6,
        }
    }

    fn from_tag(tag: u8) -> ComResult<Self> {
        Ok(match tag {
            0 => ClassifierKind::Incremental,
            1 => ClassifierKind::Pcb,
            2 => ClassifierKind::St,
            3 => ClassifierKind::Stcb,
            4 => ClassifierKind::Ifcb,
            5 => ClassifierKind::Epcb,
            6 => ClassifierKind::Ib,
            other => return Err(ComError::Codec(format!("unknown classifier tag {other}"))),
        })
    }
}

/// One call-chain entry in a descriptor: the procedure (interface + method)
/// plus, for instance-sensitive classifiers, the executing instance's own
/// classification.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ChainEntry {
    /// Classification of the executing instance (`ROOT` when the classifier
    /// does not differentiate instances).
    pub who: ClassificationId,
    /// Class of the executing instance.
    pub clsid: Clsid,
    /// Interface of the frame.
    pub iid: Iid,
    /// Method index of the frame.
    pub method: u32,
}

/// A classification descriptor — the identity key of an instance group.
///
/// Compare with the paper's Figure 3: each classifier forms its descriptor
/// from the component's static type plus a different projection of the
/// instantiation call stack.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Descriptor {
    /// `[n]` — the n-th instantiation of the execution.
    Incremental(u64),
    /// `[D]` — static type only.
    St(Clsid),
    /// `[D, C::Z, B::Y, …]` — procedures, ignoring instance identity.
    Pcb(Clsid, Vec<(Clsid, Iid, u32)>),
    /// `[D, C, B, B, A]` — classes of stack instances.
    Stcb(Clsid, Vec<Clsid>),
    /// `[D, (c,Z), (b2,Y), …]` — (classification, method) pairs, full stack.
    Ifcb(Clsid, Vec<ChainEntry>),
    /// `[D, (c,Z), (b2,Y), (b1,X), (a,V)]` — entry frames per instance run.
    Epcb(Clsid, Vec<ChainEntry>),
    /// `[D, c]` — parent classification only.
    Ib(Clsid, Option<ClassificationId>),
}

impl Descriptor {
    /// Human-readable form used by the Figure 3 reproduction.
    pub fn render(&self, class_names: &dyn Fn(Clsid) -> String) -> String {
        match self {
            Descriptor::Incremental(n) => format!("[{n}]"),
            Descriptor::St(c) => format!("[{}]", class_names(*c)),
            Descriptor::Pcb(c, chain) => {
                let mut parts = vec![class_names(*c)];
                for (clsid, _iid, m) in chain {
                    parts.push(format!("{}::m{}", class_names(*clsid), m));
                }
                format!("[{}]", parts.join(", "))
            }
            Descriptor::Stcb(c, chain) => {
                let mut parts = vec![class_names(*c)];
                parts.extend(chain.iter().map(|cl| class_names(*cl)));
                format!("[{}]", parts.join(", "))
            }
            Descriptor::Ifcb(c, chain) | Descriptor::Epcb(c, chain) => {
                let mut parts = vec![class_names(*c)];
                for e in chain {
                    parts.push(format!("[{},m{}]", e.who, e.method));
                }
                format!("[{}]", parts.join(", "))
            }
            Descriptor::Ib(c, parent) => match parent {
                Some(p) => format!("[{}, {}]", class_names(*c), p),
                None => format!("[{}, root]", class_names(*c)),
            },
        }
    }
}

/// Classifier statistics exposed for evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ClassifierStats {
    /// Total distinct classifications interned.
    pub classifications: u32,
    /// Instances classified so far.
    pub instances: u64,
}

struct ClassifierState {
    interned: HashMap<Descriptor, ClassificationId>,
    descriptors: Vec<Descriptor>,
    instance_class: HashMap<InstanceId, ClassificationId>,
    /// Per-execution instantiation counter (incremental classifier).
    counter: u64,
    instances_seen: u64,
}

/// The instance classifier: identifies component instances with similar
/// communication profiles across separate executions of an application.
pub struct InstanceClassifier {
    kind: ClassifierKind,
    /// Maximum stack entries examined (`None` = walk the complete stack).
    depth: Option<usize>,
    state: Mutex<ClassifierState>,
}

impl InstanceClassifier {
    /// Creates a classifier with a full stack walk.
    pub fn new(kind: ClassifierKind) -> Self {
        Self::with_depth(kind, None)
    }

    /// Creates a classifier walking at most `depth` stack entries
    /// (innermost first). `None` walks the complete stack.
    pub fn with_depth(kind: ClassifierKind, depth: Option<usize>) -> Self {
        InstanceClassifier {
            kind,
            depth,
            state: Mutex::new(ClassifierState {
                interned: HashMap::new(),
                descriptors: Vec::new(),
                instance_class: HashMap::new(),
                counter: 0,
                instances_seen: 0,
            }),
        }
    }

    /// The classification policy in use.
    pub fn kind(&self) -> ClassifierKind {
        self.kind
    }

    /// The configured stack-walk depth.
    pub fn depth(&self) -> Option<usize> {
        self.depth
    }

    /// Marks the start of a new application execution.
    ///
    /// Resets per-execution state (the incremental classifier's
    /// instantiation counter and the instance→classification binding), while
    /// preserving the interned descriptor table so classifications remain
    /// comparable across executions.
    pub fn begin_execution(&self) {
        let mut st = self.state.lock();
        st.counter = 0;
        st.instance_class.clear();
    }

    /// Classifies an instantiation happening *now*: builds the descriptor
    /// from the runtime's current call stack and interns it.
    ///
    /// Safe to call both before the instance exists (factory placement) and
    /// at creation (binding): the same stack yields the same descriptor.
    pub fn classify_pending(&self, rt: &ComRuntime, clsid: Clsid) -> ClassificationId {
        let stack = rt.call_stack();
        let mut st = self.state.lock();
        let descriptor = self.build_descriptor(clsid, &stack, &mut st);
        Self::intern(&mut st, descriptor)
    }

    /// Classifies and binds a freshly created instance.
    pub fn classify_instance(
        &self,
        rt: &ComRuntime,
        id: InstanceId,
        clsid: Clsid,
    ) -> ClassificationId {
        let stack = rt.call_stack();
        let mut st = self.state.lock();
        let descriptor = self.build_descriptor(clsid, &stack, &mut st);
        // The incremental counter advances once per *instance*, so the
        // pending classification (if it was queried) and the bound one agree:
        // build_descriptor uses the counter without advancing; we advance
        // here, after binding.
        let class = Self::intern(&mut st, descriptor);
        st.instance_class.insert(id, class);
        st.counter += 1;
        st.instances_seen += 1;
        class
    }

    fn intern(st: &mut ClassifierState, descriptor: Descriptor) -> ClassificationId {
        if let Some(&existing) = st.interned.get(&descriptor) {
            return existing;
        }
        // Ids start at 1; 0 is ROOT.
        let id = ClassificationId(st.descriptors.len() as u32 + 1);
        st.descriptors.push(descriptor.clone());
        st.interned.insert(descriptor, id);
        id
    }

    fn build_descriptor(
        &self,
        clsid: Clsid,
        stack: &[Frame],
        st: &mut ClassifierState,
    ) -> Descriptor {
        match self.kind {
            ClassifierKind::Incremental => Descriptor::Incremental(st.counter),
            ClassifierKind::St => Descriptor::St(clsid),
            ClassifierKind::Pcb => {
                let chain = self
                    .walk(stack)
                    .map(|f| (f.clsid, f.iid, f.method))
                    .collect();
                Descriptor::Pcb(clsid, chain)
            }
            ClassifierKind::Stcb => {
                let chain = self.walk(stack).map(|f| f.clsid).collect();
                Descriptor::Stcb(clsid, chain)
            }
            ClassifierKind::Ifcb => {
                let chain = self.walk(stack).map(|f| Self::chain_entry(st, f)).collect();
                Descriptor::Ifcb(clsid, chain)
            }
            ClassifierKind::Epcb => {
                // Collapse consecutive frames of the same instance, keeping
                // only the *entry* (outermost) frame of each run, then apply
                // the depth limit to the collapsed chain.
                let mut collapsed: Vec<Frame> = Vec::new();
                let mut i = 0;
                while i < stack.len() {
                    let entry = stack[i]; // outermost frame of this run
                    let mut j = i + 1;
                    while j < stack.len() && stack[j].instance == entry.instance {
                        j += 1;
                    }
                    collapsed.push(entry);
                    i = j;
                }
                // Innermost first, limited by depth.
                let mut chain: Vec<ChainEntry> = collapsed
                    .iter()
                    .rev()
                    .map(|f| Self::chain_entry(st, f))
                    .collect();
                if let Some(d) = self.depth {
                    chain.truncate(d);
                }
                Descriptor::Epcb(clsid, chain)
            }
            ClassifierKind::Ib => {
                let parent = stack.last().map(|f| {
                    st.instance_class
                        .get(&f.instance)
                        .copied()
                        .unwrap_or(ClassificationId::ROOT)
                });
                Descriptor::Ib(clsid, parent)
            }
        }
    }

    fn chain_entry(st: &ClassifierState, f: &Frame) -> ChainEntry {
        ChainEntry {
            who: st
                .instance_class
                .get(&f.instance)
                .copied()
                .unwrap_or(ClassificationId::ROOT),
            clsid: f.clsid,
            iid: f.iid,
            method: f.method,
        }
    }

    /// Iterates stack frames innermost-first, honoring the depth limit.
    fn walk<'a>(&self, stack: &'a [Frame]) -> impl Iterator<Item = &'a Frame> {
        let take = self.depth.unwrap_or(usize::MAX);
        stack.iter().rev().take(take)
    }

    /// The classification previously bound to an instance.
    pub fn classification_of(&self, id: InstanceId) -> Option<ClassificationId> {
        self.state.lock().instance_class.get(&id).copied()
    }

    /// The descriptor interned for a classification.
    pub fn descriptor(&self, class: ClassificationId) -> Option<Descriptor> {
        if class == ClassificationId::ROOT {
            return None;
        }
        self.state
            .lock()
            .descriptors
            .get(class.0 as usize - 1)
            .cloned()
    }

    /// Current statistics.
    pub fn stats(&self) -> ClassifierStats {
        let st = self.state.lock();
        ClassifierStats {
            classifications: st.descriptors.len() as u32,
            instances: st.instances_seen,
        }
    }

    /// Number of distinct classifications interned so far.
    pub fn classification_count(&self) -> u32 {
        self.state.lock().descriptors.len() as u32
    }

    /// Snapshot of the instance→classification binding of the current
    /// execution.
    pub fn bindings(&self) -> HashMap<InstanceId, ClassificationId> {
        self.state.lock().instance_class.clone()
    }

    /// Serializes the classifier configuration and interned descriptor table
    /// (for the configuration record).
    pub fn encode(&self) -> Vec<u8> {
        let st = self.state.lock();
        let mut e = Encoder::new();
        e.put_u8(self.kind.tag());
        match self.depth {
            Some(d) => {
                e.put_bool(true);
                e.put_u32(d as u32);
            }
            None => e.put_bool(false),
        }
        e.put_seq(st.descriptors.len());
        for d in &st.descriptors {
            encode_descriptor(&mut e, d);
        }
        e.finish()
    }

    /// Forks a private classifier that shares this one's interned
    /// descriptor table (ids preserved) but none of its per-execution
    /// state.
    ///
    /// Forks let independent profiling scenarios run on worker threads
    /// without contending on — or non-deterministically interleaving
    /// their interning into — the shared table; they are folded back with
    /// [`InstanceClassifier::absorb`].
    pub fn fork(&self) -> InstanceClassifier {
        let st = self.state.lock();
        InstanceClassifier {
            kind: self.kind,
            depth: self.depth,
            state: Mutex::new(ClassifierState {
                interned: st.interned.clone(),
                descriptors: st.descriptors.clone(),
                instance_class: HashMap::new(),
                counter: 0,
                instances_seen: 0,
            }),
        }
    }

    /// Folds a fork's interned table back into this classifier, returning
    /// the id translation indexed by the fork's raw id (`ROOT` maps to
    /// `ROOT`; entry `i` is the new home of the fork's id `i`).
    ///
    /// Descriptors are replayed in the fork's interning order. A
    /// descriptor only ever embeds classifications interned strictly
    /// before it (the `who` entries of IFCB/EPCB chains and IB parents
    /// come from instances bound earlier), so each one can be rewritten
    /// through the translation built so far and re-interned here.
    /// Absorbing the forks of one base in scenario order therefore
    /// reproduces exactly the table a sequential pass over the same
    /// scenarios would have built.
    pub fn absorb(&self, fork: &InstanceClassifier) -> Vec<ClassificationId> {
        assert_eq!(
            (self.kind, self.depth),
            (fork.kind, fork.depth),
            "cannot absorb a fork of a differently configured classifier"
        );
        let fork_st = fork.state.lock();
        let mut st = self.state.lock();
        let mut map = Vec::with_capacity(fork_st.descriptors.len() + 1);
        map.push(ClassificationId::ROOT);
        for desc in &fork_st.descriptors {
            let rewritten = remap_descriptor(desc, &map);
            map.push(Self::intern(&mut st, rewritten));
        }
        st.instances_seen += fork_st.instances_seen;
        map
    }

    /// Restores a classifier (with its interned table) from bytes.
    pub fn decode(bytes: &[u8]) -> ComResult<Self> {
        let mut d = Decoder::new(bytes);
        let kind = ClassifierKind::from_tag(d.get_u8()?)?;
        let depth = if d.get_bool()? {
            Some(d.get_u32()? as usize)
        } else {
            None
        };
        let n = d.get_seq(2)?;
        let mut descriptors = Vec::with_capacity(n);
        let mut interned = HashMap::with_capacity(n);
        for i in 0..n {
            let desc = decode_descriptor(&mut d)?;
            interned.insert(desc.clone(), ClassificationId(i as u32 + 1));
            descriptors.push(desc);
        }
        Ok(InstanceClassifier {
            kind,
            depth,
            state: Mutex::new(ClassifierState {
                interned,
                descriptors,
                instance_class: HashMap::new(),
                counter: 0,
                instances_seen: 0,
            }),
        })
    }
}

fn remap_id(map: &[ClassificationId], id: ClassificationId) -> ClassificationId {
    *map.get(id.0 as usize)
        .expect("descriptor references a classification interned after it")
}

fn remap_chain(map: &[ClassificationId], chain: &[ChainEntry]) -> Vec<ChainEntry> {
    chain
        .iter()
        .map(|entry| ChainEntry {
            who: remap_id(map, entry.who),
            ..*entry
        })
        .collect()
}

/// Rewrites every embedded classification reference of a descriptor
/// through `map` (indexed by the old raw id). Only the instance-sensitive
/// variants embed references.
fn remap_descriptor(desc: &Descriptor, map: &[ClassificationId]) -> Descriptor {
    match desc {
        Descriptor::Ifcb(c, chain) => Descriptor::Ifcb(*c, remap_chain(map, chain)),
        Descriptor::Epcb(c, chain) => Descriptor::Epcb(*c, remap_chain(map, chain)),
        Descriptor::Ib(c, parent) => Descriptor::Ib(*c, parent.map(|p| remap_id(map, p))),
        other => other.clone(),
    }
}

fn encode_chain(e: &mut Encoder, chain: &[ChainEntry]) {
    e.put_seq(chain.len());
    for entry in chain {
        e.put_u32(entry.who.0);
        e.put_guid(entry.clsid.0);
        e.put_guid(entry.iid.0);
        e.put_u32(entry.method);
    }
}

fn decode_chain(d: &mut Decoder<'_>) -> ComResult<Vec<ChainEntry>> {
    let n = d.get_seq(40)?;
    let mut chain = Vec::with_capacity(n);
    for _ in 0..n {
        chain.push(ChainEntry {
            who: ClassificationId(d.get_u32()?),
            clsid: Clsid(d.get_guid()?),
            iid: Iid(d.get_guid()?),
            method: d.get_u32()?,
        });
    }
    Ok(chain)
}

fn encode_descriptor(e: &mut Encoder, desc: &Descriptor) {
    match desc {
        Descriptor::Incremental(n) => {
            e.put_u8(0);
            e.put_u64(*n);
        }
        Descriptor::St(c) => {
            e.put_u8(1);
            e.put_guid(c.0);
        }
        Descriptor::Pcb(c, chain) => {
            e.put_u8(2);
            e.put_guid(c.0);
            e.put_seq(chain.len());
            for (clsid, iid, m) in chain {
                e.put_guid(clsid.0);
                e.put_guid(iid.0);
                e.put_u32(*m);
            }
        }
        Descriptor::Stcb(c, chain) => {
            e.put_u8(3);
            e.put_guid(c.0);
            e.put_seq(chain.len());
            for clsid in chain {
                e.put_guid(clsid.0);
            }
        }
        Descriptor::Ifcb(c, chain) => {
            e.put_u8(4);
            e.put_guid(c.0);
            encode_chain(e, chain);
        }
        Descriptor::Epcb(c, chain) => {
            e.put_u8(5);
            e.put_guid(c.0);
            encode_chain(e, chain);
        }
        Descriptor::Ib(c, parent) => {
            e.put_u8(6);
            e.put_guid(c.0);
            match parent {
                Some(p) => {
                    e.put_bool(true);
                    e.put_u32(p.0);
                }
                None => e.put_bool(false),
            }
        }
    }
}

fn decode_descriptor(d: &mut Decoder<'_>) -> ComResult<Descriptor> {
    Ok(match d.get_u8()? {
        0 => Descriptor::Incremental(d.get_u64()?),
        1 => Descriptor::St(Clsid(d.get_guid()?)),
        2 => {
            let c = Clsid(d.get_guid()?);
            let n = d.get_seq(36)?;
            let mut chain = Vec::with_capacity(n);
            for _ in 0..n {
                chain.push((Clsid(d.get_guid()?), Iid(d.get_guid()?), d.get_u32()?));
            }
            Descriptor::Pcb(c, chain)
        }
        3 => {
            let c = Clsid(d.get_guid()?);
            let n = d.get_seq(16)?;
            let mut chain = Vec::with_capacity(n);
            for _ in 0..n {
                chain.push(Clsid(d.get_guid()?));
            }
            Descriptor::Stcb(c, chain)
        }
        4 => Descriptor::Ifcb(Clsid(d.get_guid()?), decode_chain(d)?),
        5 => Descriptor::Epcb(Clsid(d.get_guid()?), decode_chain(d)?),
        6 => {
            let c = Clsid(d.get_guid()?);
            let parent = if d.get_bool()? {
                Some(ClassificationId(d.get_u32()?))
            } else {
                None
            };
            Descriptor::Ib(c, parent)
        }
        other => return Err(ComError::Codec(format!("unknown descriptor tag {other}"))),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frame(inst: u64, class: &str, method: u32) -> Frame {
        Frame {
            instance: InstanceId(inst),
            clsid: Clsid::from_name(class),
            iid: Iid::from_name(&format!("I{class}")),
            method,
        }
    }

    /// The exact program of the paper's Figure 3:
    /// `A::V → A::W → B::X → B::Y → C::Z → CoCreateInstance(D)`,
    /// where `a` executes V and W, `b1` executes X, `b2` executes Y, and
    /// `c` executes Z. Stack is outermost-first.
    fn figure3_stack() -> Vec<Frame> {
        vec![
            frame(1, "A", 0), // a.V
            frame(1, "A", 1), // a.W
            frame(2, "B", 0), // b1.X
            frame(3, "B", 1), // b2.Y
            frame(4, "C", 0), // c.Z
        ]
    }

    /// Classifies the Figure 3 instantiation of `D` after pre-binding the
    /// stack instances to classifications, returning the descriptor.
    fn figure3_descriptor(kind: ClassifierKind, depth: Option<usize>) -> Descriptor {
        let classifier = InstanceClassifier::with_depth(kind, depth);
        // Pre-bind a, b1, b2, c by classifying them with empty-ish stacks so
        // they have classifications of their own.
        let mut st = classifier.state.lock();
        for inst in 1..=4u64 {
            let desc = Descriptor::Incremental(1000 + inst); // unique dummies
            let id = InstanceClassifier::intern(&mut st, desc);
            st.instance_class.insert(InstanceId(inst), id);
        }
        let stack = figure3_stack();
        let d_clsid = Clsid::from_name("D");
        let desc = classifier.build_descriptor(d_clsid, &stack, &mut st);
        drop(st);
        desc
    }

    #[test]
    fn figure3_incremental() {
        let d = figure3_descriptor(ClassifierKind::Incremental, None);
        assert!(matches!(d, Descriptor::Incremental(_)));
    }

    #[test]
    fn figure3_static_type() {
        let d = figure3_descriptor(ClassifierKind::St, None);
        assert_eq!(d, Descriptor::St(Clsid::from_name("D")));
    }

    #[test]
    fn figure3_pcb_lists_procedures_innermost_first() {
        // Expected: [D, C::Z, B::Y, B::X, A::W, A::V].
        let d = figure3_descriptor(ClassifierKind::Pcb, None);
        match d {
            Descriptor::Pcb(c, chain) => {
                assert_eq!(c, Clsid::from_name("D"));
                let classes: Vec<Clsid> = chain.iter().map(|(cl, _, _)| *cl).collect();
                assert_eq!(
                    classes,
                    ["C", "B", "B", "A", "A"]
                        .iter()
                        .map(|n| Clsid::from_name(n))
                        .collect::<Vec<_>>()
                );
                let methods: Vec<u32> = chain.iter().map(|(_, _, m)| *m).collect();
                assert_eq!(methods, vec![0, 1, 0, 1, 0]); // Z, Y, X, W, V
            }
            other => panic!("wrong descriptor {other:?}"),
        }
    }

    #[test]
    fn figure3_stcb_lists_classes() {
        // Expected: [D, C, B, B, A] — A appears once per *frame*? The paper
        // shows [D, C, B, B, A]: a executed two frames (V and W) but the
        // STCB descriptor lists classes of instances in the back-trace; the
        // paper's rendering collapses a's two frames to one A... it shows
        // exactly five entries: D, C, B, B, A. Our frame walk yields
        // C, B, B, A, A; the paper elides the duplicate A because both
        // frames belong to the same *instance* of A. We follow the frame
        // walk (a strict superset of the paper's information): the grouping
        // behavior is equivalent because descriptors only need to be
        // *consistent*, not minimal.
        let d = figure3_descriptor(ClassifierKind::Stcb, None);
        match d {
            Descriptor::Stcb(c, chain) => {
                assert_eq!(c, Clsid::from_name("D"));
                assert_eq!(chain.len(), 5);
                assert_eq!(chain[0], Clsid::from_name("C"));
            }
            other => panic!("wrong descriptor {other:?}"),
        }
    }

    #[test]
    fn figure3_ifcb_uses_instance_classifications() {
        // Expected: [D, [c,Z], [b2,Y], [b1,X], [a,W], [a,V]].
        let d = figure3_descriptor(ClassifierKind::Ifcb, None);
        match d {
            Descriptor::Ifcb(_, chain) => {
                assert_eq!(chain.len(), 5);
                // b1 (frame X) and b2 (frame Y) have the same class but
                // different classifications — IFCB distinguishes them.
                let y = &chain[1];
                let x = &chain[2];
                assert_eq!(y.clsid, x.clsid);
                assert_ne!(y.who, x.who);
            }
            other => panic!("wrong descriptor {other:?}"),
        }
    }

    #[test]
    fn figure3_epcb_collapses_internal_calls() {
        // Expected: [D, [c,Z], [b2,Y], [b1,X], [a,V]] — a's internal
        // call V→W is collapsed to the entry point V.
        let d = figure3_descriptor(ClassifierKind::Epcb, None);
        match d {
            Descriptor::Epcb(_, chain) => {
                assert_eq!(chain.len(), 4);
                // The outermost collapsed entry is a's *entry* method V (0),
                // not the internal W (1).
                assert_eq!(chain.last().unwrap().method, 0);
            }
            other => panic!("wrong descriptor {other:?}"),
        }
    }

    #[test]
    fn figure3_ib_takes_immediate_parent() {
        // Expected: [D, c].
        let d = figure3_descriptor(ClassifierKind::Ib, None);
        match d {
            Descriptor::Ib(c, Some(parent)) => {
                assert_eq!(c, Clsid::from_name("D"));
                assert_ne!(parent, ClassificationId::ROOT);
            }
            other => panic!("wrong descriptor {other:?}"),
        }
    }

    #[test]
    fn depth_limit_truncates_from_innermost() {
        let full = figure3_descriptor(ClassifierKind::Ifcb, None);
        let shallow = figure3_descriptor(ClassifierKind::Ifcb, Some(2));
        let (full_chain, shallow_chain) = match (&full, &shallow) {
            (Descriptor::Ifcb(_, f), Descriptor::Ifcb(_, s)) => (f, s),
            _ => unreachable!(),
        };
        assert_eq!(shallow_chain.len(), 2);
        assert_eq!(&full_chain[..2], &shallow_chain[..]);
    }

    #[test]
    fn ifcb_depth1_equals_ib_information() {
        // The paper: "The instantiated-by classifier is functionally
        // equivalent to the IFCB classifier with a depth-1 stack back-trace."
        let ifcb1 = figure3_descriptor(ClassifierKind::Ifcb, Some(1));
        let ib = figure3_descriptor(ClassifierKind::Ib, None);
        match (ifcb1, ib) {
            (Descriptor::Ifcb(c1, chain), Descriptor::Ib(c2, Some(parent))) => {
                assert_eq!(c1, c2);
                assert_eq!(chain.len(), 1);
                assert_eq!(chain[0].who, parent);
            }
            other => panic!("wrong descriptors {other:?}"),
        }
    }

    #[test]
    fn interning_is_stable() {
        let classifier = InstanceClassifier::new(ClassifierKind::St);
        let rt = ComRuntime::single_machine();
        let a1 = classifier.classify_instance(&rt, InstanceId(1), Clsid::from_name("A"));
        let a2 = classifier.classify_instance(&rt, InstanceId(2), Clsid::from_name("A"));
        let b = classifier.classify_instance(&rt, InstanceId(3), Clsid::from_name("B"));
        assert_eq!(a1, a2);
        assert_ne!(a1, b);
        assert_eq!(classifier.classification_count(), 2);
        assert_eq!(classifier.stats().instances, 3);
        assert_eq!(classifier.classification_of(InstanceId(2)), Some(a1));
    }

    #[test]
    fn incremental_assigns_by_order_and_resets_per_execution() {
        let classifier = InstanceClassifier::new(ClassifierKind::Incremental);
        let rt = ComRuntime::single_machine();
        let first = classifier.classify_instance(&rt, InstanceId(1), Clsid::from_name("A"));
        let second = classifier.classify_instance(&rt, InstanceId(2), Clsid::from_name("A"));
        assert_ne!(first, second);
        classifier.begin_execution();
        // New execution: the first instantiation maps to the same
        // classification as the first of the previous run, regardless of class.
        let again = classifier.classify_instance(&rt, InstanceId(3), Clsid::from_name("B"));
        assert_eq!(again, first);
        assert_eq!(classifier.classification_count(), 2);
    }

    #[test]
    fn pending_and_bound_classifications_agree() {
        let classifier = InstanceClassifier::new(ClassifierKind::Incremental);
        let rt = ComRuntime::single_machine();
        let pending = classifier.classify_pending(&rt, Clsid::from_name("A"));
        let bound = classifier.classify_instance(&rt, InstanceId(1), Clsid::from_name("A"));
        assert_eq!(pending, bound);
        // And for the next instance too.
        let pending2 = classifier.classify_pending(&rt, Clsid::from_name("A"));
        let bound2 = classifier.classify_instance(&rt, InstanceId(2), Clsid::from_name("A"));
        assert_eq!(pending2, bound2);
        assert_ne!(bound, bound2);
    }

    #[test]
    fn encode_decode_roundtrip_preserves_ids() {
        let classifier = InstanceClassifier::with_depth(ClassifierKind::Ifcb, Some(8));
        let rt = ComRuntime::single_machine();
        let a = classifier.classify_instance(&rt, InstanceId(1), Clsid::from_name("A"));
        let b = classifier.classify_instance(&rt, InstanceId(2), Clsid::from_name("B"));
        let bytes = classifier.encode();
        let restored = InstanceClassifier::decode(&bytes).unwrap();
        assert_eq!(restored.kind(), ClassifierKind::Ifcb);
        assert_eq!(restored.depth(), Some(8));
        assert_eq!(restored.classification_count(), 2);
        // Re-classifying the same contexts yields the same ids.
        let a2 = restored.classify_instance(&rt, InstanceId(10), Clsid::from_name("A"));
        let b2 = restored.classify_instance(&rt, InstanceId(11), Clsid::from_name("B"));
        assert_eq!(a, a2);
        assert_eq!(b, b2);
    }

    #[test]
    fn fork_shares_interned_ids_without_execution_state() {
        let base = InstanceClassifier::new(ClassifierKind::St);
        let rt = ComRuntime::single_machine();
        let a = base.classify_instance(&rt, InstanceId(1), Clsid::from_name("A"));
        let fork = base.fork();
        assert_eq!(fork.classification_count(), 1);
        assert_eq!(fork.stats().instances, 0);
        assert_eq!(fork.classification_of(InstanceId(1)), None);
        // Same context classifies to the same id on both sides.
        let a_fork = fork.classify_instance(&rt, InstanceId(2), Clsid::from_name("A"));
        assert_eq!(a, a_fork);
    }

    #[test]
    fn absorb_maps_shared_prefix_to_identity_and_dedups_new_descriptors() {
        let base = InstanceClassifier::new(ClassifierKind::St);
        let rt = ComRuntime::single_machine();
        let a = base.classify_instance(&rt, InstanceId(1), Clsid::from_name("A"));
        let (f1, f2) = (base.fork(), base.fork());
        // Both forks intern the same new descriptor independently...
        let b1 = f1.classify_instance(&rt, InstanceId(2), Clsid::from_name("B"));
        let b2 = f2.classify_instance(&rt, InstanceId(2), Clsid::from_name("B"));
        let c2 = f2.classify_instance(&rt, InstanceId(3), Clsid::from_name("C"));
        assert_eq!(b1, b2);
        // ...and absorbing folds them onto one shared id.
        let m1 = base.absorb(&f1);
        let m2 = base.absorb(&f2);
        assert_eq!(m1[a.0 as usize], a);
        assert_eq!(m2[a.0 as usize], a);
        assert_eq!(m1[b1.0 as usize], m2[b2.0 as usize]);
        assert_ne!(m2[b2.0 as usize], m2[c2.0 as usize]);
        assert_eq!(base.classification_count(), 3);
        assert_eq!(base.stats().instances, 4);
    }

    #[test]
    fn absorb_rewrites_embedded_references() {
        // An IB descriptor interned by a fork embeds the fork-local id of
        // its parent; after absorption the shared table must reference the
        // parent's *shared* id instead.
        let base = InstanceClassifier::new(ClassifierKind::Ib);
        let rt = ComRuntime::single_machine();
        base.classify_instance(&rt, InstanceId(1), Clsid::from_name("Base"));
        let fork = base.fork();
        // The base table grows after the fork (an earlier scenario was
        // absorbed), so the fork's local ids are offset from their shared
        // homes and the rewrite is observable.
        base.classify_instance(&rt, InstanceId(5), Clsid::from_name("Other"));
        let parent = {
            let mut st = fork.state.lock();
            let id = InstanceClassifier::intern(&mut st, Descriptor::Incremental(77));
            st.instance_class.insert(InstanceId(9), id);
            id
        };
        let child = {
            let mut st = fork.state.lock();
            InstanceClassifier::intern(
                &mut st,
                Descriptor::Ib(Clsid::from_name("Child"), Some(parent)),
            )
        };
        let map = base.absorb(&fork);
        let child_desc = base.descriptor(map[child.0 as usize]).unwrap();
        assert_eq!(
            child_desc,
            Descriptor::Ib(Clsid::from_name("Child"), Some(map[parent.0 as usize]))
        );
        // The fork-local parent id (2) landed elsewhere in the shared table.
        assert_ne!(map[parent.0 as usize], parent);
    }

    #[test]
    fn all_descriptor_variants_roundtrip() {
        let descriptors = vec![
            Descriptor::Incremental(42),
            Descriptor::St(Clsid::from_name("X")),
            Descriptor::Pcb(
                Clsid::from_name("X"),
                vec![(Clsid::from_name("Y"), Iid::from_name("IY"), 3)],
            ),
            Descriptor::Stcb(Clsid::from_name("X"), vec![Clsid::from_name("Y")]),
            Descriptor::Ifcb(
                Clsid::from_name("X"),
                vec![ChainEntry {
                    who: ClassificationId(7),
                    clsid: Clsid::from_name("Y"),
                    iid: Iid::from_name("IY"),
                    method: 1,
                }],
            ),
            Descriptor::Epcb(Clsid::from_name("X"), vec![]),
            Descriptor::Ib(Clsid::from_name("X"), None),
            Descriptor::Ib(Clsid::from_name("X"), Some(ClassificationId(3))),
        ];
        for desc in descriptors {
            let mut e = Encoder::new();
            encode_descriptor(&mut e, &desc);
            let bytes = e.finish();
            let back = decode_descriptor(&mut Decoder::new(&bytes)).unwrap();
            assert_eq!(back, desc);
        }
    }

    #[test]
    fn decode_rejects_bad_tags() {
        assert!(InstanceClassifier::decode(&[99]).is_err());
        let mut e = Encoder::new();
        e.put_u8(99);
        assert!(decode_descriptor(&mut Decoder::new(&e.finish())).is_err());
    }

    #[test]
    fn root_classification_displays() {
        assert_eq!(ClassificationId::ROOT.to_string(), "c:root");
        assert_eq!(ClassificationId(5).to_string(), "c:5");
    }

    #[test]
    fn render_produces_figure3_like_output() {
        let names = |c: Clsid| {
            for n in ["A", "B", "C", "D"] {
                if Clsid::from_name(n) == c {
                    return n.to_string();
                }
            }
            "?".to_string()
        };
        let d = figure3_descriptor(ClassifierKind::St, None);
        assert_eq!(d.render(&names), "[D]");
        let ib = figure3_descriptor(ClassifierKind::Ib, None);
        assert!(ib.render(&names).starts_with("[D, "));
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    /// Arbitrary call stacks over a small class/instance alphabet.
    fn arb_stack() -> impl Strategy<Value = Vec<Frame>> {
        proptest::collection::vec((1u64..6, 0u8..4, 0u32..3), 0..8).prop_map(|frames| {
            frames
                .into_iter()
                .map(|(inst, class, method)| Frame {
                    instance: InstanceId(inst),
                    clsid: Clsid::from_name(&format!("K{class}")),
                    iid: Iid::from_name(&format!("IK{class}")),
                    method,
                })
                .collect()
        })
    }

    fn classify_stack(
        classifier: &InstanceClassifier,
        clsid: Clsid,
        stack: &[Frame],
    ) -> ClassificationId {
        let mut st = classifier.state.lock();
        // In a real execution every live stack instance already carries a
        // classification of its own; bind any unseen instance to a unique
        // one (keyed by its id) so descriptors see instance identity.
        for frame in stack {
            if !st.instance_class.contains_key(&frame.instance) {
                let dummy = Descriptor::Incremental(1_000_000 + frame.instance.0);
                let id = InstanceClassifier::intern(&mut st, dummy);
                st.instance_class.insert(frame.instance, id);
            }
        }
        let descriptor = classifier.build_descriptor(clsid, stack, &mut st);
        InstanceClassifier::intern(&mut st, descriptor)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(128))]

        /// Identical contexts always classify identically (determinism),
        /// for every classifier except the order-sensitive incremental.
        #[test]
        fn same_context_same_classification(stack in arb_stack(), class in 0u8..4) {
            let clsid = Clsid::from_name(&format!("K{class}"));
            for kind in [
                ClassifierKind::Pcb,
                ClassifierKind::St,
                ClassifierKind::Stcb,
                ClassifierKind::Ifcb,
                ClassifierKind::Epcb,
                ClassifierKind::Ib,
            ] {
                let classifier = InstanceClassifier::new(kind);
                let a = classify_stack(&classifier, clsid, &stack);
                let b = classify_stack(&classifier, clsid, &stack);
                prop_assert_eq!(a, b, "{:?} not deterministic", kind);
            }
        }

        /// A deeper stack walk never merges classifications a shallower one
        /// distinguishes: granularity is monotone in depth.
        #[test]
        fn depth_refines_classifications(
            stacks in proptest::collection::vec(arb_stack(), 1..12),
            shallow in 1usize..4,
        ) {
            let deep = shallow + 2;
            let clsid = Clsid::from_name("Target");
            let shallow_cl = InstanceClassifier::with_depth(ClassifierKind::Ifcb, Some(shallow));
            let deep_cl = InstanceClassifier::with_depth(ClassifierKind::Ifcb, Some(deep));
            let mut pairs = Vec::new();
            for stack in &stacks {
                let s = classify_stack(&shallow_cl, clsid, stack);
                let d = classify_stack(&deep_cl, clsid, stack);
                pairs.push((s, d));
            }
            // If deep says two stacks are equal, shallow must agree
            // (deep descriptors extend shallow ones).
            for i in 0..pairs.len() {
                for j in 0..pairs.len() {
                    if pairs[i].1 == pairs[j].1 {
                        prop_assert_eq!(pairs[i].0, pairs[j].0);
                    }
                }
            }
            prop_assert!(shallow_cl.classification_count() <= deep_cl.classification_count());
        }

        /// Classifier tables round-trip through the configuration-record
        /// codec for arbitrary interned descriptor sets.
        #[test]
        fn interned_tables_roundtrip(stacks in proptest::collection::vec(arb_stack(), 0..10)) {
            for kind in ClassifierKind::ALL {
                let classifier = InstanceClassifier::new(kind);
                for (i, stack) in stacks.iter().enumerate() {
                    let clsid = Clsid::from_name(&format!("T{}", i % 3));
                    classify_stack(&classifier, clsid, stack);
                }
                let restored = InstanceClassifier::decode(&classifier.encode()).unwrap();
                prop_assert_eq!(
                    restored.classification_count(),
                    classifier.classification_count()
                );
                // Re-classifying the same contexts yields the same ids.
                for (i, stack) in stacks.iter().enumerate() {
                    let clsid = Clsid::from_name(&format!("T{}", i % 3));
                    let original = classify_stack(&classifier, clsid, stack);
                    let again = classify_stack(&restored, clsid, stack);
                    prop_assert_eq!(original, again);
                }
            }
        }

        /// EPCB never distinguishes more than IFCB (it is a projection).
        #[test]
        fn epcb_is_coarser_than_ifcb(stacks in proptest::collection::vec(arb_stack(), 1..12)) {
            let ifcb = InstanceClassifier::new(ClassifierKind::Ifcb);
            let epcb = InstanceClassifier::new(ClassifierKind::Epcb);
            let clsid = Clsid::from_name("Target");
            for stack in &stacks {
                classify_stack(&ifcb, clsid, stack);
                classify_stack(&epcb, clsid, stack);
            }
            prop_assert!(epcb.classification_count() <= ifcb.classification_count());
        }
    }
}
