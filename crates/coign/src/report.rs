//! Developer feedback: communication hot spots and caching candidates.
//!
//! In the paper's first usage model, "Coign shows the developer how to
//! distribute the application optimally and provides the developer with
//! feedback about which interfaces are communication 'hot spots.' The
//! programmer fine-tunes the distribution by enabling custom marshaling and
//! caching on communication intensive interfaces" (§6), and "Coign can also
//! selectively enable per-interface caching (as appropriate) through COM's
//! semi-custom marshaling mechanism" (§4.3).
//!
//! [`hotspots`] ranks per-interface-method traffic by predicted network
//! time; [`caching_candidates`] flags the cut-crossing methods whose cost is
//! dominated by *message count* with small, repetitive replies — exactly
//! the calls a semi-custom marshaler could answer from a local cache.

use crate::analysis::Distribution;
use crate::constraints::Constraint;
use crate::lint::sharing::ReplicationReport;
use crate::profile::IccProfile;
use coign_com::{ComRuntime, Iid, StateEffect};
use coign_dcom::NetworkProfile;
use std::collections::HashMap;

/// One interface method's aggregated traffic.
#[derive(Debug, Clone, PartialEq)]
pub struct Hotspot {
    /// Interface carrying the traffic.
    pub iid: Iid,
    /// Interface name, when resolvable from a registry.
    pub interface: String,
    /// Method index within the interface.
    pub method: u32,
    /// Total messages.
    pub messages: u64,
    /// Total bytes.
    pub bytes: u64,
    /// Predicted time on the profiled network, microseconds.
    pub predicted_us: f64,
    /// True if any of this traffic crosses the given distribution's cut.
    pub crosses_cut: bool,
}

/// Builds an IID → interface-name map from the classes registered in `rt`.
pub fn interface_names(rt: &ComRuntime) -> HashMap<Iid, String> {
    let mut names = HashMap::new();
    for class in rt.registry().all() {
        for iface in &class.interfaces {
            names.insert(iface.iid, iface.name.clone());
        }
    }
    names
}

/// Ranks per-interface-method traffic by predicted network time,
/// heaviest first.
///
/// When a `distribution` is given, each entry records whether its traffic
/// crosses the cut (only crossing traffic actually costs anything at run
/// time; the rest is the latent cost of alternative distributions).
pub fn hotspots(
    profile: &IccProfile,
    network: &NetworkProfile,
    distribution: Option<&Distribution>,
    names: &HashMap<Iid, String>,
) -> Vec<Hotspot> {
    let mut by_method: HashMap<(Iid, u32), Hotspot> = HashMap::new();
    for (key, stats) in &profile.edges {
        let entry = by_method
            .entry((key.iid, key.method))
            .or_insert_with(|| Hotspot {
                iid: key.iid,
                interface: names
                    .get(&key.iid)
                    .cloned()
                    .unwrap_or_else(|| key.iid.to_string()),
                method: key.method,
                messages: 0,
                bytes: 0,
                predicted_us: 0.0,
                crosses_cut: false,
            });
        entry.messages += stats.messages;
        entry.bytes += stats.bytes;
        entry.predicted_us += network.predict_traffic_us(stats.messages, stats.bytes);
        if let Some(dist) = distribution {
            if dist.machine_of(key.from) != dist.machine_of(key.to) {
                entry.crosses_cut = true;
            }
        }
    }
    let mut out: Vec<Hotspot> = by_method.into_values().collect();
    // Ties must order on the (iid, method) key, not the display name: two
    // distinct interfaces can resolve to the same name, and a name tie
    // would then leave the order to HashMap iteration — nondeterministic.
    out.sort_by(|a, b| {
        b.predicted_us
            .partial_cmp(&a.predicted_us)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.interface.cmp(&b.interface))
            .then(a.iid.cmp(&b.iid))
            .then(a.method.cmp(&b.method))
    });
    out
}

/// A cut-crossing method whose cost a per-interface cache could absorb.
#[derive(Debug, Clone, PartialEq)]
pub struct CachingCandidate {
    /// Interface of the cacheable method.
    pub iid: Iid,
    /// Interface name, when resolvable.
    pub interface: String,
    /// Method index.
    pub method: u32,
    /// Cut-crossing calls (request/reply pairs).
    pub calls: u64,
    /// Average bytes per message.
    pub avg_message_bytes: u64,
    /// Time a cache with a perfect hit rate after the first call would
    /// save, microseconds.
    pub potential_savings_us: f64,
}

/// Finds cut-crossing methods that are called repeatedly with small
/// messages — per-interface caching candidates.
///
/// A method qualifies when it crosses the cut at least `min_calls` times
/// and its average message stays under `max_avg_bytes` (latency-dominated
/// chatter). The potential saving assumes all but the first call hit the
/// cache.
pub fn caching_candidates(
    profile: &IccProfile,
    network: &NetworkProfile,
    distribution: &Distribution,
    names: &HashMap<Iid, String>,
    min_calls: u64,
    max_avg_bytes: u64,
) -> Vec<CachingCandidate> {
    let mut crossing: HashMap<(Iid, u32), (u64, u64)> = HashMap::new();
    for (key, stats) in &profile.edges {
        if distribution.machine_of(key.from) == distribution.machine_of(key.to) {
            continue;
        }
        let entry = crossing.entry((key.iid, key.method)).or_insert((0, 0));
        entry.0 += stats.messages;
        entry.1 += stats.bytes;
    }
    let mut out = Vec::new();
    for ((iid, method), (messages, bytes)) in crossing {
        let calls = messages / 2;
        if calls < min_calls {
            continue;
        }
        let avg = bytes.checked_div(messages).unwrap_or(0);
        if avg > max_avg_bytes {
            continue;
        }
        let total_us = network.predict_traffic_us(messages, bytes);
        let per_call_us = total_us / calls.max(1) as f64;
        out.push(CachingCandidate {
            iid,
            interface: names.get(&iid).cloned().unwrap_or_else(|| iid.to_string()),
            method,
            calls,
            avg_message_bytes: avg,
            potential_savings_us: per_call_us * calls.saturating_sub(1) as f64,
        });
    }
    out.sort_by(|a, b| {
        b.potential_savings_us
            .partial_cmp(&a.potential_savings_us)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.interface.cmp(&b.interface))
            .then(a.iid.cmp(&b.iid))
            .then(a.method.cmp(&b.method))
    });
    out
}

/// Renders the application's communication graph in Graphviz DOT form —
/// the textual equivalent of the paper's Figures 4–8: one node per
/// classification (labelled with its class and instance count), gray edges
/// for distributable interfaces, **bold black edges** for non-remotable
/// ones, and server-side nodes drawn as filled boxes.
///
/// Location constraints render in a distinct dashed style: pins as dashed
/// edges to synthetic diamond `client`/`server` machine nodes, explicit
/// colocations as dashed edges between the bound classifications (pairs
/// already drawn bold-black as non-remotable are not repeated).
pub fn to_dot(
    profile: &IccProfile,
    network: &NetworkProfile,
    distribution: Option<&Distribution>,
    constraints: &[Constraint],
    class_names: &HashMap<coign_com::Clsid, String>,
) -> String {
    to_dot_annotated(
        profile,
        network,
        distribution,
        constraints,
        class_names,
        &DotFacts::default(),
    )
}

/// Replication-legality facts layered onto the DOT rendering by
/// [`to_dot_annotated`]. The default (empty) facts reproduce [`to_dot`]
/// byte for byte, so unannotated applications keep their exact output.
#[derive(Debug, Clone, Default)]
pub struct DotFacts {
    /// Stage-4/5 verdicts: replicable classes render double-circled
    /// (`peripheries=2`), mutable-shared classes render shaded.
    pub replication: Option<ReplicationReport>,
    /// Declared per-method state effects, keyed by `(iid, method index)`.
    /// Edges whose entire traffic is declared read-only carry the effect
    /// label; edges with any mutating (or unannotated) method stay plain.
    pub effects: HashMap<(Iid, u32), StateEffect>,
}

/// Builds the per-method effect map [`DotFacts::effects`] from the classes
/// registered in `rt` (method index = declaration order).
pub fn method_effects(rt: &ComRuntime) -> HashMap<(Iid, u32), StateEffect> {
    let mut effects = HashMap::new();
    for class in rt.registry().all() {
        for iface in &class.interfaces {
            for (index, method) in iface.methods.iter().enumerate() {
                effects.insert((iface.iid, index as u32), method.effect);
            }
        }
    }
    effects
}

/// [`to_dot`] plus the stage-4/5 replication-legality overlay: replicable
/// classes draw double-circled, mutable-shared classes draw shaded, and
/// edges carrying only declared-read-only traffic are labelled with the
/// strongest effect they carry (`pure` or `reads`).
pub fn to_dot_annotated(
    profile: &IccProfile,
    network: &NetworkProfile,
    distribution: Option<&Distribution>,
    constraints: &[Constraint],
    class_names: &HashMap<coign_com::Clsid, String>,
    facts: &DotFacts,
) -> String {
    use crate::classifier::ClassificationId;
    use std::collections::BTreeSet;
    use std::fmt::Write as _;

    let mut out = String::from(
        "graph icc {
  graph [overlap=false, splines=true];
",
    );
    let mut sorted: Vec<ClassificationId> = profile.classifications().into_iter().collect();
    if !sorted.contains(&ClassificationId::ROOT) {
        sorted.push(ClassificationId::ROOT);
    }
    sorted.sort();
    for class in &sorted {
        let mut class_name = None;
        let label = if *class == ClassificationId::ROOT {
            "user".to_string()
        } else {
            let name = profile
                .class_of
                .get(class)
                .and_then(|clsid| class_names.get(clsid))
                .cloned()
                .unwrap_or_else(|| class.to_string());
            let count = profile.instances.get(class).copied().unwrap_or(0);
            let label = format!("{name} x{count}");
            class_name = Some(name);
            label
        };
        let server = distribution
            .map(|d| d.machine_of(*class) == coign_com::MachineId::SERVER)
            .unwrap_or(false);
        let mut style = if server {
            ", shape=box, style=filled, fillcolor=gray75".to_string()
        } else {
            String::new()
        };
        if let (Some(name), Some(rep)) = (&class_name, &facts.replication) {
            if rep.is_replicable(name) {
                // Legally duplicable onto several machines: double circle.
                style.push_str(", peripheries=2");
            } else if rep.mutable_shared.iter().any(|c| c == name) && !server {
                // Shared and mutable — pinned to one copy: shaded.
                style.push_str(", style=filled, fillcolor=mistyrose");
            }
        }
        let _ = writeln!(out, "  n{} [label=\"{label}\"{style}];", class.0);
    }
    // The strongest declared effect carried on each unordered pair, when
    // every method on the pair is annotated read-only. Any mutating or
    // unannotated method drops the pair back to a plain label.
    let mut pair_effects: HashMap<(ClassificationId, ClassificationId), Option<StateEffect>> =
        HashMap::new();
    if !facts.effects.is_empty() {
        for key in profile.edges.keys() {
            let pair = if key.from <= key.to {
                (key.from, key.to)
            } else {
                (key.to, key.from)
            };
            let declared = facts
                .effects
                .get(&(key.iid, key.method))
                .copied()
                .filter(|e| e.is_read_only());
            let entry = pair_effects.entry(pair).or_insert(Some(StateEffect::Pure));
            *entry = match (*entry, declared) {
                (Some(StateEffect::Pure), Some(e)) => Some(e),
                (Some(prev), Some(_)) => Some(prev),
                _ => None,
            };
        }
    }
    let mut pairs: Vec<_> = profile.pair_traffic().into_iter().collect();
    pairs.sort_by_key(|(pair, _)| *pair);
    for ((a, b), stats) in pairs {
        if a == b {
            continue;
        }
        let non_remotable = profile.non_remotable.contains(&(a, b));
        let cost_ms = network.predict_traffic_us(stats.messages, stats.bytes) / 1000.0;
        let attrs = if non_remotable {
            ", color=black, penwidth=2.5".to_string()
        } else {
            format!(
                ", color=gray60, penwidth={:.2}",
                (cost_ms.log10().max(0.0) + 0.5).min(4.0)
            )
        };
        let effect = pair_effects.get(&(a, b)).copied().flatten();
        let label = match effect {
            Some(e) => format!("{cost_ms:.1}ms ({})", e.label()),
            None => format!("{cost_ms:.1}ms"),
        };
        let _ = writeln!(out, "  n{} -- n{} [label=\"{label}\"{attrs}];", a.0, b.0);
    }
    // Pure constraint edges with no measured traffic.
    for (a, b) in &profile.non_remotable {
        if profile.pair_traffic().contains_key(&(*a, *b)) {
            continue;
        }
        let _ = writeln!(out, "  n{} -- n{} [color=black, penwidth=2.5];", a.0, b.0);
    }
    // Location constraints: pins run to synthetic machine nodes,
    // colocations bind their two classifications; both dashed so they read
    // apart from measured traffic.
    let mut pin_edges: BTreeSet<(u32, &str)> = BTreeSet::new();
    let mut coloc_edges: BTreeSet<(u32, u32)> = BTreeSet::new();
    for constraint in constraints {
        match constraint {
            Constraint::PinClient(class) => {
                pin_edges.insert((class.0, "client"));
            }
            Constraint::PinServer(class) => {
                pin_edges.insert((class.0, "server"));
            }
            Constraint::Colocate(a, b) => {
                if a == b {
                    continue;
                }
                let pair = if a <= b { (*a, *b) } else { (*b, *a) };
                // Non-remotable pairs already render as bold black edges.
                if !profile.non_remotable.contains(&pair) {
                    coloc_edges.insert((pair.0 .0, pair.1 .0));
                }
            }
        }
    }
    if !pin_edges.is_empty() {
        let _ = writeln!(out, "  client [label=\"client\", shape=diamond];");
        let _ = writeln!(out, "  server [label=\"server\", shape=diamond];");
    }
    for (id, machine) in &pin_edges {
        let _ = writeln!(out, "  n{id} -- {machine} [style=dashed, color=steelblue];");
    }
    for (a, b) in &coloc_edges {
        let _ = writeln!(
            out,
            "  n{a} -- n{b} [style=dashed, color=steelblue, penwidth=1.5];"
        );
    }
    out.push_str(
        "}
",
    );
    out
}

/// Builds a CLSID → class-name map from the classes registered in `rt`.
pub fn class_names(rt: &ComRuntime) -> HashMap<coign_com::Clsid, String> {
    rt.registry()
        .all()
        .into_iter()
        .map(|desc| (desc.clsid, desc.name.clone()))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classifier::ClassificationId;
    use coign_com::{Clsid, MachineId};
    use coign_dcom::NetworkModel;

    fn c(n: u32) -> ClassificationId {
        ClassificationId(n)
    }

    fn profile() -> IccProfile {
        let chatty = Iid::from_name("IChatty");
        let bulky = Iid::from_name("IBulky");
        let mut p = IccProfile::new();
        p.record_instance(c(1), Clsid::from_name("A"));
        p.record_instance(c(2), Clsid::from_name("B"));
        // 200 small messages on IChatty::0 between 1 and 2.
        for _ in 0..200 {
            p.record_message(c(1), c(2), chatty, 0, 96);
        }
        // 2 huge messages on IBulky::0 between 1 and 2.
        p.record_message(c(1), c(2), bulky, 0, 4_000_000);
        p.record_message(c(2), c(1), bulky, 0, 64);
        // Local-only traffic between 1 and 3 on IChatty::1.
        for _ in 0..50 {
            p.record_message(c(1), c(3), chatty, 1, 96);
        }
        p
    }

    fn split_dist() -> Distribution {
        Distribution {
            placement: [
                (c(1), MachineId::CLIENT),
                (c(2), MachineId::SERVER),
                (c(3), MachineId::CLIENT),
            ]
            .into_iter()
            .collect(),
            predicted_comm_us: 0.0,
            network_name: "test".into(),
        }
    }

    fn net() -> NetworkProfile {
        NetworkProfile::exact(&NetworkModel::ethernet_10baset())
    }

    #[test]
    fn hotspots_rank_by_predicted_time() {
        let spots = hotspots(&profile(), &net(), None, &HashMap::new());
        assert_eq!(spots.len(), 3);
        // The 4 MB transfer dominates even 200 latency hits on 10BaseT.
        assert_eq!(spots[0].iid, Iid::from_name("IBulky"));
        assert!(spots[0].predicted_us > spots[1].predicted_us);
        assert!(spots
            .windows(2)
            .all(|w| w[0].predicted_us >= w[1].predicted_us));
    }

    #[test]
    fn hotspots_mark_cut_crossings() {
        let dist = split_dist();
        let spots = hotspots(&profile(), &net(), Some(&dist), &HashMap::new());
        let chatty0 = spots
            .iter()
            .find(|s| s.iid == Iid::from_name("IChatty") && s.method == 0)
            .unwrap();
        let chatty1 = spots
            .iter()
            .find(|s| s.iid == Iid::from_name("IChatty") && s.method == 1)
            .unwrap();
        assert!(chatty0.crosses_cut);
        assert!(!chatty1.crosses_cut, "1↔3 is client-local");
    }

    #[test]
    fn caching_candidates_are_chatty_small_crossings() {
        let dist = split_dist();
        let candidates = caching_candidates(&profile(), &net(), &dist, &HashMap::new(), 10, 1_000);
        // Only IChatty::0 qualifies: crossing, ≥10 calls, small messages.
        assert_eq!(candidates.len(), 1);
        let cand = &candidates[0];
        assert_eq!(cand.iid, Iid::from_name("IChatty"));
        assert_eq!(cand.method, 0);
        assert_eq!(cand.calls, 100);
        assert!(cand.avg_message_bytes < 1_000);
        // Caching ~99 of 100 calls saves almost all of it.
        let full = net().predict_traffic_us(200, 200 * 96);
        assert!(cand.potential_savings_us > full * 0.95);
    }

    #[test]
    fn bulky_and_local_traffic_are_not_candidates() {
        let dist = split_dist();
        let candidates = caching_candidates(&profile(), &net(), &dist, &HashMap::new(), 1, 1_000);
        assert!(candidates.iter().all(|c| c.iid != Iid::from_name("IBulky")));
        assert!(candidates
            .iter()
            .all(|c| !(c.iid == Iid::from_name("IChatty") && c.method == 1)));
    }

    #[test]
    fn dot_output_is_well_formed() {
        let dist = split_dist();
        let mut p = profile();
        p.record_non_remotable(c(1), c(3));
        let dot = to_dot(&p, &net(), Some(&dist), &[], &HashMap::new());
        assert!(dot.starts_with("graph icc {"));
        assert!(dot.ends_with("}\n"));
        // One node per classification (+ the root).
        for id in [0u32, 1, 2, 3] {
            assert!(dot.contains(&format!("n{id} [label=")), "missing node {id}");
        }
        // The server-side node is a filled box.
        assert!(dot.contains("fillcolor=gray75"));
        // The non-remotable pair is a bold black edge.
        assert!(dot.contains("penwidth=2.5"));
        // No constraints given → no synthetic machine nodes.
        assert!(!dot.contains("shape=diamond"));
        // Balanced braces.
        assert_eq!(dot.matches('{').count(), dot.matches('}').count());
    }

    #[test]
    fn dot_renders_constraint_edges_in_dashed_style() {
        let mut p = profile();
        p.record_non_remotable(c(1), c(3));
        let constraints = vec![
            Constraint::PinClient(ClassificationId::ROOT),
            Constraint::PinServer(c(2)),
            Constraint::Colocate(c(1), c(2)),
            // Duplicate (reversed) colocation dedupes to one edge.
            Constraint::Colocate(c(2), c(1)),
            // Covered by the bold-black non-remotable edge: not repeated.
            Constraint::Colocate(c(3), c(1)),
        ];
        let dot = to_dot(&p, &net(), None, &constraints, &HashMap::new());
        assert!(dot.contains("client [label=\"client\", shape=diamond];"));
        assert!(dot.contains("server [label=\"server\", shape=diamond];"));
        assert!(dot.contains("n0 -- client [style=dashed, color=steelblue];"));
        assert!(dot.contains("n2 -- server [style=dashed, color=steelblue];"));
        assert_eq!(
            dot.matches("n1 -- n2 [style=dashed, color=steelblue, penwidth=1.5];")
                .count(),
            1
        );
        assert!(!dot.contains("n1 -- n3 [style=dashed"));
        assert_eq!(dot.matches('{').count(), dot.matches('}').count());
    }

    #[test]
    fn empty_dot_facts_reproduce_plain_output_byte_for_byte() {
        let dist = split_dist();
        let mut p = profile();
        p.record_non_remotable(c(1), c(3));
        let plain = to_dot(&p, &net(), Some(&dist), &[], &HashMap::new());
        let annotated = to_dot_annotated(
            &p,
            &net(),
            Some(&dist),
            &[],
            &HashMap::new(),
            &DotFacts::default(),
        );
        assert_eq!(plain, annotated);
    }

    #[test]
    fn dot_overlay_renders_replication_and_effect_facts() {
        let p = profile();
        let mut names = HashMap::new();
        names.insert(Clsid::from_name("A"), "A".to_string());
        names.insert(Clsid::from_name("B"), "B".to_string());
        let replication = ReplicationReport {
            replicable: vec!["B".to_string()],
            mutable_shared: vec!["A".to_string()],
            holders: Default::default(),
        };
        // Everything the profile carries between 1 and 2 is declared
        // read-only; the 1↔3 traffic is unannotated and stays plain.
        let chatty = Iid::from_name("IChatty");
        let bulky = Iid::from_name("IBulky");
        let effects = [
            ((chatty, 0u32), StateEffect::ReadsState),
            ((bulky, 0u32), StateEffect::Pure),
        ]
        .into_iter()
        .collect();
        let facts = DotFacts {
            replication: Some(replication),
            effects,
        };
        let dot = to_dot_annotated(&p, &net(), None, &[], &names, &facts);
        // Replicable B (node 2) draws double-circled.
        assert!(dot.contains("n2 [label=\"B x1\", peripheries=2];"));
        // Mutable-shared A (node 1) draws shaded.
        assert!(dot.contains("n1 [label=\"A x1\", style=filled, fillcolor=mistyrose];"));
        // The fully read-only 1↔2 edge carries its strongest effect.
        assert!(dot.contains("n1 -- n2 [label=\"") && dot.contains("ms (reads)\""));
        // The unannotated 1↔3 edge keeps the plain cost label.
        let edge_13 = dot
            .lines()
            .find(|l| l.contains("n1 -- n3"))
            .expect("1-3 edge rendered");
        assert!(
            !edge_13.contains("("),
            "unannotated edge stays plain: {edge_13}"
        );
    }

    #[test]
    fn tied_rankings_order_on_iid_and_method() {
        // Four interfaces with byte-identical traffic all resolve to the
        // same display name, so predicted time AND name tie for every
        // entry — only the (iid, method) tie-break can order them. Rebuild
        // the report repeatedly: each pass hashes through a freshly seeded
        // HashMap, so a missing tie-break would shuffle the order.
        let mut iids: Vec<Iid> = (0..4)
            .map(|i| Iid::from_name(&format!("ITie{i}")))
            .collect();
        iids.sort();
        let mut names = HashMap::new();
        let mut p = IccProfile::new();
        for iid in &iids {
            names.insert(*iid, "ITie".to_string());
            for method in [0u32, 1] {
                for _ in 0..4 {
                    p.record_message(c(1), c(2), *iid, method, 128);
                }
            }
        }
        let mut expected: Vec<(Iid, u32)> = iids.iter().flat_map(|i| [(*i, 0), (*i, 1)]).collect();
        expected.sort();
        let dist = split_dist();
        for _ in 0..8 {
            let spots = hotspots(&p, &net(), None, &names);
            let got: Vec<(Iid, u32)> = spots.iter().map(|s| (s.iid, s.method)).collect();
            assert_eq!(got, expected, "hotspot tie order must be (iid, method)");
            let cands = caching_candidates(&p, &net(), &dist, &names, 1, 1_000);
            let got: Vec<(Iid, u32)> = cands.iter().map(|s| (s.iid, s.method)).collect();
            assert_eq!(got, expected, "candidate tie order must be (iid, method)");
        }
    }

    #[test]
    fn names_resolve_when_available() {
        let mut names = HashMap::new();
        names.insert(Iid::from_name("IChatty"), "IChatty".to_string());
        let spots = hotspots(&profile(), &net(), None, &names);
        assert!(spots.iter().any(|s| s.interface == "IChatty"));
        // Unresolved interfaces fall back to the IID display form.
        assert!(spots.iter().any(|s| s.interface.starts_with("IID:")));
    }
}
